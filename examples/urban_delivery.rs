//! Urban delivery: compare the three system generations on the same urban
//! scenario — the setting where the paper's V1/V2 failure modes (collisions
//! with buildings, exhausted search pools, unsafe straight-line fallbacks)
//! show up most clearly.
//!
//! ```bash
//! cargo run --release --example urban_delivery
//! ```

use mls_landing::compute::{ComputeModel, ComputeProfile};
use mls_landing::core::{ExecutorConfig, LandingConfig, MissionExecutor, SystemVariant};
use mls_landing::sim_world::{MapStyle, ScenarioConfig, ScenarioGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Generate a benchmark and pick an urban scenario out of it.
    let scenarios = ScenarioGenerator::new(ScenarioConfig {
        maps: 3,
        scenarios_per_map: 4,
        ..ScenarioConfig::default()
    })
    .generate_benchmark(99)?;
    let scenario = scenarios
        .iter()
        .find(|s| s.map.style == MapStyle::Urban && !s.is_adverse())
        .expect("benchmark always contains urban scenarios");

    println!(
        "urban scenario `{}`: {} obstacles, tallest {:.0} m, target {:.0} m from the start",
        scenario.name,
        scenario.map.obstacles.len(),
        scenario.map.max_obstacle_height(),
        scenario.true_target()?.horizontal_distance(scenario.start),
    );
    println!();
    println!(
        "{:<8} {:>18} {:>14} {:>12} {:>12} {:>10}",
        "System", "result", "landing error", "collisions", "fallbacks", "aborts"
    );

    for variant in SystemVariant::ALL {
        let compute = ComputeModel::new(ComputeProfile::desktop_sil())?;
        let executor = MissionExecutor::for_variant(
            scenario,
            variant,
            LandingConfig::default(),
            compute,
            ExecutorConfig::default(),
            1234,
        )?;
        let outcome = executor.run();
        println!(
            "{:<8} {:>18} {:>11} {:>12} {:>12} {:>10}",
            variant.label(),
            format!("{:?}", outcome.result),
            outcome
                .landing_error
                .map(|e| format!("{e:.2} m"))
                .unwrap_or_else(|| "-".to_string()),
            outcome.collisions,
            outcome.planning_fallbacks,
            outcome.landing_aborts,
        );
    }

    println!();
    println!("Expected shape (paper, Table I): V1 collides most, V2 improves but still fails");
    println!("near large buildings, V3 avoids collisions at the cost of occasional aborts.");
    Ok(())
}
