//! Hardware-in-the-loop profile: run the same mission on the desktop and on
//! the Jetson Nano compute model and compare resource usage and behaviour —
//! a single-mission version of Table III / Fig. 7.
//!
//! ```bash
//! cargo run --release --example hil_profile
//! ```

use mls_landing::compute::{ComputeModel, ComputeProfile, TaskKind};
use mls_landing::core::{ExecutorConfig, LandingConfig, MissionExecutor, SystemVariant};
use mls_landing::sim_world::{ScenarioConfig, ScenarioGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenarios = ScenarioGenerator::new(ScenarioConfig {
        maps: 1,
        scenarios_per_map: 2,
        ..ScenarioConfig::default()
    })
    .generate_benchmark(21)?;
    let scenario = &scenarios[0];
    println!("scenario `{}` on two compute platforms\n", scenario.name);

    for profile in [
        ComputeProfile::desktop_sil(),
        ComputeProfile::jetson_nano_maxn(),
        ComputeProfile::jetson_nano_realworld(),
    ] {
        let name = profile.name.clone();
        let compute = ComputeModel::new(profile)?;
        let executor = MissionExecutor::for_variant(
            scenario,
            SystemVariant::MlsV3,
            LandingConfig::default(),
            compute,
            ExecutorConfig::default(),
            3,
        )?;
        let (outcome, model) = executor.run_with_compute();
        println!("platform: {name}");
        println!(
            "  result {:?}   duration {:.0} s   landing error {:?} m",
            outcome.result,
            outcome.duration,
            outcome.landing_error.map(|e| (e * 100.0).round() / 100.0)
        );
        println!(
            "  mean CPU {:.0}%   peak memory {:.0} MiB of {:.0} MiB   worst planning latency {:.0} ms",
            outcome.mean_cpu * 100.0,
            outcome.peak_memory_mb,
            model.profile().available_memory_mb,
            outcome.worst_planning_latency * 1000.0
        );
        println!(
            "  trace samples {}   GPU-accelerated tasks: {:?}",
            model.trace().len(),
            TaskKind::ALL
                .iter()
                .filter(|t| t.gpu_accelerated())
                .collect::<Vec<_>>()
        );
        println!();
    }

    println!("Expected shape (paper): the Jetson profiles show higher utilisation and latency;");
    println!("the real-world profile is the most loaded because of the live camera pipeline.");
    Ok(())
}
