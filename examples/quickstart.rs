//! Quickstart: fly MLS-V3 through one benchmark scenario and print what
//! happened.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use mls_landing::compute::{ComputeModel, ComputeProfile};
use mls_landing::core::{ExecutorConfig, LandingConfig, MissionExecutor, SystemVariant};
use mls_landing::sim_world::{ScenarioConfig, ScenarioGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate one scenario of the paper-style benchmark: a procedural
    //    map, a weather condition, a GPS landing target and a marker placed
    //    nearby (plus decoys).
    let scenarios = ScenarioGenerator::new(ScenarioConfig {
        maps: 1,
        scenarios_per_map: 1,
        ..ScenarioConfig::default()
    })
    .generate_benchmark(7)?;
    let scenario = &scenarios[0];
    println!("scenario: {}", scenario.name);
    println!("  weather           : {}", scenario.weather.label);
    println!("  obstacles         : {}", scenario.map.obstacles.len());
    println!("  true marker       : {:?}", scenario.true_target()?);
    println!("  GPS target (given): {:?}", scenario.gps_target);

    // 2. Assemble the third-generation system (TPH-YOLO surrogate + octree +
    //    RRT*) and fly it on the SIL desktop compute profile.
    let compute = ComputeModel::new(ComputeProfile::desktop_sil())?;
    let executor = MissionExecutor::for_variant(
        scenario,
        SystemVariant::MlsV3,
        LandingConfig::default(),
        compute,
        ExecutorConfig::default(),
        42,
    )?;
    let outcome = executor.run();

    // 3. Inspect the outcome.
    println!();
    println!("mission result      : {:?}", outcome.result);
    println!("duration            : {:.1} s", outcome.duration);
    if let Some(error) = outcome.landing_error {
        println!("landing error       : {:.2} m from the true marker", error);
    }
    if let Some(error) = outcome.mean_detection_error {
        println!("mean detection error: {:.2} m", error);
    }
    println!(
        "detections          : {} frames processed, false-negative rate {:.1}%",
        outcome.detection_stats.total_frames,
        outcome.detection_stats.false_negative_rate() * 100.0
    );
    println!(
        "planning            : {} failures, {} fallbacks, {} landing aborts",
        outcome.planning_failures, outcome.planning_fallbacks, outcome.landing_aborts
    );
    println!(
        "compute             : mean CPU {:.0}%, peak memory {:.0} MiB",
        outcome.mean_cpu * 100.0,
        outcome.peak_memory_mb
    );
    Ok(())
}
