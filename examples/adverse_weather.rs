//! Adverse weather: how fog, rain, glare and low light affect marker
//! detection (Table II's concern) and the end-to-end landing.
//!
//! ```bash
//! cargo run --release --example adverse_weather
//! ```

use mls_landing::compute::{ComputeModel, ComputeProfile};
use mls_landing::core::{ExecutorConfig, LandingConfig, MissionExecutor, SystemVariant};
use mls_landing::geom::{Pose, Vec2, Vec3};
use mls_landing::sim_world::{ScenarioConfig, ScenarioGenerator};
use mls_landing::vision::{
    Camera, ClassicalDetector, DegradationConfig, GroundScene, ImageDegrader, LearnedDetector,
    LightingCondition, MarkerDetector, MarkerDictionary, MarkerPlacement, MarkerRenderer,
    WeatherKind,
};

fn detection_sweep() {
    println!("Detection robustness sweep (marker at 10 m altitude, 1.5 m marker):");
    println!(
        "{:<12} {:<14} {:>12} {:>12}",
        "weather", "lighting", "classical", "learned"
    );
    let dictionary = MarkerDictionary::standard();
    let renderer = MarkerRenderer::new(dictionary.clone());
    let camera = Camera::downward();
    let classical = ClassicalDetector::new(dictionary.clone());
    let learned = LearnedDetector::new(dictionary);
    let scene =
        GroundScene::new().with_marker(MarkerPlacement::new(5, Vec2::new(0.4, -0.6), 1.5, 0.3));
    let pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, 10.0), 0.0);
    let frame = renderer.render(&camera, &pose, &scene);

    for weather in WeatherKind::ALL {
        for lighting in [LightingCondition::Normal, LightingCondition::LowLight] {
            let config = DegradationConfig::for_conditions(weather, lighting);
            let degraded = ImageDegrader::new(config, 3).apply(&frame);
            let hit = |d: &dyn MarkerDetector| {
                if d.detect(&degraded).iter().any(|det| det.id == 5) {
                    "detected"
                } else {
                    "MISSED"
                }
            };
            println!(
                "{:<12} {:<14} {:>12} {:>12}",
                format!("{weather:?}"),
                format!("{lighting:?}"),
                hit(&classical),
                hit(&learned)
            );
        }
    }
}

fn adverse_mission() -> Result<(), Box<dyn std::error::Error>> {
    // Find an adverse-weather scenario and fly V3 through it.
    let scenarios = ScenarioGenerator::new(ScenarioConfig {
        maps: 2,
        scenarios_per_map: 6,
        ..ScenarioConfig::default()
    })
    .generate_benchmark(55)?;
    let scenario = scenarios
        .iter()
        .find(|s| s.is_adverse())
        .expect("half of the benchmark is adverse weather");
    println!();
    println!(
        "Adverse-weather mission: `{}` ({}, GPS degradation {:.2}, wind {:.1} m/s)",
        scenario.name,
        scenario.weather.label,
        scenario.weather.gps_degradation,
        scenario.weather.nominal_wind_speed()
    );
    let compute = ComputeModel::new(ComputeProfile::desktop_sil())?;
    let executor = MissionExecutor::for_variant(
        scenario,
        SystemVariant::MlsV3,
        LandingConfig::default(),
        compute,
        ExecutorConfig::default(),
        8,
    )?;
    let outcome = executor.run();
    println!(
        "  result {:?}, landing error {:?} m, false-negative rate {:.1}%, GPS drift {:.2} m",
        outcome.result,
        outcome.landing_error.map(|e| (e * 100.0).round() / 100.0),
        outcome.detection_stats.false_negative_rate() * 100.0,
        outcome.gps_drift
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    detection_sweep();
    adverse_mission()
}
