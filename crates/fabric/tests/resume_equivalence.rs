//! Crash-safe fabric resume: a journaled distributed campaign must
//! produce byte-identical artifacts whether it runs undisturbed, loses a
//! worker to the full chaos plan (exit, stall, torn frame), or has its
//! *dispatcher* killed (simulated by truncating the journal at record
//! boundaries) and is resumed — at one worker and at two.
//!
//! The stall case is the one heartbeat reaping can never catch: the
//! worker keeps beating while its lease result never arrives, so only the
//! per-lease deadline (shrunk here to seconds) reclaims the lease.
//!
//! The tests share process-global fabric state (worker command, chaos
//! directive, lease timeout), so they serialise on a static mutex.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use mls_campaign::{CampaignRunner, CampaignSpec, FaultKind, FaultPlan, Transport};
use mls_core::SystemVariant;
use mls_trace::TracePolicy;

static FABRIC_LOCK: Mutex<()> = Mutex::new(());

/// Serialises the test, points the dispatcher at the worker binary Cargo
/// built for this run, and clears chaos and lease-timeout overrides.
fn fabric_session() -> MutexGuard<'static, ()> {
    let guard = FABRIC_LOCK.lock().unwrap_or_else(|err| err.into_inner());
    mls_fabric::install();
    mls_fabric::set_worker_command(Some(PathBuf::from(env!("CARGO_BIN_EXE_mls-fabric-worker"))));
    mls_fabric::set_chaos(None);
    mls_fabric::set_lease_timeout(None);
    guard
}

/// Stable artifact directory (uploaded by the CI workflow).
fn trace_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/test-traces")
        .join(name)
}

fn journal_path(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/test-journals");
    fs::create_dir_all(&dir).expect("journal dir");
    dir.join(format!("{name}.jsonl"))
}

/// A small campaign with enough cells to shard: 2 variants × (baseline +
/// 1 fault) = 4 cells of 2 missions each.
fn small_spec(name: &str) -> CampaignSpec {
    let mut spec = CampaignSpec::smoke();
    spec.name = name.to_string();
    spec.variants = vec![SystemVariant::MlsV1, SystemVariant::MlsV3];
    spec.faults = vec![FaultPlan::new(FaultKind::MarkerOcclusion, 0.6)];
    spec.capture = TracePolicy::FailuresOnly;
    spec.landing.mission_timeout = 120.0;
    spec.executor.max_duration = 150.0;
    spec
}

/// Reads every file under `dir` (recursively) into path-relative bytes.
fn snapshot_dir(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    if !dir.exists() {
        return files;
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        for entry in fs::read_dir(&current).expect("read trace dir") {
            let path = entry.expect("read trace dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let relative = path
                    .strip_prefix(dir)
                    .expect("trace path under root")
                    .to_string_lossy()
                    .into_owned();
                files.insert(relative, fs::read(&path).expect("read trace file"));
            }
        }
    }
    files
}

fn wipe(dir: &Path) {
    if dir.exists() {
        fs::remove_dir_all(dir).expect("wipe trace dir");
    }
}

/// Header plus the first `records` journal records, newline-terminated.
fn journal_prefix(full: &str, records: usize) -> String {
    let mut out = String::new();
    for line in full.lines().take(1 + records) {
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Runs the spec over the fabric with a journal, into `dir`.
fn run_fabric(
    spec: &CampaignSpec,
    workers: usize,
    journal: &Path,
    dir: &Path,
) -> (String, BTreeMap<String, Vec<u8>>) {
    let report = CampaignRunner::new(2)
        .with_transport(Transport::Fabric { workers })
        .with_journal(journal)
        .with_trace_dir(dir)
        .run(spec)
        .unwrap_or_else(|err| panic!("fabric run with {workers} workers failed: {err}"));
    (
        report.to_json().expect("serialise report"),
        snapshot_dir(dir),
    )
}

#[test]
fn journaled_fabric_runs_match_in_process_at_every_worker_count() {
    let _guard = fabric_session();
    let spec = small_spec("fabric-resume-equiv");
    let dir = trace_root("fabric-resume-equiv");

    wipe(&dir);
    let baseline = CampaignRunner::new(2)
        .with_trace_dir(&dir)
        .run(&spec)
        .expect("in-process run");
    let baseline = (
        baseline.to_json().expect("serialise baseline"),
        snapshot_dir(&dir),
    );

    for workers in [1, 2] {
        let journal = journal_path(&format!("fabric-resume-equiv-{workers}"));
        let _ = fs::remove_file(&journal);
        wipe(&dir);
        let fabric = run_fabric(&spec, workers, &journal, &dir);
        assert_eq!(baseline.0, fabric.0, "report diverged at {workers} workers");
        assert_eq!(baseline.1, fabric.1, "traces diverged at {workers} workers");
        assert!(
            fs::read_to_string(&journal)
                .expect("journal written")
                .lines()
                .count()
                > 1,
            "the dispatcher must journal results as they arrive"
        );
    }
}

#[test]
fn dispatcher_kill_resumes_byte_identically_from_every_boundary() {
    let _guard = fabric_session();
    let spec = small_spec("fabric-resume-boundaries");
    let dir = trace_root("fabric-resume-boundaries");
    let journal = journal_path("fabric-resume-boundaries");
    let _ = fs::remove_file(&journal);

    wipe(&dir);
    let baseline = run_fabric(&spec, 2, &journal, &dir);
    let full = fs::read_to_string(&journal).expect("read journal");
    let records = full.lines().count() - 1;
    assert!(
        records >= 2,
        "expected several journal boundaries to kill at"
    );

    for kill_at in 0..=records {
        let boundary = journal_path(&format!("fabric-resume-boundary-{kill_at}"));
        let mut prefix = journal_prefix(&full, kill_at);
        if kill_at < records {
            // kill -9 mid-write: leave the next record torn.
            let next = full.lines().nth(1 + kill_at).expect("next record");
            prefix.push_str(&next[..next.len() / 2]);
        }
        fs::write(&boundary, prefix).expect("write boundary journal");

        wipe(&dir);
        let resumed = run_fabric(&spec, 2, &boundary, &dir);
        assert_eq!(
            baseline.0, resumed.0,
            "report diverged when the dispatcher died after {kill_at} records"
        );
        assert_eq!(
            baseline.1, resumed.1,
            "traces diverged when the dispatcher died after {kill_at} records"
        );
    }
}

#[test]
fn chaos_worker_exit_leaves_the_journal_and_report_intact() {
    let _guard = fabric_session();
    let spec = small_spec("fabric-resume-chaos-exit");
    let dir = trace_root("fabric-resume-chaos-exit");

    wipe(&dir);
    let baseline = CampaignRunner::new(2)
        .with_trace_dir(&dir)
        .run(&spec)
        .expect("in-process run");
    let baseline = (
        baseline.to_json().expect("serialise baseline"),
        snapshot_dir(&dir),
    );

    let journal = journal_path("fabric-resume-chaos-exit");
    let _ = fs::remove_file(&journal);
    mls_fabric::set_chaos(Some("exit-after=1".to_string()));
    wipe(&dir);
    let chaotic = run_fabric(&spec, 2, &journal, &dir);
    mls_fabric::set_chaos(None);
    assert_eq!(baseline.0, chaotic.0, "report diverged under worker exit");
    assert_eq!(baseline.1, chaotic.1, "traces diverged under worker exit");

    // The completed journal resumes without re-flying anything.
    wipe(&dir);
    let resumed = CampaignRunner::new(2)
        .with_trace_dir(&dir)
        .resume(&journal)
        .expect("resume from the chaos run's journal");
    assert_eq!(baseline.0, resumed.to_json().expect("serialise resumed"));
    assert_eq!(baseline.1, snapshot_dir(&dir));
}

#[test]
fn stalled_worker_is_reclaimed_by_the_lease_deadline() {
    let _guard = fabric_session();
    // Short missions keep honest leases seconds long, far inside the
    // shrunk deadline below — only the stalled lease ever exceeds it.
    let mut spec = small_spec("fabric-resume-chaos-stall");
    spec.landing.mission_timeout = 40.0;
    spec.executor.max_duration = 50.0;
    let dir = trace_root("fabric-resume-chaos-stall");

    wipe(&dir);
    let baseline = CampaignRunner::new(2)
        .with_trace_dir(&dir)
        .run(&spec)
        .expect("in-process run");
    let baseline = (
        baseline.to_json().expect("serialise baseline"),
        snapshot_dir(&dir),
    );

    // Worker 0 hangs on its second lease while heartbeating: without the
    // per-lease deadline this run would block for the full default
    // timeout; with it, the lease is reassigned after 20s — well above
    // any honest debug-build lease, well below the 300s default.
    let journal = journal_path("fabric-resume-chaos-stall");
    let _ = fs::remove_file(&journal);
    mls_fabric::set_chaos(Some("stall-after=1".to_string()));
    mls_fabric::set_lease_timeout(Some(Duration::from_secs(20)));
    wipe(&dir);
    let stalled = run_fabric(&spec, 2, &journal, &dir);
    mls_fabric::set_chaos(None);
    mls_fabric::set_lease_timeout(None);
    assert_eq!(baseline.0, stalled.0, "report diverged under worker stall");
    assert_eq!(baseline.1, stalled.1, "traces diverged under worker stall");
}

#[test]
fn torn_result_frame_is_death_not_corruption() {
    let _guard = fabric_session();
    let spec = small_spec("fabric-resume-chaos-torn");
    let dir = trace_root("fabric-resume-chaos-torn");

    wipe(&dir);
    let baseline = CampaignRunner::new(2)
        .with_trace_dir(&dir)
        .run(&spec)
        .expect("in-process run");
    let baseline = (
        baseline.to_json().expect("serialise baseline"),
        snapshot_dir(&dir),
    );

    let journal = journal_path("fabric-resume-chaos-torn");
    let _ = fs::remove_file(&journal);
    mls_fabric::set_chaos(Some("corrupt-frame-after=1".to_string()));
    wipe(&dir);
    let torn = run_fabric(&spec, 2, &journal, &dir);
    mls_fabric::set_chaos(None);
    assert_eq!(baseline.0, torn.0, "report diverged under a torn frame");
    assert_eq!(baseline.1, torn.1, "traces diverged under a torn frame");
}
