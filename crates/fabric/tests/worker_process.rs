//! Protocol conformance of the real worker binary, driven over pipes.
//!
//! These tests speak the frame protocol to a spawned `mls-fabric-worker`
//! process exactly as the dispatcher does, and pin the failure modes the
//! fabric's safety story rests on: a version or config-hash mismatch is a
//! clean error frame plus a handshake exit code (never a hang or a
//! mis-parse), and a truncated frame kills the stream rather than
//! blocking the worker forever.

use std::io::{BufReader, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

use mls_campaign::CampaignSpec;
use mls_fabric::protocol::{self, PROTOCOL_VERSION};
use serde_json::Value;

fn spawn_worker() -> (Child, ChildStdin, BufReader<ChildStdout>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mls-fabric-worker"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .env_remove("MLS_FABRIC_CHAOS")
        .spawn()
        .expect("spawn worker binary");
    let stdin = child.stdin.take().expect("worker stdin");
    let stdout = BufReader::new(child.stdout.take().expect("worker stdout"));
    (child, stdin, stdout)
}

fn recorder() -> Value {
    serde_json::to_value(&mls_trace::RecorderConfig::default())
}

/// Reads frames until one that is not a heartbeat.
fn next_non_heartbeat(stdout: &mut BufReader<ChildStdout>) -> Option<Value> {
    while let Some(frame) = protocol::read_frame(stdout).expect("read worker frame") {
        if protocol::message_type(&frame) != Some("heartbeat") {
            return Some(frame);
        }
    }
    None
}

#[test]
fn version_mismatch_yields_error_frame_and_handshake_exit() {
    let (mut child, mut stdin, mut stdout) = spawn_worker();
    let mut init = protocol::init_message(0, 1, None, None, &recorder());
    if let Value::Object(fields) = &mut init {
        for (key, value) in fields.iter_mut() {
            if key == "protocol" {
                *value = protocol::uint(PROTOCOL_VERSION + 1);
            }
        }
    }
    protocol::write_frame(&mut stdin, &init).expect("send stale init");

    let reply = next_non_heartbeat(&mut stdout).expect("worker must reply before exiting");
    assert_eq!(protocol::message_type(&reply), Some("error"));
    let reason = reply.get("reason").and_then(Value::as_str).unwrap_or("");
    assert!(
        reason.contains("protocol version mismatch"),
        "unexpected reason: {reason}"
    );
    let status = child.wait().expect("worker exit status");
    assert_eq!(status.code(), Some(2), "handshake failures exit 2");
}

#[test]
fn config_hash_mismatch_yields_error_frame_and_handshake_exit() {
    let (mut child, mut stdin, mut stdout) = spawn_worker();
    let spec = CampaignSpec::smoke();
    let json = spec.to_json().expect("spec json");
    let drifted = spec.config_hash().expect("config hash") ^ 0xbad;
    let init = protocol::init_message(0, 1, Some(&json), Some(drifted), &recorder());
    protocol::write_frame(&mut stdin, &init).expect("send drifted init");

    let reply = next_non_heartbeat(&mut stdout).expect("worker must reply before exiting");
    assert_eq!(protocol::message_type(&reply), Some("error"));
    let reason = reply.get("reason").and_then(Value::as_str).unwrap_or("");
    assert!(
        reason.contains("config hash mismatch"),
        "unexpected reason: {reason}"
    );
    let status = child.wait().expect("worker exit status");
    assert_eq!(status.code(), Some(2), "handshake failures exit 2");
}

#[test]
fn truncated_frame_ends_the_worker_instead_of_hanging() {
    let (mut child, mut stdin, mut stdout) = spawn_worker();
    let init = protocol::init_message(0, 1, None, None, &recorder());
    protocol::write_frame(&mut stdin, &init).expect("send init");
    let ready = next_non_heartbeat(&mut stdout).expect("handshake reply");
    protocol::validate_ready(&ready, None).expect("clean handshake");

    // A frame that promises more bytes than it delivers, then EOF — the
    // dispatcher dying mid-write. The worker must exit with the stream
    // error code, not block on the missing bytes.
    stdin
        .write_all(b"MLSF 400\n{\"type\":\"lease\"")
        .expect("send truncated frame");
    drop(stdin);
    let status = child.wait().expect("worker exit status");
    assert_eq!(status.code(), Some(3), "mid-frame truncation exits 3");
}

#[test]
fn clean_eof_before_init_is_a_quiet_exit() {
    let (mut child, stdin, mut stdout) = spawn_worker();
    drop(stdin);
    assert!(next_non_heartbeat(&mut stdout).is_none());
    let status = child.wait().expect("worker exit status");
    assert_eq!(status.code(), Some(0), "clean EOF exits 0");
}
