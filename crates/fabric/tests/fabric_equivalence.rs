//! Distributed-vs-in-process equivalence: the fabric is a pure transport.
//!
//! Over a smoke-scale campaign with trace capture, the fabric must
//! produce a byte-identical `CampaignReport` (pretty JSON) *and*
//! byte-identical persisted trace files at every worker count — including
//! a chaos schedule where worker 0 is killed mid-campaign (hard
//! `process::exit` on its second lease, the deterministic stand-in for
//! `kill -9`) and its leases are reassigned. A falsification search over
//! a small fault space must likewise evaluate the identical probe
//! sequence and find the identical failing point.
//!
//! Every fabric run writes into the *same* trace directory the in-process
//! run used (snapshotted first, then wiped), so even the trace *paths*
//! inside the report must match byte for byte.
//!
//! The tests share process-global fabric state (worker command, chaos
//! directive, obs counters), so they serialise on a static mutex.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

use mls_campaign::{
    CampaignRunner, CampaignSpec, FalsificationConfig, FalsificationSearch, FaultAxis, FaultKind,
    FaultPlan, FaultSpace, GridRefinementConfig, Searcher, Transport,
};
use mls_core::SystemVariant;
use mls_trace::{TraceCorpus, TracePolicy, CORPUS_INDEX_FILE};

static FABRIC_LOCK: Mutex<()> = Mutex::new(());

/// Serialises the test and points the dispatcher at the worker binary
/// Cargo built for this test run.
fn fabric_session() -> MutexGuard<'static, ()> {
    let guard = FABRIC_LOCK.lock().unwrap_or_else(|err| err.into_inner());
    mls_fabric::install();
    mls_fabric::set_worker_command(Some(PathBuf::from(env!("CARGO_BIN_EXE_mls-fabric-worker"))));
    mls_fabric::set_chaos(None);
    guard
}

/// Stable artifact directory (uploaded by the CI workflow).
fn trace_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/test-traces")
        .join(name)
}

/// A small campaign with enough cells to shard and enough failures to
/// capture traces: 2 variants × (baseline + 2 faults) = 6 cells.
fn small_spec(name: &str) -> CampaignSpec {
    let mut spec = CampaignSpec::smoke();
    spec.name = name.to_string();
    spec.variants = vec![SystemVariant::MlsV1, SystemVariant::MlsV3];
    spec.faults = vec![
        FaultPlan::new(FaultKind::MarkerOcclusion, 0.6),
        FaultPlan::new(FaultKind::GpsBias, 0.6),
    ];
    spec.capture = TracePolicy::FailuresOnly;
    spec.landing.mission_timeout = 120.0;
    spec.executor.max_duration = 150.0;
    spec
}

/// Reads every file under `dir` (recursively) into path-relative bytes.
fn snapshot_dir(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    if !dir.exists() {
        return files;
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        for entry in fs::read_dir(&current).expect("read trace dir") {
            let path = entry.expect("read trace dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let relative = path
                    .strip_prefix(dir)
                    .expect("trace path under root")
                    .to_string_lossy()
                    .into_owned();
                files.insert(relative, fs::read(&path).expect("read trace file"));
            }
        }
    }
    files
}

fn wipe(dir: &Path) {
    if dir.exists() {
        fs::remove_dir_all(dir).expect("wipe trace dir");
    }
}

/// Runs `spec` on the given transport, returning the pretty report JSON
/// and a byte snapshot of the persisted traces.
fn run_campaign(
    spec: &CampaignSpec,
    transport: Transport,
    trace_dir: &Path,
) -> (String, BTreeMap<String, Vec<u8>>) {
    let report = CampaignRunner::new(2)
        .with_transport(transport)
        .with_trace_dir(trace_dir)
        .run(spec)
        .unwrap_or_else(|err| panic!("campaign on {transport:?} failed: {err}"));
    let json = report.to_json().expect("serialise report");
    (json, snapshot_dir(trace_dir))
}

fn assert_identical(
    baseline: &(String, BTreeMap<String, Vec<u8>>),
    candidate: &(String, BTreeMap<String, Vec<u8>>),
    what: &str,
) {
    assert_eq!(baseline.0, candidate.0, "{what}: report JSON diverged");
    assert_eq!(
        baseline.1.keys().collect::<Vec<_>>(),
        candidate.1.keys().collect::<Vec<_>>(),
        "{what}: trace file sets diverged"
    );
    for (path, bytes) in &baseline.1 {
        assert_eq!(
            bytes, &candidate.1[path],
            "{what}: trace file {path} diverged"
        );
    }
    assert!(
        !baseline.1.is_empty(),
        "{what}: expected captured traces — the spec must produce failures"
    );
    // The corpus index assembled from the slots is part of the byte-identity
    // bar: its presence here means the per-file loop above compared it.
    assert!(
        baseline.1.contains_key(CORPUS_INDEX_FILE),
        "{what}: the trace directory must carry a corpus index"
    );
}

#[test]
fn fabric_campaign_is_byte_identical_at_every_worker_count() {
    let _guard = fabric_session();
    let spec = small_spec("fabric-equivalence");
    let dir = trace_root("fabric-equivalence");

    wipe(&dir);
    let baseline = run_campaign(&spec, Transport::InProcess, &dir);

    for workers in [1usize, 2, 4] {
        wipe(&dir);
        let distributed = run_campaign(&spec, Transport::Fabric { workers }, &dir);
        assert_identical(&baseline, &distributed, &format!("{workers} workers"));
    }
}

#[test]
fn fabric_campaign_survives_a_chaos_killed_worker() {
    let _guard = fabric_session();
    let spec = small_spec("fabric-chaos");
    let dir = trace_root("fabric-chaos");

    wipe(&dir);
    let baseline = run_campaign(&spec, Transport::InProcess, &dir);

    // Worker 0's first incarnation dies on its second lease — after one
    // completed job, mid-campaign — and is respawned without the
    // directive. The reassigned leases must not change a byte.
    mls_fabric::set_chaos(Some("exit-after=1".to_string()));
    wipe(&dir);
    let survived = run_campaign(&spec, Transport::Fabric { workers: 2 }, &dir);
    mls_fabric::set_chaos(None);
    assert_identical(&baseline, &survived, "2 workers with chaos kill");
}

#[test]
fn fabric_corpus_index_is_byte_identical_and_queryable() {
    let _guard = fabric_session();
    let spec = small_spec("fabric-corpus");
    let dir = trace_root("fabric-corpus");

    wipe(&dir);
    let report = CampaignRunner::new(2)
        .with_trace_dir(&dir)
        .run(&spec)
        .expect("in-process campaign");
    let baseline_index = fs::read(dir.join(CORPUS_INDEX_FILE)).expect("in-process corpus index");

    // The in-process index is consistent with the report and queryable.
    let corpus = TraceCorpus::open(&dir).expect("open corpus");
    assert_eq!(corpus.len(), report.traces.len());
    assert!(!corpus.is_empty());
    assert_eq!(
        corpus.query().verdict("success").count(),
        0,
        "a FailuresOnly corpus indexes no successful missions"
    );
    let by_class = corpus.query().group_count(|record| record.class.clone());
    assert_eq!(by_class.values().sum::<usize>(), corpus.len());

    // A fabric run into the same directory — including one whose worker 0
    // is chaos-killed mid-campaign — regenerates the index byte for byte.
    for (label, chaos) in [
        ("2 workers", None),
        ("2 workers + chaos", Some("exit-after=1")),
    ] {
        mls_fabric::set_chaos(chaos.map(str::to_string));
        wipe(&dir);
        run_campaign(&spec, Transport::Fabric { workers: 2 }, &dir);
        mls_fabric::set_chaos(None);
        let fabric_index = fs::read(dir.join(CORPUS_INDEX_FILE)).expect("fabric corpus index");
        assert_eq!(
            baseline_index, fabric_index,
            "{label}: corpus index diverged from the in-process run"
        );
    }
}

#[test]
fn fabric_probe_search_matches_in_process() {
    let _guard = fabric_session();
    let config = FalsificationConfig {
        seed: 97,
        maps: 1,
        scenarios_per_map: 2,
        repeats: 1,
        failure_threshold: 0.75,
        minimizer_passes: 1,
        minimizer_bisections: 1,
        probe_early_stop: true,
        ..FalsificationConfig::default()
    };
    let space = FaultSpace::new(
        "fabric-equiv-space",
        vec![
            FaultAxis::full(FaultKind::MarkerOcclusion),
            FaultAxis::new(FaultKind::GpsBias, 0.15, 1.0),
        ],
    );
    let searcher = Searcher::GridRefinement(GridRefinementConfig {
        resolution: 2,
        rounds: 0,
    });

    let run = |transport: Transport| {
        FalsificationSearch::new(config.clone(), 2)
            .with_transport(transport)
            .search_space(SystemVariant::MlsV1, &space, &searcher)
            .unwrap_or_else(|err| panic!("search on {transport:?} failed: {err}"))
    };
    let in_process = run(Transport::InProcess);
    let fabric = run(Transport::Fabric { workers: 2 });

    assert_eq!(
        in_process.probes, fabric.probes,
        "probe logs diverged (points or rates)"
    );
    assert_eq!(
        in_process.baseline_success_rate, fabric.baseline_success_rate,
        "baselines diverged"
    );
    assert_eq!(
        in_process.failing_point, fabric.failing_point,
        "failing points diverged"
    );
    assert_eq!(
        in_process.missions_flown, fabric.missions_flown,
        "mission accounting diverged"
    );
}
