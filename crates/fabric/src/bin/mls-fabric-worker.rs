//! The dedicated fabric worker binary: a frame loop over stdin/stdout.
//!
//! Spawned by the dispatcher (directly, or selected via
//! `MLS_FABRIC_WORKER_BIN`); never run by hand. All protocol traffic is
//! on stdout — nothing else may print there.

fn main() {
    std::process::exit(mls_fabric::run_worker_stdio());
}
