//! mls-fabric: a multi-process campaign fabric.
//!
//! Shards [`mls_campaign`] campaigns (and batched falsification probe
//! generations) over worker processes spawned from the same binary,
//! speaking a versioned length-delimited JSONL protocol over
//! stdin/stdout pipes. The dispatcher leases whole cells (or probes) to
//! workers, tracks their health through heartbeats, reassigns orphaned
//! leases deterministically when a worker dies, and merges results
//! through [`mls_campaign::CampaignRunner::assemble_report`] — producing
//! a [`mls_campaign::CampaignReport`], trace files and falsification
//! results **byte-identical** to a single-process run at any worker
//! count, including crash-and-retry schedules.
//!
//! ## Wiring it up
//!
//! ```no_run
//! mls_fabric::install(); // register the backend once per process
//! let report = mls_campaign::CampaignRunner::new(4)
//!     .with_transport(mls_campaign::Transport::Fabric { workers: 2 })
//!     .run(&mls_campaign::CampaignSpec::smoke())
//!     .unwrap();
//! # let _ = report;
//! ```
//!
//! Binaries that spawn workers by re-executing themselves must call
//! [`maybe_worker`] first thing in `main`; alternatively point the
//! dispatcher at the dedicated `mls-fabric-worker` binary via
//! [`set_worker_command`] or `MLS_FABRIC_WORKER_BIN`.

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

use mls_campaign::{
    CampaignError, CampaignReport, CampaignRunner, CampaignSpec, DistributedBackend, ProbeRate,
};
use mls_sim_world::Scenario;
use std::sync::Arc;

pub mod dispatcher;
pub mod health;
pub mod protocol;
pub mod worker;

pub use dispatcher::DispatcherConfig;
pub use protocol::PROTOCOL_VERSION;

/// The fabric backend the campaign runner dispatches to when its
/// transport is [`mls_campaign::Transport::Fabric`].
pub struct FabricBackend;

impl DistributedBackend for FabricBackend {
    fn run_campaign(
        &self,
        runner: &CampaignRunner,
        workers: usize,
        spec: &CampaignSpec,
        suites: &[Arc<Vec<Scenario>>],
    ) -> Result<CampaignReport, CampaignError> {
        dispatcher::run_campaign(runner, workers, spec, suites)
    }

    fn run_probes(
        &self,
        runner: &CampaignRunner,
        workers: usize,
        specs: &[CampaignSpec],
        scenarios: &Arc<Vec<Scenario>>,
    ) -> Result<Vec<ProbeRate>, CampaignError> {
        dispatcher::run_probes(runner, workers, specs, scenarios)
    }
}

/// Registers the fabric as the process-wide distributed backend.
/// Idempotent; returns `false` when a backend was already installed.
pub fn install() -> bool {
    mls_campaign::transport::install_backend(Box::new(FabricBackend))
}

/// Runs the worker frame loop over stdio and exits — but only when the
/// process was spawned in worker mode (`MLS_FABRIC_WORKER=1`). Binaries
/// that let the dispatcher re-execute them must call this first thing in
/// `main`, before any argument parsing or output.
pub fn maybe_worker() {
    if std::env::var(dispatcher::WORKER_MODE_ENV).as_deref() != Ok("1") {
        return;
    }
    std::process::exit(run_worker_stdio());
}

/// Runs the worker frame loop over this process's stdin/stdout and
/// returns the exit code (the `mls-fabric-worker` binary's `main`).
pub fn run_worker_stdio() -> i32 {
    let chaos = std::env::var(dispatcher::CHAOS_ENV)
        .ok()
        .and_then(|directive| worker::parse_chaos(&directive));
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    worker::run(stdin.lock(), stdout, chaos)
}

/// Process-wide dispatcher overrides, installed by tests and harnesses
/// before building a [`DispatcherConfig`].
struct Overrides {
    worker_command: Option<PathBuf>,
    chaos: Option<String>,
    lease_timeout: Option<Duration>,
}

static OVERRIDES: Mutex<Overrides> = Mutex::new(Overrides {
    worker_command: None,
    chaos: None,
    lease_timeout: None,
});

/// Pins the worker executable every subsequent dispatcher spawn uses
/// (tests point this at the `mls-fabric-worker` test binary). `None`
/// restores the default resolution (env var, then current executable).
pub fn set_worker_command(path: Option<PathBuf>) {
    OVERRIDES.lock().expect("overrides poisoned").worker_command = path;
}

/// Installs a chaos directive (e.g. `exit-after=1`) injected into worker
/// 0's first incarnation of every subsequent dispatch. `None` clears it.
pub fn set_chaos(directive: Option<String>) {
    OVERRIDES.lock().expect("overrides poisoned").chaos = directive;
}

pub(crate) fn worker_command_override() -> Option<PathBuf> {
    OVERRIDES
        .lock()
        .expect("overrides poisoned")
        .worker_command
        .clone()
}

/// Overrides the per-lease deadline of every subsequent dispatch — the
/// age at which one unanswered lease marks its (still-heartbeating)
/// worker stalled and reassigns the lease. Chaos tests shrink this to
/// catch `stall-after` workers quickly. `None` restores the default
/// resolution (`MLS_FABRIC_LEASE_TIMEOUT_MS`, then the built-in default).
pub fn set_lease_timeout(timeout: Option<Duration>) {
    OVERRIDES.lock().expect("overrides poisoned").lease_timeout = timeout;
}

pub(crate) fn chaos_override() -> Option<String> {
    OVERRIDES.lock().expect("overrides poisoned").chaos.clone()
}

pub(crate) fn lease_timeout_override() -> Option<Duration> {
    OVERRIDES.lock().expect("overrides poisoned").lease_timeout
}
