//! The sharding dispatcher: spawns worker processes, leases jobs, tracks
//! health, reassigns orphaned leases, and merges results into the exact
//! artifacts the in-process runner would have produced.
//!
//! ## Determinism argument
//!
//! The dispatcher never aggregates anything itself. It collects, per job
//! (one whole campaign cell or one probe spec), the bit-exact mission
//! slots the worker flew, concatenates them in *job order* — regardless
//! of which worker produced them, in which order, or after how many
//! crashes — and hands the slot vector to
//! [`CampaignRunner::assemble_report`], the same function the in-process
//! path ends in. A lease is the unit of reassignment and whole jobs are
//! pure functions of `(spec, cell, seed range)`, so a re-flown lease
//! yields byte-identical slots and a crash-and-retry schedule cannot
//! change the report.

use std::collections::VecDeque;
use std::io::BufReader;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mls_campaign::{
    probe_rate_from_outcomes, wire, CampaignError, CampaignReport, CampaignRunner, CampaignSpec,
    Journal, MissionSlot, ProbeRate,
};
use mls_obs::FieldValue;
use mls_sim_world::Scenario;
use serde_json::Value;

use crate::health::{WorkerHealth, WorkerPhase};
use crate::protocol;

/// Environment variable that turns a spawned copy of the current binary
/// into a worker (checked by [`crate::maybe_worker`]).
pub const WORKER_MODE_ENV: &str = "MLS_FABRIC_WORKER";
/// Environment variable carrying the worker's slot id.
pub const WORKER_ID_ENV: &str = "MLS_FABRIC_WORKER_ID";
/// Environment variable selecting an explicit worker executable.
pub const WORKER_BIN_ENV: &str = "MLS_FABRIC_WORKER_BIN";
/// Environment variable carrying a chaos directive (see
/// [`crate::worker::parse_chaos`]).
pub const CHAOS_ENV: &str = "MLS_FABRIC_CHAOS";
/// Environment variable overriding the per-lease deadline, in
/// milliseconds (see [`DispatcherConfig::lease_timeout`]).
pub const LEASE_TIMEOUT_ENV: &str = "MLS_FABRIC_LEASE_TIMEOUT_MS";

/// Dispatcher tuning. [`DispatcherConfig::new`] gives production
/// defaults; tests tighten the timeout and budgets.
#[derive(Debug, Clone)]
pub struct DispatcherConfig {
    /// Worker processes to spawn (at least 1).
    pub workers: usize,
    /// Worker executable. `None` re-executes the current binary with
    /// [`WORKER_MODE_ENV`] set, which requires `main` to call
    /// [`crate::maybe_worker`] first.
    pub worker_command: Option<PathBuf>,
    /// Silence (no frame of any kind) after which a worker is declared
    /// dead and its leases reassigned.
    pub heartbeat_timeout: Duration,
    /// Age after which one unanswered lease marks its worker *stalled*
    /// and reassigns the lease — even while heartbeats keep arriving,
    /// the failure mode heartbeat reaping can never see. Must comfortably
    /// exceed the longest honest lease.
    pub lease_timeout: Duration,
    /// Respawns allowed per worker slot before it is retired.
    pub respawn_budget: usize,
    /// Outstanding leases allowed per worker.
    pub max_inflight: usize,
    /// Chaos directive injected into worker 0's *first* incarnation only,
    /// so a chaos run still terminates.
    pub chaos: Option<String>,
}

impl DispatcherConfig {
    /// Production defaults for `workers` workers, honouring the
    /// process-wide overrides installed via [`crate::set_worker_command`]
    /// / [`crate::set_chaos`] and the [`WORKER_BIN_ENV`] / [`CHAOS_ENV`]
    /// environment.
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            worker_command: crate::worker_command_override()
                .or_else(|| std::env::var_os(WORKER_BIN_ENV).map(PathBuf::from)),
            heartbeat_timeout: Duration::from_secs(30),
            lease_timeout: crate::lease_timeout_override()
                .or_else(|| {
                    std::env::var(LEASE_TIMEOUT_ENV)
                        .ok()
                        .and_then(|ms| ms.parse().ok())
                        .map(Duration::from_millis)
                })
                .unwrap_or(Duration::from_secs(300)),
            respawn_budget: 2,
            max_inflight: 2,
            chaos: crate::chaos_override().or_else(|| std::env::var(CHAOS_ENV).ok()),
        }
    }
}

/// One unit of leased work.
#[derive(Debug, Clone)]
enum Lease {
    /// Missions `start..end` of campaign cell `cell`.
    Cell {
        cell: usize,
        start: usize,
        end: usize,
    },
    /// One single-cell probe spec, shipped inline, with its config hash
    /// (the key its outcomes are journaled under).
    Probe { spec_json: Arc<String>, hash: u64 },
}

/// One completed job's payload.
enum Payload {
    Slots(Vec<MissionSlot>),
    Outcomes(Vec<Option<bool>>),
}

/// What the reader threads feed the event loop.
enum Event {
    /// A frame from worker `slot`, incarnation `incarnation`.
    Frame {
        slot: usize,
        incarnation: usize,
        frame: Value,
    },
    /// Worker `slot`'s incarnation `incarnation` reached end of stream
    /// (clean exit, crash, or kill — indistinguishable on purpose).
    Gone { slot: usize, incarnation: usize },
}

/// A live worker process handle.
struct WorkerProcess {
    child: Child,
    stdin: ChildStdin,
}

fn distributed(reason: impl Into<String>) -> CampaignError {
    CampaignError::Distributed(reason.into())
}

/// Runs a full campaign over the fabric. Suites must be derivable from
/// the spec (workers regenerate them locally); when the caller supplied
/// hand-edited suites the dispatcher falls back to in-process execution
/// rather than silently flying different scenarios.
pub fn run_campaign(
    runner: &CampaignRunner,
    workers: usize,
    spec: &CampaignSpec,
    suites: &[Arc<Vec<Scenario>>],
) -> Result<CampaignReport, CampaignError> {
    let regenerated = runner.suites_for(spec)?;
    let derivable = regenerated.len() == suites.len()
        && regenerated
            .iter()
            .zip(suites)
            .all(|(ours, theirs)| Arc::ptr_eq(ours, theirs) || **ours == **theirs);
    let cells = spec.cells();
    let missions_per_cell = spec.missions_per_cell();
    if !derivable {
        if runner.journal_handle().is_some() {
            return Err(CampaignError::Journal(
                "campaign journaling requires spec-derivable suites; the fabric fallback \
                 for hand-edited suites cannot key journal records"
                    .to_string(),
            ));
        }
        mls_obs::event(
            "fabric_fallback",
            &[(
                "reason",
                FieldValue::Str("suites not derivable from spec".to_string()),
            )],
        );
        let mut slots = Vec::with_capacity(cells.len() * missions_per_cell);
        for cell in 0..cells.len() {
            slots.extend(runner.fly_cell_range(spec, suites, cell, 0, missions_per_cell)?);
        }
        return runner.assemble_report(spec, slots);
    }

    let spec_json = spec.to_json()?;
    let config_hash = spec.config_hash()?;
    let journal = runner.campaign_journal(spec)?;

    // With a journal, each cell's lease starts at its first mission the
    // journal does not already hold: a fully recovered cell never leaves
    // the dispatcher, a partially recovered one leases only its tail, and
    // the recovered prefix rejoins at merge time. assemble_report then
    // re-decides early stopping over the full slot vector, so the split
    // between recovered and re-flown missions cannot change the report.
    let mut leases = Vec::with_capacity(cells.len());
    let mut recovered: Vec<Option<Payload>> = Vec::with_capacity(cells.len());
    let mut starts = vec![0usize; cells.len()];
    for (cell, start_slot) in starts.iter_mut().enumerate() {
        let base = cell * missions_per_cell;
        let start = match &journal {
            Some(journal) => (0..missions_per_cell)
                .find(|within| journal.recovered_slot(config_hash, base + within).is_none())
                .unwrap_or(missions_per_cell),
            None => 0,
        };
        *start_slot = start;
        if start == missions_per_cell {
            let journal = journal.as_ref().expect("full recovery implies a journal");
            let cell_slots = (0..missions_per_cell)
                .map(|within| {
                    wire::slot_from_value(
                        journal
                            .recovered_slot(config_hash, base + within)
                            .expect("scanned as present above"),
                    )
                })
                .collect::<Result<Vec<_>, _>>()?;
            recovered.push(Some(Payload::Slots(cell_slots)));
        } else {
            recovered.push(None);
        }
        leases.push(Lease::Cell {
            cell,
            start,
            end: missions_per_cell,
        });
    }
    let prefilled = recovered.iter().filter(|slot| slot.is_some()).count();
    if prefilled > 0 {
        mls_obs::counter("mls_fabric_journal_recovered_leases_total").add(prefilled as u64);
    }

    let payloads = if recovered.iter().all(Option::is_some) {
        // Every cell came back from the journal: no worker pool needed.
        recovered
    } else {
        Session {
            runner,
            config: DispatcherConfig::new(workers),
            campaign: Some((spec_json, config_hash)),
            journal: journal.clone(),
            missions_per_cell,
            leases,
            recovered,
        }
        .run()?
    };
    let mut slots = Vec::with_capacity(cells.len() * missions_per_cell);
    for (cell, payload) in payloads.into_iter().enumerate() {
        match payload {
            Some(Payload::Slots(cell_slots)) => {
                let prefix = starts[cell];
                if prefix > 0 && prefix < missions_per_cell {
                    // Partial lease: the worker flew only the tail; the
                    // prefix rejoins from the journal here, in job order.
                    let journal = journal
                        .as_ref()
                        .expect("a recovered prefix implies a journal");
                    let base = cell * missions_per_cell;
                    for within in 0..prefix {
                        slots.push(wire::slot_from_value(
                            journal
                                .recovered_slot(config_hash, base + within)
                                .expect("scanned as present above"),
                        )?);
                    }
                }
                slots.extend(cell_slots);
            }
            Some(Payload::Outcomes(_)) => {
                return Err(distributed(
                    "worker returned probe outcomes for a cell lease",
                ))
            }
            None => return Err(distributed("a cell lease finished without a payload")),
        }
    }
    runner.assemble_report(spec, slots)
}

/// Evaluates a batch of single-cell probe specs over the fabric.
pub fn run_probes(
    runner: &CampaignRunner,
    workers: usize,
    specs: &[CampaignSpec],
    scenarios: &Arc<Vec<Scenario>>,
) -> Result<Vec<ProbeRate>, CampaignError> {
    let missions = CampaignRunner::validate_probe_specs(specs, scenarios)?;
    if specs.is_empty() {
        return Ok(Vec::new());
    }
    // Workers regenerate each probe suite from its inline spec; when the
    // shared suite is not what the first spec derives, fall back.
    let derivable = {
        let regenerated = runner.generate_scenarios(&specs[0])?;
        Arc::ptr_eq(&regenerated, scenarios) || *regenerated == **scenarios
    };
    if !derivable {
        if runner.journal_handle().is_some() {
            return Err(CampaignError::Journal(
                "probe journaling requires spec-derivable suites; the fabric fallback \
                 for hand-edited suites cannot key journal records"
                    .to_string(),
            ));
        }
        mls_obs::event(
            "fabric_fallback",
            &[(
                "reason",
                FieldValue::Str("probe suite not derivable from spec".to_string()),
            )],
        );
        return specs
            .iter()
            .map(|spec| {
                let outcomes = runner.fly_probe_outcomes(spec, scenarios.clone())?;
                Ok(probe_rate_from_outcomes(
                    spec.probe_early_stop,
                    &outcomes,
                    missions,
                ))
            })
            .collect();
    }

    let journal = runner.probe_journal()?;
    let mut leases = Vec::with_capacity(specs.len());
    let mut recovered: Vec<Option<Payload>> = Vec::with_capacity(specs.len());
    for spec in specs {
        let spec_json = spec.to_json()?;
        let hash = mls_trace::config_hash(&spec_json);
        let prefill = match &journal {
            Some(journal) => match journal.recovered_probe(hash) {
                Some(outcomes) if outcomes.len() != missions => {
                    return Err(CampaignError::Journal(format!(
                        "journaled probe {hash:#x} holds {} outcomes but the spec plans \
                         {missions} missions — the journal was written by a different plan",
                        outcomes.len(),
                    )));
                }
                Some(outcomes) => Some(Payload::Outcomes(outcomes.to_vec())),
                None => None,
            },
            None => None,
        };
        recovered.push(prefill);
        leases.push(Lease::Probe {
            spec_json: Arc::new(spec_json),
            hash,
        });
    }
    let prefilled = recovered.iter().filter(|slot| slot.is_some()).count();
    if prefilled > 0 {
        mls_obs::counter("mls_fabric_journal_recovered_leases_total").add(prefilled as u64);
    }

    let payloads = if recovered.iter().all(Option::is_some) {
        // Every probe came back from the journal: no worker pool needed.
        recovered
    } else {
        Session {
            runner,
            config: DispatcherConfig::new(workers),
            campaign: None,
            journal,
            missions_per_cell: 0,
            leases,
            recovered,
        }
        .run()?
    };
    payloads
        .into_iter()
        .zip(specs)
        .map(|(payload, spec)| match payload {
            Some(Payload::Outcomes(outcomes)) => Ok(probe_rate_from_outcomes(
                spec.probe_early_stop,
                &outcomes,
                missions,
            )),
            Some(Payload::Slots(_)) => {
                Err(distributed("worker returned cell slots for a probe lease"))
            }
            None => Err(distributed("a probe lease finished without a payload")),
        })
        .collect()
}

/// One dispatch session: a job list executed over a worker pool.
struct Session<'a> {
    runner: &'a CampaignRunner,
    config: DispatcherConfig,
    /// `Some((spec_json, config_hash))` for campaign sessions; probe
    /// sessions initialise workers without a pinned spec.
    campaign: Option<(String, u64)>,
    /// The write-ahead result journal, when the runner carries one.
    /// Results are appended as they arrive from workers — before the
    /// session completes — so a killed dispatcher resumes mid-queue.
    journal: Option<Arc<Journal>>,
    /// Mission count per cell (campaign sessions; 0 for probe sessions),
    /// for mapping a lease's slots back to journal mission indices.
    missions_per_cell: usize,
    leases: Vec<Lease>,
    /// Journal-recovered payloads, 1:1 with `leases`; recovered jobs are
    /// never assigned to a worker.
    recovered: Vec<Option<Payload>>,
}

impl Session<'_> {
    fn run(mut self) -> Result<Vec<Option<Payload>>, CampaignError> {
        let recovered = std::mem::take(&mut self.recovered);
        let mut loop_state = EventLoop::start(&self, recovered)?;
        let result = loop_state.drive(&self);
        loop_state.shutdown(result.is_ok());
        result
    }

    /// Worker thread budget: the runner's pool split across workers.
    fn threads_per_worker(&self) -> usize {
        self.runner.threads().div_ceil(self.config.workers).max(1)
    }

    fn spawn_worker(
        &self,
        slot: usize,
        incarnation: usize,
        events: &Sender<Event>,
    ) -> Result<WorkerProcess, CampaignError> {
        let mut command = match &self.config.worker_command {
            Some(path) => Command::new(path),
            None => {
                let exe = std::env::current_exe().map_err(|err| {
                    distributed(format!("cannot resolve the current executable: {err}"))
                })?;
                Command::new(exe)
            }
        };
        command
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .env(WORKER_MODE_ENV, "1")
            .env(WORKER_ID_ENV, slot.to_string())
            // Worker obs artifacts get a per-worker suffix so a merged
            // artifact directory stays collision-free (satellite: the
            // obs crate reads MLS_OBS_TAG).
            .env("MLS_OBS_TAG", format!("worker-{slot}"));
        // Chaos is injected into worker 0's first incarnation only; every
        // other process must not inherit the directive from our own env.
        if incarnation == 0 && slot == 0 {
            if let Some(directive) = &self.config.chaos {
                command.env(CHAOS_ENV, directive);
            } else {
                command.env_remove(CHAOS_ENV);
            }
        } else {
            command.env_remove(CHAOS_ENV);
        }
        let mut child = command
            .spawn()
            .map_err(|err| distributed(format!("failed to spawn worker {slot}: {err}")))?;
        let stdout = child
            .stdout
            .take()
            .ok_or_else(|| distributed("worker stdout pipe missing"))?;
        let mut stdin = child
            .stdin
            .take()
            .ok_or_else(|| distributed("worker stdin pipe missing"))?;

        // Reader thread: frames → events, EOF → Gone. The thread owns the
        // pipe and dies with it; stale incarnations are filtered by the
        // event loop via the incarnation tag.
        let tx = events.clone();
        std::thread::spawn(move || {
            let mut reader = BufReader::new(stdout);
            loop {
                match protocol::read_frame(&mut reader) {
                    Ok(Some(frame)) => {
                        if tx
                            .send(Event::Frame {
                                slot,
                                incarnation,
                                frame,
                            })
                            .is_err()
                        {
                            return;
                        }
                    }
                    Ok(None) | Err(_) => {
                        let _ = tx.send(Event::Gone { slot, incarnation });
                        return;
                    }
                }
            }
        });

        let recorder = serde_json::to_value(&self.runner.recorder_config());
        let init = protocol::init_message(
            slot,
            self.threads_per_worker(),
            self.campaign.as_ref().map(|(json, _)| json.as_str()),
            self.campaign.as_ref().map(|&(_, hash)| hash),
            &recorder,
        );
        protocol::write_frame(&mut stdin, &init)
            .map_err(|err| distributed(format!("failed to init worker {slot}: {err}")))?;
        mls_obs::counter("mls_fabric_workers_spawned_total").inc();
        mls_obs::event(
            "fabric_worker_spawned",
            &[
                ("worker", FieldValue::U64(slot as u64)),
                ("incarnation", FieldValue::U64(incarnation as u64)),
            ],
        );
        Ok(WorkerProcess { child, stdin })
    }
}

/// The live state of one dispatch event loop.
struct EventLoop {
    events: Receiver<Event>,
    events_tx: Sender<Event>,
    health: Vec<WorkerHealth>,
    processes: Vec<Option<WorkerProcess>>,
    pending: VecDeque<usize>,
    payloads: Vec<Option<Payload>>,
    completed: usize,
}

impl EventLoop {
    fn start(
        session: &Session<'_>,
        recovered: Vec<Option<Payload>>,
    ) -> Result<Self, CampaignError> {
        let (events_tx, events) = mpsc::channel();
        // mls-lint: allow(D002): heartbeat epoch for worker liveness; timing steers failover only, and fabric_equivalence pins report bytes identical under chaos kills
        let now = Instant::now();
        let mut health = Vec::with_capacity(session.config.workers);
        let mut processes = Vec::with_capacity(session.config.workers);
        for slot in 0..session.config.workers {
            health.push(WorkerHealth::spawned(slot, now));
            processes.push(Some(session.spawn_worker(slot, 0, &events_tx)?));
        }
        let completed = recovered.iter().filter(|payload| payload.is_some()).count();
        let pending = recovered
            .iter()
            .enumerate()
            .filter(|(_, payload)| payload.is_none())
            .map(|(job, _)| job)
            .collect();
        Ok(Self {
            events,
            events_tx,
            health,
            processes,
            pending,
            payloads: recovered,
            completed,
        })
    }

    fn drive(&mut self, session: &Session<'_>) -> Result<Vec<Option<Payload>>, CampaignError> {
        let total = session.leases.len();
        while self.completed < total {
            // mls-lint: allow(D002): one liveness epoch per loop turn stamps lease grants and drives reaping; timing steers failover only, never aggregation order
            let now = Instant::now();
            self.assign(session, now);
            match self.events.recv_timeout(Duration::from_millis(50)) {
                Ok(event) => self.handle(session, event)?,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(distributed("dispatcher event channel closed unexpectedly"))
                }
            }
            self.reap_timeouts(session, now)?;
        }
        Ok(std::mem::take(&mut self.payloads))
    }

    /// Hands pending leases to workers with capacity, round-robin over
    /// slots so the queue spreads evenly.
    fn assign(&mut self, session: &Session<'_>, now: Instant) {
        for slot in 0..self.health.len() {
            while !self.pending.is_empty()
                && self.health[slot].can_lease(session.config.max_inflight)
            {
                let job = self.pending.pop_front().expect("checked non-empty");
                let frame = match &session.leases[job] {
                    Lease::Cell { cell, start, end } => {
                        protocol::cell_lease(job, *cell, *start, *end)
                    }
                    Lease::Probe { spec_json, .. } => protocol::probe_lease(job, spec_json),
                };
                let wrote = self.processes[slot]
                    .as_mut()
                    .map(|process| protocol::write_frame(&mut process.stdin, &frame).is_ok())
                    .unwrap_or(false);
                if wrote {
                    self.health[slot].lease(job, now);
                    mls_obs::counter("mls_fabric_leases_issued_total").inc();
                } else {
                    // Broken pipe: give the job back and bury the worker.
                    self.pending.push_front(job);
                    self.bury(session, slot);
                    break;
                }
            }
        }
    }

    fn handle(&mut self, session: &Session<'_>, event: Event) -> Result<(), CampaignError> {
        // mls-lint: allow(D002): stamps worker heartbeats for timeout reaping; lease reassignment is deterministic whatever the clock says (fabric_equivalence)
        let now = Instant::now();
        match event {
            Event::Gone { slot, incarnation } => {
                if incarnation == self.health[slot].incarnation
                    && self.health[slot].phase != WorkerPhase::Dead
                {
                    self.bury(session, slot);
                }
                Ok(())
            }
            Event::Frame {
                slot,
                incarnation,
                frame,
            } => {
                if !self.health[slot].observe(incarnation, now) {
                    return Ok(()); // stale incarnation
                }
                match protocol::message_type(&frame) {
                    Some("ready") => {
                        let expected = session.campaign.as_ref().map(|&(_, hash)| hash);
                        protocol::validate_ready(&frame, expected).map_err(distributed)?;
                        self.health[slot].ready();
                        Ok(())
                    }
                    Some("heartbeat") => {
                        // observe() already refreshed last_seen.
                        Ok(())
                    }
                    Some("result") => self.record_result(session, slot, &frame),
                    Some("error") => {
                        let reason = frame
                            .get("reason")
                            .and_then(Value::as_str)
                            .unwrap_or("unspecified worker error");
                        Err(distributed(format!("worker {slot} failed: {reason}")))
                    }
                    _ => Ok(()), // forward-compatible: ignore unknown frames
                }
            }
        }
    }

    fn record_result(
        &mut self,
        session: &Session<'_>,
        slot: usize,
        frame: &Value,
    ) -> Result<(), CampaignError> {
        let job = protocol::require_u64(frame, "job").map_err(distributed)? as usize;
        if job >= self.payloads.len() {
            return Err(distributed(format!(
                "worker {slot} reported unknown job {job}"
            )));
        }
        self.health[slot].complete(job);
        if self.payloads[job].is_some() {
            // A lease that was reassigned after a presumed death, then
            // completed twice. Whole jobs are deterministic, so the
            // payloads are identical — keep the first, count the event.
            mls_obs::counter("mls_fabric_duplicate_results_total").inc();
            return Ok(());
        }
        let payload = match frame.get("kind").and_then(Value::as_str) {
            Some("cell") => {
                let Some(Value::Array(raw_slots)) = frame.get("slots") else {
                    return Err(distributed("cell result frame is missing its slots"));
                };
                // Write-ahead: the raw wire values are journaled exactly
                // as received, before this payload counts as complete, so
                // a dispatcher killed past this point replays the same
                // bits on resume.
                if let (Some(journal), Some(&(_, config_hash))) =
                    (&session.journal, session.campaign.as_ref())
                {
                    let Lease::Cell { cell, start, .. } = &session.leases[job] else {
                        return Err(distributed("cell result frame for a non-cell lease"));
                    };
                    let base = cell * session.missions_per_cell + start;
                    for (offset, value) in raw_slots.iter().enumerate() {
                        let mission = base + offset;
                        if journal.recovered_slot(config_hash, mission).is_none() {
                            journal.append_slot(config_hash, mission, value)?;
                        }
                    }
                }
                Payload::Slots(
                    raw_slots
                        .iter()
                        .map(wire::slot_from_value)
                        .collect::<Result<Vec<_>, _>>()?,
                )
            }
            Some("probe") => {
                let outcomes = protocol::decode_probe_outcomes(frame).map_err(distributed)?;
                if let Some(journal) = &session.journal {
                    let Lease::Probe { hash, .. } = &session.leases[job] else {
                        return Err(distributed("probe result frame for a non-probe lease"));
                    };
                    if journal.recovered_probe(*hash).is_none() {
                        journal.append_probe(*hash, &outcomes)?;
                    }
                }
                Payload::Outcomes(outcomes)
            }
            other => {
                return Err(distributed(format!("unknown result kind {other:?}")));
            }
        };
        self.payloads[job] = Some(payload);
        self.completed += 1;
        mls_obs::counter(&format!("mls_fabric_worker_{slot}_jobs_completed_total")).inc();
        Ok(())
    }

    /// Declares heartbeat-silent workers dead, and buries workers whose
    /// oldest lease outlived the per-lease deadline — the stalled-worker
    /// case, where heartbeats stay fresh but results never arrive.
    fn reap_timeouts(&mut self, session: &Session<'_>, now: Instant) -> Result<(), CampaignError> {
        for slot in 0..self.health.len() {
            if self.health[slot].timed_out(now, session.config.heartbeat_timeout) {
                let gap = now.duration_since(self.health[slot].last_seen);
                mls_obs::histogram("mls_fabric_heartbeat_gap_seconds", mls_obs::SECONDS_BUCKETS)
                    .observe(gap.as_secs_f64());
                self.bury(session, slot);
            } else if self.health[slot].lease_deadline_exceeded(now, session.config.lease_timeout) {
                mls_obs::counter("mls_fabric_lease_timeouts_total").inc();
                mls_obs::event(
                    "fabric_lease_timeout",
                    &[("worker", FieldValue::U64(slot as u64))],
                );
                self.bury(session, slot);
            }
        }
        // Liveness: at least one slot must be able to finish the queue.
        let all_dead = self
            .health
            .iter()
            .all(|worker| worker.phase == WorkerPhase::Dead);
        if all_dead && self.completed < self.payloads.len() {
            return Err(distributed(
                "all fabric workers are dead and the respawn budget is spent",
            ));
        }
        Ok(())
    }

    /// Kills a worker slot: requeues its leases at the queue front (in
    /// ascending job order) and respawns it when budget remains.
    fn bury(&mut self, session: &Session<'_>, slot: usize) {
        let orphaned = self.health[slot].fail();
        if let Some(mut process) = self.processes[slot].take() {
            let _ = process.child.kill();
            let _ = process.child.wait();
        }
        if !orphaned.is_empty() {
            mls_obs::counter("mls_fabric_lease_reassignments_total").add(orphaned.len() as u64);
        }
        for job in orphaned.into_iter().rev() {
            self.pending.push_front(job);
        }
        mls_obs::event(
            "fabric_worker_dead",
            &[
                ("worker", FieldValue::U64(slot as u64)),
                (
                    "incarnation",
                    FieldValue::U64(self.health[slot].incarnation as u64),
                ),
            ],
        );
        if self.health[slot].can_respawn(session.config.respawn_budget) {
            // mls-lint: allow(D002): respawn epoch restarts the new incarnation's heartbeat window; reports stay byte-identical across respawn timing (chaos suite)
            self.health[slot].respawn(Instant::now());
            mls_obs::counter("mls_fabric_worker_respawns_total").inc();
            match session.spawn_worker(slot, self.health[slot].incarnation, &self.events_tx) {
                Ok(process) => self.processes[slot] = Some(process),
                Err(_) => {
                    // Spawn failed: retire the slot for good.
                    self.health[slot].fail();
                }
            }
        }
    }

    /// Tears the pool down. On a clean finish workers get a shutdown
    /// frame and are waited for (they flush obs artifacts on the way
    /// out); on an abort they are killed.
    fn shutdown(&mut self, clean: bool) {
        for mut process in self.processes.iter_mut().filter_map(Option::take) {
            if clean {
                let _ = protocol::write_frame(&mut process.stdin, &protocol::shutdown_message());
                drop(process.stdin); // EOF backstop for pre-handshake workers
                let _ = process.child.wait();
            } else {
                let _ = process.child.kill();
                let _ = process.child.wait();
            }
        }
    }
}
