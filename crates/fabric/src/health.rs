//! Worker health and lease bookkeeping — the dispatcher's failover state
//! machine, kept free of process and I/O concerns so every transition is
//! unit-testable.
//!
//! Each worker *slot* (a stable index `0..workers`) runs through
//! incarnations: spawn → ready → (dead → respawn)* until its retry budget
//! is spent. Leases are tracked per slot; when a slot dies its outstanding
//! leases are returned in ascending job order and must be requeued at the
//! *front* of the pending queue, so a crash-and-retry schedule completes
//! the same job set — and therefore the same report — as an undisturbed
//! run.

use std::time::{Duration, Instant};

/// Lifecycle of one worker slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerPhase {
    /// Process spawned, `ready` frame not yet seen.
    Spawning,
    /// Handshake complete; the slot accepts leases.
    Ready,
    /// Process dead (EOF, heartbeat timeout or kill); awaiting respawn or
    /// retirement.
    Dead,
}

/// One outstanding lease: the job id and when it was assigned. The
/// timestamp drives the per-lease deadline — a worker whose heartbeats
/// keep arriving but whose oldest lease has gone unanswered too long is
/// *stalled*, a failure mode heartbeat reaping can never see.
#[derive(Debug, Clone, Copy)]
pub struct LeaseGrant {
    /// The leased job id.
    pub job: usize,
    /// When the dispatcher assigned it.
    pub since: Instant,
}

/// Dispatcher-side view of one worker slot.
#[derive(Debug)]
pub struct WorkerHealth {
    /// Stable slot index.
    pub slot: usize,
    /// Incarnation counter: 0 for the first spawn, +1 per respawn. Events
    /// from a previous incarnation's reader thread are discarded by
    /// comparing against this.
    pub incarnation: usize,
    /// Current lifecycle phase.
    pub phase: WorkerPhase,
    /// Last frame (any type) seen from the live incarnation.
    pub last_seen: Instant,
    /// Outstanding leases, in assignment order.
    pub inflight: Vec<LeaseGrant>,
    /// Respawns consumed so far.
    pub respawns: usize,
}

impl WorkerHealth {
    /// A freshly spawned slot.
    pub fn spawned(slot: usize, now: Instant) -> Self {
        Self {
            slot,
            incarnation: 0,
            phase: WorkerPhase::Spawning,
            last_seen: now,
            inflight: Vec::new(),
            respawns: 0,
        }
    }

    /// Records a frame from incarnation `incarnation`; returns `false`
    /// (and changes nothing) when the frame is stale — from a reader
    /// thread of an already-replaced incarnation.
    pub fn observe(&mut self, incarnation: usize, now: Instant) -> bool {
        if incarnation != self.incarnation || self.phase == WorkerPhase::Dead {
            return false;
        }
        self.last_seen = now;
        true
    }

    /// Marks the handshake complete.
    pub fn ready(&mut self) {
        if self.phase == WorkerPhase::Spawning {
            self.phase = WorkerPhase::Ready;
        }
    }

    /// Whether the slot has missed its heartbeat window.
    pub fn timed_out(&self, now: Instant, timeout: Duration) -> bool {
        self.phase != WorkerPhase::Dead && now.duration_since(self.last_seen) > timeout
    }

    /// Whether any outstanding lease has outlived `lease_timeout`. This is
    /// orthogonal to [`Self::timed_out`]: a stalled worker keeps
    /// heartbeating (so `last_seen` stays fresh) while its lease result
    /// never arrives. Dead slots never report expired leases.
    pub fn lease_deadline_exceeded(&self, now: Instant, lease_timeout: Duration) -> bool {
        self.phase != WorkerPhase::Dead
            && self
                .inflight
                .iter()
                .any(|grant| now.duration_since(grant.since) > lease_timeout)
    }

    /// Whether the slot can take another lease.
    pub fn can_lease(&self, max_inflight: usize) -> bool {
        self.phase == WorkerPhase::Ready && self.inflight.len() < max_inflight
    }

    /// Records a lease assignment at time `now`.
    pub fn lease(&mut self, job: usize, now: Instant) {
        self.inflight.push(LeaseGrant { job, since: now });
    }

    /// Records a completed (or aborted) job, returning whether this slot
    /// actually held the lease — a duplicate completion from a reassigned
    /// lease returns `false` on the slot that no longer holds it.
    pub fn complete(&mut self, job: usize) -> bool {
        match self.inflight.iter().position(|grant| grant.job == job) {
            Some(index) => {
                self.inflight.remove(index);
                true
            }
            None => false,
        }
    }

    /// Kills the incarnation: marks the slot dead and drains its
    /// outstanding leases in ascending job order (the order they must
    /// rejoin the front of the pending queue in).
    pub fn fail(&mut self) -> Vec<usize> {
        self.phase = WorkerPhase::Dead;
        let mut orphaned: Vec<usize> = std::mem::take(&mut self.inflight)
            .into_iter()
            .map(|grant| grant.job)
            .collect();
        orphaned.sort_unstable();
        orphaned
    }

    /// Whether the slot may be respawned under `budget` retries.
    pub fn can_respawn(&self, budget: usize) -> bool {
        self.phase == WorkerPhase::Dead && self.respawns < budget
    }

    /// Starts the next incarnation.
    pub fn respawn(&mut self, now: Instant) {
        debug_assert_eq!(self.phase, WorkerPhase::Dead);
        self.incarnation += 1;
        self.respawns += 1;
        self.phase = WorkerPhase::Spawning;
        self.last_seen = now;
        self.inflight.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_lifecycle_counts_inflight() {
        let now = Instant::now();
        let mut worker = WorkerHealth::spawned(0, now);
        assert!(!worker.can_lease(2), "spawning slots take no leases");
        worker.ready();
        assert!(worker.can_lease(2));
        worker.lease(4, now);
        worker.lease(9, now);
        assert!(!worker.can_lease(2), "bounded in-flight leases");
        assert!(worker.complete(4));
        assert!(!worker.complete(4), "double completion is flagged");
        assert!(worker.can_lease(2));
    }

    #[test]
    fn death_orphans_leases_in_job_order() {
        let now = Instant::now();
        let mut worker = WorkerHealth::spawned(3, now);
        worker.ready();
        worker.lease(9, now);
        worker.lease(2, now);
        worker.lease(5, now);
        assert_eq!(worker.fail(), vec![2, 5, 9]);
        assert_eq!(worker.phase, WorkerPhase::Dead);
        assert!(worker.can_respawn(1));
        worker.respawn(now);
        assert_eq!(worker.incarnation, 1);
        assert!(!worker.can_respawn(1), "budget of one is spent");
    }

    #[test]
    fn stale_incarnation_frames_are_ignored() {
        let now = Instant::now();
        let mut worker = WorkerHealth::spawned(0, now);
        worker.ready();
        worker.fail();
        worker.respawn(now);
        assert!(
            !worker.observe(0, now),
            "frames from incarnation 0 are stale"
        );
        assert!(worker.observe(1, now));
    }

    #[test]
    fn lease_deadline_catches_a_stalled_worker() {
        let now = Instant::now();
        let lease_timeout = Duration::from_millis(500);
        let mut worker = WorkerHealth::spawned(1, now);
        worker.ready();
        assert!(
            !worker.lease_deadline_exceeded(now + Duration::from_secs(60), lease_timeout),
            "an idle worker has no lease to expire"
        );
        worker.lease(7, now);
        let later = now + Duration::from_millis(600);
        // The worker keeps heartbeating: last_seen is fresh, so heartbeat
        // reaping sees nothing — only the lease deadline fires.
        assert!(worker.observe(0, later));
        assert!(!worker.timed_out(later, Duration::from_millis(1000)));
        assert!(worker.lease_deadline_exceeded(later, lease_timeout));
        assert!(
            !worker.lease_deadline_exceeded(now + Duration::from_millis(100), lease_timeout),
            "a young lease is not expired"
        );
        worker.complete(7);
        assert!(
            !worker.lease_deadline_exceeded(later, lease_timeout),
            "completion clears the deadline"
        );
        worker.lease(8, now);
        worker.fail();
        assert!(
            !worker.lease_deadline_exceeded(later, lease_timeout),
            "dead slots stop reporting expired leases"
        );
    }

    #[test]
    fn heartbeat_timeout_is_detected() {
        let now = Instant::now();
        let mut worker = WorkerHealth::spawned(0, now);
        worker.ready();
        let timeout = Duration::from_millis(100);
        assert!(!worker.timed_out(now, timeout));
        assert!(worker.timed_out(now + Duration::from_millis(150), timeout));
        worker.fail();
        assert!(
            !worker.timed_out(now + Duration::from_secs(60), timeout),
            "dead slots stop timing out"
        );
    }
}
