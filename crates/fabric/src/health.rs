//! Worker health and lease bookkeeping — the dispatcher's failover state
//! machine, kept free of process and I/O concerns so every transition is
//! unit-testable.
//!
//! Each worker *slot* (a stable index `0..workers`) runs through
//! incarnations: spawn → ready → (dead → respawn)* until its retry budget
//! is spent. Leases are tracked per slot; when a slot dies its outstanding
//! leases are returned in ascending job order and must be requeued at the
//! *front* of the pending queue, so a crash-and-retry schedule completes
//! the same job set — and therefore the same report — as an undisturbed
//! run.

use std::time::{Duration, Instant};

/// Lifecycle of one worker slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerPhase {
    /// Process spawned, `ready` frame not yet seen.
    Spawning,
    /// Handshake complete; the slot accepts leases.
    Ready,
    /// Process dead (EOF, heartbeat timeout or kill); awaiting respawn or
    /// retirement.
    Dead,
}

/// Dispatcher-side view of one worker slot.
#[derive(Debug)]
pub struct WorkerHealth {
    /// Stable slot index.
    pub slot: usize,
    /// Incarnation counter: 0 for the first spawn, +1 per respawn. Events
    /// from a previous incarnation's reader thread are discarded by
    /// comparing against this.
    pub incarnation: usize,
    /// Current lifecycle phase.
    pub phase: WorkerPhase,
    /// Last frame (any type) seen from the live incarnation.
    pub last_seen: Instant,
    /// Outstanding lease job ids, in assignment order.
    pub inflight: Vec<usize>,
    /// Respawns consumed so far.
    pub respawns: usize,
}

impl WorkerHealth {
    /// A freshly spawned slot.
    pub fn spawned(slot: usize, now: Instant) -> Self {
        Self {
            slot,
            incarnation: 0,
            phase: WorkerPhase::Spawning,
            last_seen: now,
            inflight: Vec::new(),
            respawns: 0,
        }
    }

    /// Records a frame from incarnation `incarnation`; returns `false`
    /// (and changes nothing) when the frame is stale — from a reader
    /// thread of an already-replaced incarnation.
    pub fn observe(&mut self, incarnation: usize, now: Instant) -> bool {
        if incarnation != self.incarnation || self.phase == WorkerPhase::Dead {
            return false;
        }
        self.last_seen = now;
        true
    }

    /// Marks the handshake complete.
    pub fn ready(&mut self) {
        if self.phase == WorkerPhase::Spawning {
            self.phase = WorkerPhase::Ready;
        }
    }

    /// Whether the slot has missed its heartbeat window.
    pub fn timed_out(&self, now: Instant, timeout: Duration) -> bool {
        self.phase != WorkerPhase::Dead && now.duration_since(self.last_seen) > timeout
    }

    /// Whether the slot can take another lease.
    pub fn can_lease(&self, max_inflight: usize) -> bool {
        self.phase == WorkerPhase::Ready && self.inflight.len() < max_inflight
    }

    /// Records a lease assignment.
    pub fn lease(&mut self, job: usize) {
        self.inflight.push(job);
    }

    /// Records a completed (or aborted) job, returning whether this slot
    /// actually held the lease — a duplicate completion from a reassigned
    /// lease returns `false` on the slot that no longer holds it.
    pub fn complete(&mut self, job: usize) -> bool {
        match self.inflight.iter().position(|&held| held == job) {
            Some(index) => {
                self.inflight.remove(index);
                true
            }
            None => false,
        }
    }

    /// Kills the incarnation: marks the slot dead and drains its
    /// outstanding leases in ascending job order (the order they must
    /// rejoin the front of the pending queue in).
    pub fn fail(&mut self) -> Vec<usize> {
        self.phase = WorkerPhase::Dead;
        let mut orphaned = std::mem::take(&mut self.inflight);
        orphaned.sort_unstable();
        orphaned
    }

    /// Whether the slot may be respawned under `budget` retries.
    pub fn can_respawn(&self, budget: usize) -> bool {
        self.phase == WorkerPhase::Dead && self.respawns < budget
    }

    /// Starts the next incarnation.
    pub fn respawn(&mut self, now: Instant) {
        debug_assert_eq!(self.phase, WorkerPhase::Dead);
        self.incarnation += 1;
        self.respawns += 1;
        self.phase = WorkerPhase::Spawning;
        self.last_seen = now;
        self.inflight.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_lifecycle_counts_inflight() {
        let now = Instant::now();
        let mut worker = WorkerHealth::spawned(0, now);
        assert!(!worker.can_lease(2), "spawning slots take no leases");
        worker.ready();
        assert!(worker.can_lease(2));
        worker.lease(4);
        worker.lease(9);
        assert!(!worker.can_lease(2), "bounded in-flight leases");
        assert!(worker.complete(4));
        assert!(!worker.complete(4), "double completion is flagged");
        assert!(worker.can_lease(2));
    }

    #[test]
    fn death_orphans_leases_in_job_order() {
        let now = Instant::now();
        let mut worker = WorkerHealth::spawned(3, now);
        worker.ready();
        worker.lease(9);
        worker.lease(2);
        worker.lease(5);
        assert_eq!(worker.fail(), vec![2, 5, 9]);
        assert_eq!(worker.phase, WorkerPhase::Dead);
        assert!(worker.can_respawn(1));
        worker.respawn(now);
        assert_eq!(worker.incarnation, 1);
        assert!(!worker.can_respawn(1), "budget of one is spent");
    }

    #[test]
    fn stale_incarnation_frames_are_ignored() {
        let now = Instant::now();
        let mut worker = WorkerHealth::spawned(0, now);
        worker.ready();
        worker.fail();
        worker.respawn(now);
        assert!(
            !worker.observe(0, now),
            "frames from incarnation 0 are stale"
        );
        assert!(worker.observe(1, now));
    }

    #[test]
    fn heartbeat_timeout_is_detected() {
        let now = Instant::now();
        let mut worker = WorkerHealth::spawned(0, now);
        worker.ready();
        let timeout = Duration::from_millis(100);
        assert!(!worker.timed_out(now, timeout));
        assert!(worker.timed_out(now + Duration::from_millis(150), timeout));
        worker.fail();
        assert!(
            !worker.timed_out(now + Duration::from_secs(60), timeout),
            "dead slots stop timing out"
        );
    }
}
