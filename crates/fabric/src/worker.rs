//! The worker side of the fabric: a frame loop over stdin/stdout.
//!
//! A worker process is the *same binary* as the dispatcher (the dedicated
//! `mls-fabric-worker` bin, or any binary that calls
//! [`crate::maybe_worker`] first thing in `main`). It speaks only frames
//! on stdout — missions must never print there — flies leases on its own
//! in-process executor pool, and ships results back in the bit-exact wire
//! encoding. A heartbeat thread writes liveness frames so the dispatcher
//! can distinguish "busy flying a long mission" from "dead".

use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mls_campaign::{wire, CampaignRunner, CampaignSpec};
use mls_sim_world::Scenario;
use serde_json::Value;

use crate::protocol::{self, PROTOCOL_VERSION};

/// Heartbeat period. The dispatcher's timeout must be a comfortable
/// multiple of this.
pub const HEARTBEAT_PERIOD: Duration = Duration::from_millis(200);

/// Exit code of a chaos-scheduled crash (see [`parse_chaos`]).
pub const CHAOS_EXIT_CODE: i32 = 86;

/// A deterministic fault schedule parsed from `MLS_FABRIC_CHAOS`.
///
/// Each field schedules one failure mode at a lease count: the worker
/// processes that many leases normally, then misbehaves on receiving the
/// next one. Every mode is a stand-in for a real operational failure that
/// makes the failover path testable without signals or flaky timing:
///
/// * `exit_after` — hard `process::exit`, no result, mid-protocol; the
///   dispatcher sees EOF exactly as on `kill -9`.
/// * `stall_after` — the frame loop sleeps forever while the heartbeat
///   thread keeps beating: liveness looks fine, results never arrive.
///   Only the dispatcher's per-lease deadline can reclaim the lease.
/// * `corrupt_frame_after` — writes a torn, unparseable frame header and
///   exits; the dispatcher's reader treats the stream as dead.
/// * `sigkill_dispatcher_after` — parsed but ignored by workers; a test
///   harness interprets it by killing the *dispatcher* process after that
///   many journal records, then resuming from the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosSchedule {
    /// Die silently on receiving lease N.
    pub exit_after: Option<usize>,
    /// Hang (heartbeats continuing) on receiving lease N.
    pub stall_after: Option<usize>,
    /// Emit a torn frame and die on receiving lease N.
    pub corrupt_frame_after: Option<usize>,
    /// Harness-side: kill the dispatcher after N journal records.
    pub sigkill_dispatcher_after: Option<usize>,
}

/// Parses an `MLS_FABRIC_CHAOS` directive: a comma-separated list of
/// `key=N` entries (`exit-after`, `stall-after`, `corrupt-frame-after`,
/// `sigkill-dispatcher-after`). Unknown keys and malformed counts are
/// ignored; a directive with no recognised entry parses to `None`, so a
/// stray environment value never alters worker behaviour.
pub fn parse_chaos(directive: &str) -> Option<ChaosSchedule> {
    let mut schedule = ChaosSchedule::default();
    let mut recognised = false;
    for entry in directive.split(',') {
        let Some((key, count)) = entry.trim().split_once('=') else {
            continue;
        };
        let Ok(count) = count.parse::<usize>() else {
            continue;
        };
        let field = match key {
            "exit-after" => &mut schedule.exit_after,
            "stall-after" => &mut schedule.stall_after,
            "corrupt-frame-after" => &mut schedule.corrupt_frame_after,
            "sigkill-dispatcher-after" => &mut schedule.sigkill_dispatcher_after,
            _ => continue,
        };
        *field = Some(count);
        recognised = true;
    }
    recognised.then_some(schedule)
}

/// Everything the frame loop needs about one accepted `init`.
struct Session {
    worker: usize,
    runner: CampaignRunner,
    /// The pinned campaign, when this is a campaign session: (spec,
    /// per-family suites regenerated locally from the spec).
    campaign: Option<(CampaignSpec, Vec<Arc<Vec<Scenario>>>)>,
}

/// Validates the dispatcher's `init` frame and builds the session.
fn accept_init(frame: &Value) -> Result<(Session, Value), String> {
    if protocol::message_type(frame) != Some("init") {
        return Err(format!(
            "expected an init frame, got {:?}",
            protocol::message_type(frame)
        ));
    }
    let protocol_version = protocol::require_u64(frame, "protocol")?;
    if protocol_version != PROTOCOL_VERSION {
        return Err(format!(
            "protocol version mismatch: dispatcher speaks {protocol_version}, worker speaks {PROTOCOL_VERSION}"
        ));
    }
    let worker = protocol::require_u64(frame, "worker")? as usize;
    let threads = (protocol::require_u64(frame, "threads")? as usize).max(1);
    let recorder = frame
        .get("recorder")
        .ok_or_else(|| "init frame is missing the recorder sizing".to_string())
        .and_then(|value| {
            serde_json::from_value(value).map_err(|err| format!("bad recorder sizing: {err}"))
        })?;
    let runner = CampaignRunner::new(threads).with_recorder_config(recorder);
    let campaign = match frame.get("spec") {
        None | Some(Value::Null) => None,
        Some(raw) => {
            let json = raw.as_str().ok_or("init spec is not a string")?;
            let spec = CampaignSpec::from_json(json).map_err(|err| err.to_string())?;
            let pinned = protocol::require_u64(frame, "config_hash")?;
            let computed = spec.config_hash().map_err(|err| err.to_string())?;
            if computed != pinned {
                return Err(format!(
                    "config hash mismatch: dispatcher pinned {pinned:#x}, worker recomputed {computed:#x}"
                ));
            }
            let suites = runner.suites_for(&spec).map_err(|err| err.to_string())?;
            Some((spec, suites))
        }
    };
    let hash = campaign
        .as_ref()
        .map(|(spec, _)| spec.config_hash().unwrap_or(0))
        .unwrap_or(0);
    let ready = protocol::ready_message(worker, hash);
    Ok((
        Session {
            worker,
            runner,
            campaign,
        },
        ready,
    ))
}

/// Processes one lease, returning the result frame.
fn process_lease(session: &Session, frame: &Value) -> Result<Value, String> {
    let job = protocol::require_u64(frame, "job")? as usize;
    match protocol::require_str(frame, "kind")? {
        "cell" => {
            let (spec, suites) = session
                .campaign
                .as_ref()
                .ok_or("cell lease on a session initialised without a campaign spec")?;
            let cell = protocol::require_u64(frame, "cell")? as usize;
            let start = protocol::require_u64(frame, "start")? as usize;
            let end = protocol::require_u64(frame, "end")? as usize;
            let slots = session
                .runner
                .fly_cell_range(spec, suites, cell, start, end)
                .map_err(|err| err.to_string())?;
            let wire_slots = slots
                .iter()
                .map(|slot| wire::slot_to_value(slot).map_err(|err| err.to_string()))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(protocol::cell_result(job, wire_slots))
        }
        "probe" => {
            let spec = CampaignSpec::from_json(protocol::require_str(frame, "spec")?)
                .map_err(|err| err.to_string())?;
            let suite = session
                .runner
                .generate_scenarios(&spec)
                .map_err(|err| err.to_string())?;
            let outcomes = session
                .runner
                .fly_probe_outcomes(&spec, suite)
                .map_err(|err| err.to_string())?;
            Ok(protocol::probe_result(job, &outcomes))
        }
        other => Err(format!("unknown lease kind '{other}'")),
    }
}

/// Runs the worker frame loop until shutdown or stream end, returning the
/// process exit code. `chaos` is the parsed [`ChaosSchedule`]; the crash
/// and stall it schedules are a hard `process::exit` and an unbounded
/// sleep, so callers running this in-process (tests) must pass `None`.
pub fn run<W>(mut input: impl BufRead, output: W, chaos: Option<ChaosSchedule>) -> i32
where
    W: Write + Send + 'static,
{
    let output = Arc::new(Mutex::new(output));
    let send = |frame: &Value| -> bool {
        // A poisoned lock means the heartbeat thread panicked mid-write;
        // keep speaking protocol on the recovered writer rather than
        // aborting mid-frame (D006) — the dispatcher's frame parser treats
        // any torn tail as worker death and reassigns the lease.
        let mut writer = output
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        protocol::write_frame(&mut *writer, frame).is_ok()
    };

    // Handshake: the first frame must be init.
    let first = match protocol::read_frame(&mut input) {
        Ok(Some(frame)) => frame,
        Ok(None) => return 0,
        Err(_) => return 3,
    };
    let session = match accept_init(&first) {
        Ok((session, ready)) => {
            if !send(&ready) {
                return 3;
            }
            session
        }
        Err(reason) => {
            send(&protocol::error_message(None, &reason));
            return 2;
        }
    };

    // Liveness: heartbeats from a side thread, stopped on clean return so
    // in-process callers do not leak writes into a dropped buffer.
    let stop = Arc::new(AtomicBool::new(false));
    let beat_stop = stop.clone();
    let beat_output = output.clone();
    let beat_worker = session.worker;
    let heartbeat = std::thread::spawn(move || {
        while !beat_stop.load(Ordering::Relaxed) {
            std::thread::sleep(HEARTBEAT_PERIOD);
            if beat_stop.load(Ordering::Relaxed) {
                break;
            }
            // Same recovery as `send`: a heartbeat must never abort the
            // worker, and a torn frame already reads as death upstream.
            let mut writer = beat_output
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if protocol::write_frame(&mut *writer, &protocol::heartbeat_message(beat_worker))
                .is_err()
            {
                break;
            }
        }
    });
    let finish = |code: i32| -> i32 {
        stop.store(true, Ordering::Relaxed);
        let _ = heartbeat.join();
        mls_obs::flush();
        code
    };

    let mut leases_processed = 0usize;
    loop {
        let frame = match protocol::read_frame(&mut input) {
            Ok(Some(frame)) => frame,
            Ok(None) => return finish(0), // dispatcher closed the pipe
            Err(_) => return finish(3),
        };
        match protocol::message_type(&frame) {
            Some("lease") => {
                let schedule = chaos.unwrap_or_default();
                if schedule.exit_after == Some(leases_processed) {
                    // Scheduled crash: no result, no goodbye — the
                    // dispatcher sees EOF exactly as it would on kill -9.
                    std::process::exit(CHAOS_EXIT_CODE);
                }
                if schedule.corrupt_frame_after == Some(leases_processed) {
                    // Torn frame then death: the dispatcher's reader hits
                    // an unparseable header and treats the stream as dead.
                    let mut writer = output
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    let _ = writer.write_all(b"MLSF not-a-length\n");
                    let _ = writer.flush();
                    drop(writer);
                    std::process::exit(CHAOS_EXIT_CODE);
                }
                if schedule.stall_after == Some(leases_processed) {
                    // Stalled worker: the heartbeat thread keeps beating,
                    // so liveness looks fine while the lease result never
                    // arrives. Only the dispatcher's per-lease deadline
                    // reclaims this lease (and kills this process).
                    loop {
                        std::thread::sleep(HEARTBEAT_PERIOD);
                    }
                }
                let response = match process_lease(&session, &frame) {
                    Ok(result) => result,
                    Err(reason) => {
                        let job = protocol::require_u64(&frame, "job")
                            .ok()
                            .map(|j| j as usize);
                        protocol::error_message(job, &reason)
                    }
                };
                leases_processed += 1;
                if !send(&response) {
                    return finish(3);
                }
            }
            Some("shutdown") => return finish(0),
            _ => {} // forward-compatible: unknown frames are ignored
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mls_trace::RecorderConfig;

    fn init_frame(spec: Option<&CampaignSpec>, pinned_hash: Option<u64>) -> Value {
        let recorder = serde_json::to_value(&RecorderConfig::default());
        let json = spec.map(|spec| spec.to_json().unwrap());
        protocol::init_message(0, 1, json.as_deref(), pinned_hash, &recorder)
    }

    #[test]
    fn chaos_directives_parse() {
        assert_eq!(
            parse_chaos("exit-after=3"),
            Some(ChaosSchedule {
                exit_after: Some(3),
                ..ChaosSchedule::default()
            })
        );
        assert_eq!(
            parse_chaos(" exit-after=0 "),
            Some(ChaosSchedule {
                exit_after: Some(0),
                ..ChaosSchedule::default()
            })
        );
        assert_eq!(parse_chaos("explode"), None);
        assert_eq!(parse_chaos("exit-after=soon"), None);
    }

    #[test]
    fn chaos_schedules_compose() {
        assert_eq!(
            parse_chaos("stall-after=1, corrupt-frame-after=2, sigkill-dispatcher-after=4"),
            Some(ChaosSchedule {
                exit_after: None,
                stall_after: Some(1),
                corrupt_frame_after: Some(2),
                sigkill_dispatcher_after: Some(4),
            })
        );
        // Unknown keys and malformed counts are skipped, not fatal.
        assert_eq!(
            parse_chaos("explode=7, exit-after=oops, stall-after=0"),
            Some(ChaosSchedule {
                stall_after: Some(0),
                ..ChaosSchedule::default()
            })
        );
        assert_eq!(parse_chaos("sigkill-dispatcher-after"), None);
    }

    #[test]
    fn init_with_matching_hash_is_accepted() {
        let spec = CampaignSpec::smoke();
        let hash = spec.config_hash().unwrap();
        let (session, ready) = accept_init(&init_frame(Some(&spec), Some(hash))).unwrap();
        assert!(session.campaign.is_some());
        protocol::validate_ready(&ready, Some(hash)).unwrap();
    }

    #[test]
    fn init_with_drifted_hash_is_a_clean_error() {
        let spec = CampaignSpec::smoke();
        let Err(err) = accept_init(&init_frame(Some(&spec), Some(0xdead))) else {
            panic!("drifted hash must be rejected");
        };
        assert!(err.contains("config hash mismatch"));
    }

    #[test]
    fn init_with_wrong_protocol_version_is_rejected() {
        let mut frame = init_frame(None, None);
        if let Value::Object(fields) = &mut frame {
            for (key, value) in fields.iter_mut() {
                if key == "protocol" {
                    *value = protocol::uint(PROTOCOL_VERSION + 7);
                }
            }
        }
        let Err(err) = accept_init(&frame) else {
            panic!("stale protocol must be rejected");
        };
        assert!(err.contains("protocol version mismatch"));
    }

    #[test]
    fn probe_sessions_need_no_spec() {
        let (session, ready) = accept_init(&init_frame(None, None)).unwrap();
        assert!(session.campaign.is_none());
        protocol::validate_ready(&ready, None).unwrap();
    }
}
