//! The versioned, length-delimited JSONL frame protocol between the
//! dispatcher and its workers.
//!
//! Every message is one *frame* on a byte stream (worker stdin/stdout
//! pipes): an ASCII header line `MLSF <len>\n`, exactly `len` bytes of
//! JSON, and a trailing newline. The explicit length makes truncation
//! detectable — a worker dying mid-frame surfaces as a clean
//! [`std::io::ErrorKind::UnexpectedEof`] on the reader, never as a parse
//! of half a message or a hang — and the JSON body keeps the protocol
//! inspectable with a pipe and `jq`.
//!
//! Message flow (all frames carry a `"type"` field):
//!
//! | direction          | type        | purpose                                            |
//! |--------------------|-------------|----------------------------------------------------|
//! | dispatcher→worker  | `init`      | pins protocol version, worker id, threads, campaign spec + config hash, recorder sizing |
//! | worker→dispatcher  | `ready`     | echoes protocol version + the worker's recomputed config hash |
//! | dispatcher→worker  | `lease`     | one job: a whole-cell/range lease or an inline probe spec |
//! | worker→dispatcher  | `result`    | the lease's mission slots (bit-exact wire records) or probe outcomes |
//! | worker→dispatcher  | `heartbeat` | liveness; absence beyond the timeout marks the worker dead |
//! | worker→dispatcher  | `error`     | a job or handshake failure, with a human-readable reason |
//! | dispatcher→worker  | `shutdown`  | drain and exit 0                                   |
//!
//! Mission results ride as the bit-exact wire encoding of
//! [`mls_campaign::wire`] (floats as IEEE-754 bit patterns), which is what
//! lets the dispatcher's aggregation reproduce the in-process report byte
//! for byte.

use std::io::{self, BufRead, Write};

use serde_json::{Number, Value};

/// Protocol revision; pinned by the `init`/`ready` handshake. A worker
/// built from a different protocol revision refuses leases with a clean
/// error instead of mis-parsing frames.
pub const PROTOCOL_VERSION: u64 = 1;

/// Frame header magic.
pub const FRAME_MAGIC: &str = "MLSF";

/// Upper bound on one frame's body, bytes (a whole-cell result with
/// captured traces stays far below this; the cap turns a corrupted length
/// header into an error instead of an allocation storm).
pub const MAX_FRAME_LEN: usize = 256 * 1024 * 1024;

/// Writes one frame and flushes the stream.
///
/// # Errors
///
/// Propagates stream write errors; serialization failures surface as
/// [`io::ErrorKind::InvalidData`].
pub fn write_frame(writer: &mut impl Write, message: &Value) -> io::Result<()> {
    let body = serde_json::to_string(message)
        .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
    writeln!(writer, "{FRAME_MAGIC} {}", body.len())?;
    writer.write_all(body.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Reads one frame. Returns `Ok(None)` on a clean end of stream (the peer
/// closed the pipe *between* frames); a stream that ends inside a frame is
/// an [`io::ErrorKind::UnexpectedEof`] error, and a malformed header or
/// body is [`io::ErrorKind::InvalidData`].
///
/// # Errors
///
/// See above — truncation and corruption are errors, never silent.
pub fn read_frame(reader: &mut impl BufRead) -> io::Result<Option<Value>> {
    let mut header = String::new();
    if reader.read_line(&mut header)? == 0 {
        return Ok(None);
    }
    let bad_header = || {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame header {header:?}"),
        )
    };
    let rest = header
        .trim_end_matches('\n')
        .strip_prefix(FRAME_MAGIC)
        .ok_or_else(bad_header)?;
    let len: usize = rest.trim().parse().map_err(|_| bad_header())?;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_LEN} byte cap"),
        ));
    }
    // Body plus the trailing newline; read_exact turns a peer dying
    // mid-frame into UnexpectedEof.
    let mut body = vec![0u8; len + 1];
    reader.read_exact(&mut body)?;
    let text = std::str::from_utf8(&body[..len])
        .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
    serde_json::parse(text)
        .map(Some)
        .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))
}

/// Builds a JSON object from key/value pairs (insertion order preserved).
pub fn object(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(key, value)| (key.to_string(), value))
            .collect(),
    )
}

/// A `u64` JSON number.
pub fn uint(value: u64) -> Value {
    Value::Number(Number::PosInt(value))
}

/// The frame's `"type"` field.
pub fn message_type(message: &Value) -> Option<&str> {
    message.get("type").and_then(Value::as_str)
}

/// A required `u64` field.
///
/// # Errors
///
/// Returns a description of the missing field.
pub fn require_u64(message: &Value, key: &str) -> Result<u64, String> {
    message
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("frame is missing u64 field '{key}'"))
}

/// A required string field.
///
/// # Errors
///
/// Returns a description of the missing field.
pub fn require_str<'a>(message: &'a Value, key: &str) -> Result<&'a str, String> {
    message
        .get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("frame is missing string field '{key}'"))
}

/// The dispatcher's `init` frame.
pub fn init_message(
    worker: usize,
    threads: usize,
    spec_json: Option<&str>,
    config_hash: Option<u64>,
    recorder: &Value,
) -> Value {
    object(vec![
        ("type", Value::String("init".to_string())),
        ("protocol", uint(PROTOCOL_VERSION)),
        ("worker", uint(worker as u64)),
        ("threads", uint(threads as u64)),
        (
            "spec",
            spec_json.map_or(Value::Null, |json| Value::String(json.to_string())),
        ),
        ("config_hash", config_hash.map_or(Value::Null, uint)),
        ("recorder", recorder.clone()),
    ])
}

/// The worker's `ready` response.
pub fn ready_message(worker: usize, config_hash: u64) -> Value {
    object(vec![
        ("type", Value::String("ready".to_string())),
        ("protocol", uint(PROTOCOL_VERSION)),
        ("worker", uint(worker as u64)),
        ("config_hash", uint(config_hash)),
    ])
}

/// A whole-cell (or range) campaign lease.
pub fn cell_lease(job: usize, cell: usize, start: usize, end: usize) -> Value {
    object(vec![
        ("type", Value::String("lease".to_string())),
        ("kind", Value::String("cell".to_string())),
        ("job", uint(job as u64)),
        ("cell", uint(cell as u64)),
        ("start", uint(start as u64)),
        ("end", uint(end as u64)),
    ])
}

/// A probe lease carrying its single-cell spec inline.
pub fn probe_lease(job: usize, spec_json: &str) -> Value {
    object(vec![
        ("type", Value::String("lease".to_string())),
        ("kind", Value::String("probe".to_string())),
        ("job", uint(job as u64)),
        ("spec", Value::String(spec_json.to_string())),
    ])
}

/// A cell-lease result: the lease's mission slots in job order.
pub fn cell_result(job: usize, slots: Vec<Value>) -> Value {
    object(vec![
        ("type", Value::String("result".to_string())),
        ("kind", Value::String("cell".to_string())),
        ("job", uint(job as u64)),
        ("slots", Value::Array(slots)),
    ])
}

/// A probe-lease result: outcome codes in job order
/// ([`mls_campaign::wire::probe_outcome_code`] — 0 = skipped,
/// 1 = failure, 2 = success; the result journal records the same codes).
pub fn probe_result(job: usize, outcomes: &[Option<bool>]) -> Value {
    let codes = outcomes
        .iter()
        .map(|outcome| uint(mls_campaign::wire::probe_outcome_code(*outcome)))
        .collect();
    object(vec![
        ("type", Value::String("result".to_string())),
        ("kind", Value::String("probe".to_string())),
        ("job", uint(job as u64)),
        ("outcomes", Value::Array(codes)),
    ])
}

/// Decodes a probe result's outcome codes.
///
/// # Errors
///
/// Returns a description of the malformed field.
pub fn decode_probe_outcomes(message: &Value) -> Result<Vec<Option<bool>>, String> {
    let Some(Value::Array(codes)) = message.get("outcomes") else {
        return Err("probe result is missing its outcomes array".to_string());
    };
    codes
        .iter()
        .map(|code| {
            code.as_u64()
                .ok_or_else(|| "probe outcome code is not a u64".to_string())
                .and_then(|code| {
                    mls_campaign::wire::probe_outcome_from_code(code).map_err(|e| e.to_string())
                })
        })
        .collect()
}

/// A worker heartbeat.
pub fn heartbeat_message(worker: usize) -> Value {
    object(vec![
        ("type", Value::String("heartbeat".to_string())),
        ("worker", uint(worker as u64)),
    ])
}

/// A worker-side failure (handshake or job).
pub fn error_message(job: Option<usize>, reason: &str) -> Value {
    object(vec![
        ("type", Value::String("error".to_string())),
        (
            "job",
            job.map(|job| uint(job as u64)).unwrap_or(Value::Null),
        ),
        ("reason", Value::String(reason.to_string())),
    ])
}

/// The dispatcher's shutdown frame.
pub fn shutdown_message() -> Value {
    object(vec![("type", Value::String("shutdown".to_string()))])
}

/// Validates a worker's `ready` frame against the dispatcher's protocol
/// version and expected config hash (None for probe sessions, which pin
/// hashes per lease).
///
/// # Errors
///
/// Returns the handshake violation, human-readable.
pub fn validate_ready(message: &Value, expected_hash: Option<u64>) -> Result<(), String> {
    if message_type(message) != Some("ready") {
        // Stable `{}` rendering (D005): this string crosses the wire in an
        // error frame, so even diagnostics stay debug-format-free.
        return Err(format!(
            "expected a ready frame, got {}",
            message_type(message).unwrap_or("<untyped frame>")
        ));
    }
    let protocol = require_u64(message, "protocol")?;
    if protocol != PROTOCOL_VERSION {
        return Err(format!(
            "protocol version mismatch: dispatcher speaks {PROTOCOL_VERSION}, worker speaks {protocol}"
        ));
    }
    if let Some(expected) = expected_hash {
        let echoed = require_u64(message, "config_hash")?;
        if echoed != expected {
            return Err(format!(
                "config hash mismatch: dispatcher pinned {expected:#x}, worker recomputed {echoed:#x}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn frames_round_trip() {
        let message = cell_lease(7, 2, 0, 48);
        let mut buffer = Vec::new();
        write_frame(&mut buffer, &message).unwrap();
        write_frame(&mut buffer, &heartbeat_message(1)).unwrap();
        let mut reader = BufReader::new(buffer.as_slice());
        assert_eq!(read_frame(&mut reader).unwrap(), Some(message));
        assert_eq!(read_frame(&mut reader).unwrap(), Some(heartbeat_message(1)));
        assert_eq!(read_frame(&mut reader).unwrap(), None);
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_hang() {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, &shutdown_message()).unwrap();
        buffer.truncate(buffer.len() - 5); // the peer died mid-frame
        let mut reader = BufReader::new(buffer.as_slice());
        let err = read_frame(&mut reader).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn corrupt_header_is_invalid_data() {
        let mut reader = BufReader::new(&b"NOPE 12\n{}\n"[..]);
        let err = read_frame(&mut reader).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let mut reader = BufReader::new(&b"MLSF quinoa\n"[..]);
        assert!(read_frame(&mut reader).is_err());
    }

    #[test]
    fn oversized_length_is_rejected() {
        let huge = format!("MLSF {}\n", MAX_FRAME_LEN + 1);
        let mut reader = BufReader::new(huge.as_bytes());
        let err = read_frame(&mut reader).unwrap_err();
        assert!(err.to_string().contains("cap"));
    }

    #[test]
    fn ready_handshake_pins_version_and_hash() {
        let good = ready_message(0, 0xfeed);
        assert!(validate_ready(&good, Some(0xfeed)).is_ok());
        assert!(validate_ready(&good, None).is_ok());

        let hash_mismatch = validate_ready(&good, Some(0xbeef)).unwrap_err();
        assert!(hash_mismatch.contains("config hash mismatch"));

        let mut stale = ready_message(0, 0xfeed);
        if let Value::Object(fields) = &mut stale {
            for (key, value) in fields.iter_mut() {
                if key == "protocol" {
                    *value = uint(PROTOCOL_VERSION + 1);
                }
            }
        }
        let version_mismatch = validate_ready(&stale, Some(0xfeed)).unwrap_err();
        assert!(version_mismatch.contains("protocol version mismatch"));
    }

    #[test]
    fn probe_outcomes_round_trip() {
        let outcomes = vec![Some(true), Some(false), None, Some(true)];
        let message = probe_result(3, &outcomes);
        assert_eq!(decode_probe_outcomes(&message).unwrap(), outcomes);
        assert_eq!(require_u64(&message, "job").unwrap(), 3);
    }
}
