//! End-to-end fault-injection campaign demo.
//!
//! Sweeps three fault kinds over the three system generations on the smoke
//! benchmark, prints the per-cell grid, then falsifies MLS-V1 over the
//! occlusion × GPS-bias fault space and minimizes the counterexample.
//!
//! Run with `cargo run --release --example fault_campaign`. Set
//! `MLS_THREADS` to bound the worker pool and `MLS_FULL=1` to fly the
//! paper-scale fault study instead of the smoke grid.

use mls_campaign::{
    CampaignRunner, CampaignSpec, FalsificationConfig, FalsificationSearch, FaultAxis, FaultKind,
    FaultSpace, GridRefinementConfig, Searcher,
};
use mls_core::SystemVariant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // As for every `MLS_*` sizing variable, unset, unparsable and `0` all
    // mean "use the default"; the runner clamps the upper bound.
    let threads = std::env::var("MLS_THREADS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });
    let full = std::env::var("MLS_FULL").map(|v| v == "1").unwrap_or(false);

    let spec = if full {
        CampaignSpec::full_fault_study()
    } else {
        CampaignSpec::smoke()
    };
    let runner = CampaignRunner::new(threads);
    println!(
        "campaign '{}': {} cells x {} missions/cell = {} missions on {} threads",
        spec.name,
        spec.cells().len(),
        spec.missions_per_cell(),
        spec.total_missions(),
        runner.threads(),
    );
    let report = runner.run(&spec)?;

    println!();
    println!(
        "{:<48} {:>9} {:>9} {:>9} {:>9}",
        "cell", "success", "collide", "poor", "failsafe"
    );
    for cell in &report.cells {
        println!(
            "{:<48} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
            cell.label(),
            cell.success_rate * 100.0,
            cell.collision_rate * 100.0,
            cell.poor_landing_rate * 100.0,
            cell.failsafe_rate * 100.0,
        );
    }

    println!();
    println!("falsification: minimal occlusion x gps-bias point that breaks MLS-V1");
    let search = FalsificationSearch::new(
        FalsificationConfig {
            maps: 1,
            scenarios_per_map: 2,
            minimizer_bisections: 4,
            ..Default::default()
        },
        threads,
    );
    let space = FaultSpace::new(
        "occlusion-x-gps-bias",
        vec![
            FaultAxis::full(FaultKind::MarkerOcclusion),
            FaultAxis::full(FaultKind::GpsBias),
        ],
    );
    let searcher = Searcher::GridRefinement(GridRefinementConfig::default());
    let result = search.falsify(SystemVariant::MlsV1, &space, &searcher)?;
    println!(
        "  baseline success rate: {:.1}%",
        result.baseline_success_rate * 100.0
    );
    match &result.counterexample {
        Some(ce) => {
            println!(
                "  falsified at {} (success rate there: {:.1}%, {} probes)",
                space.label_point(&ce.point),
                ce.success_rate * 100.0,
                result.probes.len(),
            );
            if let Some(link) = &ce.trace {
                println!(
                    "  counterexample trace: {} (triage: {}, replay identical: {})",
                    link.path,
                    link.triage.as_deref().unwrap_or("unclassified"),
                    ce.replay_identical.unwrap_or(false),
                );
            }
        }
        None => println!("  not falsified: success stayed above threshold over the whole space"),
    }

    println!();
    println!("CSV:\n{}", report.to_csv());
    Ok(())
}
