//! The sharded campaign runner: a self-scheduling worker pool over OS
//! threads.
//!
//! Missions are independent, but their costs vary wildly (a V1 mission that
//! crashes in 40 s is an order of magnitude cheaper than a V3 mission that
//! searches, validates and descends). Static chunking therefore leaves
//! workers idle; instead every worker claims the next job off a shared
//! atomic cursor until the queue drains, so load balances automatically.
//!
//! Determinism is preserved by separating *execution* order from
//! *aggregation* order: each mission's seed is a pure function of its grid
//! coordinates ([`CampaignSpec::mission_seed`]), and the per-cell streaming
//! accumulators are fed in global job order after all workers have joined.
//! The resulting [`CampaignReport`] is byte-identical for a given spec
//! regardless of thread count.

use std::sync::atomic::{AtomicUsize, Ordering};

use mls_compute::ComputeModel;
use mls_core::{FailsafeReason, MissionExecutor, MissionOutcome, MissionResult};
use mls_sim_world::{Scenario, ScenarioConfig, ScenarioGenerator};

use crate::faults::MissionFaultContext;
use crate::report::{CampaignReport, CellReport};
use crate::spec::{CampaignCell, CampaignSpec};
use crate::stats::MetricAccumulator;
use crate::CampaignError;

/// Runs `count` independent jobs on a self-scheduling pool of `threads` OS
/// threads and returns the results in job order.
///
/// The closure receives the job index. Jobs are claimed dynamically off a
/// shared cursor (no static chunking), so heterogeneous job costs balance
/// across workers; results are re-sorted by index before returning, so the
/// output order never depends on scheduling.
///
/// # Panics
///
/// Panics when a worker thread panics.
pub fn execute_sharded<R, F>(count: usize, threads: usize, job: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, count);
    let cursor = AtomicUsize::new(0);
    let mut collected: Vec<(usize, R)> = Vec::with_capacity(count);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            handles.push(scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= count {
                        break;
                    }
                    local.push((index, job(index)));
                }
                local
            }));
        }
        for handle in handles {
            collected.extend(handle.join().expect("campaign worker thread panicked"));
        }
    });
    collected.sort_by_key(|(index, _)| *index);
    collected.into_iter().map(|(_, result)| result).collect()
}

/// The compact per-mission record the aggregation stage consumes.
#[derive(Debug, Clone, PartialEq)]
struct MissionRecord {
    result: MissionResult,
    failsafe: Option<FailsafeReason>,
    landing_error: Option<f64>,
    detection_error: Option<f64>,
    duration: f64,
    mean_cpu: f64,
    peak_memory_mb: f64,
    worst_planning_latency: f64,
    gps_drift: f64,
    visible_frames: usize,
    missed_frames: usize,
}

impl MissionRecord {
    fn from_outcome(outcome: &MissionOutcome) -> Self {
        Self {
            result: outcome.result,
            failsafe: outcome.failsafe,
            landing_error: outcome.landing_error,
            detection_error: outcome.mean_detection_error,
            duration: outcome.duration,
            mean_cpu: outcome.mean_cpu,
            peak_memory_mb: outcome.peak_memory_mb,
            worst_planning_latency: outcome.worst_planning_latency,
            gps_drift: outcome.gps_drift,
            visible_frames: outcome.detection_stats.visible_frames,
            missed_frames: outcome.detection_stats.missed_frames,
        }
    }
}

/// The campaign engine: expands a spec, flies it on the worker pool and
/// aggregates a deterministic report.
#[derive(Debug, Clone)]
pub struct CampaignRunner {
    threads: usize,
}

impl CampaignRunner {
    /// Upper bound on the worker-thread count: a typo'd `threads` value must
    /// not ask the OS for thousands of stacks.
    pub const MAX_THREADS: usize = 512;

    /// Creates a runner using `threads` worker threads (clamped to
    /// `1..=`[`CampaignRunner::MAX_THREADS`]).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.clamp(1, Self::MAX_THREADS),
        }
    }

    /// A runner sized to the machine's available parallelism.
    pub fn auto() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        )
    }

    /// The worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs the campaign end to end: scenario generation, the sharded
    /// mission sweep, and per-cell aggregation.
    ///
    /// # Errors
    ///
    /// Returns an error when the spec is invalid, scenario generation fails,
    /// or a landing system cannot be assembled.
    pub fn run(&self, spec: &CampaignSpec) -> Result<CampaignReport, CampaignError> {
        spec.validate()?;
        let scenarios = self.generate_scenarios(spec)?;
        self.run_with_scenarios(spec, &scenarios)
    }

    /// Runs the campaign over an already-generated scenario suite (callers
    /// sweeping many specs over the same suite — e.g. the falsification
    /// search — generate it once and reuse it).
    ///
    /// # Errors
    ///
    /// Returns an error when the spec is invalid or a landing system cannot
    /// be assembled.
    pub fn run_with_scenarios(
        &self,
        spec: &CampaignSpec,
        scenarios: &[Scenario],
    ) -> Result<CampaignReport, CampaignError> {
        spec.validate()?;
        if scenarios.len() != spec.maps * spec.scenarios_per_map {
            return Err(CampaignError::InvalidSpec {
                reason: format!(
                    "scenario suite has {} scenarios but the spec's grid needs {}",
                    scenarios.len(),
                    spec.maps * spec.scenarios_per_map
                ),
            });
        }
        let cells = spec.cells();
        let missions_per_cell = spec.missions_per_cell();
        let total = missions_per_cell * cells.len();

        // Job `i` maps to (cell, repeat, scenario) in row-major order, so a
        // cell's missions occupy one contiguous, ordered slice of the
        // results.
        let results: Vec<Result<MissionRecord, CampaignError>> =
            execute_sharded(total, self.threads, |index| {
                let cell = &cells[index / missions_per_cell];
                let within = index % missions_per_cell;
                let scenario = &scenarios[within % scenarios.len()];
                let repeat = within / scenarios.len();
                self.fly(spec, cell, scenario, repeat)
                    .map(|outcome| MissionRecord::from_outcome(&outcome))
            });

        let mut records = Vec::with_capacity(total);
        for result in results {
            records.push(result?);
        }

        let cell_reports = cells
            .iter()
            .map(|cell| {
                let slice =
                    &records[cell.index * missions_per_cell..(cell.index + 1) * missions_per_cell];
                aggregate_cell(cell, slice)
            })
            .collect();

        Ok(CampaignReport {
            name: spec.name.clone(),
            seed: spec.seed,
            missions: total,
            cells: cell_reports,
        })
    }

    /// Generates the benchmark scenario suite a spec sweeps over.
    ///
    /// # Errors
    ///
    /// Returns an error when the scenario generator rejects the dimensions.
    pub fn generate_scenarios(&self, spec: &CampaignSpec) -> Result<Vec<Scenario>, CampaignError> {
        let config = ScenarioConfig {
            maps: spec.maps,
            scenarios_per_map: spec.scenarios_per_map,
            ..ScenarioConfig::default()
        };
        Ok(ScenarioGenerator::new(config).generate_benchmark(spec.seed)?)
    }

    /// Flies one mission of one cell.
    fn fly(
        &self,
        spec: &CampaignSpec,
        cell: &CampaignCell,
        scenario: &Scenario,
        repeat: usize,
    ) -> Result<MissionOutcome, CampaignError> {
        let seed = spec.mission_seed(scenario.id, repeat);
        let compute =
            ComputeModel::new(spec.profiles[cell.profile_index].clone()).map_err(|err| {
                CampaignError::InvalidSpec {
                    reason: err.to_string(),
                }
            })?;
        let mut executor = MissionExecutor::for_variant(
            scenario,
            cell.variant,
            spec.landing.clone(),
            compute,
            spec.executor.clone(),
            seed,
        )?;
        if let Some(plan) = cell.fault {
            let context = MissionFaultContext {
                target_marker_id: scenario.target_marker_id,
                gps_target: scenario.gps_target,
                marker_size: scenario.marker_size,
                max_duration: spec.executor.max_duration,
            };
            executor = executor.with_fault_hook(Box::new(plan.injector(seed, &context)));
        }
        Ok(executor.run())
    }
}

/// Aggregates one cell's records (already in deterministic job order) into a
/// [`CellReport`] via the streaming accumulators.
fn aggregate_cell(cell: &CampaignCell, records: &[MissionRecord]) -> CellReport {
    let n = records.len().max(1) as f64;
    let rate = |predicate: &dyn Fn(&MissionRecord) -> bool| {
        records.iter().filter(|r| predicate(r)).count() as f64 / n
    };

    let mut landing_error = MetricAccumulator::new();
    let mut detection_error = MetricAccumulator::new();
    let mut duration = MetricAccumulator::new();
    let mut mean_cpu = MetricAccumulator::new();
    let mut peak_memory_mb = MetricAccumulator::new();
    let mut worst_planning_latency = MetricAccumulator::new();
    let mut gps_drift = MetricAccumulator::new();
    let mut visible = 0usize;
    let mut missed = 0usize;
    for record in records {
        if let Some(error) = record.landing_error {
            landing_error.push(error);
        }
        if let Some(error) = record.detection_error {
            detection_error.push(error);
        }
        duration.push(record.duration);
        mean_cpu.push(record.mean_cpu);
        peak_memory_mb.push(record.peak_memory_mb);
        worst_planning_latency.push(record.worst_planning_latency);
        gps_drift.push(record.gps_drift);
        visible += record.visible_frames;
        missed += record.missed_frames;
    }

    CellReport {
        index: cell.index,
        variant: cell.variant,
        profile: cell.profile.clone(),
        fault: cell.fault,
        missions: records.len(),
        success_rate: rate(&|r| r.result == MissionResult::Success),
        collision_rate: rate(&|r| r.result == MissionResult::CollisionFailure),
        poor_landing_rate: rate(&|r| r.result == MissionResult::PoorLanding),
        failsafe_rate: rate(&|r| r.failsafe.is_some()),
        false_negative_rate: if visible == 0 {
            0.0
        } else {
            missed as f64 / visible as f64
        },
        landing_error: landing_error.summary(),
        detection_error: detection_error.summary(),
        duration: duration.summary(),
        mean_cpu: mean_cpu.summary(),
        peak_memory_mb: peak_memory_mb.summary(),
        worst_planning_latency: worst_planning_latency.summary(),
        gps_drift: gps_drift.summary(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execute_sharded_preserves_job_order() {
        let results = execute_sharded(100, 7, |i| i * 2);
        assert_eq!(results.len(), 100);
        for (i, value) in results.iter().enumerate() {
            assert_eq!(*value, i * 2);
        }
    }

    #[test]
    fn execute_sharded_handles_degenerate_sizes() {
        assert!(execute_sharded(0, 4, |i| i).is_empty());
        assert_eq!(execute_sharded(1, 16, |i| i + 1), vec![1]);
    }

    #[test]
    fn runner_clamps_threads() {
        assert_eq!(CampaignRunner::new(0).threads(), 1);
        assert_eq!(
            CampaignRunner::new(1_000_000).threads(),
            CampaignRunner::MAX_THREADS
        );
        assert!(CampaignRunner::auto().threads() >= 1);
    }

    #[test]
    fn mismatched_scenario_suite_is_rejected() {
        let spec = CampaignSpec::smoke();
        let err = CampaignRunner::new(1)
            .run_with_scenarios(&spec, &[])
            .unwrap_err();
        assert!(err.to_string().contains("scenario suite"));
    }

    #[test]
    fn invalid_spec_is_rejected_before_any_mission_flies() {
        let mut spec = CampaignSpec::smoke();
        spec.variants.clear();
        assert!(CampaignRunner::new(1).run(&spec).is_err());
    }
}
