//! The campaign runner: deterministic mission sweeps on the persistent
//! work-stealing executor.
//!
//! Missions are independent, but their costs vary wildly (a V1 mission that
//! crashes in 40 s is an order of magnitude cheaper than a V3 mission that
//! searches, validates and descends). Every batch therefore runs on the
//! self-scheduling [`MissionExecutor`] pool: workers claim the next job off
//! a shared cursor until the batch drains, so load balances automatically —
//! and the pool's threads persist across campaigns, probes and replay
//! verification instead of being spun up per call.
//!
//! Determinism is preserved by separating *execution* order from
//! *aggregation* order: each mission's seed is a pure function of its grid
//! coordinates ([`CampaignSpec::mission_seed`]), and the per-cell streaming
//! accumulators are fed in global job order after all workers have joined.
//! The resulting [`CampaignReport`] is byte-identical for a given spec
//! regardless of thread count — including under early stopping, whose
//! decided prefix is a pure function of the mission outcomes in job order
//! ([`EarlyStopPolicy::decide`]).

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use mls_compute::ComputeModel;
use mls_core::{FailsafeReason, MissionOutcome, MissionResult};
use mls_sim_world::Scenario;
use mls_trace::{
    verify_replay, RecorderConfig, ReplayVerdict, Trace, TraceCorpus, TraceHeader, TraceRecorder,
};

use crate::executor::MissionExecutor;
use crate::faults::{CompositeInjector, MissionFaultContext};
use crate::journal::{Journal, JournalHandle, JournalScope};
use crate::report::{CampaignReport, CellReport, EarlyStopSummary, TraceLink};
use crate::spec::{CampaignCell, CampaignSpec, EarlyStopPolicy};
use crate::stats::MetricAccumulator;
use crate::suites::{SuiteCache, SuiteKey};
use crate::transport::{self, Transport};
use crate::CampaignError;

/// The error a fabric-transport runner raises when no distributed backend
/// was registered.
fn no_backend() -> CampaignError {
    CampaignError::Distributed(
        "the runner's transport is Fabric but no distributed backend is installed \
         (call mls_fabric::install() first)"
            .to_string(),
    )
}

/// Cached campaign instruments (see [`crate::obs_util`]).
mod instruments {
    use crate::obs_util::cached_counter;

    cached_counter!(missions_flown, "mls_campaign_missions_flown_total");
    cached_counter!(missions_skipped, "mls_campaign_missions_skipped_total");
    cached_counter!(missions_success, "mls_campaign_mission_success_total");
    cached_counter!(missions_collision, "mls_campaign_mission_collision_total");
    cached_counter!(
        missions_poor_landing,
        "mls_campaign_mission_poor_landing_total"
    );
    cached_counter!(probe_missions, "mls_campaign_probe_missions_total");
    cached_counter!(probe_skipped, "mls_campaign_probe_missions_skipped_total");
    cached_counter!(early_stops, "mls_campaign_early_stops_total");
    cached_counter!(
        early_stop_missions_saved,
        "mls_campaign_early_stop_missions_saved_total"
    );
    cached_counter!(cells, "mls_campaign_cells_total");
    cached_counter!(journal_recovered, "mls_campaign_journal_recovered_total");
}

/// Feeds one flown mission's classification into the obs counters and the
/// progress line (callers gate on [`mls_obs::enabled`]).
fn record_mission_outcome(result: MissionResult) {
    instruments::missions_flown().inc();
    match result {
        MissionResult::Success => instruments::missions_success().inc(),
        MissionResult::CollisionFailure => instruments::missions_collision().inc(),
        MissionResult::PoorLanding => instruments::missions_poor_landing().inc(),
    }
    mls_obs::progress_mission_flown();
}

/// The compact per-mission record the aggregation stage consumes.
///
/// Public (with [`MissionSlot`]) so the distributed fabric can ship the
/// exact aggregation inputs across a process boundary and feed them back
/// through [`CampaignRunner::assemble_report`]; the bit-exact wire
/// encoding lives in [`crate::wire`].
#[derive(Debug, Clone, PartialEq)]
pub struct MissionRecord {
    /// Final mission classification.
    pub result: MissionResult,
    /// Why the system failsafed, when it did.
    pub failsafe: Option<FailsafeReason>,
    /// Distance from touchdown to the true marker, metres (landed missions).
    pub landing_error: Option<f64>,
    /// Mean marker-detection error, metres (missions that detected at all).
    pub detection_error: Option<f64>,
    /// Mission wall-clock duration, simulated seconds.
    pub duration: f64,
    /// Mean simulated CPU utilisation, 0–1.
    pub mean_cpu: f64,
    /// Peak simulated memory footprint, MB.
    pub peak_memory_mb: f64,
    /// Worst planning latency observed, seconds.
    pub worst_planning_latency: f64,
    /// Final GPS drift magnitude, metres.
    pub gps_drift: f64,
    /// Frames the marker was geometrically visible in.
    pub visible_frames: usize,
    /// Visible frames the detector nevertheless missed.
    pub missed_frames: usize,
    /// The mission's captured trace, when the spec's policy kept it.
    pub trace: Option<Box<Trace>>,
}

impl MissionRecord {
    fn from_outcome(outcome: &MissionOutcome) -> Self {
        Self {
            result: outcome.result,
            failsafe: outcome.failsafe,
            landing_error: outcome.landing_error,
            detection_error: outcome.mean_detection_error,
            duration: outcome.duration,
            mean_cpu: outcome.mean_cpu,
            peak_memory_mb: outcome.peak_memory_mb,
            worst_planning_latency: outcome.worst_planning_latency,
            gps_drift: outcome.gps_drift,
            visible_frames: outcome.detection_stats.visible_frames,
            missed_frames: outcome.detection_stats.missed_frames,
            trace: None,
        }
    }
}

/// One result slot of a campaign batch: a flown mission, or a mission the
/// early-stop bound cancelled (or whose cell decided while it was already
/// in flight — those results are discarded so the report stays a pure
/// function of the decided prefix).
#[derive(Debug)]
pub enum MissionSlot {
    /// The mission flew; its record feeds the aggregation stage.
    Flown(Box<MissionRecord>),
    /// The mission was cancelled by (or discarded beyond) an early-stop
    /// decision.
    Skipped,
}

/// The job-order outcome a slot contributes to the early-stop replay.
fn slot_success(slot: &MissionSlot) -> Option<bool> {
    match slot {
        MissionSlot::Flown(record) => Some(record.result == MissionResult::Success),
        MissionSlot::Skipped => None,
    }
}

/// Recomputes the early-stop decision from mission outcomes in job order —
/// a pure function identical to the live in-flight [`CellProgress`]
/// decision, whose prefix cursor only ever advances over contiguous
/// resolved outcomes. The fabric dispatcher replays this over slots merged
/// from workers; [`CampaignRunner::assemble_report`] replays it for every
/// transport, so the two paths cannot diverge.
fn replay_early_stop(
    policy: &EarlyStopPolicy,
    outcomes: impl Iterator<Item = Option<bool>>,
    planned: usize,
) -> (usize, bool) {
    let mut resolved = 0usize;
    let mut successes = 0usize;
    for outcome in outcomes.take(planned) {
        let Some(success) = outcome else { break };
        resolved += 1;
        successes += usize::from(success);
        if let Some(verdict) = policy.decide(successes, resolved, planned) {
            return (resolved, verdict);
        }
    }
    (
        planned,
        (successes as f64 / planned.max(1) as f64) >= policy.threshold,
    )
}

/// Aggregates one probe's job-ordered mission outcomes into its
/// [`ProbeRate`], restricted to the deterministic decided prefix — the
/// pure aggregation half of [`CampaignRunner::run_probe_rates`], shared
/// by the distributed fabric dispatcher.
pub fn probe_rate_from_outcomes(
    policy: Option<EarlyStopPolicy>,
    outcomes: &[Option<bool>],
    planned: usize,
) -> ProbeRate {
    let flown = match policy {
        Some(policy) => replay_early_stop(&policy, outcomes.iter().copied(), planned).0,
        None => planned,
    };
    let prefix = &outcomes[..flown.min(outcomes.len())];
    let successes = prefix.iter().filter(|o| **o == Some(true)).count();
    ProbeRate {
        success_rate: successes as f64 / flown.max(1) as f64,
        missions_flown: flown,
        missions_planned: planned,
    }
}

/// Per-cell early-stop bookkeeping shared by the workers flying the cell.
///
/// The decision is deliberately a pure function of the mission outcomes in
/// *job order*: outcomes land out of order, but the prefix cursor only
/// advances over contiguous resolved missions, so the decided prefix — and
/// with it everything the report records — is independent of scheduling.
struct CellProgress {
    policy: EarlyStopPolicy,
    planned: usize,
    inner: Mutex<ProgressInner>,
}

struct ProgressInner {
    outcomes: Vec<Option<bool>>,
    /// Length of the contiguous resolved prefix.
    resolved: usize,
    /// Successes within the resolved prefix.
    successes: usize,
    /// Set once the resolved prefix decides: (prefix length, verdict).
    decided: Option<(usize, bool)>,
}

impl CellProgress {
    fn new(policy: EarlyStopPolicy, planned: usize) -> Self {
        Self {
            policy,
            planned,
            inner: Mutex::new(ProgressInner {
                outcomes: vec![None; planned],
                resolved: 0,
                successes: 0,
                decided: None,
            }),
        }
    }

    /// Whether the mission at `within` is beyond the decided prefix and
    /// need not fly.
    fn should_skip(&self, within: usize) -> bool {
        matches!(
            self.inner.lock().expect("cell progress poisoned").decided,
            Some((prefix, _)) if within >= prefix
        )
    }

    /// Records one mission outcome and advances the decision prefix.
    fn record(&self, within: usize, success: bool) {
        let mut inner = self.inner.lock().expect("cell progress poisoned");
        if inner.decided.is_some() {
            // The cell decided while this mission was in flight; its
            // result is outside the prefix and must not influence anything.
            return;
        }
        inner.outcomes[within] = Some(success);
        while inner.decided.is_none() {
            let Some(&Some(outcome)) = inner.outcomes.get(inner.resolved) else {
                break;
            };
            inner.resolved += 1;
            inner.successes += usize::from(outcome);
            inner.decided = self
                .policy
                .decide(inner.successes, inner.resolved, self.planned)
                .map(|verdict| (inner.resolved, verdict));
        }
    }

    /// The final (prefix length, verdict): for cells the bound never
    /// decided early this is the full schedule with the plain threshold
    /// comparison.
    fn verdict(&self) -> (usize, bool) {
        let inner = self.inner.lock().expect("cell progress poisoned");
        match inner.decided {
            Some(decision) => decision,
            None => (
                self.planned,
                (inner.successes as f64 / self.planned.max(1) as f64) >= self.policy.threshold,
            ),
        }
    }
}

/// Everything a campaign's mission jobs need, owned so the persistent
/// executor's `'static` closures can share it.
struct MissionContext {
    spec: CampaignSpec,
    cells: Vec<CampaignCell>,
    suites: Vec<Arc<Vec<Scenario>>>,
    missions_per_cell: usize,
    config_hash: u64,
    recorder: Option<RecorderConfig>,
    progress: Option<Vec<CellProgress>>,
    journal: Option<Arc<Journal>>,
}

/// The campaign engine: expands a spec, flies it on the shared persistent
/// executor and aggregates a deterministic report.
#[derive(Debug, Clone)]
pub struct CampaignRunner {
    threads: usize,
    trace_dir: Option<PathBuf>,
    recorder: RecorderConfig,
    executor: Arc<MissionExecutor>,
    suites: SuiteCache,
    transport: Transport,
    journal: Option<Arc<JournalHandle>>,
}

impl CampaignRunner {
    /// Upper bound on the worker-thread count: a typo'd `threads` value must
    /// not ask the OS for thousands of stacks.
    pub const MAX_THREADS: usize = 512;

    /// Creates a runner using at most `threads` concurrent mission workers
    /// (clamped to `1..=`[`CampaignRunner::MAX_THREADS`]) on the shared
    /// process-wide [`MissionExecutor`].
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.clamp(1, Self::MAX_THREADS),
            trace_dir: None,
            recorder: RecorderConfig::default(),
            executor: MissionExecutor::global(),
            suites: SuiteCache::global().clone(),
            transport: Transport::InProcess,
            journal: None,
        }
    }

    /// Selects the execution transport: in-process (the default) or the
    /// distributed campaign fabric. A fabric runner requires a registered
    /// [`crate::transport::DistributedBackend`] (see `mls_fabric::install`)
    /// and produces byte-identical reports, traces and probe rates.
    #[must_use]
    pub fn with_transport(mut self, transport: Transport) -> Self {
        self.transport = transport;
        self
    }

    /// The runner's execution transport.
    pub fn transport(&self) -> Transport {
        self.transport
    }

    /// The flight-recorder sizing missions capture traces with (fabric
    /// workers mirror the dispatcher's sizing from this).
    pub fn recorder_config(&self) -> RecorderConfig {
        self.recorder
    }

    /// Overrides the directory captured traces are persisted in (default:
    /// `traces/<campaign name>`).
    #[must_use]
    pub fn with_trace_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.trace_dir = Some(dir.into());
        self
    }

    /// Overrides the flight-recorder sizing (ring capacity, decimations).
    #[must_use]
    pub fn with_recorder_config(mut self, config: RecorderConfig) -> Self {
        self.recorder = config;
        self
    }

    /// Attaches a write-ahead result journal at `path`: every completed
    /// mission slot is appended (and fsync'd) as it lands, and a later
    /// [`CampaignRunner::resume`] against the same path re-flies only the
    /// missing missions — producing byte-identical artifacts. The journal
    /// is campaign-scoped: it pins the first spec's configuration hash and
    /// rejects any other spec loudly.
    #[must_use]
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(Arc::new(JournalHandle::new(
            path.into(),
            JournalScope::Campaign,
        )));
        self
    }

    /// Attaches a pre-built journal handle — the form the falsification
    /// search uses to share one search-scoped journal across all its
    /// member campaigns and probe batches.
    #[must_use]
    pub fn with_journal_handle(mut self, handle: Arc<JournalHandle>) -> Self {
        self.journal = Some(handle);
        self
    }

    /// The attached journal handle, when one is set.
    pub fn journal_handle(&self) -> Option<&Arc<JournalHandle>> {
        self.journal.as_ref()
    }

    /// Opens this runner's journal for a campaign over `spec` (`None`
    /// when no journal is attached). A campaign-scoped journal enforces
    /// the edited-configuration gate; a search-scoped one admits every
    /// member spec, keying records by each spec's own hash. Shared with
    /// the fabric dispatcher, which journals completed leases through the
    /// same object.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Journal`] when the journal cannot be
    /// opened, fails integrity checks, or pins a different configuration.
    pub fn campaign_journal(
        &self,
        spec: &CampaignSpec,
    ) -> Result<Option<Arc<Journal>>, CampaignError> {
        match &self.journal {
            None => Ok(None),
            Some(handle) => match handle.scope() {
                JournalScope::Campaign => handle.open_primary(spec).map(Some),
                JournalScope::Search => handle.open_ambient(Some(spec)).map(Some),
            },
        }
    }

    /// Opens this runner's journal for probe batches (`None` when no
    /// journal is attached); probe records key by each probe spec's own
    /// hash, so no primary-spec gate applies.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Journal`] when the journal cannot be
    /// opened or fails integrity checks.
    pub fn probe_journal(&self) -> Result<Option<Arc<Journal>>, CampaignError> {
        match &self.journal {
            None => Ok(None),
            Some(handle) => handle.open_ambient(None).map(Some),
        }
    }

    /// Resumes the campaign a journal describes: re-runs the spec embedded
    /// in the journal's header, replaying every journaled slot and flying
    /// only the missing ones. The resulting report, traces and corpus
    /// index are byte-identical to an uninterrupted run of the same spec.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Journal`] when the journal is missing,
    /// fails integrity checks, embeds no spec, or its pinned hash does not
    /// match the embedded spec (an edited journal), plus any error the
    /// underlying [`CampaignRunner::run`] raises.
    pub fn resume(self, journal_path: impl Into<PathBuf>) -> Result<CampaignReport, CampaignError> {
        let path = journal_path.into();
        if !path.exists() {
            return Err(CampaignError::Journal(format!(
                "no journal at {} to resume",
                path.display()
            )));
        }
        let handle = Arc::new(JournalHandle::new(path, JournalScope::Campaign));
        let journal = handle.open_ambient(None)?;
        let header = journal.header();
        let spec_json = header.spec_json.clone().ok_or_else(|| {
            CampaignError::Journal(format!(
                "journal {} embeds no campaign spec to resume",
                handle.path().display()
            ))
        })?;
        let spec = CampaignSpec::from_json(&spec_json)?;
        let expected = spec.config_hash()?;
        if header.config_hash != Some(expected) {
            return Err(CampaignError::Journal(format!(
                "journal {} pins config hash {} but its embedded spec hashes to \
                 {expected:#018x} — the journal has been edited",
                handle.path().display(),
                header
                    .config_hash
                    .map_or("null".to_string(), |hash| format!("{hash:#018x}")),
            )));
        }
        self.with_journal_handle(handle).run(&spec)
    }

    /// Attaches a private executor pool instead of the process-wide one
    /// (tests that count spawned workers use this).
    #[must_use]
    pub fn with_executor(mut self, executor: Arc<MissionExecutor>) -> Self {
        self.executor = executor;
        self
    }

    /// Attaches a private scenario-suite cache instead of the process-wide
    /// one.
    #[must_use]
    pub fn with_suite_cache(mut self, suites: SuiteCache) -> Self {
        self.suites = suites;
        self
    }

    /// Where a spec's traces land on disk.
    pub fn trace_dir(&self, spec: &CampaignSpec) -> PathBuf {
        self.trace_dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("traces").join(&spec.name))
    }

    /// A runner sized to the machine's available parallelism.
    pub fn auto() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        )
    }

    /// The maximum concurrent mission workers per batch.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The executor pool this runner submits batches to.
    pub fn executor(&self) -> &Arc<MissionExecutor> {
        &self.executor
    }

    /// Runs the campaign end to end: per-family scenario suites (memoized
    /// in the suite cache), the sharded mission sweep, and per-cell
    /// aggregation.
    ///
    /// # Errors
    ///
    /// Returns an error when the spec is invalid, scenario generation fails,
    /// or a landing system cannot be assembled.
    pub fn run(&self, spec: &CampaignSpec) -> Result<CampaignReport, CampaignError> {
        spec.validate()?;
        let suites = self.suites_for(spec)?;
        self.run_with_shared_suites(spec, &suites)
    }

    /// Runs a single-family campaign over an already-generated scenario
    /// suite (callers sweeping many specs over the same suite — e.g. the
    /// falsification search — generate it once and reuse it).
    ///
    /// The suite is copied into shared ownership for the executor's job
    /// closures; callers holding an [`Arc`] suite (from
    /// [`CampaignRunner::suite`]) should prefer
    /// [`CampaignRunner::run_with_shared_suites`], which shares instead of
    /// copying.
    ///
    /// # Errors
    ///
    /// Returns an error when the spec is invalid, sweeps more than one
    /// scenario family, or a landing system cannot be assembled.
    pub fn run_with_scenarios(
        &self,
        spec: &CampaignSpec,
        scenarios: &[Scenario],
    ) -> Result<CampaignReport, CampaignError> {
        spec.validate()?;
        if spec.families.len() != 1 {
            return Err(CampaignError::InvalidSpec {
                reason: format!(
                    "run_with_scenarios takes one suite but the spec sweeps {} families \
                     (use run or run_with_suites)",
                    spec.families.len()
                ),
            });
        }
        self.run_with_shared_suites(spec, &[Arc::new(scenarios.to_vec())])
    }

    /// Runs the campaign over already-generated scenario suites, one per
    /// entry of [`CampaignSpec::families`], in the same order. Suites are
    /// copied into shared ownership; prefer
    /// [`CampaignRunner::run_with_shared_suites`] when the suites are
    /// already shared.
    ///
    /// # Errors
    ///
    /// Returns an error when the spec is invalid, the suites do not match
    /// the grid, or a landing system cannot be assembled.
    pub fn run_with_suites<S: AsRef<[Scenario]> + Sync>(
        &self,
        spec: &CampaignSpec,
        suites: &[S],
    ) -> Result<CampaignReport, CampaignError> {
        let shared: Vec<Arc<Vec<Scenario>>> = suites
            .iter()
            .map(|suite| Arc::new(suite.as_ref().to_vec()))
            .collect();
        self.run_with_shared_suites(spec, &shared)
    }

    /// Runs the campaign over shared scenario suites, one per entry of
    /// [`CampaignSpec::families`], in the same order — the zero-copy path
    /// the engine itself uses everywhere.
    ///
    /// # Errors
    ///
    /// Returns an error when the spec is invalid, the suites do not match
    /// the grid, or a landing system cannot be assembled.
    pub fn run_with_shared_suites(
        &self,
        spec: &CampaignSpec,
        suites: &[Arc<Vec<Scenario>>],
    ) -> Result<CampaignReport, CampaignError> {
        spec.validate()?;
        if suites.len() != spec.families.len() {
            return Err(CampaignError::InvalidSpec {
                reason: format!(
                    "{} scenario suites supplied but the spec sweeps {} families",
                    suites.len(),
                    spec.families.len()
                ),
            });
        }
        for (family, suite) in spec.families.iter().zip(suites) {
            if suite.len() != spec.maps * spec.scenarios_per_map {
                return Err(CampaignError::InvalidSpec {
                    reason: format!(
                        "the {} scenario suite has {} scenarios but the spec's grid needs {}",
                        family.label(),
                        suite.len(),
                        spec.maps * spec.scenarios_per_map
                    ),
                });
            }
        }
        if let Transport::Fabric { workers } = self.transport {
            let backend = transport::backend().ok_or_else(no_backend)?;
            return backend.run_campaign(self, workers.max(1), spec, suites);
        }
        let cells = spec.cells();
        let missions_per_cell = spec.missions_per_cell();
        let total = missions_per_cell * cells.len();
        let config_hash = spec.config_hash()?;
        let journal = self.campaign_journal(spec)?;
        let mut campaign_span = mls_obs::span("campaign");
        if campaign_span.is_enabled() {
            campaign_span
                .field("name", spec.name.as_str())
                .field("cells", cells.len())
                .field("missions_planned", total);
            instruments::cells().add(cells.len() as u64);
            mls_obs::progress_planned(total as u64);
        }
        let context = Arc::new(MissionContext {
            progress: spec.probe_early_stop.map(|policy| {
                cells
                    .iter()
                    .map(|_| CellProgress::new(policy, missions_per_cell))
                    .collect()
            }),
            spec: spec.clone(),
            cells,
            suites: suites.to_vec(),
            missions_per_cell,
            config_hash,
            recorder: spec.capture.captures().then_some(self.recorder),
            journal,
        });

        // Job `i` maps to (cell, repeat, scenario) in row-major order, so a
        // cell's missions occupy one contiguous, ordered slice of the
        // results.
        let job_context = context.clone();
        let results: Vec<Result<MissionSlot, CampaignError>> =
            self.executor.execute(total, self.threads, move |index| {
                run_mission_job(&job_context, index)
            });

        let mut slots = Vec::with_capacity(total);
        for result in results {
            slots.push(result?);
        }
        self.assemble_report(spec, slots)
    }

    /// Assembles a [`CampaignReport`] from the complete, job-ordered
    /// mission slots of a campaign batch — the aggregation half of
    /// [`CampaignRunner::run_with_shared_suites`], shared verbatim by the
    /// distributed fabric dispatcher so a sharded run cannot drift from
    /// the in-process result.
    ///
    /// The early-stop decision is recomputed here as a pure function of
    /// the slot outcomes in job order (identical to the live in-flight
    /// decision — see `replay_early_stop` in this module), every slot
    /// beyond a cell's decided prefix is discarded before anything is
    /// recorded, and kept
    /// traces are persisted under this runner's trace directory in
    /// deterministic grid order.
    ///
    /// # Errors
    ///
    /// Returns an error when the spec is invalid, the slot count does not
    /// match the spec's grid, or persisting a kept trace fails.
    pub fn assemble_report(
        &self,
        spec: &CampaignSpec,
        mut slots: Vec<MissionSlot>,
    ) -> Result<CampaignReport, CampaignError> {
        spec.validate()?;
        let cells = spec.cells();
        let missions_per_cell = spec.missions_per_cell();
        if slots.len() != cells.len() * missions_per_cell {
            return Err(CampaignError::InvalidSpec {
                reason: format!(
                    "{} mission slots supplied but the spec's grid plans {}",
                    slots.len(),
                    cells.len() * missions_per_cell
                ),
            });
        }

        // Enforce the deterministic early-stop prefix: results beyond a
        // cell's decided prefix (flown speculatively while the decision
        // landed, or flown by a fabric worker under a partial lease) are
        // discarded before anything is recorded.
        let mut early_summaries = vec![None; cells.len()];
        if let Some(policy) = spec.probe_early_stop {
            for (cell_index, summary) in early_summaries.iter_mut().enumerate() {
                let base = cell_index * missions_per_cell;
                let (flown, verdict) = replay_early_stop(
                    &policy,
                    slots[base..base + missions_per_cell]
                        .iter()
                        .map(slot_success),
                    missions_per_cell,
                );
                for slot in slots
                    .iter_mut()
                    .skip(base + flown)
                    .take(missions_per_cell - flown)
                {
                    *slot = MissionSlot::Skipped;
                }
                *summary = Some(EarlyStopSummary {
                    planned: missions_per_cell,
                    flown,
                    verdict,
                    threshold: policy.threshold,
                });
                if mls_obs::enabled() && flown < missions_per_cell {
                    let saved = (missions_per_cell - flown) as u64;
                    instruments::early_stops().inc();
                    instruments::early_stop_missions_saved().add(saved);
                    mls_obs::progress_early_stop(saved);
                    mls_obs::event(
                        "early_stop",
                        &[
                            ("campaign", spec.name.as_str().into()),
                            ("cell", cell_index.into()),
                            ("flown", flown.into()),
                            ("planned", missions_per_cell.into()),
                            ("verdict", verdict.into()),
                        ],
                    );
                }
            }
        }

        // Persist the kept traces (in deterministic grid order) and link
        // them from the report, each with its triage verdict. Traces land
        // under *this* runner's trace directory whatever process flew them,
        // which is what keeps refly/replay working against fabric-run
        // reports. The same loop ingests every kept trace into the corpus
        // index written next to the files: because all transports funnel
        // their job-ordered slots through this one assembly point, the
        // index — like the report and the traces — is a pure function of
        // (spec, seed), byte-identical across worker counts and failover.
        let trace_dir = self.trace_dir(spec);
        let mut traces = Vec::new();
        let mut corpus = TraceCorpus::create(&trace_dir);
        for (index, slot) in slots.iter().enumerate() {
            let MissionSlot::Flown(record) = slot else {
                continue;
            };
            let Some(trace) = &record.trace else {
                continue;
            };
            let cell = &cells[index / missions_per_cell];
            let header = &trace.header;
            let file_name = format!(
                "c{:03}-s{:03}-r{}.jsonl",
                cell.index, header.scenario_id, header.repeat
            );
            let path = trace_dir.join(&file_name);
            trace.write_to(&path)?;
            let indexed = corpus.ingest(trace, file_name);
            traces.push(TraceLink {
                cell_index: cell.index,
                cell_label: cell.label(),
                scenario_id: header.scenario_id,
                repeat: header.repeat,
                seed: header.seed,
                result: record.result,
                triage: (indexed.class != "unclassified").then(|| indexed.class.clone()),
                path: path.display().to_string(),
            });
        }
        if spec.capture.captures() {
            corpus.save()?;
        }

        let cell_reports: Vec<CellReport> = cells
            .iter()
            .map(|cell| {
                let slice =
                    &slots[cell.index * missions_per_cell..(cell.index + 1) * missions_per_cell];
                let records: Vec<&MissionRecord> = slice
                    .iter()
                    .filter_map(|slot| match slot {
                        MissionSlot::Flown(record) => Some(&**record),
                        MissionSlot::Skipped => None,
                    })
                    .collect();
                aggregate_cell(cell, &records, early_summaries[cell.index])
            })
            .collect();

        if mls_obs::jsonl_enabled() {
            for cell in &cell_reports {
                mls_obs::event(
                    "cell_outcomes",
                    &[
                        ("campaign", spec.name.as_str().into()),
                        ("cell", cell.index.into()),
                        ("variant", cell.variant.label().into()),
                        ("family", cell.family.label().into()),
                        ("missions", cell.missions.into()),
                        ("success_rate", cell.success_rate.into()),
                        ("collision_rate", cell.collision_rate.into()),
                        ("poor_landing_rate", cell.poor_landing_rate.into()),
                        ("failsafe_rate", cell.failsafe_rate.into()),
                        ("early_stopped", cell.early_stop.is_some().into()),
                    ],
                );
            }
        }

        Ok(CampaignReport {
            name: spec.name.clone(),
            seed: spec.seed,
            missions: cell_reports.iter().map(|cell| cell.missions).sum(),
            cells: cell_reports,
            traces,
        })
    }

    /// Flies the mission range `start..end` of one grid cell sequentially
    /// in job order on this runner's executor — the unit of work a fabric
    /// worker performs for one lease. A whole-cell lease (`start == 0`)
    /// applies the spec's early-stop policy locally, skipping missions
    /// beyond the decided prefix exactly as the in-process run would; a
    /// partial-range lease flies everything and leaves the prefix
    /// discipline to [`CampaignRunner::assemble_report`] on the
    /// dispatcher.
    ///
    /// # Errors
    ///
    /// Returns an error when the spec is invalid, the suites do not match
    /// the grid, the cell or range is outside the schedule, or a mission
    /// fails to assemble.
    pub fn fly_cell_range(
        &self,
        spec: &CampaignSpec,
        suites: &[Arc<Vec<Scenario>>],
        cell_index: usize,
        start: usize,
        end: usize,
    ) -> Result<Vec<MissionSlot>, CampaignError> {
        spec.validate()?;
        if suites.len() != spec.families.len() {
            return Err(CampaignError::InvalidSpec {
                reason: format!(
                    "{} scenario suites supplied but the spec sweeps {} families",
                    suites.len(),
                    spec.families.len()
                ),
            });
        }
        let missions_per_cell = spec.missions_per_cell();
        let cell =
            spec.cells()
                .into_iter()
                .nth(cell_index)
                .ok_or_else(|| CampaignError::InvalidSpec {
                    reason: format!("cell {cell_index} is outside the grid"),
                })?;
        if start > end || end > missions_per_cell {
            return Err(CampaignError::InvalidSpec {
                reason: format!(
                    "mission range {start}..{end} is outside the cell's schedule of {missions_per_cell}"
                ),
            });
        }
        let suite = suites[cell.suite_index].clone();
        if suite.len() != spec.maps * spec.scenarios_per_map {
            return Err(CampaignError::InvalidSpec {
                reason: format!(
                    "the {} scenario suite has {} scenarios but the spec's grid needs {}",
                    cell.family.label(),
                    suite.len(),
                    spec.maps * spec.scenarios_per_map
                ),
            });
        }
        let config_hash = spec.config_hash()?;

        struct RangeContext {
            spec: CampaignSpec,
            cell: CampaignCell,
            suite: Arc<Vec<Scenario>>,
            progress: Option<CellProgress>,
            recorder: Option<RecorderConfig>,
            config_hash: u64,
            start: usize,
        }
        let context = Arc::new(RangeContext {
            progress: (start == 0)
                .then_some(spec.probe_early_stop)
                .flatten()
                .map(|policy| CellProgress::new(policy, missions_per_cell)),
            spec: spec.clone(),
            cell,
            suite,
            recorder: spec.capture.captures().then_some(self.recorder),
            config_hash,
            start,
        });
        let job = context.clone();
        let results: Vec<Result<MissionSlot, CampaignError>> =
            self.executor
                .execute(end - start, self.threads, move |index| {
                    let within = job.start + index;
                    let scenario = &job.suite[within % job.suite.len()];
                    let repeat = within / job.suite.len();
                    if job
                        .progress
                        .as_ref()
                        .is_some_and(|progress| progress.should_skip(within))
                    {
                        if mls_obs::enabled() {
                            instruments::missions_skipped().inc();
                        }
                        return Ok(MissionSlot::Skipped);
                    }
                    let (outcome, trace) = fly_mission(
                        &job.spec,
                        &job.cell,
                        scenario,
                        repeat,
                        job.config_hash,
                        job.recorder.as_ref(),
                    )?;
                    if let Some(progress) = &job.progress {
                        progress.record(within, outcome.result == MissionResult::Success);
                    }
                    if mls_obs::enabled() {
                        record_mission_outcome(outcome.result);
                    }
                    let mut record = MissionRecord::from_outcome(&outcome);
                    record.trace = trace
                        .filter(|_| job.spec.capture.keeps(outcome.result))
                        .map(Box::new);
                    Ok(MissionSlot::Flown(Box::new(record)))
                });
        let mut slots = Vec::with_capacity(end - start);
        for result in results {
            slots.push(result?);
        }
        Ok(slots)
    }

    /// Flies every planned mission of one single-cell probe spec on this
    /// runner's executor, returning the job-ordered outcomes — the unit of
    /// work a fabric worker performs for one probe lease. The probe's
    /// early-stop policy applies locally; the dispatcher reduces the
    /// outcomes with [`probe_rate_from_outcomes`], which restricts to the
    /// same decided prefix the in-process path uses.
    ///
    /// # Errors
    ///
    /// Returns an error when the spec is invalid, expands to more than one
    /// cell, the suite does not match, or a mission fails to assemble.
    pub fn fly_probe_outcomes(
        &self,
        spec: &CampaignSpec,
        scenarios: Arc<Vec<Scenario>>,
    ) -> Result<Vec<Option<bool>>, CampaignError> {
        let missions = Self::validate_probe_specs(std::slice::from_ref(spec), &scenarios)?;
        let cell = spec
            .cells()
            .into_iter()
            .next()
            .expect("validated single cell");
        let progress = spec
            .probe_early_stop
            .map(|policy| CellProgress::new(policy, missions));
        let context = Arc::new(ProbeSetContext {
            probes: vec![ProbeJob {
                spec: spec.clone(),
                cell,
                progress,
            }],
            scenarios,
            missions_per_probe: missions,
        });
        let job_context = context.clone();
        let results: Vec<Result<Option<bool>, CampaignError>> =
            self.executor.execute(missions, self.threads, move |index| {
                run_probe_mission_job(&job_context, index)
            });
        let mut outcomes = Vec::with_capacity(missions);
        for result in results {
            outcomes.push(result?);
        }
        Ok(outcomes)
    }

    /// Validates a batch of single-cell probe specs against a shared
    /// scenario suite (each spec expands to exactly one cell, matches the
    /// suite's dimensions and shares one mission schedule), returning the
    /// common missions-per-probe count. Used by both the in-process
    /// [`CampaignRunner::run_probe_rates`] and the fabric dispatcher.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::InvalidSpec`] describing the first
    /// violation.
    pub fn validate_probe_specs(
        specs: &[CampaignSpec],
        scenarios: &[Scenario],
    ) -> Result<usize, CampaignError> {
        let Some(first) = specs.first() else {
            return Ok(0);
        };
        let missions = first.missions_per_cell();
        for spec in specs {
            spec.validate()?;
            let cells = spec.cells();
            if cells.len() != 1 || spec.families.len() != 1 {
                return Err(CampaignError::InvalidSpec {
                    reason: format!(
                        "a probe spec must expand to exactly one cell, '{}' has {}",
                        spec.name,
                        cells.len()
                    ),
                });
            }
            if scenarios.len() != spec.maps * spec.scenarios_per_map {
                return Err(CampaignError::InvalidSpec {
                    reason: format!(
                        "the probe suite has {} scenarios but spec '{}' needs {}",
                        scenarios.len(),
                        spec.name,
                        spec.maps * spec.scenarios_per_map
                    ),
                });
            }
            if spec.missions_per_cell() != missions {
                return Err(CampaignError::InvalidSpec {
                    reason: "probe specs of one batch must share a mission schedule".to_string(),
                });
            }
        }
        Ok(missions)
    }

    /// Evaluates a set of single-cell probe specs over one shared scenario
    /// suite as a single executor batch, returning each probe's success
    /// rate and mission count in input order.
    ///
    /// This is the falsification engine's batched transport: a whole
    /// searcher generation fans out over the executor at mission
    /// granularity, saturating the pool even when each probe flies only a
    /// handful of missions, while per-probe early stopping cancels
    /// missions a probe's decided verdict no longer needs. The rates are
    /// identical to running each spec through
    /// [`CampaignRunner::run_with_shared_suites`] one at a time.
    ///
    /// # Errors
    ///
    /// Returns an error when a spec is invalid, expands to more than one
    /// cell, or a mission fails to assemble.
    pub fn run_probe_rates(
        &self,
        specs: Vec<CampaignSpec>,
        scenarios: Arc<Vec<Scenario>>,
    ) -> Result<Vec<ProbeRate>, CampaignError> {
        if specs.is_empty() {
            return Ok(Vec::new());
        }
        let missions_per_probe = Self::validate_probe_specs(&specs, &scenarios)?;
        if let Transport::Fabric { workers } = self.transport {
            let backend = transport::backend().ok_or_else(no_backend)?;
            return backend.run_probes(self, workers.max(1), &specs, &scenarios);
        }
        // With a journal attached, probes a previous incarnation completed
        // are replayed from their journaled outcome vectors (reduced by
        // the same pure prefix aggregation the live path uses) and only
        // the missing probes fly.
        let journal = self.probe_journal()?;
        let hashes = match &journal {
            Some(_) => Some(
                specs
                    .iter()
                    .map(CampaignSpec::config_hash)
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            None => None,
        };
        let mut rates: Vec<Option<ProbeRate>> = vec![None; specs.len()];
        let mut probes = Vec::with_capacity(specs.len());
        let mut probe_indices = Vec::with_capacity(specs.len());
        for (index, spec) in specs.into_iter().enumerate() {
            if let (Some(journal), Some(hashes)) = (&journal, &hashes) {
                if let Some(outcomes) = journal.recovered_probe(hashes[index]) {
                    if outcomes.len() != missions_per_probe {
                        return Err(CampaignError::Journal(format!(
                            "journaled probe {:#018x} carries {} outcomes but spec '{}' \
                             plans {missions_per_probe}",
                            hashes[index],
                            outcomes.len(),
                            spec.name
                        )));
                    }
                    rates[index] = Some(probe_rate_from_outcomes(
                        spec.probe_early_stop,
                        outcomes,
                        missions_per_probe,
                    ));
                    if mls_obs::enabled() {
                        instruments::journal_recovered().inc();
                    }
                    continue;
                }
            }
            let missions = spec.missions_per_cell();
            let progress = spec
                .probe_early_stop
                .map(|policy| CellProgress::new(policy, missions));
            let cell = spec
                .cells()
                .into_iter()
                .next()
                .expect("validated single cell");
            probes.push(ProbeJob {
                spec,
                cell,
                progress,
            });
            probe_indices.push(index);
        }
        let total = probes.len() * missions_per_probe;
        let mut probe_span = mls_obs::span("probe_batch");
        if probe_span.is_enabled() {
            probe_span
                .field("probes", probes.len())
                .field("missions_planned", total);
            mls_obs::progress_planned(total as u64);
        }
        let context = Arc::new(ProbeSetContext {
            probes,
            scenarios,
            missions_per_probe,
        });
        let job_context = context.clone();
        let results: Vec<Result<Option<bool>, CampaignError>> =
            self.executor.execute(total, self.threads, move |index| {
                run_probe_mission_job(&job_context, index)
            });

        let mut outcomes = Vec::with_capacity(total);
        for result in results {
            outcomes.push(result?);
        }
        for (probe_index, probe) in context.probes.iter().enumerate() {
            let slice =
                &outcomes[probe_index * missions_per_probe..(probe_index + 1) * missions_per_probe];
            // Journal the probe's full planned-length outcome vector the
            // moment the batch lands, before its rate is consumed.
            if let (Some(journal), Some(hashes)) = (&journal, &hashes) {
                journal.append_probe(hashes[probe_indices[probe_index]], slice)?;
            }
            let rate = probe_rate(probe, slice, missions_per_probe);
            if mls_obs::enabled() && rate.missions_flown < rate.missions_planned {
                let saved = (rate.missions_planned - rate.missions_flown) as u64;
                instruments::early_stops().inc();
                instruments::early_stop_missions_saved().add(saved);
                mls_obs::progress_early_stop(saved);
            }
            rates[probe_indices[probe_index]] = Some(rate);
        }
        Ok(rates
            .into_iter()
            .map(|rate| rate.expect("every probe resolved"))
            .collect())
    }

    /// Generates (or fetches from the suite cache) the benchmark scenario
    /// suite of one of the spec's families.
    ///
    /// # Errors
    ///
    /// Returns an error when the scenario generator rejects the dimensions.
    pub fn suite(
        &self,
        spec: &CampaignSpec,
        family: mls_sim_world::ScenarioFamily,
    ) -> Result<Arc<Vec<Scenario>>, CampaignError> {
        self.suites.get_or_generate(SuiteKey {
            family,
            suite_seed: spec.suite_seed(family),
            maps: spec.maps,
            scenarios_per_map: spec.scenarios_per_map,
        })
    }

    /// Generates (or fetches from the suite cache) the benchmark scenario
    /// suite of the spec's *first* family (the only family for pre-family
    /// specs and the falsification probes).
    ///
    /// # Errors
    ///
    /// Returns an error when the scenario generator rejects the dimensions.
    pub fn generate_scenarios(
        &self,
        spec: &CampaignSpec,
    ) -> Result<Arc<Vec<Scenario>>, CampaignError> {
        let family = spec
            .families
            .first()
            .copied()
            .ok_or_else(|| CampaignError::InvalidSpec {
                reason: "the spec sweeps no scenario family".to_string(),
            })?;
        self.suite(spec, family)
    }

    /// Generates (or fetches from the suite cache) one scenario suite per
    /// family of the spec, in [`CampaignSpec::families`] order, each from
    /// its [`CampaignSpec::suite_seed`].
    ///
    /// # Errors
    ///
    /// Returns an error when the scenario generator rejects the dimensions.
    pub fn suites_for(
        &self,
        spec: &CampaignSpec,
    ) -> Result<Vec<Arc<Vec<Scenario>>>, CampaignError> {
        spec.families
            .iter()
            .map(|&family| self.suite(spec, family))
            .collect()
    }

    /// Generates one scenario suite per family of the spec (the owned-copy
    /// form of [`CampaignRunner::suites_for`], kept for callers that want
    /// to mutate or persist the suites).
    ///
    /// # Errors
    ///
    /// Returns an error when the scenario generator rejects the dimensions.
    pub fn generate_suites(
        &self,
        spec: &CampaignSpec,
    ) -> Result<Vec<Vec<Scenario>>, CampaignError> {
        Ok(self
            .suites_for(spec)?
            .into_iter()
            .map(|suite| suite.as_ref().clone())
            .collect())
    }

    /// Re-executes the mission a trace header describes and returns the
    /// regenerated trace — the (seed, spec)-pure re-run behind replay
    /// verification.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::InvalidSpec`] when the header does not match
    /// the spec: drifted configuration hash, unknown cell, missing scenario
    /// or a seed that the spec's schedule does not produce.
    pub fn refly(
        &self,
        spec: &CampaignSpec,
        scenarios: &[Scenario],
        header: &TraceHeader,
    ) -> Result<Trace, CampaignError> {
        spec.validate()?;
        let reject = |reason: String| CampaignError::InvalidSpec { reason };
        let config_hash = spec.config_hash()?;
        if config_hash != header.config_hash {
            return Err(reject(format!(
                "trace was captured under config hash {:#x}, the spec hashes to {:#x}",
                header.config_hash, config_hash
            )));
        }
        let cells = spec.cells();
        let cell = cells
            .get(header.cell_index)
            .ok_or_else(|| reject(format!("cell {} is outside the grid", header.cell_index)))?;
        if cell.variant != header.variant {
            return Err(reject(format!(
                "cell {} flies {:?}, the trace recorded {:?}",
                header.cell_index, cell.variant, header.variant
            )));
        }
        if cell.family.label() != header.family {
            return Err(reject(format!(
                "cell {} flies the {} family, the trace recorded {}",
                header.cell_index,
                cell.family.label(),
                header.family
            )));
        }
        let scenario = scenarios
            .iter()
            .find(|s| s.id == header.scenario_id)
            .ok_or_else(|| {
                reject(format!(
                    "scenario {} is not in the suite",
                    header.scenario_id
                ))
            })?;
        // Scenario ids restart at 0 per family suite, so an id match alone
        // would happily re-fly another family's scenario and report the
        // byte mismatch as nondeterminism.
        if scenario.family != cell.family {
            return Err(reject(format!(
                "the supplied suite's scenario {} is from the {} family, cell {} flies {}",
                scenario.id,
                scenario.family.label(),
                header.cell_index,
                cell.family.label()
            )));
        }
        if spec.mission_seed(scenario.id, header.repeat) != header.seed {
            return Err(reject(format!(
                "seed {} is not the spec's seed for scenario {} repeat {}",
                header.seed, header.scenario_id, header.repeat
            )));
        }
        let recorder = RecorderConfig::from_header(header);
        let (_, trace) = fly_mission(
            spec,
            cell,
            scenario,
            header.repeat,
            config_hash,
            Some(&recorder),
        )?;
        trace.ok_or_else(|| reject("refly produced no trace".to_string()))
    }

    /// Replays a recorded trace and byte-compares the regenerated event
    /// stream against it.
    ///
    /// # Errors
    ///
    /// Returns the [`CampaignRunner::refly`] errors when the trace does not
    /// belong to this (spec, scenario suite).
    pub fn replay(
        &self,
        spec: &CampaignSpec,
        scenarios: &[Scenario],
        recorded: &Trace,
    ) -> Result<ReplayVerdict, CampaignError> {
        let regenerated = self.refly(spec, scenarios, &recorded.header)?;
        Ok(verify_replay(recorded, &regenerated))
    }

    /// Loads the trace a report links through the corpus index rooted at
    /// `corpus_root`, instead of trusting the link's recorded absolute
    /// path.
    ///
    /// A [`TraceLink::path`] is only valid in the filesystem layout the
    /// campaign ran in; archive or relocate the trace directory and every
    /// link dangles, so a replay against it used to fail with a bare I/O
    /// error. The corpus index stores root-relative paths, so resolving
    /// through it survives any relocation of the corpus tree as a whole.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Trace`] when the index is missing or
    /// malformed, and [`CampaignError::InvalidSpec`] when the index has no
    /// record for the link's mission or the record's seed disagrees.
    pub fn load_corpus_trace(corpus_root: &Path, link: &TraceLink) -> Result<Trace, CampaignError> {
        let corpus = TraceCorpus::open(corpus_root)?;
        let record = corpus
            .find_mission(link.cell_index, link.scenario_id, link.repeat)
            .ok_or_else(|| CampaignError::InvalidSpec {
                reason: format!(
                    "corpus index at {} has no record for cell {} scenario {} repeat {}",
                    corpus_root.display(),
                    link.cell_index,
                    link.scenario_id,
                    link.repeat
                ),
            })?;
        if record.seed != link.seed {
            return Err(CampaignError::InvalidSpec {
                reason: format!(
                    "corpus record for cell {} scenario {} repeat {} carries seed {}, \
                     the report links seed {}",
                    link.cell_index, link.scenario_id, link.repeat, record.seed, link.seed
                ),
            });
        }
        Ok(corpus.load(record)?)
    }

    /// Replays a report-linked trace resolved through the corpus index at
    /// `corpus_root` — the relocation-safe form of
    /// [`CampaignRunner::replay`].
    ///
    /// # Errors
    ///
    /// Returns the [`CampaignRunner::load_corpus_trace`] errors when the
    /// link cannot be resolved and the [`CampaignRunner::refly`] errors
    /// when the trace does not belong to this (spec, scenario suite).
    pub fn replay_from_corpus(
        &self,
        spec: &CampaignSpec,
        scenarios: &[Scenario],
        corpus_root: &Path,
        link: &TraceLink,
    ) -> Result<ReplayVerdict, CampaignError> {
        let recorded = Self::load_corpus_trace(corpus_root, link)?;
        self.replay(spec, scenarios, &recorded)
    }
}

/// One probe of a batched probe-set evaluation.
struct ProbeJob {
    spec: CampaignSpec,
    cell: CampaignCell,
    progress: Option<CellProgress>,
}

/// Shared context of one probe-set batch.
struct ProbeSetContext {
    probes: Vec<ProbeJob>,
    scenarios: Arc<Vec<Scenario>>,
    missions_per_probe: usize,
}

/// One probe's evaluated outcome: the success rate over the missions that
/// actually flew.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeRate {
    /// Success rate over the flown (decided-prefix) missions — identical
    /// to the `success_rate` a full [`CampaignReport`] cell would record.
    pub success_rate: f64,
    /// Missions actually flown.
    pub missions_flown: usize,
    /// Missions the schedule planned.
    pub missions_planned: usize,
}

/// Flies one mission of one campaign batch.
fn run_mission_job(context: &MissionContext, index: usize) -> Result<MissionSlot, CampaignError> {
    let cell = &context.cells[index / context.missions_per_cell];
    let scenarios = context.suites[cell.suite_index].as_ref();
    let within = index % context.missions_per_cell;
    let scenario = &scenarios[within % scenarios.len()];
    let repeat = within / scenarios.len();
    let progress = context
        .progress
        .as_ref()
        .map(|progress| &progress[cell.index]);
    // A slot a previous incarnation journaled is replayed, not re-flown.
    // Its outcome still feeds the live early-stop bookkeeping, so cells
    // whose decision the journal already contains skip their tails
    // exactly as the original run did.
    if let Some(journal) = &context.journal {
        if let Some(value) = journal.recovered_slot(context.config_hash, index) {
            let slot = crate::wire::slot_from_value(value)?;
            if let (Some(progress), MissionSlot::Flown(record)) = (progress, &slot) {
                progress.record(within, record.result == MissionResult::Success);
            }
            if mls_obs::enabled() {
                instruments::journal_recovered().inc();
            }
            return Ok(slot);
        }
    }
    if progress.is_some_and(|progress| progress.should_skip(within)) {
        if mls_obs::enabled() {
            instruments::missions_skipped().inc();
        }
        return Ok(MissionSlot::Skipped);
    }
    let (outcome, trace) = fly_mission(
        &context.spec,
        cell,
        scenario,
        repeat,
        context.config_hash,
        context.recorder.as_ref(),
    )?;
    if let Some(progress) = progress {
        progress.record(within, outcome.result == MissionResult::Success);
    }
    if mls_obs::enabled() {
        record_mission_outcome(outcome.result);
    }
    let mut record = MissionRecord::from_outcome(&outcome);
    record.trace = trace
        .filter(|_| context.spec.capture.keeps(outcome.result))
        .map(Box::new);
    let slot = MissionSlot::Flown(Box::new(record));
    if let Some(journal) = &context.journal {
        journal.append_slot(
            context.config_hash,
            index,
            &crate::wire::slot_to_value(&slot)?,
        )?;
    }
    Ok(slot)
}

/// Flies one mission of one probe batch, returning its success (or `None`
/// when the probe's verdict was already decided).
fn run_probe_mission_job(
    context: &ProbeSetContext,
    index: usize,
) -> Result<Option<bool>, CampaignError> {
    let probe = &context.probes[index / context.missions_per_probe];
    let within = index % context.missions_per_probe;
    let scenarios = context.scenarios.as_ref();
    let scenario = &scenarios[within % scenarios.len()];
    let repeat = within / scenarios.len();
    if probe
        .progress
        .as_ref()
        .is_some_and(|progress| progress.should_skip(within))
    {
        if mls_obs::enabled() {
            instruments::probe_skipped().inc();
        }
        return Ok(None);
    }
    let (outcome, _) = fly_mission(&probe.spec, &probe.cell, scenario, repeat, 0, None)?;
    let success = outcome.result == MissionResult::Success;
    if let Some(progress) = &probe.progress {
        progress.record(within, success);
    }
    if mls_obs::enabled() {
        instruments::probe_missions().inc();
        mls_obs::progress_mission_flown();
    }
    Ok(Some(success))
}

/// Aggregates one probe's mission outcomes into its rate, restricted to
/// the deterministic decided prefix.
fn probe_rate(probe: &ProbeJob, outcomes: &[Option<bool>], planned: usize) -> ProbeRate {
    let flown = match &probe.progress {
        Some(progress) => progress.verdict().0,
        None => planned,
    };
    let prefix = &outcomes[..flown];
    let successes = prefix.iter().filter(|o| **o == Some(true)).count();
    ProbeRate {
        success_rate: successes as f64 / flown.max(1) as f64,
        missions_flown: flown,
        missions_planned: planned,
    }
}

/// Flies one mission of one cell, attaching a flight recorder when
/// `recorder` is given. (`config_hash` is only stamped into the trace
/// header; recorder-less callers may pass 0.)
fn fly_mission(
    spec: &CampaignSpec,
    cell: &CampaignCell,
    scenario: &Scenario,
    repeat: usize,
    config_hash: u64,
    recorder: Option<&RecorderConfig>,
) -> Result<(MissionOutcome, Option<Trace>), CampaignError> {
    let seed = spec.mission_seed(scenario.id, repeat);
    let compute = ComputeModel::new(spec.profiles[cell.profile_index].clone()).map_err(|err| {
        CampaignError::InvalidSpec {
            reason: err.to_string(),
        }
    })?;
    let mut executor = mls_core::MissionExecutor::for_variant(
        scenario,
        cell.variant,
        spec.landing.clone(),
        compute,
        spec.executor.clone(),
        seed,
    )?;
    if !cell.faults.is_empty() {
        let context = MissionFaultContext {
            target_marker_id: scenario.target_marker_id,
            gps_target: scenario.gps_target,
            marker_size: scenario.marker_size,
            max_duration: spec.executor.max_duration,
        };
        // A single plan keeps the raw mission seed for its injector
        // stream (the composite sub-seed derivation only engages when
        // plans actually compose); several plans compose on derived
        // per-plan sub-seeds.
        executor = match cell.faults.as_slice() {
            [plan] => executor.with_fault_hook(Box::new(plan.injector(seed, &context))),
            plans => {
                executor.with_fault_hook(Box::new(CompositeInjector::new(plans, seed, &context)))
            }
        };
    }
    let mut handle = None;
    if let Some(config) = recorder {
        let mut header = config.header(
            &spec.name,
            seed,
            cell.variant,
            scenario.id,
            &scenario.name,
            cell.index,
            repeat,
            config_hash,
        );
        // Stamp the scenario family and the fault-space point the
        // mission flies, so the trace is self-describing about its suite
        // and falsification coordinates. Replay regenerates the same
        // stamps from the spec's cell, keeping the header
        // byte-comparison exact.
        header.family = cell.family.label().to_string();
        header.coordinates = cell
            .faults
            .iter()
            .map(|plan| mls_trace::AxisCoordinate {
                axis: plan.kind.label().to_string(),
                value: plan.intensity,
            })
            .collect();
        let trace_recorder = TraceRecorder::new(header);
        handle = Some(trace_recorder.handle());
        executor = executor.with_trace_sink(Box::new(trace_recorder));
    }
    let outcome = executor.run();
    Ok((outcome, handle.map(mls_trace::TraceHandle::finish)))
}

/// Aggregates one cell's records (already in deterministic job order,
/// restricted to the decided prefix) into a [`CellReport`] via the
/// streaming accumulators.
fn aggregate_cell(
    cell: &CampaignCell,
    records: &[&MissionRecord],
    early_stop: Option<EarlyStopSummary>,
) -> CellReport {
    let n = records.len().max(1) as f64;
    let rate = |predicate: &dyn Fn(&MissionRecord) -> bool| {
        records.iter().filter(|r| predicate(r)).count() as f64 / n
    };

    let mut landing_error = MetricAccumulator::new();
    let mut detection_error = MetricAccumulator::new();
    let mut duration = MetricAccumulator::new();
    let mut mean_cpu = MetricAccumulator::new();
    let mut peak_memory_mb = MetricAccumulator::new();
    let mut worst_planning_latency = MetricAccumulator::new();
    let mut gps_drift = MetricAccumulator::new();
    let mut visible = 0usize;
    let mut missed = 0usize;
    for record in records {
        if let Some(error) = record.landing_error {
            landing_error.push(error);
        }
        if let Some(error) = record.detection_error {
            detection_error.push(error);
        }
        duration.push(record.duration);
        mean_cpu.push(record.mean_cpu);
        peak_memory_mb.push(record.peak_memory_mb);
        worst_planning_latency.push(record.worst_planning_latency);
        gps_drift.push(record.gps_drift);
        visible += record.visible_frames;
        missed += record.missed_frames;
    }

    CellReport {
        index: cell.index,
        family: cell.family,
        variant: cell.variant,
        profile: cell.profile.clone(),
        faults: cell.faults.clone(),
        missions: records.len(),
        success_rate: rate(&|r| r.result == MissionResult::Success),
        collision_rate: rate(&|r| r.result == MissionResult::CollisionFailure),
        poor_landing_rate: rate(&|r| r.result == MissionResult::PoorLanding),
        failsafe_rate: rate(&|r| r.failsafe.is_some()),
        false_negative_rate: if visible == 0 {
            0.0
        } else {
            missed as f64 / visible as f64
        },
        landing_error: landing_error.summary(),
        detection_error: detection_error.summary(),
        duration: duration.summary(),
        mean_cpu: mean_cpu.summary(),
        peak_memory_mb: peak_memory_mb.summary(),
        worst_planning_latency: worst_planning_latency.summary(),
        gps_drift: gps_drift.summary(),
        early_stop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_clamps_threads() {
        assert_eq!(CampaignRunner::new(0).threads(), 1);
        assert_eq!(
            CampaignRunner::new(1_000_000).threads(),
            CampaignRunner::MAX_THREADS
        );
        assert!(CampaignRunner::auto().threads() >= 1);
    }

    #[test]
    fn runners_share_the_global_executor_and_suite_cache() {
        let a = CampaignRunner::new(2);
        let b = CampaignRunner::new(4);
        assert!(Arc::ptr_eq(a.executor(), b.executor()));
        let c = a.clone();
        assert!(Arc::ptr_eq(a.executor(), c.executor()));
    }

    #[test]
    fn mismatched_scenario_suite_is_rejected() {
        let spec = CampaignSpec::smoke();
        let err = CampaignRunner::new(1)
            .run_with_scenarios(&spec, &[])
            .unwrap_err();
        assert!(err.to_string().contains("scenario suite"));
    }

    #[test]
    fn invalid_spec_is_rejected_before_any_mission_flies() {
        let mut spec = CampaignSpec::smoke();
        spec.variants.clear();
        assert!(CampaignRunner::new(1).run(&spec).is_err());
    }

    #[test]
    fn probe_specs_with_several_cells_are_rejected() {
        let runner = CampaignRunner::new(1);
        let spec = CampaignSpec::smoke(); // baseline + 3 faults → 12 cells
        let suite = Arc::new(Vec::new());
        let err = runner.run_probe_rates(vec![spec], suite).unwrap_err();
        assert!(err.to_string().contains("exactly one cell"));
    }

    #[test]
    fn cell_progress_decides_on_the_deterministic_prefix() {
        let progress = CellProgress::new(EarlyStopPolicy::exact(0.75), 8);
        // Out-of-order arrival: the prefix cursor waits for mission 0.
        progress.record(1, false);
        progress.record(2, false);
        assert!(!progress.should_skip(3));
        progress.record(0, false);
        // Prefix 0..3 resolved: (0 + 5)/8 < 0.75 decides fail at 3.
        assert!(progress.should_skip(3));
        assert_eq!(progress.verdict(), (3, false));
        // A straggler that was already in flight does not move anything.
        progress.record(5, true);
        assert_eq!(progress.verdict(), (3, false));
    }

    #[test]
    fn cell_progress_without_a_decision_flies_everything() {
        let progress = CellProgress::new(EarlyStopPolicy::exact(0.5), 4);
        for within in 0..4 {
            assert!(!progress.should_skip(within));
            progress.record(within, within % 2 == 1);
        }
        let (flown, verdict) = progress.verdict();
        assert_eq!(flown, 4);
        assert!(verdict, "2/4 = 0.5 ≥ 0.5 passes");
    }
}
