//! The sharded campaign runner: a self-scheduling worker pool over OS
//! threads.
//!
//! Missions are independent, but their costs vary wildly (a V1 mission that
//! crashes in 40 s is an order of magnitude cheaper than a V3 mission that
//! searches, validates and descends). Static chunking therefore leaves
//! workers idle; instead every worker claims the next job off a shared
//! atomic cursor until the queue drains, so load balances automatically.
//!
//! Determinism is preserved by separating *execution* order from
//! *aggregation* order: each mission's seed is a pure function of its grid
//! coordinates ([`CampaignSpec::mission_seed`]), and the per-cell streaming
//! accumulators are fed in global job order after all workers have joined.
//! The resulting [`CampaignReport`] is byte-identical for a given spec
//! regardless of thread count.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use mls_compute::ComputeModel;
use mls_core::{FailsafeReason, MissionExecutor, MissionOutcome, MissionResult};
use mls_sim_world::{Scenario, ScenarioConfig, ScenarioGenerator};
use mls_trace::{
    triage, verify_replay, RecorderConfig, ReplayVerdict, Trace, TraceHeader, TraceRecorder,
};

use crate::faults::{CompositeInjector, MissionFaultContext};
use crate::report::{CampaignReport, CellReport, TraceLink};
use crate::spec::{CampaignCell, CampaignSpec};
use crate::stats::MetricAccumulator;
use crate::CampaignError;

/// Runs `count` independent jobs on a self-scheduling pool of `threads` OS
/// threads and returns the results in job order.
///
/// The closure receives the job index. Jobs are claimed dynamically off a
/// shared cursor (no static chunking), so heterogeneous job costs balance
/// across workers; results are re-sorted by index before returning, so the
/// output order never depends on scheduling.
///
/// # Panics
///
/// Panics when a worker thread panics.
pub fn execute_sharded<R, F>(count: usize, threads: usize, job: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, count);
    let cursor = AtomicUsize::new(0);
    let mut collected: Vec<(usize, R)> = Vec::with_capacity(count);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            handles.push(scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= count {
                        break;
                    }
                    local.push((index, job(index)));
                }
                local
            }));
        }
        for handle in handles {
            collected.extend(handle.join().expect("campaign worker thread panicked"));
        }
    });
    collected.sort_by_key(|(index, _)| *index);
    collected.into_iter().map(|(_, result)| result).collect()
}

/// The compact per-mission record the aggregation stage consumes.
#[derive(Debug, Clone, PartialEq)]
struct MissionRecord {
    result: MissionResult,
    failsafe: Option<FailsafeReason>,
    landing_error: Option<f64>,
    detection_error: Option<f64>,
    duration: f64,
    mean_cpu: f64,
    peak_memory_mb: f64,
    worst_planning_latency: f64,
    gps_drift: f64,
    visible_frames: usize,
    missed_frames: usize,
    /// The mission's captured trace, when the spec's policy kept it.
    trace: Option<Box<Trace>>,
}

impl MissionRecord {
    fn from_outcome(outcome: &MissionOutcome) -> Self {
        Self {
            result: outcome.result,
            failsafe: outcome.failsafe,
            landing_error: outcome.landing_error,
            detection_error: outcome.mean_detection_error,
            duration: outcome.duration,
            mean_cpu: outcome.mean_cpu,
            peak_memory_mb: outcome.peak_memory_mb,
            worst_planning_latency: outcome.worst_planning_latency,
            gps_drift: outcome.gps_drift,
            visible_frames: outcome.detection_stats.visible_frames,
            missed_frames: outcome.detection_stats.missed_frames,
            trace: None,
        }
    }
}

/// The campaign engine: expands a spec, flies it on the worker pool and
/// aggregates a deterministic report.
#[derive(Debug, Clone)]
pub struct CampaignRunner {
    threads: usize,
    trace_dir: Option<PathBuf>,
    recorder: RecorderConfig,
}

impl CampaignRunner {
    /// Upper bound on the worker-thread count: a typo'd `threads` value must
    /// not ask the OS for thousands of stacks.
    pub const MAX_THREADS: usize = 512;

    /// Creates a runner using `threads` worker threads (clamped to
    /// `1..=`[`CampaignRunner::MAX_THREADS`]).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.clamp(1, Self::MAX_THREADS),
            trace_dir: None,
            recorder: RecorderConfig::default(),
        }
    }

    /// Overrides the directory captured traces are persisted in (default:
    /// `traces/<campaign name>`).
    #[must_use]
    pub fn with_trace_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.trace_dir = Some(dir.into());
        self
    }

    /// Overrides the flight-recorder sizing (ring capacity, decimations).
    #[must_use]
    pub fn with_recorder_config(mut self, config: RecorderConfig) -> Self {
        self.recorder = config;
        self
    }

    /// Where a spec's traces land on disk.
    pub fn trace_dir(&self, spec: &CampaignSpec) -> PathBuf {
        self.trace_dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("traces").join(&spec.name))
    }

    /// A runner sized to the machine's available parallelism.
    pub fn auto() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        )
    }

    /// The worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs the campaign end to end: per-family scenario generation, the
    /// sharded mission sweep, and per-cell aggregation.
    ///
    /// # Errors
    ///
    /// Returns an error when the spec is invalid, scenario generation fails,
    /// or a landing system cannot be assembled.
    pub fn run(&self, spec: &CampaignSpec) -> Result<CampaignReport, CampaignError> {
        spec.validate()?;
        let suites = self.generate_suites(spec)?;
        self.run_with_suites(spec, &suites)
    }

    /// Runs a single-family campaign over an already-generated scenario
    /// suite (callers sweeping many specs over the same suite — e.g. the
    /// falsification search — generate it once and reuse it).
    ///
    /// # Errors
    ///
    /// Returns an error when the spec is invalid, sweeps more than one
    /// scenario family, or a landing system cannot be assembled.
    pub fn run_with_scenarios(
        &self,
        spec: &CampaignSpec,
        scenarios: &[Scenario],
    ) -> Result<CampaignReport, CampaignError> {
        spec.validate()?;
        if spec.families.len() != 1 {
            return Err(CampaignError::InvalidSpec {
                reason: format!(
                    "run_with_scenarios takes one suite but the spec sweeps {} families \
                     (use run or run_with_suites)",
                    spec.families.len()
                ),
            });
        }
        self.run_with_suites(spec, &[scenarios])
    }

    /// Runs the campaign over already-generated scenario suites, one per
    /// entry of [`CampaignSpec::families`], in the same order.
    ///
    /// # Errors
    ///
    /// Returns an error when the spec is invalid, the suites do not match
    /// the grid, or a landing system cannot be assembled.
    pub fn run_with_suites<S: AsRef<[Scenario]> + Sync>(
        &self,
        spec: &CampaignSpec,
        suites: &[S],
    ) -> Result<CampaignReport, CampaignError> {
        spec.validate()?;
        if suites.len() != spec.families.len() {
            return Err(CampaignError::InvalidSpec {
                reason: format!(
                    "{} scenario suites supplied but the spec sweeps {} families",
                    suites.len(),
                    spec.families.len()
                ),
            });
        }
        for (family, suite) in spec.families.iter().zip(suites) {
            if suite.as_ref().len() != spec.maps * spec.scenarios_per_map {
                return Err(CampaignError::InvalidSpec {
                    reason: format!(
                        "the {} scenario suite has {} scenarios but the spec's grid needs {}",
                        family.label(),
                        suite.as_ref().len(),
                        spec.maps * spec.scenarios_per_map
                    ),
                });
            }
        }
        let cells = spec.cells();
        let missions_per_cell = spec.missions_per_cell();
        let total = missions_per_cell * cells.len();
        let config_hash = spec.config_hash()?;
        let recorder = spec.capture.captures().then_some(self.recorder);

        // Job `i` maps to (cell, repeat, scenario) in row-major order, so a
        // cell's missions occupy one contiguous, ordered slice of the
        // results.
        let results: Vec<Result<MissionRecord, CampaignError>> =
            execute_sharded(total, self.threads, |index| {
                let cell = &cells[index / missions_per_cell];
                let scenarios = suites[cell.suite_index].as_ref();
                let within = index % missions_per_cell;
                let scenario = &scenarios[within % scenarios.len()];
                let repeat = within / scenarios.len();
                self.fly(spec, cell, scenario, repeat, config_hash, recorder.as_ref())
                    .map(|(outcome, trace)| {
                        let mut record = MissionRecord::from_outcome(&outcome);
                        record.trace = trace
                            .filter(|_| spec.capture.keeps(outcome.result))
                            .map(Box::new);
                        record
                    })
            });

        let mut records = Vec::with_capacity(total);
        for result in results {
            records.push(result?);
        }

        // Persist the kept traces (in deterministic grid order) and link
        // them from the report, each with its triage verdict.
        let trace_dir = self.trace_dir(spec);
        let mut traces = Vec::new();
        for (index, record) in records.iter().enumerate() {
            let Some(trace) = &record.trace else {
                continue;
            };
            let cell = &cells[index / missions_per_cell];
            let header = &trace.header;
            let path = trace_dir.join(format!(
                "c{:03}-s{:03}-r{}.jsonl",
                cell.index, header.scenario_id, header.repeat
            ));
            trace.write_to(&path)?;
            traces.push(TraceLink {
                cell_index: cell.index,
                cell_label: cell.label(),
                scenario_id: header.scenario_id,
                repeat: header.repeat,
                seed: header.seed,
                result: record.result,
                triage: triage(trace).class.map(|class| class.label().to_string()),
                path: path.display().to_string(),
            });
        }

        let cell_reports = cells
            .iter()
            .map(|cell| {
                let slice =
                    &records[cell.index * missions_per_cell..(cell.index + 1) * missions_per_cell];
                aggregate_cell(cell, slice)
            })
            .collect();

        Ok(CampaignReport {
            name: spec.name.clone(),
            seed: spec.seed,
            missions: total,
            cells: cell_reports,
            traces,
        })
    }

    /// Generates the benchmark scenario suite of the spec's *first* family
    /// (the only family for pre-family specs and the falsification probes).
    ///
    /// # Errors
    ///
    /// Returns an error when the scenario generator rejects the dimensions.
    pub fn generate_scenarios(&self, spec: &CampaignSpec) -> Result<Vec<Scenario>, CampaignError> {
        let family = spec
            .families
            .first()
            .copied()
            .ok_or_else(|| CampaignError::InvalidSpec {
                reason: "the spec sweeps no scenario family".to_string(),
            })?;
        self.generate_family_suite(spec, family)
    }

    /// Generates one scenario suite per family of the spec, in
    /// [`CampaignSpec::families`] order, each from its
    /// [`CampaignSpec::suite_seed`].
    ///
    /// # Errors
    ///
    /// Returns an error when the scenario generator rejects the dimensions.
    pub fn generate_suites(
        &self,
        spec: &CampaignSpec,
    ) -> Result<Vec<Vec<Scenario>>, CampaignError> {
        spec.families
            .iter()
            .map(|&family| self.generate_family_suite(spec, family))
            .collect()
    }

    /// Generates the suite of one family from its derived seed.
    fn generate_family_suite(
        &self,
        spec: &CampaignSpec,
        family: mls_sim_world::ScenarioFamily,
    ) -> Result<Vec<Scenario>, CampaignError> {
        let config = ScenarioConfig {
            family,
            maps: spec.maps,
            scenarios_per_map: spec.scenarios_per_map,
            ..ScenarioConfig::default()
        };
        Ok(ScenarioGenerator::new(config).generate_benchmark(spec.suite_seed(family))?)
    }

    /// Flies one mission of one cell, attaching a flight recorder when
    /// `recorder` is given.
    fn fly(
        &self,
        spec: &CampaignSpec,
        cell: &CampaignCell,
        scenario: &Scenario,
        repeat: usize,
        config_hash: u64,
        recorder: Option<&RecorderConfig>,
    ) -> Result<(MissionOutcome, Option<Trace>), CampaignError> {
        let seed = spec.mission_seed(scenario.id, repeat);
        let compute =
            ComputeModel::new(spec.profiles[cell.profile_index].clone()).map_err(|err| {
                CampaignError::InvalidSpec {
                    reason: err.to_string(),
                }
            })?;
        let mut executor = MissionExecutor::for_variant(
            scenario,
            cell.variant,
            spec.landing.clone(),
            compute,
            spec.executor.clone(),
            seed,
        )?;
        if !cell.faults.is_empty() {
            let context = MissionFaultContext {
                target_marker_id: scenario.target_marker_id,
                gps_target: scenario.gps_target,
                marker_size: scenario.marker_size,
                max_duration: spec.executor.max_duration,
            };
            // A single plan keeps the raw mission seed for its injector
            // stream (the composite sub-seed derivation only engages when
            // plans actually compose); several plans compose on derived
            // per-plan sub-seeds.
            executor = match cell.faults.as_slice() {
                [plan] => executor.with_fault_hook(Box::new(plan.injector(seed, &context))),
                plans => executor
                    .with_fault_hook(Box::new(CompositeInjector::new(plans, seed, &context))),
            };
        }
        let mut handle = None;
        if let Some(config) = recorder {
            let mut header = config.header(
                &spec.name,
                seed,
                cell.variant,
                scenario.id,
                &scenario.name,
                cell.index,
                repeat,
                config_hash,
            );
            // Stamp the scenario family and the fault-space point the
            // mission flies, so the trace is self-describing about its suite
            // and falsification coordinates. Replay regenerates the same
            // stamps from the spec's cell, keeping the header
            // byte-comparison exact.
            header.family = cell.family.label().to_string();
            header.coordinates = cell
                .faults
                .iter()
                .map(|plan| mls_trace::AxisCoordinate {
                    axis: plan.kind.label().to_string(),
                    value: plan.intensity,
                })
                .collect();
            let trace_recorder = TraceRecorder::new(header);
            handle = Some(trace_recorder.handle());
            executor = executor.with_trace_sink(Box::new(trace_recorder));
        }
        let outcome = executor.run();
        Ok((outcome, handle.map(mls_trace::TraceHandle::finish)))
    }

    /// Re-executes the mission a trace header describes and returns the
    /// regenerated trace — the (seed, spec)-pure re-run behind replay
    /// verification.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::InvalidSpec`] when the header does not match
    /// the spec: drifted configuration hash, unknown cell, missing scenario
    /// or a seed that the spec's schedule does not produce.
    pub fn refly(
        &self,
        spec: &CampaignSpec,
        scenarios: &[Scenario],
        header: &TraceHeader,
    ) -> Result<Trace, CampaignError> {
        spec.validate()?;
        let reject = |reason: String| CampaignError::InvalidSpec { reason };
        let config_hash = spec.config_hash()?;
        if config_hash != header.config_hash {
            return Err(reject(format!(
                "trace was captured under config hash {:#x}, the spec hashes to {:#x}",
                header.config_hash, config_hash
            )));
        }
        let cells = spec.cells();
        let cell = cells
            .get(header.cell_index)
            .ok_or_else(|| reject(format!("cell {} is outside the grid", header.cell_index)))?;
        if cell.variant != header.variant {
            return Err(reject(format!(
                "cell {} flies {:?}, the trace recorded {:?}",
                header.cell_index, cell.variant, header.variant
            )));
        }
        if cell.family.label() != header.family {
            return Err(reject(format!(
                "cell {} flies the {} family, the trace recorded {}",
                header.cell_index,
                cell.family.label(),
                header.family
            )));
        }
        let scenario = scenarios
            .iter()
            .find(|s| s.id == header.scenario_id)
            .ok_or_else(|| {
                reject(format!(
                    "scenario {} is not in the suite",
                    header.scenario_id
                ))
            })?;
        // Scenario ids restart at 0 per family suite, so an id match alone
        // would happily re-fly another family's scenario and report the
        // byte mismatch as nondeterminism.
        if scenario.family != cell.family {
            return Err(reject(format!(
                "the supplied suite's scenario {} is from the {} family, cell {} flies {}",
                scenario.id,
                scenario.family.label(),
                header.cell_index,
                cell.family.label()
            )));
        }
        if spec.mission_seed(scenario.id, header.repeat) != header.seed {
            return Err(reject(format!(
                "seed {} is not the spec's seed for scenario {} repeat {}",
                header.seed, header.scenario_id, header.repeat
            )));
        }
        let recorder = RecorderConfig::from_header(header);
        let (_, trace) = self.fly(
            spec,
            cell,
            scenario,
            header.repeat,
            config_hash,
            Some(&recorder),
        )?;
        trace.ok_or_else(|| reject("refly produced no trace".to_string()))
    }

    /// Replays a recorded trace and byte-compares the regenerated event
    /// stream against it.
    ///
    /// # Errors
    ///
    /// Returns the [`CampaignRunner::refly`] errors when the trace does not
    /// belong to this (spec, scenario suite).
    pub fn replay(
        &self,
        spec: &CampaignSpec,
        scenarios: &[Scenario],
        recorded: &Trace,
    ) -> Result<ReplayVerdict, CampaignError> {
        let regenerated = self.refly(spec, scenarios, &recorded.header)?;
        Ok(verify_replay(recorded, &regenerated))
    }
}

/// Aggregates one cell's records (already in deterministic job order) into a
/// [`CellReport`] via the streaming accumulators.
fn aggregate_cell(cell: &CampaignCell, records: &[MissionRecord]) -> CellReport {
    let n = records.len().max(1) as f64;
    let rate = |predicate: &dyn Fn(&MissionRecord) -> bool| {
        records.iter().filter(|r| predicate(r)).count() as f64 / n
    };

    let mut landing_error = MetricAccumulator::new();
    let mut detection_error = MetricAccumulator::new();
    let mut duration = MetricAccumulator::new();
    let mut mean_cpu = MetricAccumulator::new();
    let mut peak_memory_mb = MetricAccumulator::new();
    let mut worst_planning_latency = MetricAccumulator::new();
    let mut gps_drift = MetricAccumulator::new();
    let mut visible = 0usize;
    let mut missed = 0usize;
    for record in records {
        if let Some(error) = record.landing_error {
            landing_error.push(error);
        }
        if let Some(error) = record.detection_error {
            detection_error.push(error);
        }
        duration.push(record.duration);
        mean_cpu.push(record.mean_cpu);
        peak_memory_mb.push(record.peak_memory_mb);
        worst_planning_latency.push(record.worst_planning_latency);
        gps_drift.push(record.gps_drift);
        visible += record.visible_frames;
        missed += record.missed_frames;
    }

    CellReport {
        index: cell.index,
        family: cell.family,
        variant: cell.variant,
        profile: cell.profile.clone(),
        faults: cell.faults.clone(),
        missions: records.len(),
        success_rate: rate(&|r| r.result == MissionResult::Success),
        collision_rate: rate(&|r| r.result == MissionResult::CollisionFailure),
        poor_landing_rate: rate(&|r| r.result == MissionResult::PoorLanding),
        failsafe_rate: rate(&|r| r.failsafe.is_some()),
        false_negative_rate: if visible == 0 {
            0.0
        } else {
            missed as f64 / visible as f64
        },
        landing_error: landing_error.summary(),
        detection_error: detection_error.summary(),
        duration: duration.summary(),
        mean_cpu: mean_cpu.summary(),
        peak_memory_mb: peak_memory_mb.summary(),
        worst_planning_latency: worst_planning_latency.summary(),
        gps_drift: gps_drift.summary(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execute_sharded_preserves_job_order() {
        let results = execute_sharded(100, 7, |i| i * 2);
        assert_eq!(results.len(), 100);
        for (i, value) in results.iter().enumerate() {
            assert_eq!(*value, i * 2);
        }
    }

    #[test]
    fn execute_sharded_handles_degenerate_sizes() {
        assert!(execute_sharded(0, 4, |i| i).is_empty());
        assert_eq!(execute_sharded(1, 16, |i| i + 1), vec![1]);
    }

    #[test]
    fn runner_clamps_threads() {
        assert_eq!(CampaignRunner::new(0).threads(), 1);
        assert_eq!(
            CampaignRunner::new(1_000_000).threads(),
            CampaignRunner::MAX_THREADS
        );
        assert!(CampaignRunner::auto().threads() >= 1);
    }

    #[test]
    fn mismatched_scenario_suite_is_rejected() {
        let spec = CampaignSpec::smoke();
        let err = CampaignRunner::new(1)
            .run_with_scenarios(&spec, &[])
            .unwrap_err();
        assert!(err.to_string().contains("scenario suite"));
    }

    #[test]
    fn invalid_spec_is_rejected_before_any_mission_flies() {
        let mut spec = CampaignSpec::smoke();
        spec.variants.clear();
        assert!(CampaignRunner::new(1).run(&spec).is_err());
    }
}
