//! The persistent work-stealing mission executor.
//!
//! Before this module existed, every campaign call spun up its own OS
//! threads via a scoped-thread `execute_sharded` helper and tore them down
//! when the batch drained. One campaign pays that once; a falsification
//! search pays it *per probe* — hundreds of pool setups and teardowns per
//! space, each over a batch of only a handful of missions. The
//! [`MissionExecutor`] here replaces that: a pool of persistent worker
//! threads, owned by the process and shared (via [`MissionExecutor::global`])
//! across campaigns, search probes and replay verification.
//!
//! Scheduling stays the self-scheduling / work-stealing design of the old
//! helper: every batch carries a shared atomic cursor and any participating
//! worker (including the submitting thread) claims the next unclaimed job
//! until the batch drains, so heterogeneous mission costs balance
//! automatically and no static chunking underfills a worker. Determinism is
//! untouched — job *results* are reassembled in index order, and mission
//! seeds are pure functions of grid coordinates, so nothing observable
//! depends on which worker ran which job.
//!
//! The submitting thread always participates in draining its own batch.
//! That keeps a one-thread configuration allocation-free (no worker is ever
//! spawned), guarantees forward progress even when every pool worker is
//! busy with another batch, and makes nested submissions deadlock-free.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Cached executor instruments (see [`crate::obs_util`]).
mod instruments {
    use crate::obs_util::{cached_counter, cached_gauge, cached_seconds_histogram};

    cached_counter!(batches, "mls_executor_batches_total");
    cached_counter!(caller_jobs, "mls_executor_caller_jobs_total");
    cached_counter!(worker_jobs, "mls_executor_worker_jobs_total");
    cached_counter!(worker_spawns, "mls_executor_worker_spawn_total");
    cached_counter!(job_panics, "mls_executor_job_panics_total");
    // Batches queued and waiting for helper workers right now.
    cached_gauge!(queue_depth, "mls_executor_queue_depth");
    // Pool workers alive (they persist once spawned).
    cached_gauge!(workers_alive, "mls_executor_workers");
    // Wall-clock cost of individual jobs (worker utilization is this
    // histogram's sum over the batch span's wall time).
    cached_seconds_histogram!(job_seconds, "mls_executor_job_seconds");
}

/// Type-erased view of a submitted batch, so one pool serves batches of
/// different result types.
trait BatchRun: Send + Sync {
    /// Claims and runs one job (`as_helper` marks pool workers, as opposed
    /// to the submitting thread draining its own batch); returns `false`
    /// when no unclaimed jobs remain (the claimer should move on).
    fn run_one(&self, as_helper: bool) -> bool;
    /// Whether every job has been claimed (not necessarily finished).
    fn exhausted(&self) -> bool;
    /// Registers a worker against the batch's concurrency cap; `false`
    /// when the cap is already reached.
    fn try_join(&self) -> bool;
    /// Releases a slot taken by [`BatchRun::try_join`].
    fn leave(&self);
}

/// One submitted batch: the job closure, the work-stealing cursor and the
/// result slots the submitter collects.
struct Batch<R> {
    job: Box<dyn Fn(usize) -> R + Send + Sync>,
    count: usize,
    cursor: AtomicUsize,
    /// Concurrency cap for this batch (the submitting thread counts as one).
    max_workers: usize,
    active: AtomicUsize,
    state: Mutex<BatchState<R>>,
    finished: Condvar,
}

struct BatchState<R> {
    results: Vec<Option<R>>,
    done: usize,
    /// The first job panic, propagated to the submitter.
    panic: Option<Box<dyn Any + Send>>,
}

impl<R: Send> BatchRun for Batch<R> {
    fn run_one(&self, as_helper: bool) -> bool {
        let index = self.cursor.fetch_add(1, Ordering::Relaxed);
        if index >= self.count {
            return false;
        }
        let observing = mls_obs::enabled();
        let started = observing.then(Instant::now);
        let outcome = catch_unwind(AssertUnwindSafe(|| (self.job)(index)));
        if observing {
            if let Some(started) = started {
                instruments::job_seconds().observe(started.elapsed().as_secs_f64());
            }
            if as_helper {
                instruments::worker_jobs().inc();
            } else {
                instruments::caller_jobs().inc();
            }
        }
        let mut state = self.state.lock().expect("batch state poisoned");
        match outcome {
            Ok(result) => state.results[index] = Some(result),
            Err(payload) => {
                let payload = attach_panic_context(payload, index, as_helper);
                if state.panic.is_none() {
                    state.panic = Some(payload);
                }
            }
        }
        state.done += 1;
        if state.done == self.count {
            self.finished.notify_all();
        }
        true
    }

    fn exhausted(&self) -> bool {
        self.cursor.load(Ordering::Relaxed) >= self.count
    }

    fn try_join(&self) -> bool {
        self.active
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |active| {
                (active < self.max_workers).then_some(active + 1)
            })
            .is_ok()
    }

    fn leave(&self) {
        self.active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Wraps a job panic payload with the context `catch_unwind` erased: which
/// job index died, and on which thread (pool worker name, or the
/// submitting thread). String-ish payloads are rewrapped with the context
/// prefixed; exotic payload types are propagated untouched rather than
/// lossily stringified. Also records the panic as a terminal obs event.
fn attach_panic_context(
    payload: Box<dyn Any + Send>,
    index: usize,
    as_helper: bool,
) -> Box<dyn Any + Send> {
    let thread = std::thread::current();
    let where_ = if as_helper {
        format!("pool worker {}", thread.name().unwrap_or("unnamed"))
    } else {
        "the submitting thread".to_string()
    };
    let message = if let Some(s) = payload.downcast_ref::<&str>() {
        Some((*s).to_string())
    } else {
        payload.downcast_ref::<String>().cloned()
    };
    if mls_obs::enabled() {
        instruments::job_panics().inc();
        mls_obs::event(
            "executor_panic",
            &[
                ("job", mls_obs::FieldValue::from(index)),
                ("thread", mls_obs::FieldValue::from(where_.as_str())),
                (
                    "message",
                    mls_obs::FieldValue::from(message.as_deref().unwrap_or("<non-string payload>")),
                ),
            ],
        );
    }
    match message {
        Some(message) => Box::new(format!(
            "mission job {index} panicked on {where_}: {message}"
        )),
        None => payload,
    }
}

/// State shared between the pool handle and its worker threads.
struct PoolShared {
    queue: Mutex<VecDeque<Arc<dyn BatchRun>>>,
    available: Condvar,
    shutdown: AtomicBool,
}

impl PoolShared {
    /// Blocks until a joinable batch is queued (returns it) or the pool
    /// shuts down (returns `None`).
    fn next_batch(&self) -> Option<Arc<dyn BatchRun>> {
        let mut queue = self.queue.lock().expect("executor queue poisoned");
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                return None;
            }
            queue.retain(|batch| !batch.exhausted());
            if let Some(batch) = queue.iter().find(|batch| batch.try_join()) {
                return Some(batch.clone());
            }
            queue = self.available.wait(queue).expect("executor queue poisoned");
        }
    }
}

/// A persistent pool of mission worker threads with work-stealing batch
/// execution.
///
/// Workers are spawned lazily, the first time a batch actually needs them,
/// and then live for the lifetime of the pool — a falsification search
/// running hundreds of small probe campaigns reuses the same threads
/// throughout instead of paying pool setup and teardown per probe. One
/// process-wide pool ([`MissionExecutor::global`]) is shared by every
/// [`CampaignRunner`](crate::CampaignRunner) unless a private pool is
/// attached explicitly.
pub struct MissionExecutor {
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Hard cap on worker threads this pool will ever spawn.
    max_workers: usize,
}

impl std::fmt::Debug for MissionExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MissionExecutor")
            .field("spawned", &self.spawned())
            .field("max_workers", &self.max_workers)
            .finish()
    }
}

impl MissionExecutor {
    /// Creates an empty pool that will spawn at most `max_workers` worker
    /// threads, lazily, as batches demand them.
    pub fn new(max_workers: usize) -> Arc<Self> {
        Arc::new(Self {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                shutdown: AtomicBool::new(false),
            }),
            workers: Mutex::new(Vec::new()),
            max_workers,
        })
    }

    /// The process-wide shared pool: sized by the machine, reused by every
    /// campaign, probe and replay in the process.
    pub fn global() -> Arc<Self> {
        static GLOBAL: OnceLock<Arc<MissionExecutor>> = OnceLock::new();
        GLOBAL
            .get_or_init(|| Self::new(crate::CampaignRunner::MAX_THREADS))
            .clone()
    }

    /// Worker threads spawned so far (they persist once spawned).
    pub fn spawned(&self) -> usize {
        self.workers
            .lock()
            .expect("executor workers poisoned")
            .len()
    }

    /// Runs `count` jobs with at most `threads` concurrent executors (the
    /// calling thread is one of them) and returns the results in job
    /// order.
    ///
    /// Jobs are claimed dynamically off a shared cursor, so heterogeneous
    /// job costs balance across workers; the result order never depends on
    /// scheduling. The calling thread participates in draining the batch,
    /// so a `threads == 1` batch runs entirely on the caller and spawns
    /// nothing.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic raised by a job.
    pub fn execute<R, F>(&self, count: usize, threads: usize, job: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize) -> R + Send + Sync + 'static,
    {
        if count == 0 {
            return Vec::new();
        }
        let threads = threads.clamp(1, count);
        let mut batch_span = mls_obs::span("executor_batch");
        batch_span.field("jobs", count).field("threads", threads);
        if batch_span.is_enabled() {
            instruments::batches().inc();
        }
        let batch = Arc::new(Batch {
            job: Box::new(job),
            count,
            cursor: AtomicUsize::new(0),
            max_workers: threads,
            active: AtomicUsize::new(1), // the submitting thread
            state: Mutex::new(BatchState {
                results: (0..count).map(|_| None).collect(),
                done: 0,
                panic: None,
            }),
            finished: Condvar::new(),
        });

        // Helpers beyond the caller are only useful when the batch allows
        // more than one concurrent executor.
        if threads > 1 {
            self.ensure_workers(threads - 1);
            let erased: Arc<dyn BatchRun> = batch.clone();
            let mut queue = self.shared.queue.lock().expect("executor queue poisoned");
            queue.push_back(erased);
            if mls_obs::enabled() {
                instruments::queue_depth().set(queue.len() as f64);
            }
            drop(queue);
            self.shared.available.notify_all();
        }

        // The caller drains its own batch alongside the pool workers.
        while batch.run_one(false) {}

        // Drop exhausted batches from the queue eagerly: idle workers only
        // prune on their next wakeup, which may never come, and a lingering
        // batch pins its job closure (and everything the closure captured —
        // suites, specs) for the pool's lifetime.
        if threads > 1 {
            let mut queue = self.shared.queue.lock().expect("executor queue poisoned");
            queue.retain(|queued| !queued.exhausted());
            if mls_obs::enabled() {
                instruments::queue_depth().set(queue.len() as f64);
            }
        }

        let mut state = batch.state.lock().expect("batch state poisoned");
        while state.done < count {
            state = batch.finished.wait(state).expect("batch state poisoned");
        }
        if let Some(payload) = state.panic.take() {
            drop(state);
            resume_unwind(payload);
        }
        let results = state
            .results
            .iter_mut()
            .map(|slot| slot.take().expect("a finished batch has every result"))
            .collect();
        drop(state);
        drop(batch_span);
        results
    }

    /// Spawns workers until at least `needed` exist (capped by
    /// `max_workers`).
    fn ensure_workers(&self, needed: usize) {
        let needed = needed.min(self.max_workers);
        let mut workers = self.workers.lock().expect("executor workers poisoned");
        while workers.len() < needed {
            let shared = self.shared.clone();
            let name = format!("mls-mission-{}", workers.len());
            workers.push(
                std::thread::Builder::new()
                    .name(name)
                    .spawn(move || {
                        while let Some(batch) = shared.next_batch() {
                            while batch.run_one(true) {}
                            batch.leave();
                        }
                    })
                    .expect("spawning a mission worker thread failed"),
            );
            if mls_obs::enabled() {
                instruments::worker_spawns().inc();
                instruments::workers_alive().set(workers.len() as f64);
            }
        }
    }
}

impl Drop for MissionExecutor {
    fn drop(&mut self) {
        {
            // The store must happen under the queue lock: a worker between
            // its shutdown check and its Condvar wait would otherwise miss
            // this (final) notify and sleep forever, hanging the join
            // below.
            let _queue = self.shared.queue.lock().expect("executor queue poisoned");
            self.shared.shutdown.store(true, Ordering::Relaxed);
            self.shared.available.notify_all();
        }
        let workers = std::mem::take(&mut *self.workers.lock().expect("executor workers poisoned"));
        for worker in workers {
            // A worker that panicked already surfaced the panic through the
            // submitting batch; joining best-effort keeps shutdown clean.
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execute_preserves_job_order() {
        let pool = MissionExecutor::new(8);
        let results = pool.execute(100, 7, |i| i * 2);
        assert_eq!(results.len(), 100);
        for (i, value) in results.iter().enumerate() {
            assert_eq!(*value, i * 2);
        }
    }

    #[test]
    fn execute_handles_degenerate_sizes() {
        let pool = MissionExecutor::new(4);
        assert!(pool.execute(0, 4, |i| i).is_empty());
        assert_eq!(pool.execute(1, 16, |i| i + 1), vec![1]);
    }

    #[test]
    fn single_thread_batches_spawn_no_workers() {
        let pool = MissionExecutor::new(4);
        let results = pool.execute(10, 1, |i| i + 1);
        assert_eq!(results[9], 10);
        assert_eq!(pool.spawned(), 0, "the caller drains 1-thread batches");
    }

    #[test]
    fn workers_persist_across_batches() {
        let pool = MissionExecutor::new(4);
        pool.execute(8, 3, |i| i);
        let after_first = pool.spawned();
        assert!((1..=2).contains(&after_first));
        pool.execute(8, 3, |i| i);
        assert_eq!(pool.spawned(), after_first, "no re-spawn per batch");
    }

    #[test]
    fn job_panics_propagate_to_the_submitter() {
        let pool = MissionExecutor::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.execute(4, 2, |i| {
                if i == 2 {
                    panic!("mission failed hard");
                }
                i
            })
        }));
        let payload = result.expect_err("the job panic must reach the caller");
        let message = payload
            .downcast_ref::<String>()
            .expect("string panic payloads stay strings");
        assert!(
            message.starts_with("mission job 2 panicked on "),
            "panic context missing: {message}"
        );
        assert!(
            message.ends_with(": mission failed hard"),
            "original message missing: {message}"
        );
        // The pool survives a panicking batch.
        assert_eq!(pool.execute(3, 2, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn non_string_panic_payloads_propagate_untouched() {
        let pool = MissionExecutor::new(1);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.execute(1, 1, |_| -> usize { std::panic::panic_any(42usize) })
        }));
        let payload = result.expect_err("the panic must reach the caller");
        assert_eq!(payload.downcast_ref::<usize>(), Some(&42));
    }

    #[test]
    fn global_pool_is_shared() {
        assert!(Arc::ptr_eq(
            &MissionExecutor::global(),
            &MissionExecutor::global()
        ));
    }

    #[test]
    fn concurrent_submissions_both_complete() {
        let pool = MissionExecutor::new(4);
        let other = pool.clone();
        let handle = std::thread::spawn(move || other.execute(50, 2, |i| i));
        let mine = pool.execute(50, 2, |i| i + 1);
        let theirs = handle.join().unwrap();
        assert_eq!(mine[49], 50);
        assert_eq!(theirs[49], 49);
    }
}
