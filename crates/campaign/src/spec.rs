//! Declarative campaign specifications.
//!
//! A [`CampaignSpec`] describes a full dependability sweep — scenario suite ×
//! system variants × compute profiles × fault plans — as plain serializable
//! data, so campaigns can be versioned, diffed and replayed. The spec itself
//! never runs anything; the [`runner`](crate::runner) expands it into
//! missions with per-mission deterministic seeds.

use mls_compute::ComputeProfile;
use mls_core::{ExecutorConfig, LandingConfig, SystemVariant};
use mls_sim_world::ScenarioFamily;
use mls_trace::TracePolicy;
use serde::{Deserialize, Serialize};

use crate::faults::{FaultKind, FaultPlan};
use crate::CampaignError;

/// Early-stopping policy for probe evaluation: a cell's remaining missions
/// are cancelled once the missions already flown decide pass/fail against
/// `threshold`.
///
/// Two bounds compose, both pure functions of the mission outcomes *in job
/// order* (so the decision — and therefore the report — is independent of
/// the worker-thread count):
///
/// * the **exact** bound: with `s` successes among the first `n` of `N`
///   missions, the final rate is bracketed by `[s/N, (s + N − n)/N]`; once
///   the bracket falls entirely on one side of the threshold the verdict
///   cannot change, and the cell's classification is guaranteed identical
///   to flying every mission;
/// * a **Hoeffding** bound, engaged when `confidence > 0`: stop once the
///   running mean clears the threshold by
///   `ε = sqrt(ln(1/confidence) / 2n)`, accepting a `confidence`
///   probability of misclassifying the cell in exchange for stopping
///   earlier on long repeat schedules.
///
/// With `confidence == 0` (the default used for search probes) only the
/// exact bound engages: early-stopped pass/fail verdicts match full
/// evaluation exactly, while the *recorded* success rate becomes the rate
/// over the missions actually flown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EarlyStopPolicy {
    /// The success-rate threshold the cell is decided against.
    pub threshold: f64,
    /// Acceptable misclassification probability for the Hoeffding bound;
    /// `0` disables it and keeps decisions exact.
    pub confidence: f64,
}

impl EarlyStopPolicy {
    /// An exact-bound-only policy: decisions are guaranteed to match full
    /// evaluation.
    pub fn exact(threshold: f64) -> Self {
        Self {
            threshold,
            confidence: 0.0,
        }
    }

    /// The verdict (`true` = pass, success rate ≥ threshold) after `flown`
    /// of `planned` missions produced `successes`, or `None` while the
    /// remaining missions could still swing the cell.
    pub fn decide(&self, successes: usize, flown: usize, planned: usize) -> Option<bool> {
        if flown == 0 || planned == 0 {
            return None;
        }
        let s = successes as f64;
        let n = flown as f64;
        let total = planned as f64;
        // Exact bracket on the final rate.
        if (s + (total - n)) / total < self.threshold {
            return Some(false);
        }
        if s / total >= self.threshold {
            return Some(true);
        }
        // Hoeffding: the running mean is far enough from the threshold.
        if self.confidence > 0.0 && flown < planned {
            let epsilon = ((1.0 / self.confidence).ln() / (2.0 * n)).sqrt();
            let mean = s / n;
            if mean + epsilon < self.threshold {
                return Some(false);
            }
            if mean - epsilon >= self.threshold {
                return Some(true);
            }
        }
        None
    }

    /// Validates the policy's parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::InvalidSpec`] when a parameter is out of
    /// range.
    pub fn validate(&self) -> Result<(), CampaignError> {
        // 1.0 is meaningful (a single failed mission decides "fail", a
        // pass needs a perfect cell); 0 or below would decide "pass"
        // unconditionally and above 1 "fail" unconditionally.
        if !(self.threshold > 0.0 && self.threshold <= 1.0) {
            return Err(CampaignError::InvalidSpec {
                reason: "early-stop threshold must lie in (0, 1]".to_string(),
            });
        }
        if !(0.0..1.0).contains(&self.confidence) {
            return Err(CampaignError::InvalidSpec {
                reason: "early-stop confidence must lie in [0, 1)".to_string(),
            });
        }
        Ok(())
    }
}

/// A declarative fault-injection campaign.
///
/// `Deserialize` is implemented by hand so spec JSONs written before the
/// trace subsystem (no `capture` key), the falsification subsystem (no
/// `combos` key) or scenario families (no `families` key) still parse with
/// the old semantics — the vendored serde has no `#[serde(default)]`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CampaignSpec {
    /// Campaign name, embedded in reports.
    pub name: String,
    /// Master seed every mission seed derives from.
    pub seed: u64,
    /// Number of benchmark maps.
    pub maps: usize,
    /// Scenarios generated per map (half normal, half adverse weather).
    pub scenarios_per_map: usize,
    /// Scenario families swept as a grid axis: each family gets its own
    /// deterministic scenario suite (derived via [`CampaignSpec::suite_seed`])
    /// and its own block of cells, so open-vs-constrained contrasts come out
    /// of one campaign report.
    pub families: Vec<ScenarioFamily>,
    /// Repetitions of every scenario per cell.
    pub repeats: usize,
    /// System generations under test.
    pub variants: Vec<SystemVariant>,
    /// Compute platforms under test.
    pub profiles: Vec<ComputeProfile>,
    /// Whether a fault-free baseline cell is included per (variant, profile).
    pub baseline: bool,
    /// Single-fault plans swept per (variant, profile): one cell each.
    pub faults: Vec<FaultPlan>,
    /// Multi-fault combinations swept per (variant, profile): one cell each,
    /// all plans of a combo active concurrently in every mission of the cell
    /// — a *point* of a multi-dimensional fault space
    /// ([`crate::faults::FaultSpace`]).
    pub combos: Vec<Vec<FaultPlan>>,
    /// Landing-system configuration flown in every mission.
    pub landing: LandingConfig,
    /// Mission-executor configuration.
    pub executor: ExecutorConfig,
    /// Which missions fly with a flight recorder attached and keep their
    /// traces ([`TracePolicy::Off`] records nothing).
    pub capture: TracePolicy,
    /// Early-stopping policy for the cells' mission schedules: `None`
    /// (the default for campaigns) flies every mission; `Some` cancels a
    /// cell's remaining missions once the flown prefix decides pass/fail
    /// against the policy's threshold. The falsification engine turns this
    /// on for its probe campaigns.
    pub probe_early_stop: Option<EarlyStopPolicy>,
}

impl serde::Deserialize for CampaignSpec {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self {
            name: serde::de_field(value, "name")?,
            seed: serde::de_field(value, "seed")?,
            maps: serde::de_field(value, "maps")?,
            scenarios_per_map: serde::de_field(value, "scenarios_per_map")?,
            // Specs predating scenario families swept the open suite only.
            families: match value.get("families") {
                Some(inner) => serde::Deserialize::from_value(inner)?,
                None => vec![ScenarioFamily::Open],
            },
            repeats: serde::de_field(value, "repeats")?,
            variants: serde::de_field(value, "variants")?,
            profiles: serde::de_field(value, "profiles")?,
            baseline: serde::de_field(value, "baseline")?,
            faults: serde::de_field(value, "faults")?,
            // Specs predating the falsification subsystem have no combos.
            combos: match value.get("combos") {
                Some(inner) => serde::Deserialize::from_value(inner)?,
                None => Vec::new(),
            },
            landing: serde::de_field(value, "landing")?,
            executor: serde::de_field(value, "executor")?,
            // Specs predating the trace subsystem have no capture key.
            capture: match value.get("capture") {
                Some(inner) => serde::Deserialize::from_value(inner)?,
                None => TracePolicy::Off,
            },
            // Specs predating batched probe evaluation flew every mission.
            probe_early_stop: match value.get("probe_early_stop") {
                Some(inner) => serde::Deserialize::from_value(inner)?,
                None => None,
            },
        })
    }
}

/// One cell of the campaign grid: a (family, variant, profile, fault point)
/// combination flown over the family's scenario suite.
///
/// `Deserialize` is implemented by hand so cells persisted before scenario
/// families existed (no `family` / `suite_index` keys) still parse as open
/// cells — the vendored serde has no `#[serde(default)]`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CampaignCell {
    /// Position of the cell in the expanded grid.
    pub index: usize,
    /// Scenario family whose suite the cell flies over.
    pub family: ScenarioFamily,
    /// Index into [`CampaignSpec::families`] (the runner keeps one scenario
    /// suite per family).
    pub suite_index: usize,
    /// System generation.
    pub variant: SystemVariant,
    /// Index into [`CampaignSpec::profiles`].
    pub profile_index: usize,
    /// Profile name (for reports).
    pub profile: String,
    /// The fault plans active concurrently in every mission of the cell;
    /// empty for the baseline cell, one entry for a classic single-fault
    /// sweep cell, several for a multi-dimensional fault-space point.
    pub faults: Vec<FaultPlan>,
}

impl serde::Deserialize for CampaignCell {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self {
            index: serde::de_field(value, "index")?,
            // Cells persisted before scenario families were all open.
            family: match value.get("family") {
                Some(inner) => serde::Deserialize::from_value(inner)?,
                None => ScenarioFamily::Open,
            },
            suite_index: match value.get("suite_index") {
                Some(inner) => serde::Deserialize::from_value(inner)?,
                None => 0,
            },
            variant: serde::de_field(value, "variant")?,
            profile_index: serde::de_field(value, "profile_index")?,
            profile: serde::de_field(value, "profile")?,
            faults: serde::de_field(value, "faults")?,
        })
    }
}

impl CampaignCell {
    /// Stable row label (`MLS-V3/jetson-nano-maxn/gps-bias@0.500`,
    /// multi-fault plans joined with `+`). Non-open families are prefixed
    /// (`constrained-pad/MLS-V2/desktop-sil/baseline`), so legacy labels are
    /// unchanged.
    pub fn label(&self) -> String {
        let base = format!(
            "{}/{}/{}",
            self.variant.label(),
            self.profile,
            fault_point_label(&self.faults)
        );
        match self.family {
            ScenarioFamily::Open => base,
            family => format!("{}/{base}", family.label()),
        }
    }
}

/// Renders a fault point for report rows: `baseline` when empty, plan
/// labels joined with `+` otherwise.
pub fn fault_point_label(faults: &[FaultPlan]) -> String {
    if faults.is_empty() {
        "baseline".to_string()
    } else {
        faults
            .iter()
            .map(FaultPlan::label)
            .collect::<Vec<_>>()
            .join("+")
    }
}

impl Default for CampaignSpec {
    fn default() -> Self {
        Self {
            name: "campaign".to_string(),
            seed: 2025,
            maps: 3,
            scenarios_per_map: 4,
            families: vec![ScenarioFamily::Open],
            repeats: 1,
            variants: SystemVariant::ALL.to_vec(),
            profiles: vec![ComputeProfile::desktop_sil()],
            baseline: true,
            faults: Vec::new(),
            combos: Vec::new(),
            landing: LandingConfig::default(),
            executor: ExecutorConfig::default(),
            capture: TracePolicy::Off,
            probe_early_stop: None,
        }
    }
}

impl CampaignSpec {
    /// A minimal smoke campaign: one map, two scenarios, three variants,
    /// three fault kinds at a single mid intensity — small enough for tests
    /// and examples, broad enough to exercise every engine stage.
    pub fn smoke() -> Self {
        Self {
            name: "smoke".to_string(),
            maps: 1,
            scenarios_per_map: 2,
            faults: vec![
                FaultPlan::new(FaultKind::MarkerOcclusion, 0.6),
                FaultPlan::new(FaultKind::GpsBias, 0.6),
                FaultPlan::new(FaultKind::ComputeThrottle, 0.6),
            ],
            ..Self::default()
        }
    }

    /// The paper-scale fault study: the full 10×10 benchmark, every variant,
    /// SIL and HIL compute profiles, every fault kind at three intensities.
    pub fn full_fault_study() -> Self {
        let mut faults = Vec::new();
        for kind in FaultKind::ALL {
            for intensity in [0.25, 0.5, 1.0] {
                faults.push(FaultPlan::new(kind, intensity));
            }
        }
        Self {
            name: "full-fault-study".to_string(),
            maps: 10,
            scenarios_per_map: 10,
            profiles: vec![
                ComputeProfile::desktop_sil(),
                ComputeProfile::jetson_nano_maxn(),
            ],
            faults,
            ..Self::default()
        }
    }

    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::InvalidSpec`] when the grid is empty or a
    /// parameter is out of range.
    pub fn validate(&self) -> Result<(), CampaignError> {
        let reject = |reason: &str| {
            Err(CampaignError::InvalidSpec {
                reason: reason.to_string(),
            })
        };
        if self.maps == 0 || self.scenarios_per_map == 0 || self.repeats == 0 {
            return reject("maps, scenarios_per_map and repeats must be positive");
        }
        if self.variants.is_empty() {
            return reject("at least one system variant is required");
        }
        if self.families.is_empty() {
            return reject("at least one scenario family is required");
        }
        for (i, family) in self.families.iter().enumerate() {
            if self.families[..i].contains(family) {
                return reject("a scenario family must not be listed twice");
            }
        }
        if self.profiles.is_empty() {
            return reject("at least one compute profile is required");
        }
        if !self.baseline && self.faults.is_empty() && self.combos.is_empty() {
            return reject("a campaign needs a baseline cell or at least one fault plan");
        }
        for profile in &self.profiles {
            profile
                .validate()
                .map_err(|err| CampaignError::InvalidSpec {
                    reason: format!("profile {}: {err}", profile.name),
                })?;
        }
        for fault in &self.faults {
            if !(0.0..=1.0).contains(&fault.intensity) {
                return reject("fault intensities must lie in [0, 1]");
            }
        }
        for combo in &self.combos {
            if combo.is_empty() {
                return reject("a fault combo needs at least one plan");
            }
            for (i, fault) in combo.iter().enumerate() {
                if !(0.0..=1.0).contains(&fault.intensity) {
                    return reject("fault intensities must lie in [0, 1]");
                }
                if combo[..i].iter().any(|other| other.kind == fault.kind) {
                    return reject("a fault combo must not list the same kind twice");
                }
            }
        }
        if let Some(policy) = &self.probe_early_stop {
            policy.validate()?;
        }
        Ok(())
    }

    /// Expands the grid into its cells, in deterministic order:
    /// family-major, then variant, then profile, then baseline followed by
    /// the single-fault list followed by the combo list. Single-family specs
    /// expand exactly as they did before families existed.
    pub fn cells(&self) -> Vec<CampaignCell> {
        let mut cells = Vec::new();
        for (suite_index, family) in self.families.iter().enumerate() {
            for variant in &self.variants {
                for (profile_index, profile) in self.profiles.iter().enumerate() {
                    let points = self
                        .baseline
                        .then(Vec::new)
                        .into_iter()
                        .chain(self.faults.iter().map(|&plan| vec![plan]))
                        .chain(self.combos.iter().cloned());
                    for faults in points {
                        cells.push(CampaignCell {
                            index: cells.len(),
                            family: *family,
                            suite_index,
                            variant: *variant,
                            profile_index,
                            profile: profile.name.clone(),
                            faults,
                        });
                    }
                }
            }
        }
        cells
    }

    /// The deterministic seed a family's scenario suite is generated from.
    ///
    /// The open family keeps the campaign seed itself (so single-family
    /// specs regenerate exactly the pre-family suites); every other family
    /// mixes the campaign seed with a hash of the family label, making the
    /// derivation a pure function of (seed, family) — independent of the
    /// family's position in [`CampaignSpec::families`].
    pub fn suite_seed(&self, family: ScenarioFamily) -> u64 {
        match family {
            ScenarioFamily::Open => self.seed,
            family => self.seed ^ mls_trace::config_hash(family.label()),
        }
    }

    /// Missions flown per cell.
    pub fn missions_per_cell(&self) -> usize {
        self.maps * self.scenarios_per_map * self.repeats
    }

    /// Total missions in the campaign.
    pub fn total_missions(&self) -> usize {
        self.missions_per_cell() * self.cells().len()
    }

    /// The deterministic seed of one mission, a pure function of the
    /// campaign seed and the (scenario, repeat) coordinates — independent of
    /// execution order and thread count.
    ///
    /// Deliberately *not* a function of the cell: every cell flies the same
    /// scenario with the same vehicle/sensor noise streams (common random
    /// numbers), so variant-vs-variant, profile-vs-profile and
    /// baseline-vs-fault contrasts are paired comparisons, exactly like the
    /// paper's benchmark reruns.
    pub fn mission_seed(&self, scenario_id: usize, repeat: usize) -> u64 {
        let mut state = self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for salt in [scenario_id as u64, repeat as u64] {
            state ^= salt
                .wrapping_add(0x2545_F491_4F6C_DD1D)
                .wrapping_mul(state | 1);
            state = (state ^ (state >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            state ^= state >> 27;
        }
        state
    }

    /// FNV-1a hash of the spec's canonical JSON, embedded in trace headers
    /// so a replay against a drifted spec is rejected instead of silently
    /// diverging.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Serialize`] when serde rejects the value.
    pub fn config_hash(&self) -> Result<u64, CampaignError> {
        Ok(mls_trace::config_hash(&self.to_json()?))
    }

    /// Serialises the spec as pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Serialize`] when serde rejects the value.
    pub fn to_json(&self) -> Result<String, CampaignError> {
        serde_json::to_string_pretty(self).map_err(|e| CampaignError::Serialize(e.to_string()))
    }

    /// Parses a spec from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Serialize`] when the JSON does not describe a
    /// valid spec.
    pub fn from_json(text: &str) -> Result<Self, CampaignError> {
        serde_json::from_str(text).map_err(|e| CampaignError::Serialize(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_spec_validates_and_expands() {
        let spec = CampaignSpec::smoke();
        spec.validate().unwrap();
        let cells = spec.cells();
        // 3 variants × 1 profile × (baseline + 3 faults).
        assert_eq!(cells.len(), 12);
        assert_eq!(spec.total_missions(), 12 * 2);
        assert!(cells[0].faults.is_empty(), "baseline cell comes first");
        assert_eq!(cells[0].index, 0);
        assert!(cells[0].label().ends_with("baseline"));
        assert!(cells[1].label().contains("marker-occlusion"));
    }

    #[test]
    fn combos_expand_into_multi_fault_cells_after_the_singles() {
        let mut spec = CampaignSpec::smoke();
        spec.variants = vec![SystemVariant::MlsV1];
        spec.combos = vec![vec![
            FaultPlan::new(FaultKind::MarkerOcclusion, 0.4),
            FaultPlan::new(FaultKind::GpsBias, 0.6),
        ]];
        spec.validate().unwrap();
        let cells = spec.cells();
        // baseline + 3 singles + 1 combo.
        assert_eq!(cells.len(), 5);
        let combo_cell = &cells[4];
        assert_eq!(combo_cell.faults.len(), 2);
        assert_eq!(
            combo_cell.label(),
            "MLS-V1/desktop-sil/marker-occlusion@0.400+gps-bias@0.600"
        );
    }

    #[test]
    fn degenerate_combos_are_rejected() {
        let mut spec = CampaignSpec::smoke();
        spec.combos = vec![vec![]];
        assert!(spec.validate().is_err());

        let mut spec = CampaignSpec::smoke();
        spec.combos = vec![vec![
            FaultPlan::new(FaultKind::GpsBias, 0.3),
            FaultPlan::new(FaultKind::GpsBias, 0.7),
        ]];
        assert!(spec.validate().is_err());

        // A combo-only campaign (no baseline, no singles) is legal.
        let mut spec = CampaignSpec::smoke();
        spec.baseline = false;
        spec.faults.clear();
        spec.combos = vec![vec![FaultPlan::new(FaultKind::WindGust, 0.5)]];
        spec.validate().unwrap();
    }

    #[test]
    fn specs_without_a_combos_key_parse_with_no_combos() {
        let spec = CampaignSpec::smoke();
        let json = spec.to_json().unwrap();
        let serde::Value::Object(mut fields) = serde_json::parse(&json).unwrap() else {
            panic!("spec serialises to an object");
        };
        fields.retain(|(key, _)| key != "combos");
        let legacy = serde_json::to_string(&serde::Value::Object(fields)).unwrap();
        let parsed = CampaignSpec::from_json(&legacy).unwrap();
        assert!(parsed.combos.is_empty());
        assert_eq!(parsed.faults, spec.faults);
    }

    #[test]
    fn validation_rejects_empty_grids() {
        let mut spec = CampaignSpec::smoke();
        spec.variants.clear();
        assert!(spec.validate().is_err());

        let mut spec = CampaignSpec::smoke();
        spec.maps = 0;
        assert!(spec.validate().is_err());

        let mut spec = CampaignSpec::smoke();
        spec.baseline = false;
        spec.faults.clear();
        assert!(spec.validate().is_err());
    }

    #[test]
    fn mission_seeds_are_coordinate_pure_and_distinct() {
        let spec = CampaignSpec::smoke();
        let a = spec.mission_seed(3, 1);
        assert_eq!(a, spec.mission_seed(3, 1));
        let mut seeds = std::collections::HashSet::new();
        for scenario in 0..100 {
            for repeat in 0..3 {
                seeds.insert(spec.mission_seed(scenario, repeat));
            }
        }
        assert_eq!(seeds.len(), 100 * 3, "seed collisions");
        // Common random numbers: the seed does not depend on the spec's
        // grid, only on (campaign seed, scenario, repeat).
        let reseeded = CampaignSpec {
            seed: spec.seed + 1,
            ..spec.clone()
        };
        assert_ne!(spec.mission_seed(3, 1), reseeded.mission_seed(3, 1));
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = CampaignSpec::smoke();
        let json = spec.to_json().unwrap();
        let parsed = CampaignSpec::from_json(&json).unwrap();
        assert_eq!(spec, parsed);
    }

    #[test]
    fn specs_without_a_capture_key_parse_with_capture_off() {
        let mut spec = CampaignSpec::smoke();
        spec.capture = TracePolicy::All;
        // Strip the capture key, as any spec JSON written before the trace
        // subsystem would lack it.
        let json = spec.to_json().unwrap();
        let serde::Value::Object(mut fields) = serde_json::parse(&json).unwrap() else {
            panic!("spec serialises to an object");
        };
        fields.retain(|(key, _)| key != "capture");
        let legacy = serde_json::to_string(&serde::Value::Object(fields)).unwrap();
        let parsed = CampaignSpec::from_json(&legacy).unwrap();
        assert_eq!(parsed.capture, TracePolicy::Off);
        assert_eq!(parsed.maps, spec.maps);
    }

    #[test]
    fn specs_without_a_families_key_parse_as_open_only() {
        let spec = CampaignSpec::smoke();
        let json = spec.to_json().unwrap();
        let serde::Value::Object(mut fields) = serde_json::parse(&json).unwrap() else {
            panic!("spec serialises to an object");
        };
        fields.retain(|(key, _)| key != "families");
        let legacy = serde_json::to_string(&serde::Value::Object(fields)).unwrap();
        let parsed = CampaignSpec::from_json(&legacy).unwrap();
        assert_eq!(parsed.families, vec![ScenarioFamily::Open]);
        assert_eq!(parsed.cells().len(), spec.cells().len());
    }

    #[test]
    fn family_axis_expands_family_major_and_prefixes_labels() {
        let mut spec = CampaignSpec::smoke();
        spec.variants = vec![SystemVariant::MlsV2];
        spec.faults.clear();
        spec.families = vec![ScenarioFamily::Open, ScenarioFamily::ConstrainedPad];
        spec.validate().unwrap();
        let cells = spec.cells();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].family, ScenarioFamily::Open);
        assert_eq!(cells[0].suite_index, 0);
        assert_eq!(cells[0].label(), "MLS-V2/desktop-sil/baseline");
        assert_eq!(cells[1].family, ScenarioFamily::ConstrainedPad);
        assert_eq!(cells[1].suite_index, 1);
        assert_eq!(
            cells[1].label(),
            "constrained-pad/MLS-V2/desktop-sil/baseline"
        );
        assert_eq!(spec.total_missions(), 2 * spec.missions_per_cell());
    }

    #[test]
    fn duplicate_families_are_rejected() {
        let mut spec = CampaignSpec::smoke();
        spec.families = vec![ScenarioFamily::Rooftop, ScenarioFamily::Rooftop];
        assert!(spec.validate().is_err());
        spec.families.clear();
        assert!(spec.validate().is_err());
    }

    #[test]
    fn suite_seeds_are_family_pure_and_open_keeps_the_campaign_seed() {
        let spec = CampaignSpec::smoke();
        assert_eq!(spec.suite_seed(ScenarioFamily::Open), spec.seed);
        let constrained = spec.suite_seed(ScenarioFamily::ConstrainedPad);
        assert_ne!(constrained, spec.seed);
        assert_eq!(constrained, spec.suite_seed(ScenarioFamily::ConstrainedPad));
        // Distinct families derive distinct suites.
        assert_ne!(constrained, spec.suite_seed(ScenarioFamily::UrbanCanyon));
        // A reordered families list does not move the seeds.
        let reordered = CampaignSpec {
            families: vec![ScenarioFamily::ConstrainedPad, ScenarioFamily::Open],
            ..spec.clone()
        };
        assert_eq!(
            reordered.suite_seed(ScenarioFamily::ConstrainedPad),
            constrained
        );
    }

    #[test]
    fn legacy_cell_json_without_family_parses_as_open() {
        let cell = CampaignSpec::smoke().cells().remove(1);
        let json = serde_json::to_string(&cell).unwrap();
        let serde::Value::Object(mut fields) = serde_json::parse(&json).unwrap() else {
            panic!("cell serialises to an object");
        };
        fields.retain(|(key, _)| key != "family" && key != "suite_index");
        let legacy = serde_json::to_string(&serde::Value::Object(fields)).unwrap();
        let parsed: CampaignCell = serde_json::from_str(&legacy).unwrap();
        assert_eq!(parsed.family, ScenarioFamily::Open);
        assert_eq!(parsed.suite_index, 0);
        assert_eq!(parsed, cell);
    }

    #[test]
    fn early_stop_exact_bound_decides_only_when_certain() {
        let policy = EarlyStopPolicy::exact(0.75);
        // 8 planned: two failures keep the bracket open, three close it.
        assert_eq!(policy.decide(0, 2, 8), None);
        assert_eq!(policy.decide(0, 3, 8), Some(false));
        // A clean streak decides pass exactly when s/N clears the bar.
        assert_eq!(policy.decide(5, 5, 8), None);
        assert_eq!(policy.decide(6, 6, 8), Some(true));
        // Fully flown cells always decide.
        assert_eq!(policy.decide(5, 8, 8), Some(false));
        assert_eq!(policy.decide(6, 8, 8), Some(true));
        // Degenerate inputs never decide.
        assert_eq!(policy.decide(0, 0, 8), None);
    }

    #[test]
    fn early_stop_hoeffding_bound_stops_before_certainty() {
        let exact = EarlyStopPolicy::exact(0.5);
        let loose = EarlyStopPolicy {
            threshold: 0.5,
            confidence: 0.2,
        };
        // 12 of 40 flown, all failures: the exact bracket is still open
        // ((0 + 28)/40 = 0.7 ≥ 0.5) but ε = sqrt(ln 5 / 24) ≈ 0.26 < 0.5.
        assert_eq!(exact.decide(0, 12, 40), None);
        assert_eq!(loose.decide(0, 12, 40), Some(false));
        assert_eq!(loose.decide(12, 12, 40), Some(true));
        // Means near the threshold stay undecided either way.
        assert_eq!(loose.decide(6, 12, 40), None);
    }

    #[test]
    fn early_stop_policies_validate_their_ranges() {
        assert!(EarlyStopPolicy::exact(0.5).validate().is_ok());
        assert!(EarlyStopPolicy::exact(1.0).validate().is_ok());
        assert!(EarlyStopPolicy::exact(0.0).validate().is_err());
        assert!(EarlyStopPolicy::exact(1.5).validate().is_err());
        assert!(EarlyStopPolicy {
            threshold: 0.5,
            confidence: 1.0,
        }
        .validate()
        .is_err());
        let mut spec = CampaignSpec::smoke();
        spec.probe_early_stop = Some(EarlyStopPolicy::exact(2.0));
        assert!(spec.validate().is_err());
        spec.probe_early_stop = Some(EarlyStopPolicy::exact(0.75));
        spec.validate().unwrap();
    }

    #[test]
    fn specs_without_an_early_stop_key_parse_with_none() {
        let mut spec = CampaignSpec::smoke();
        spec.probe_early_stop = Some(EarlyStopPolicy::exact(0.75));
        let json = spec.to_json().unwrap();
        assert_eq!(CampaignSpec::from_json(&json).unwrap(), spec);
        let serde::Value::Object(mut fields) = serde_json::parse(&json).unwrap() else {
            panic!("spec serialises to an object");
        };
        fields.retain(|(key, _)| key != "probe_early_stop");
        let legacy = serde_json::to_string(&serde::Value::Object(fields)).unwrap();
        let parsed = CampaignSpec::from_json(&legacy).unwrap();
        assert_eq!(parsed.probe_early_stop, None);
    }

    #[test]
    fn full_fault_study_covers_every_kind() {
        let spec = CampaignSpec::full_fault_study();
        spec.validate().unwrap();
        // 8 fault kinds × 3 intensities.
        assert_eq!(spec.faults.len(), 24);
        // 3 variants × 2 profiles × (1 + 24) cells.
        assert_eq!(spec.cells().len(), 3 * 2 * 25);
    }
}
