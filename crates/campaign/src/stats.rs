//! Streaming statistics: Welford mean/variance and P² quantile estimation.
//!
//! Campaign cells can hold thousands of missions; the accumulators here
//! summarise a metric stream in O(1) memory. Both are deterministic functions
//! of the *ordered* input stream, which is why the runner always feeds them
//! in global job order — the resulting report bytes are then independent of
//! how many worker threads flew the missions.

use serde::{Deserialize, Serialize};

/// Welford's online algorithm for mean and variance.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feeds one sample.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance; `None` when empty.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Population standard deviation; `None` when empty.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest sample; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// The P² (Jain & Chlamtac) streaming quantile estimator: tracks one
/// quantile with five markers and no sample storage.
///
/// Exact for the first five samples, then a piecewise-parabolic
/// approximation. Deterministic in the input order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct P2Quantile {
    quantile: f64,
    /// Marker heights (estimates of the quantile positions).
    heights: [f64; 5],
    /// Actual marker positions (1-based sample ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired-position increments per sample.
    increments: [f64; 5],
    count: usize,
}

impl P2Quantile {
    /// Creates an estimator for `quantile` in `(0, 1)`.
    pub fn new(quantile: f64) -> Self {
        let q = quantile.clamp(1e-6, 1.0 - 1e-6);
        Self {
            quantile: q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The quantile this estimator tracks.
    pub fn quantile(&self) -> f64 {
        self.quantile
    }

    /// Number of samples fed so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one sample.
    pub fn push(&mut self, value: f64) {
        if self.count < 5 {
            self.heights[self.count] = value;
            self.count += 1;
            if self.count == 5 {
                self.heights.sort_by(f64::total_cmp);
            }
            return;
        }
        self.count += 1;

        // Find the cell the sample falls into and bump the end markers.
        let k = if value < self.heights[0] {
            self.heights[0] = value;
            0
        } else if value >= self.heights[4] {
            self.heights[4] = value;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if value >= self.heights[i] && value < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };

        for position in self.positions.iter_mut().skip(k + 1) {
            *position += 1.0;
        }
        for (desired, increment) in self.desired.iter_mut().zip(self.increments) {
            *desired += increment;
        }

        // Adjust the three interior markers towards their desired positions.
        for i in 1..4 {
            let delta = self.desired[i] - self.positions[i];
            let ahead = self.positions[i + 1] - self.positions[i];
            let behind = self.positions[i - 1] - self.positions[i];
            if (delta >= 1.0 && ahead > 1.0) || (delta <= -1.0 && behind < -1.0) {
                let direction = delta.signum();
                let parabolic = self.parabolic(i, direction);
                if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                    self.heights[i] = parabolic;
                } else {
                    self.heights[i] = self.linear(i, direction);
                }
                self.positions[i] += direction;
            }
        }
    }

    /// Current estimate; `None` when empty. Exact (linearly interpolated at
    /// the fractional rank `1 + q·(n−1)`) while at most five samples have
    /// been seen.
    ///
    /// Past five samples the estimate interpolates the *marker polyline* at
    /// that same desired rank instead of returning the middle marker: right
    /// after the exact↔estimate handoff the markers are still the raw
    /// sorted samples, so `heights[2]` is their median regardless of the
    /// tracked quantile — a p95 stream over `[1..5]` used to collapse from
    /// the sample maximum to `3.0` on the fifth sample and crawl back up
    /// only as the markers adapted. Interpolating at the desired rank makes
    /// the estimate continuous across the handoff (at five samples the
    /// markers *are* the sorted samples at ranks 1–5, so both paths agree
    /// exactly) and asymptotically equals the classic middle-marker
    /// estimate, whose position converges onto the desired rank.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = 1.0 + self.quantile * (self.count - 1) as f64;
        if self.count <= 5 {
            // `heights[..count]` holds the raw samples (already sorted once
            // the fifth arrives); the exact quantile is available.
            let mut sorted = self.heights[..self.count].to_vec();
            sorted.sort_by(f64::total_cmp);
            let positions: Vec<f64> = (1..=self.count).map(|i| i as f64).collect();
            return Some(interpolate_rank(&positions, &sorted, rank));
        }
        Some(interpolate_rank(&self.positions, &self.heights, rank))
    }

    fn parabolic(&self, i: usize, direction: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + direction / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + direction) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - direction) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, direction: f64) -> f64 {
        let j = (i as f64 + direction) as usize;
        self.heights[i]
            + direction * (self.heights[j] - self.heights[i])
                / (self.positions[j] - self.positions[i])
    }
}

/// Linearly interpolates a monotone (position, height) polyline at `rank`,
/// clamping to the end points. `positions` are 1-based sample ranks in
/// ascending order; ties in position fall back to the later height.
fn interpolate_rank(positions: &[f64], heights: &[f64], rank: f64) -> f64 {
    debug_assert_eq!(positions.len(), heights.len());
    if positions.len() == 1 {
        return heights[0];
    }
    let mut i = 0;
    while i + 2 < positions.len() && positions[i + 1] < rank {
        i += 1;
    }
    let (p0, p1) = (positions[i], positions[i + 1]);
    if p1 <= p0 {
        return heights[i + 1];
    }
    let t = ((rank - p0) / (p1 - p0)).clamp(0.0, 1.0);
    heights[i] + t * (heights[i + 1] - heights[i])
}

/// One metric's full streaming summary: mean/std/min/max plus the median and
/// the 95th percentile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricAccumulator {
    welford: Welford,
    p50: P2Quantile,
    p95: P2Quantile,
}

impl Default for MetricAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            welford: Welford::new(),
            p50: P2Quantile::new(0.5),
            p95: P2Quantile::new(0.95),
        }
    }

    /// Feeds one sample into every statistic.
    pub fn push(&mut self, value: f64) {
        self.welford.push(value);
        self.p50.push(value);
        self.p95.push(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.welford.count()
    }

    /// Snapshot of the summary statistics.
    pub fn summary(&self) -> crate::report::MetricSummary {
        crate::report::MetricSummary {
            count: self.welford.count(),
            mean: self.welford.mean(),
            std_dev: self.welford.std_dev(),
            min: self.welford.min(),
            max: self.welford.max(),
            p50: self.p50.estimate(),
            p95: self.p95.estimate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for s in samples {
            w.push(s);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((w.std_dev().unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
        assert_eq!(Welford::new().mean(), None);
    }

    #[test]
    fn p2_median_tracks_a_uniform_stream() {
        let mut q = P2Quantile::new(0.5);
        // Deterministic pseudo-uniform stream in [0, 1000).
        let mut state = 1u64;
        for _ in 0..5000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            q.push((state >> 11) as f64 % 1000.0);
        }
        let median = q.estimate().unwrap();
        assert!((median - 500.0).abs() < 50.0, "median {median}");
    }

    #[test]
    fn p2_exact_for_small_streams() {
        let mut q = P2Quantile::new(0.5);
        assert_eq!(q.estimate(), None);
        q.push(10.0);
        assert_eq!(q.estimate(), Some(10.0));
        q.push(30.0);
        q.push(20.0);
        assert_eq!(q.estimate(), Some(20.0));
    }

    #[test]
    fn p2_exact_estimate_handoff_at_five_samples_is_not_discontinuous() {
        // Regression: at exactly five samples the markers are still the raw
        // sorted samples, and the estimator used to return their median for
        // *any* quantile — a p95 stream over [1..5] reported 3.0.
        let mut q = P2Quantile::new(0.95);
        for i in 1..=4 {
            q.push(i as f64);
        }
        // Exact fractional-rank quantile: rank 1 + 0.95·3 = 3.85 → 3.85.
        assert!((q.estimate().unwrap() - 3.85).abs() < 1e-12);
        q.push(5.0);
        // At the handoff the markers *are* the sorted samples, so both
        // paths agree: rank 1 + 0.95·4 = 4.8 → 4.8, far from the old 3.0.
        assert!((q.estimate().unwrap() - 4.8).abs() < 1e-12);
        // Crossing into the marker-based regime stays continuous and in the
        // upper sample range rather than collapsing to the median.
        q.push(6.0);
        let estimate = q.estimate().unwrap();
        assert!(
            (4.8..=6.0).contains(&estimate),
            "6 samples: p95 estimate {estimate} left the upper sample range"
        );

        // The p50 handoff is unchanged: the median of five sorted samples
        // sits at rank 3 on both sides of the boundary.
        let mut median = P2Quantile::new(0.5);
        for value in [10.0, 30.0, 20.0, 50.0, 40.0] {
            median.push(value);
        }
        assert_eq!(median.estimate(), Some(30.0));
    }

    #[test]
    fn p2_p95_on_a_ramp() {
        let mut q = P2Quantile::new(0.95);
        for i in 0..1000 {
            q.push(i as f64);
        }
        let p95 = q.estimate().unwrap();
        assert!((p95 - 950.0).abs() < 25.0, "p95 {p95}");
    }

    #[test]
    fn metric_accumulator_summarises() {
        let mut m = MetricAccumulator::new();
        for i in 1..=100 {
            m.push(i as f64);
        }
        let summary = m.summary();
        assert_eq!(summary.count, 100);
        assert!((summary.mean.unwrap() - 50.5).abs() < 1e-12);
        assert!((summary.p50.unwrap() - 50.0).abs() < 5.0);
        assert!((summary.p95.unwrap() - 95.0).abs() < 5.0);
        assert_eq!(summary.min, Some(1.0));
        assert_eq!(summary.max, Some(100.0));
    }
}
