//! Deterministic, seed-driven fault model.
//!
//! A [`FaultPlan`] is a *declarative* description — fault kind plus a scalar
//! intensity in `[0, 1]` — that a campaign spec serializes and sweeps. At
//! mission time the runner instantiates it into a [`FaultInjector`], the
//! stateful [`FaultHook`] the `mls-core` executor consults. Every stochastic
//! element of the injection (burst placement, bias direction, dropout
//! decisions) derives from the mission seed, so the same (plan, seed) pair
//! replays byte-identically.
//!
//! The kinds cover the failure-space axes the paper's campaign and the
//! falsification literature probe:
//!
//! | Kind | Injection point | Intensity 1.0 means |
//! |---|---|---|
//! | [`FaultKind::MarkerOcclusion`] | camera image | ~half the mission occluded |
//! | [`FaultKind::DetectionDropout`] | observation stream | every frame dropped |
//! | [`FaultKind::MarkerSpoof`] | observation stream | confident decoy 20 m off target |
//! | [`FaultKind::GpsBias`] | GNSS fixes | 10 m bias step |
//! | [`FaultKind::WindGust`] | airframe | 12 m/s gust spikes |
//! | [`FaultKind::ComputeThrottle`] | compute platform | platform at 5 % speed |
//! | [`FaultKind::DepthCorruption`] | depth clouds | 40 % dropout, 3 m mis-painting |

use mls_core::{FaultHook, TickFaults};
use mls_geom::{Vec2, Vec3};
use mls_sim_uav::PointCloud;
use mls_vision::{Detection, GrayImage, MarkerObservation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The fault-space axes the campaign engine can inject along.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Bursts during which the downward camera image is washed out (tarps,
    /// glare, dust clouds over the marker): the detector genuinely misses.
    MarkerOcclusion,
    /// Frames whose observations are lost between the detector and the
    /// decision module (pipeline congestion, dropped messages).
    DetectionDropout,
    /// Windows during which a confident decoy observation carrying the
    /// target's id is injected at a wrong position (adversarial marker).
    MarkerSpoof,
    /// A GNSS position-bias step that the reported DOP values do not reveal.
    GpsBias,
    /// Wind-gust spikes beyond what the scenario weather already applies.
    WindGust,
    /// Intervals during which the compute platform is thermally throttled.
    ComputeThrottle,
    /// Depth-cloud corruption after an onset: per-point dropout plus
    /// pose-drift painting (every return displaced by a fixed horizontal
    /// offset), reproducing the paper's Fig. 5c erroneous point clouds.
    DepthCorruption,
}

impl FaultKind {
    /// Every fault kind, in a stable reporting order.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::MarkerOcclusion,
        FaultKind::DetectionDropout,
        FaultKind::MarkerSpoof,
        FaultKind::GpsBias,
        FaultKind::WindGust,
        FaultKind::ComputeThrottle,
        FaultKind::DepthCorruption,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::MarkerOcclusion => "marker-occlusion",
            FaultKind::DetectionDropout => "detection-dropout",
            FaultKind::MarkerSpoof => "marker-spoof",
            FaultKind::GpsBias => "gps-bias",
            FaultKind::WindGust => "wind-gust",
            FaultKind::ComputeThrottle => "compute-throttle",
            FaultKind::DepthCorruption => "depth-corruption",
        }
    }
}

/// A declarative fault: kind plus intensity in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The fault-space axis.
    pub kind: FaultKind,
    /// Severity in `[0, 1]`; `0.0` is a no-op, `1.0` the worst injection the
    /// kind models.
    pub intensity: f64,
}

impl FaultPlan {
    /// Builds a plan, clamping the intensity into `[0, 1]`.
    pub fn new(kind: FaultKind, intensity: f64) -> Self {
        Self {
            kind,
            intensity: intensity.clamp(0.0, 1.0),
        }
    }

    /// Stable label (`kind@intensity`) used in report rows.
    pub fn label(&self) -> String {
        format!("{}@{:.3}", self.kind.label(), self.intensity)
    }

    /// Instantiates the plan into a mission-scoped injector whose entire
    /// behaviour is determined by `seed` and the mission context.
    pub fn injector(&self, seed: u64, context: &MissionFaultContext) -> FaultInjector {
        FaultInjector::new(*self, seed, context)
    }
}

/// What the injector needs to know about the mission it perturbs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissionFaultContext {
    /// Dictionary id of the genuine landing marker (spoofing forges it).
    pub target_marker_id: u32,
    /// The nominal GPS landing target (spoofed markers are placed around
    /// it, where the decision module is actually looking).
    pub gps_target: Vec3,
    /// Physical marker side length, metres (forged observations mimic it).
    pub marker_size: f64,
    /// Mission duration bound, seconds (bursts are placed inside it).
    pub max_duration: f64,
}

/// An active injection interval.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Window {
    start: f64,
    end: f64,
}

impl Window {
    fn contains(&self, time: f64) -> bool {
        time >= self.start && time < self.end
    }
}

/// The stateful per-mission fault hook a [`FaultPlan`] instantiates.
///
/// All randomness is drawn either at construction (window placement, bias and
/// gust directions) or in the strictly ordered per-frame callbacks (dropout
/// decisions), so a given (plan, seed, context) triple replays identically.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    context: MissionFaultContext,
    windows: Vec<Window>,
    /// Fixed horizontal direction for GPS bias / wind gusts / spoof offset.
    direction: Vec3,
    /// Time the GPS bias step engages, seconds.
    onset: f64,
    /// Per-frame RNG stream (detection dropout).
    rng: StdRng,
}

impl FaultInjector {
    /// Window placement bounds: faults act after the initial climb and
    /// before the mission deadline.
    const ACTIVE_FROM: f64 = 25.0;

    fn new(plan: FaultPlan, seed: u64, context: &MissionFaultContext) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA_17_5E_ED);
        let heading: f64 = rng.random_range(0.0..std::f64::consts::TAU);
        let direction = Vec3::new(heading.cos(), heading.sin(), 0.0);
        let active_until = context.max_duration.max(Self::ACTIVE_FROM + 10.0);
        // Bias/corruption onsets: GPS bias steps in anywhere over the first
        // leg; depth corruption engages right after the climb, because pose
        // drift corrupts every cloud from the moment mapping matters.
        let onset = match plan.kind {
            FaultKind::DepthCorruption => {
                rng.random_range(Self::ACTIVE_FROM..(Self::ACTIVE_FROM + 5.0))
            }
            _ => rng.random_range(Self::ACTIVE_FROM..(Self::ACTIVE_FROM + 40.0)),
        };

        let windows = match plan.kind {
            FaultKind::MarkerOcclusion
            | FaultKind::MarkerSpoof
            | FaultKind::ComputeThrottle
            | FaultKind::WindGust => {
                // Both burst count and burst length scale with intensity, and
                // both vanish at 0: intensity 0.0 must be a true no-op so the
                // falsification search's lower anchor equals the baseline.
                let bursts = (plan.intensity * 8.0).ceil() as usize;
                let duration = 2.0 + 16.0 * plan.intensity;
                let mut windows: Vec<Window> = (0..bursts)
                    .map(|_| {
                        let start = rng.random_range(
                            Self::ACTIVE_FROM
                                ..(active_until - duration).max(Self::ACTIVE_FROM + 1.0),
                        );
                        Window {
                            start,
                            end: start + duration,
                        }
                    })
                    .collect();
                windows.sort_by(|a, b| a.start.total_cmp(&b.start));
                windows
            }
            FaultKind::DetectionDropout | FaultKind::GpsBias | FaultKind::DepthCorruption => {
                Vec::new()
            }
        };

        Self {
            plan,
            context: *context,
            windows,
            direction,
            onset,
            rng,
        }
    }

    /// The plan this injector realises.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    fn in_window(&self, time: f64) -> bool {
        self.windows.iter().any(|w| w.contains(time))
    }

    /// Forges a confident observation of the target marker id near the GPS
    /// target, displaced by an intensity-scaled offset (zero displacement at
    /// zero intensity, where no spoof window exists anyway).
    fn spoofed_observation(&self) -> MarkerObservation {
        let offset = 20.0 * self.plan.intensity;
        let position = self.context.gps_target + self.direction * offset;
        let half = 24.0;
        let center = Vec2::new(320.0, 240.0);
        let corners = [
            Vec2::new(center.x - half, center.y - half),
            Vec2::new(center.x + half, center.y - half),
            Vec2::new(center.x + half, center.y + half),
            Vec2::new(center.x - half, center.y + half),
        ];
        let detection = Detection::from_corners(self.context.target_marker_id, corners, 0.95);
        MarkerObservation {
            id: self.context.target_marker_id,
            world_position: position,
            confidence: 0.95,
            apparent_size: half * 2.0,
            estimated_size: self.context.marker_size,
            detection,
        }
    }
}

impl FaultHook for FaultInjector {
    fn tick(&mut self, time: f64) -> TickFaults {
        let mut faults = TickFaults::NONE;
        match self.plan.kind {
            FaultKind::GpsBias if time >= self.onset => {
                // A bias step with a short ramp, as receivers re-converge
                // onto a wrong solution over a few seconds.
                let ramp = ((time - self.onset) / 5.0).clamp(0.0, 1.0);
                faults.gps_bias = self.direction * (10.0 * self.plan.intensity * ramp);
            }
            FaultKind::WindGust => {
                // Sinusoidal gust profile inside each window: peaks at the
                // middle, zero at the edges.
                if let Some(window) = self.windows.iter().find(|w| w.contains(time)) {
                    let phase = (time - window.start) / (window.end - window.start).max(1e-6);
                    let envelope = (phase * std::f64::consts::PI).sin();
                    faults.wind_disturbance =
                        self.direction * (12.0 * self.plan.intensity * envelope);
                }
            }
            FaultKind::ComputeThrottle if self.in_window(time) => {
                faults.compute_throttle = (1.0 - 0.95 * self.plan.intensity).max(0.05);
            }
            _ => {}
        }
        faults
    }

    fn corrupts_depth_clouds(&self) -> bool {
        self.plan.kind == FaultKind::DepthCorruption && self.plan.intensity > 0.0
    }

    fn pre_mapping(&mut self, time: f64, cloud: &mut PointCloud) {
        if self.plan.kind != FaultKind::DepthCorruption
            || self.plan.intensity <= 0.0
            || time < self.onset
        {
            return;
        }
        // Pose-drift painting: every return is reconstructed through a
        // drifted pose estimate, shifting the whole cloud sideways (Fig. 5c).
        let offset = self.direction * (3.0 * self.plan.intensity);
        for point in &mut cloud.points {
            *point += offset;
        }
        // Per-point dropout, one RNG draw per point in cloud order:
        // deterministic for a given (plan, seed, capture sequence).
        let dropout = 0.4 * self.plan.intensity;
        let rng = &mut self.rng;
        cloud.points.retain(|_| !rng.random_bool(dropout));
    }

    fn pre_detection(&mut self, time: f64, image: &mut GrayImage) {
        if self.plan.kind == FaultKind::MarkerOcclusion && self.in_window(time) {
            // Wash the frame out to a uniform mid-grey: no gradients, no
            // marker codes, nothing for either detector to latch onto.
            image.data_mut().fill(0.5);
        }
    }

    fn post_detection(&mut self, time: f64, observations: &mut Vec<MarkerObservation>) {
        match self.plan.kind {
            // One RNG draw per frame, in frame order: deterministic.
            FaultKind::DetectionDropout if self.rng.random_bool(self.plan.intensity) => {
                observations.clear();
            }
            FaultKind::MarkerSpoof if self.in_window(time) => {
                observations.push(self.spoofed_observation());
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn context() -> MissionFaultContext {
        MissionFaultContext {
            target_marker_id: 7,
            gps_target: Vec3::new(40.0, 10.0, 0.0),
            marker_size: 1.5,
            max_duration: 300.0,
        }
    }

    #[test]
    fn zero_intensity_is_a_true_noop_for_every_kind() {
        for kind in FaultKind::ALL {
            let plan = FaultPlan::new(kind, 0.0);
            let mut injector = plan.injector(13, &context());
            assert!(injector.windows.is_empty(), "{kind:?} has no windows at 0");
            for time in [0.0, 50.0, 150.0, 299.0] {
                assert_eq!(injector.tick(time), TickFaults::NONE, "{kind:?} at {time}");
                let mut image = GrayImage::filled(4, 4, 0.7);
                injector.pre_detection(time, &mut image);
                assert!(image.data().iter().all(|&v| (v - 0.7).abs() < 1e-9));
                let mut observations = vec![dummy_observation()];
                injector.post_detection(time, &mut observations);
                assert_eq!(observations.len(), 1, "{kind:?} must not tamper at 0");
                let mut cloud = PointCloud {
                    origin: Vec3::ZERO,
                    points: vec![Vec3::new(5.0, 1.0, 2.0)],
                    max_range: 18.0,
                };
                injector.pre_mapping(time, &mut cloud);
                assert_eq!(
                    cloud.points,
                    vec![Vec3::new(5.0, 1.0, 2.0)],
                    "{kind:?} must not tamper with clouds at 0"
                );
            }
        }
    }

    #[test]
    fn plan_clamps_intensity_and_labels() {
        let plan = FaultPlan::new(FaultKind::GpsBias, 1.7);
        assert_eq!(plan.intensity, 1.0);
        assert_eq!(plan.label(), "gps-bias@1.000");
        assert_eq!(FaultKind::ALL.len(), 7);
    }

    #[test]
    fn injector_is_deterministic_per_seed() {
        let plan = FaultPlan::new(FaultKind::DetectionDropout, 0.5);
        let mut a = plan.injector(9, &context());
        let mut b = plan.injector(9, &context());
        for frame in 0..50 {
            let mut obs_a = vec![dummy_observation()];
            let mut obs_b = vec![dummy_observation()];
            a.post_detection(frame as f64, &mut obs_a);
            b.post_detection(frame as f64, &mut obs_b);
            assert_eq!(obs_a.len(), obs_b.len(), "frame {frame}");
        }
    }

    #[test]
    fn occlusion_blanks_frames_inside_windows_only() {
        let plan = FaultPlan::new(FaultKind::MarkerOcclusion, 0.8);
        let mut injector = plan.injector(3, &context());
        assert!(!injector.windows.is_empty());
        let window_time = injector.windows[0].start + 0.1;

        let mut image = GrayImage::filled(8, 8, 0.9);
        injector.pre_detection(window_time, &mut image);
        assert!(image.data().iter().all(|&v| (v - 0.5).abs() < 1e-9));

        let mut image = GrayImage::filled(8, 8, 0.9);
        injector.pre_detection(1.0, &mut image);
        assert!(image.data().iter().all(|&v| (v - 0.9).abs() < 1e-6));
    }

    #[test]
    fn gps_bias_ramps_to_intensity_scaled_magnitude() {
        let plan = FaultPlan::new(FaultKind::GpsBias, 0.5);
        let mut injector = plan.injector(5, &context());
        assert_eq!(injector.tick(0.0).gps_bias, Vec3::ZERO);
        let late = injector.tick(290.0).gps_bias;
        assert!((late.norm() - 5.0).abs() < 1e-9, "bias {late:?}");
        assert_eq!(late.z, 0.0);
    }

    #[test]
    fn spoof_injects_target_id_near_gps_target() {
        let plan = FaultPlan::new(FaultKind::MarkerSpoof, 1.0);
        let mut injector = plan.injector(11, &context());
        let time = injector.windows[0].start + 0.1;
        let mut observations = Vec::new();
        injector.post_detection(time, &mut observations);
        assert_eq!(observations.len(), 1);
        let spoof = &observations[0];
        assert_eq!(spoof.id, 7);
        let distance = spoof
            .world_position
            .horizontal_distance(context().gps_target);
        assert!((distance - 20.0).abs() < 1e-9, "offset {distance}");
    }

    #[test]
    fn throttle_and_gusts_act_only_inside_windows() {
        for kind in [FaultKind::ComputeThrottle, FaultKind::WindGust] {
            let plan = FaultPlan::new(kind, 1.0);
            let mut injector = plan.injector(2, &context());
            let idle = injector.tick(1.0);
            assert_eq!(idle, TickFaults::NONE);
            let window = injector.windows[0];
            let active = injector.tick((window.start + window.end) / 2.0);
            match kind {
                FaultKind::ComputeThrottle => assert!(active.compute_throttle < 0.1),
                _ => assert!(active.wind_disturbance.norm() > 6.0),
            }
        }
    }

    #[test]
    fn only_depth_corruption_declares_cloud_tampering() {
        for kind in FaultKind::ALL {
            let injector = FaultPlan::new(kind, 0.8).injector(3, &context());
            assert_eq!(
                injector.corrupts_depth_clouds(),
                kind == FaultKind::DepthCorruption,
                "{kind:?}"
            );
        }
        let zero = FaultPlan::new(FaultKind::DepthCorruption, 0.0).injector(3, &context());
        assert!(!zero.corrupts_depth_clouds());
    }

    #[test]
    fn depth_corruption_displaces_and_drops_after_onset() {
        let plan = FaultPlan::new(FaultKind::DepthCorruption, 1.0);
        let mut injector = plan.injector(17, &context());
        let points: Vec<Vec3> = (0..200)
            .map(|i| Vec3::new(10.0, i as f64 * 0.2 - 20.0, 3.0))
            .collect();
        let make_cloud = || PointCloud {
            origin: Vec3::new(0.0, 0.0, 6.0),
            points: points.clone(),
            max_range: 18.0,
        };

        // Before the onset the cloud is untouched.
        let mut early = make_cloud();
        injector.pre_mapping(1.0, &mut early);
        assert_eq!(early.points, points);

        // After the onset points are displaced by 3 m and a large fraction
        // is dropped.
        let mut late = make_cloud();
        injector.pre_mapping(injector.onset + 1.0, &mut late);
        assert!(
            late.points.len() < points.len(),
            "dropout must remove points"
        );
        assert!(late.points.len() > points.len() / 5, "dropout is partial");
        let displaced = late
            .points
            .iter()
            .all(|p| points.iter().any(|q| (p.distance(*q) - 3.0).abs() < 1e-9));
        assert!(displaced, "surviving points sit 3 m from an original");

        // Determinism: the same (plan, seed, call sequence) replays the
        // exact same corruption.
        let mut a = plan.injector(17, &context());
        let mut b = plan.injector(17, &context());
        let mut cloud_a = make_cloud();
        let mut cloud_b = make_cloud();
        let t = a.onset + 1.0;
        a.pre_mapping(t, &mut cloud_a);
        b.pre_mapping(t, &mut cloud_b);
        assert_eq!(cloud_a.points, cloud_b.points);
    }

    fn dummy_observation() -> MarkerObservation {
        FaultPlan::new(FaultKind::MarkerSpoof, 0.2)
            .injector(1, &context())
            .spoofed_observation()
    }
}
