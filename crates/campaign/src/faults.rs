//! Deterministic, seed-driven fault model.
//!
//! A [`FaultPlan`] is a *declarative* description — fault kind plus a scalar
//! intensity in `[0, 1]` — that a campaign spec serializes and sweeps. At
//! mission time the runner instantiates it into a [`FaultInjector`], the
//! stateful [`FaultHook`] the `mls-core` executor consults. Every stochastic
//! element of the injection (burst placement, bias direction, dropout
//! decisions) derives from the mission seed, so the same (plan, seed) pair
//! replays byte-identically.
//!
//! The kinds cover the failure-space axes the paper's campaign and the
//! falsification literature probe:
//!
//! | Kind | Injection point | Intensity 1.0 means |
//! |---|---|---|
//! | [`FaultKind::MarkerOcclusion`] | camera image | ~half the mission occluded |
//! | [`FaultKind::DetectionDropout`] | observation stream | every frame dropped |
//! | [`FaultKind::MarkerSpoof`] | observation stream | confident decoy 20 m off target |
//! | [`FaultKind::GpsBias`] | GNSS fixes | 10 m bias step |
//! | [`FaultKind::WindGust`] | airframe | 12 m/s gust spikes |
//! | [`FaultKind::ComputeThrottle`] | compute platform | platform at 5 % speed |
//! | [`FaultKind::DepthCorruption`] | depth clouds | 40 % dropout, 3 m mis-painting |
//! | [`FaultKind::PlannerStarvation`] | planner budget | 1 % of the search pool |
//!
//! Faults compose: a [`CompositeInjector`] activates several plans inside one
//! mission (each on its own derived RNG stream), which is how the
//! multi-dimensional falsification search ([`crate::search`]) flies a point
//! of a [`FaultSpace`] — named intensity axes like occlusion × GPS bias —
//! as a single mission.

use mls_core::{FaultHook, TickFaults};
use mls_geom::{Vec2, Vec3};
use mls_sim_uav::PointCloud;
use mls_vision::{Detection, GrayImage, MarkerObservation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The fault-space axes the campaign engine can inject along.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Bursts during which the downward camera image is washed out (tarps,
    /// glare, dust clouds over the marker): the detector genuinely misses.
    MarkerOcclusion,
    /// Frames whose observations are lost between the detector and the
    /// decision module (pipeline congestion, dropped messages).
    DetectionDropout,
    /// Windows during which a confident decoy observation carrying the
    /// target's id is injected at a wrong position (adversarial marker).
    MarkerSpoof,
    /// A GNSS position-bias step that the reported DOP values do not reveal.
    GpsBias,
    /// Wind-gust spikes beyond what the scenario weather already applies.
    WindGust,
    /// Intervals during which the compute platform is thermally throttled.
    ComputeThrottle,
    /// Depth-cloud corruption after an onset: per-point dropout plus
    /// pose-drift painting (every return displaced by a fixed horizontal
    /// offset), reproducing the paper's Fig. 5c erroneous point clouds.
    DepthCorruption,
    /// Intervals during which the planner's search budget is starved
    /// (contended CPU, deadline pressure): the bounded A* pool exhausts and
    /// MLS-V2 falls back to unchecked straight lines, RRT* queries fail —
    /// the paper's planner-exhaustion failure mode on demand.
    PlannerStarvation,
}

impl FaultKind {
    /// Every fault kind, in a stable reporting order.
    pub const ALL: [FaultKind; 8] = [
        FaultKind::MarkerOcclusion,
        FaultKind::DetectionDropout,
        FaultKind::MarkerSpoof,
        FaultKind::GpsBias,
        FaultKind::WindGust,
        FaultKind::ComputeThrottle,
        FaultKind::DepthCorruption,
        FaultKind::PlannerStarvation,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::MarkerOcclusion => "marker-occlusion",
            FaultKind::DetectionDropout => "detection-dropout",
            FaultKind::MarkerSpoof => "marker-spoof",
            FaultKind::GpsBias => "gps-bias",
            FaultKind::WindGust => "wind-gust",
            FaultKind::ComputeThrottle => "compute-throttle",
            FaultKind::DepthCorruption => "depth-corruption",
            FaultKind::PlannerStarvation => "planner-starvation",
        }
    }
}

/// A declarative fault: kind plus intensity in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The fault-space axis.
    pub kind: FaultKind,
    /// Severity in `[0, 1]`; `0.0` is a no-op, `1.0` the worst injection the
    /// kind models.
    pub intensity: f64,
}

impl FaultPlan {
    /// Builds a plan, clamping the intensity into `[0, 1]`.
    pub fn new(kind: FaultKind, intensity: f64) -> Self {
        Self {
            kind,
            intensity: intensity.clamp(0.0, 1.0),
        }
    }

    /// Stable label (`kind@intensity`) used in report rows.
    pub fn label(&self) -> String {
        format!("{}@{:.3}", self.kind.label(), self.intensity)
    }

    /// Instantiates the plan into a mission-scoped injector whose entire
    /// behaviour is determined by `seed` and the mission context.
    pub fn injector(&self, seed: u64, context: &MissionFaultContext) -> FaultInjector {
        FaultInjector::new(*self, seed, context)
    }
}

/// What the injector needs to know about the mission it perturbs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissionFaultContext {
    /// Dictionary id of the genuine landing marker (spoofing forges it).
    pub target_marker_id: u32,
    /// The nominal GPS landing target (spoofed markers are placed around
    /// it, where the decision module is actually looking).
    pub gps_target: Vec3,
    /// Physical marker side length, metres (forged observations mimic it).
    pub marker_size: f64,
    /// Mission duration bound, seconds (bursts are placed inside it).
    pub max_duration: f64,
}

/// An active injection interval.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Window {
    start: f64,
    end: f64,
}

impl Window {
    fn contains(&self, time: f64) -> bool {
        time >= self.start && time < self.end
    }
}

/// The stateful per-mission fault hook a [`FaultPlan`] instantiates.
///
/// All randomness is drawn either at construction (window placement, bias and
/// gust directions) or in the strictly ordered per-frame callbacks (dropout
/// decisions), so a given (plan, seed, context) triple replays identically.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    context: MissionFaultContext,
    windows: Vec<Window>,
    /// Fixed horizontal direction for GPS bias / wind gusts / spoof offset.
    direction: Vec3,
    /// Time the GPS bias step engages, seconds.
    onset: f64,
    /// Per-frame RNG stream (detection dropout).
    rng: StdRng,
}

impl FaultInjector {
    /// Window placement bounds: faults act after the initial climb and
    /// before the mission deadline.
    const ACTIVE_FROM: f64 = 25.0;

    fn new(plan: FaultPlan, seed: u64, context: &MissionFaultContext) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA_17_5E_ED);
        let heading: f64 = rng.random_range(0.0..std::f64::consts::TAU);
        let direction = Vec3::new(heading.cos(), heading.sin(), 0.0);
        let active_until = context.max_duration.max(Self::ACTIVE_FROM + 10.0);
        // Bias/corruption onsets: GPS bias steps in anywhere over the first
        // leg; depth corruption engages right after the climb, because pose
        // drift corrupts every cloud from the moment mapping matters.
        let onset = match plan.kind {
            FaultKind::DepthCorruption => {
                rng.random_range(Self::ACTIVE_FROM..(Self::ACTIVE_FROM + 5.0))
            }
            _ => rng.random_range(Self::ACTIVE_FROM..(Self::ACTIVE_FROM + 40.0)),
        };

        let windows = match plan.kind {
            FaultKind::MarkerOcclusion
            | FaultKind::MarkerSpoof
            | FaultKind::ComputeThrottle
            | FaultKind::WindGust
            | FaultKind::PlannerStarvation => {
                // Both burst count and burst length scale with intensity, and
                // both vanish at 0: intensity 0.0 must be a true no-op so the
                // falsification search's lower anchor equals the baseline.
                let bursts = (plan.intensity * 8.0).ceil() as usize;
                let duration = 2.0 + 16.0 * plan.intensity;
                let mut windows: Vec<Window> = (0..bursts)
                    .map(|_| {
                        let start = rng.random_range(
                            Self::ACTIVE_FROM
                                ..(active_until - duration).max(Self::ACTIVE_FROM + 1.0),
                        );
                        Window {
                            start,
                            end: start + duration,
                        }
                    })
                    .collect();
                windows.sort_by(|a, b| a.start.total_cmp(&b.start));
                windows
            }
            FaultKind::DetectionDropout | FaultKind::GpsBias | FaultKind::DepthCorruption => {
                Vec::new()
            }
        };

        Self {
            plan,
            context: *context,
            windows,
            direction,
            onset,
            rng,
        }
    }

    /// The plan this injector realises.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    fn in_window(&self, time: f64) -> bool {
        self.windows.iter().any(|w| w.contains(time))
    }

    /// Forges a confident observation of the target marker id near the GPS
    /// target, displaced by an intensity-scaled offset (zero displacement at
    /// zero intensity, where no spoof window exists anyway).
    fn spoofed_observation(&self) -> MarkerObservation {
        let offset = 20.0 * self.plan.intensity;
        let position = self.context.gps_target + self.direction * offset;
        let half = 24.0;
        let center = Vec2::new(320.0, 240.0);
        let corners = [
            Vec2::new(center.x - half, center.y - half),
            Vec2::new(center.x + half, center.y - half),
            Vec2::new(center.x + half, center.y + half),
            Vec2::new(center.x - half, center.y + half),
        ];
        let detection = Detection::from_corners(self.context.target_marker_id, corners, 0.95);
        MarkerObservation {
            id: self.context.target_marker_id,
            world_position: position,
            confidence: 0.95,
            apparent_size: half * 2.0,
            estimated_size: self.context.marker_size,
            detection,
        }
    }
}

impl FaultHook for FaultInjector {
    fn tick(&mut self, time: f64) -> TickFaults {
        let mut faults = TickFaults::NONE;
        match self.plan.kind {
            FaultKind::GpsBias if time >= self.onset => {
                // A bias step with a short ramp, as receivers re-converge
                // onto a wrong solution over a few seconds.
                let ramp = ((time - self.onset) / 5.0).clamp(0.0, 1.0);
                faults.gps_bias = self.direction * (10.0 * self.plan.intensity * ramp);
            }
            FaultKind::WindGust => {
                // Sinusoidal gust profile inside each window: peaks at the
                // middle, zero at the edges.
                if let Some(window) = self.windows.iter().find(|w| w.contains(time)) {
                    let phase = (time - window.start) / (window.end - window.start).max(1e-6);
                    let envelope = (phase * std::f64::consts::PI).sin();
                    faults.wind_disturbance =
                        self.direction * (12.0 * self.plan.intensity * envelope);
                }
            }
            FaultKind::ComputeThrottle if self.in_window(time) => {
                faults.compute_throttle = (1.0 - 0.95 * self.plan.intensity).max(0.05);
            }
            _ => {}
        }
        faults
    }

    fn corrupts_depth_clouds(&self) -> bool {
        self.plan.kind == FaultKind::DepthCorruption && self.plan.intensity > 0.0
    }

    fn pre_mapping(&mut self, time: f64, cloud: &mut PointCloud) {
        if self.plan.kind != FaultKind::DepthCorruption
            || self.plan.intensity <= 0.0
            || time < self.onset
        {
            return;
        }
        // Pose-drift painting: every return is reconstructed through a
        // drifted pose estimate, shifting the whole cloud sideways (Fig. 5c).
        let offset = self.direction * (3.0 * self.plan.intensity);
        for point in &mut cloud.points {
            *point += offset;
        }
        // Per-point dropout, one RNG draw per point in cloud order:
        // deterministic for a given (plan, seed, capture sequence).
        let dropout = 0.4 * self.plan.intensity;
        let rng = &mut self.rng;
        cloud.points.retain(|_| !rng.random_bool(dropout));
    }

    fn pre_detection(&mut self, time: f64, image: &mut GrayImage) {
        if self.plan.kind == FaultKind::MarkerOcclusion && self.in_window(time) {
            // Wash the frame out to a uniform mid-grey: no gradients, no
            // marker codes, nothing for either detector to latch onto.
            image.data_mut().fill(0.5);
        }
    }

    fn post_detection(&mut self, time: f64, observations: &mut Vec<MarkerObservation>) {
        match self.plan.kind {
            // One RNG draw per frame, in frame order: deterministic.
            FaultKind::DetectionDropout if self.rng.random_bool(self.plan.intensity) => {
                observations.clear();
            }
            FaultKind::MarkerSpoof if self.in_window(time) => {
                observations.push(self.spoofed_observation());
            }
            _ => {}
        }
    }

    fn pre_planning(&mut self, time: f64) -> f64 {
        if self.plan.kind == FaultKind::PlannerStarvation && self.in_window(time) {
            // Intensity 1.0 leaves the planner 1 % of its pool; no query
            // ever loses its budget entirely (the floor mirrors the
            // compute-throttle floor).
            (1.0 - 0.99 * self.plan.intensity).max(0.01)
        } else {
            1.0
        }
    }
}

/// Several concurrently active fault plans, composed into one [`FaultHook`].
///
/// This is how a mission flies a *point* of a multi-dimensional fault space:
/// each plan gets its own [`FaultInjector`] on a deterministically derived
/// sub-seed (so axes perturb independent RNG streams and adding an axis does
/// not reshuffle the others), and the composite merges their effects —
/// biases and disturbances add, throttles and budget scales multiply, and
/// the frame/cloud tampering callbacks chain in plan order.
#[derive(Debug, Clone)]
pub struct CompositeInjector {
    injectors: Vec<FaultInjector>,
}

impl CompositeInjector {
    /// Instantiates one injector per plan, each on a sub-seed derived from
    /// (`seed`, plan position) with a SplitMix64-style mix.
    pub fn new(plans: &[FaultPlan], seed: u64, context: &MissionFaultContext) -> Self {
        Self {
            injectors: plans
                .iter()
                .enumerate()
                .map(|(index, plan)| plan.injector(Self::sub_seed(seed, index), context))
                .collect(),
        }
    }

    /// The deterministic per-plan seed stream.
    fn sub_seed(seed: u64, index: usize) -> u64 {
        let mut state = seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        state = (state ^ (state >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        state = (state ^ (state >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        state ^ (state >> 31)
    }

    /// The plans this composite realises, in activation order.
    pub fn plans(&self) -> Vec<FaultPlan> {
        self.injectors.iter().map(FaultInjector::plan).collect()
    }
}

impl FaultHook for CompositeInjector {
    fn tick(&mut self, time: f64) -> TickFaults {
        let mut merged = TickFaults::NONE;
        for injector in &mut self.injectors {
            let faults = injector.tick(time);
            merged.gps_bias += faults.gps_bias;
            merged.wind_disturbance += faults.wind_disturbance;
            merged.compute_throttle *= faults.compute_throttle;
        }
        merged.compute_throttle = merged.compute_throttle.max(0.05);
        merged
    }

    fn corrupts_depth_clouds(&self) -> bool {
        self.injectors
            .iter()
            .any(FaultInjector::corrupts_depth_clouds)
    }

    fn pre_mapping(&mut self, time: f64, cloud: &mut PointCloud) {
        for injector in &mut self.injectors {
            injector.pre_mapping(time, cloud);
        }
    }

    fn pre_detection(&mut self, time: f64, image: &mut GrayImage) {
        for injector in &mut self.injectors {
            injector.pre_detection(time, image);
        }
    }

    fn post_detection(&mut self, time: f64, observations: &mut Vec<MarkerObservation>) {
        for injector in &mut self.injectors {
            injector.post_detection(time, observations);
        }
    }

    fn pre_planning(&mut self, time: f64) -> f64 {
        self.injectors
            .iter_mut()
            .map(|injector| injector.pre_planning(time))
            .product::<f64>()
            .clamp(0.0, 1.0)
    }
}

/// One axis of a fault space: a fault kind swept over an intensity interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultAxis {
    /// The fault kind this axis modulates.
    pub kind: FaultKind,
    /// Intensity at the low end of the axis (normalized coordinate 0).
    pub min: f64,
    /// Intensity at the high end of the axis (normalized coordinate 1).
    pub max: f64,
}

impl FaultAxis {
    /// Builds an axis, clamping both bounds into `[0, 1]` and ordering them.
    pub fn new(kind: FaultKind, min: f64, max: f64) -> Self {
        let (min, max) = (min.clamp(0.0, 1.0), max.clamp(0.0, 1.0));
        Self {
            kind,
            min: min.min(max),
            max: min.max(max),
        }
    }

    /// The full `[0, 1]` intensity range of a kind.
    pub fn full(kind: FaultKind) -> Self {
        Self::new(kind, 0.0, 1.0)
    }

    /// Maps a normalized coordinate `t` in `[0, 1]` onto the axis intensity.
    pub fn intensity(&self, t: f64) -> f64 {
        self.min + (self.max - self.min) * t.clamp(0.0, 1.0)
    }

    /// The axis label (its kind's report label).
    pub fn label(&self) -> &'static str {
        self.kind.label()
    }
}

/// A named, multi-dimensional fault space: the search domain of the
/// falsification engine ([`crate::search`]).
///
/// A *point* of the space is a vector of normalized coordinates in
/// `[0, 1]^d`, one per axis; [`FaultSpace::plans`] maps it onto the concrete
/// [`FaultPlan`]s a mission flies (via a [`CompositeInjector`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpace {
    /// Space name, embedded in reports and trace directories.
    pub name: String,
    /// The axes, in coordinate order.
    pub axes: Vec<FaultAxis>,
}

impl FaultSpace {
    /// Builds a named space over the given axes.
    pub fn new(name: impl Into<String>, axes: Vec<FaultAxis>) -> Self {
        Self {
            name: name.into(),
            axes,
        }
    }

    /// Number of axes.
    pub fn dim(&self) -> usize {
        self.axes.len()
    }

    /// Validates the space: at least one axis, no kind twice (two plans of
    /// the same kind in one mission would shadow each other).
    ///
    /// # Errors
    ///
    /// Returns [`crate::CampaignError::InvalidSpec`] when the space is
    /// degenerate.
    pub fn validate(&self) -> Result<(), crate::CampaignError> {
        let reject = |reason: String| Err(crate::CampaignError::InvalidSpec { reason });
        if self.axes.is_empty() {
            return reject(format!("fault space '{}' has no axes", self.name));
        }
        for (i, axis) in self.axes.iter().enumerate() {
            if self.axes[..i].iter().any(|other| other.kind == axis.kind) {
                return reject(format!(
                    "fault space '{}' lists {} twice",
                    self.name,
                    axis.kind.label()
                ));
            }
        }
        Ok(())
    }

    /// Maps a normalized point onto the fault plans a mission flies.
    ///
    /// # Panics
    ///
    /// Panics when `point` does not have one coordinate per axis.
    pub fn plans(&self, point: &[f64]) -> Vec<FaultPlan> {
        assert_eq!(
            point.len(),
            self.axes.len(),
            "point dimensionality must match the space"
        );
        self.axes
            .iter()
            .zip(point)
            .map(|(axis, &t)| FaultPlan::new(axis.kind, axis.intensity(t)))
            .collect()
    }

    /// Human-readable rendering of a normalized point
    /// (`marker-occlusion@0.450 + gps-bias@0.300`).
    pub fn label_point(&self, point: &[f64]) -> String {
        self.plans(point)
            .iter()
            .map(FaultPlan::label)
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn context() -> MissionFaultContext {
        MissionFaultContext {
            target_marker_id: 7,
            gps_target: Vec3::new(40.0, 10.0, 0.0),
            marker_size: 1.5,
            max_duration: 300.0,
        }
    }

    #[test]
    fn zero_intensity_is_a_true_noop_for_every_kind() {
        for kind in FaultKind::ALL {
            let plan = FaultPlan::new(kind, 0.0);
            let mut injector = plan.injector(13, &context());
            assert!(injector.windows.is_empty(), "{kind:?} has no windows at 0");
            for time in [0.0, 50.0, 150.0, 299.0] {
                assert_eq!(injector.tick(time), TickFaults::NONE, "{kind:?} at {time}");
                let mut image = GrayImage::filled(4, 4, 0.7);
                injector.pre_detection(time, &mut image);
                assert!(image.data().iter().all(|&v| (v - 0.7).abs() < 1e-9));
                let mut observations = vec![dummy_observation()];
                injector.post_detection(time, &mut observations);
                assert_eq!(observations.len(), 1, "{kind:?} must not tamper at 0");
                let mut cloud = PointCloud {
                    origin: Vec3::ZERO,
                    points: vec![Vec3::new(5.0, 1.0, 2.0)],
                    max_range: 18.0,
                };
                injector.pre_mapping(time, &mut cloud);
                assert_eq!(
                    cloud.points,
                    vec![Vec3::new(5.0, 1.0, 2.0)],
                    "{kind:?} must not tamper with clouds at 0"
                );
                assert_eq!(
                    injector.pre_planning(time),
                    1.0,
                    "{kind:?} must not starve the planner at 0"
                );
            }
        }
    }

    #[test]
    fn plan_clamps_intensity_and_labels() {
        let plan = FaultPlan::new(FaultKind::GpsBias, 1.7);
        assert_eq!(plan.intensity, 1.0);
        assert_eq!(plan.label(), "gps-bias@1.000");
        assert_eq!(FaultKind::ALL.len(), 8);
    }

    #[test]
    fn injector_is_deterministic_per_seed() {
        let plan = FaultPlan::new(FaultKind::DetectionDropout, 0.5);
        let mut a = plan.injector(9, &context());
        let mut b = plan.injector(9, &context());
        for frame in 0..50 {
            let mut obs_a = vec![dummy_observation()];
            let mut obs_b = vec![dummy_observation()];
            a.post_detection(frame as f64, &mut obs_a);
            b.post_detection(frame as f64, &mut obs_b);
            assert_eq!(obs_a.len(), obs_b.len(), "frame {frame}");
        }
    }

    #[test]
    fn occlusion_blanks_frames_inside_windows_only() {
        let plan = FaultPlan::new(FaultKind::MarkerOcclusion, 0.8);
        let mut injector = plan.injector(3, &context());
        assert!(!injector.windows.is_empty());
        let window_time = injector.windows[0].start + 0.1;

        let mut image = GrayImage::filled(8, 8, 0.9);
        injector.pre_detection(window_time, &mut image);
        assert!(image.data().iter().all(|&v| (v - 0.5).abs() < 1e-9));

        let mut image = GrayImage::filled(8, 8, 0.9);
        injector.pre_detection(1.0, &mut image);
        assert!(image.data().iter().all(|&v| (v - 0.9).abs() < 1e-6));
    }

    #[test]
    fn gps_bias_ramps_to_intensity_scaled_magnitude() {
        let plan = FaultPlan::new(FaultKind::GpsBias, 0.5);
        let mut injector = plan.injector(5, &context());
        assert_eq!(injector.tick(0.0).gps_bias, Vec3::ZERO);
        let late = injector.tick(290.0).gps_bias;
        assert!((late.norm() - 5.0).abs() < 1e-9, "bias {late:?}");
        assert_eq!(late.z, 0.0);
    }

    #[test]
    fn spoof_injects_target_id_near_gps_target() {
        let plan = FaultPlan::new(FaultKind::MarkerSpoof, 1.0);
        let mut injector = plan.injector(11, &context());
        let time = injector.windows[0].start + 0.1;
        let mut observations = Vec::new();
        injector.post_detection(time, &mut observations);
        assert_eq!(observations.len(), 1);
        let spoof = &observations[0];
        assert_eq!(spoof.id, 7);
        let distance = spoof
            .world_position
            .horizontal_distance(context().gps_target);
        assert!((distance - 20.0).abs() < 1e-9, "offset {distance}");
    }

    #[test]
    fn throttle_and_gusts_act_only_inside_windows() {
        for kind in [FaultKind::ComputeThrottle, FaultKind::WindGust] {
            let plan = FaultPlan::new(kind, 1.0);
            let mut injector = plan.injector(2, &context());
            let idle = injector.tick(1.0);
            assert_eq!(idle, TickFaults::NONE);
            let window = injector.windows[0];
            let active = injector.tick((window.start + window.end) / 2.0);
            match kind {
                FaultKind::ComputeThrottle => assert!(active.compute_throttle < 0.1),
                _ => assert!(active.wind_disturbance.norm() > 6.0),
            }
        }
    }

    #[test]
    fn only_depth_corruption_declares_cloud_tampering() {
        for kind in FaultKind::ALL {
            let injector = FaultPlan::new(kind, 0.8).injector(3, &context());
            assert_eq!(
                injector.corrupts_depth_clouds(),
                kind == FaultKind::DepthCorruption,
                "{kind:?}"
            );
        }
        let zero = FaultPlan::new(FaultKind::DepthCorruption, 0.0).injector(3, &context());
        assert!(!zero.corrupts_depth_clouds());
    }

    #[test]
    fn depth_corruption_displaces_and_drops_after_onset() {
        let plan = FaultPlan::new(FaultKind::DepthCorruption, 1.0);
        let mut injector = plan.injector(17, &context());
        let points: Vec<Vec3> = (0..200)
            .map(|i| Vec3::new(10.0, i as f64 * 0.2 - 20.0, 3.0))
            .collect();
        let make_cloud = || PointCloud {
            origin: Vec3::new(0.0, 0.0, 6.0),
            points: points.clone(),
            max_range: 18.0,
        };

        // Before the onset the cloud is untouched.
        let mut early = make_cloud();
        injector.pre_mapping(1.0, &mut early);
        assert_eq!(early.points, points);

        // After the onset points are displaced by 3 m and a large fraction
        // is dropped.
        let mut late = make_cloud();
        injector.pre_mapping(injector.onset + 1.0, &mut late);
        assert!(
            late.points.len() < points.len(),
            "dropout must remove points"
        );
        assert!(late.points.len() > points.len() / 5, "dropout is partial");
        let displaced = late
            .points
            .iter()
            .all(|p| points.iter().any(|q| (p.distance(*q) - 3.0).abs() < 1e-9));
        assert!(displaced, "surviving points sit 3 m from an original");

        // Determinism: the same (plan, seed, call sequence) replays the
        // exact same corruption.
        let mut a = plan.injector(17, &context());
        let mut b = plan.injector(17, &context());
        let mut cloud_a = make_cloud();
        let mut cloud_b = make_cloud();
        let t = a.onset + 1.0;
        a.pre_mapping(t, &mut cloud_a);
        b.pre_mapping(t, &mut cloud_b);
        assert_eq!(cloud_a.points, cloud_b.points);
    }

    fn dummy_observation() -> MarkerObservation {
        FaultPlan::new(FaultKind::MarkerSpoof, 0.2)
            .injector(1, &context())
            .spoofed_observation()
    }

    #[test]
    fn planner_starvation_scales_budget_inside_windows_only() {
        let plan = FaultPlan::new(FaultKind::PlannerStarvation, 1.0);
        let mut injector = plan.injector(4, &context());
        assert!(!injector.windows.is_empty());
        assert_eq!(injector.pre_planning(1.0), 1.0, "idle outside windows");
        let window = injector.windows[0];
        let starved = injector.pre_planning((window.start + window.end) / 2.0);
        assert!((starved - 0.01).abs() < 1e-12, "scale {starved}");
        // Half intensity starves to roughly half the pool.
        let mut half = FaultPlan::new(FaultKind::PlannerStarvation, 0.5).injector(4, &context());
        let window = half.windows[0];
        let scale = half.pre_planning(window.start + 0.1);
        assert!((scale - 0.505).abs() < 1e-12, "scale {scale}");
        // Starvation touches nothing else.
        assert_eq!(injector.tick(window.start + 0.1), TickFaults::NONE);
    }

    #[test]
    fn composite_injector_merges_tick_effects_and_chains_callbacks() {
        let plans = [
            FaultPlan::new(FaultKind::GpsBias, 0.5),
            FaultPlan::new(FaultKind::WindGust, 1.0),
            FaultPlan::new(FaultKind::PlannerStarvation, 1.0),
        ];
        let mut composite = CompositeInjector::new(&plans, 11, &context());
        assert_eq!(composite.plans().len(), 3);
        // Late in the mission the GPS bias has ramped in fully.
        let late = composite.tick(290.0);
        assert!((late.gps_bias.norm() - 5.0).abs() < 1e-9, "{late:?}");
        // Inside a starvation window the budget scale drops to the floor.
        let windows = composite.injectors[2].windows.clone();
        let starved = composite.pre_planning((windows[0].start + windows[0].end) / 2.0);
        assert!((starved - 0.01).abs() < 1e-12);
        // Determinism: the same (plans, seed, context) replays identically.
        let mut twin = CompositeInjector::new(&plans, 11, &context());
        for t in 0..300 {
            assert_eq!(composite.tick(t as f64), twin.tick(t as f64), "t={t}");
        }
        // A different seed produces a different realisation.
        let mut other = CompositeInjector::new(&plans, 12, &context());
        let diverged = (0..300).any(|t| {
            composite.injectors[0].tick(t as f64).gps_bias
                != other.injectors[0].tick(t as f64).gps_bias
        });
        assert!(diverged, "seed must steer the composite realisation");
    }

    #[test]
    fn composite_sub_seeds_are_stable_per_position() {
        // Adding an axis must not reshuffle the streams of earlier axes.
        assert_eq!(
            CompositeInjector::sub_seed(7, 0),
            CompositeInjector::sub_seed(7, 0)
        );
        assert_ne!(
            CompositeInjector::sub_seed(7, 0),
            CompositeInjector::sub_seed(7, 1)
        );
        assert_ne!(
            CompositeInjector::sub_seed(7, 0),
            CompositeInjector::sub_seed(8, 0)
        );
    }

    #[test]
    fn composite_only_corrupts_clouds_when_a_member_does() {
        let benign = CompositeInjector::new(
            &[
                FaultPlan::new(FaultKind::GpsBias, 0.5),
                FaultPlan::new(FaultKind::WindGust, 0.5),
            ],
            3,
            &context(),
        );
        assert!(!benign.corrupts_depth_clouds());
        let corrupting = CompositeInjector::new(
            &[
                FaultPlan::new(FaultKind::GpsBias, 0.5),
                FaultPlan::new(FaultKind::DepthCorruption, 0.5),
            ],
            3,
            &context(),
        );
        assert!(corrupting.corrupts_depth_clouds());
    }

    #[test]
    fn fault_axes_clamp_order_and_interpolate() {
        let axis = FaultAxis::new(FaultKind::GpsBias, 1.2, 0.25);
        assert_eq!(axis.min, 0.25);
        assert_eq!(axis.max, 1.0);
        assert_eq!(axis.intensity(0.0), 0.25);
        assert_eq!(axis.intensity(1.0), 1.0);
        assert!((axis.intensity(0.5) - 0.625).abs() < 1e-12);
        assert_eq!(axis.intensity(7.0), 1.0, "coordinates clamp");
        assert_eq!(FaultAxis::full(FaultKind::WindGust).min, 0.0);
        assert_eq!(axis.label(), "gps-bias");
    }

    #[test]
    fn fault_spaces_validate_and_map_points_to_plans() {
        let space = FaultSpace::new(
            "occlusion-x-gps",
            vec![
                FaultAxis::full(FaultKind::MarkerOcclusion),
                FaultAxis::new(FaultKind::GpsBias, 0.2, 0.8),
            ],
        );
        space.validate().unwrap();
        assert_eq!(space.dim(), 2);
        let plans = space.plans(&[0.5, 0.5]);
        assert_eq!(plans[0], FaultPlan::new(FaultKind::MarkerOcclusion, 0.5));
        assert_eq!(plans[1], FaultPlan::new(FaultKind::GpsBias, 0.5));
        assert_eq!(
            space.label_point(&[0.5, 0.5]),
            "marker-occlusion@0.500 + gps-bias@0.500"
        );

        let empty = FaultSpace::new("empty", vec![]);
        assert!(empty.validate().is_err());
        let duplicated = FaultSpace::new(
            "dup",
            vec![
                FaultAxis::full(FaultKind::GpsBias),
                FaultAxis::new(FaultKind::GpsBias, 0.0, 0.5),
            ],
        );
        assert!(duplicated.validate().is_err());
    }
}
