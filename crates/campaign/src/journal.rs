//! The write-ahead result journal: crash-safe campaigns that resume
//! byte-identically.
//!
//! A campaign's artifacts are a pure function of (spec, seed): every
//! transport funnels its job-ordered mission slots through
//! [`CampaignRunner::assemble_report`], which normalises slots beyond each
//! cell's decided early-stop prefix before anything is persisted. The
//! journal exploits exactly that purity: one fsync'd record per completed
//! work unit (a flown mission slot, or a probe's full outcome vector),
//! each keyed by the owning spec's configuration hash, with floats
//! transported as IEEE-754 bit patterns via [`crate::wire`]. A resumed
//! run replays the recovered slots and re-flies only the missing ones —
//! and because `fly_mission` is itself pure per (spec, cell, scenario,
//! repeat), the assembled report, traces, counterexamples and corpus
//! index are byte-identical whether the campaign was interrupted zero
//! times or N times, in-process or on the fabric.
//!
//! # On-disk format (`mls-journal-v1`)
//!
//! A journal is a JSONL file. The first line is a header pinning the
//! schema, the journal's scope and (when known) the primary spec:
//!
//! ```text
//! {"schema":"mls-journal-v1","scope":"campaign","config_hash":H,"spec":"<canonical spec JSON>"}
//! ```
//!
//! Every subsequent line is one record with a monotonically increasing
//! sequence number `n` (from 0):
//!
//! ```text
//! {"n":0,"t":"slot","hash":H,"job":J,"slot":{...wire slot...}}
//! {"n":1,"t":"probe","hash":H,"planned":P,"outcomes":[0,2,1,...]}
//! ```
//!
//! Probe outcomes use the shared wire codes
//! ([`crate::wire::probe_outcome_code`]): `0` skipped, `1` failure, `2`
//! success.
//!
//! # Integrity discipline
//!
//! Appends are serialised under a mutex and each record is `fdatasync`'d
//! before the append returns, so the journal never runs ahead of the work
//! it describes. On open, a torn **final** line (no trailing newline — the
//! signature of a crash mid-append) is dropped and truncated away, not
//! fatal: the run simply re-flies that unit. Everything else is strict —
//! a complete line that fails to parse, a sequence gap, an unknown
//! schema, or a scope mismatch is a loud [`CampaignError::Journal`],
//! because silently skipping interior corruption would let a damaged
//! journal masquerade as a shorter, valid one.
//!
//! Resume against an *edited* configuration is rejected at open time: a
//! campaign-scope journal pins its spec's configuration hash in the
//! header, and [`JournalHandle::open_primary`] refuses a spec whose hash
//! disagrees — the journal's records would silently mislabel foreign
//! missions otherwise.

use std::collections::BTreeMap;
use std::fs::{self, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

use serde_json::{Number, Value};

use crate::spec::CampaignSpec;
use crate::wire;
use crate::CampaignError;

/// Schema tag of the journal's header line.
pub const JOURNAL_SCHEMA: &str = "mls-journal-v1";

fn err(reason: impl Into<String>) -> CampaignError {
    CampaignError::Journal(reason.into())
}

fn uint(value: u64) -> Value {
    Value::Number(Number::PosInt(value))
}

/// What a journal file covers: one campaign spec, or a whole
/// falsification search (whose probes and captures journal under their
/// own per-spec hashes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalScope {
    /// One campaign; the header pins the spec and its configuration hash.
    Campaign,
    /// A falsification search; the header pins the baseline spec.
    Search,
}

impl JournalScope {
    fn label(self) -> &'static str {
        match self {
            JournalScope::Campaign => "campaign",
            JournalScope::Search => "search",
        }
    }

    fn from_label(label: &str) -> Option<Self> {
        match label {
            "campaign" => Some(JournalScope::Campaign),
            "search" => Some(JournalScope::Search),
            _ => None,
        }
    }
}

/// The parsed header line of a journal file.
#[derive(Debug, Clone)]
pub struct JournalHeader {
    /// What the journal covers.
    pub scope: JournalScope,
    /// Configuration hash of the primary spec, when one was pinned.
    pub config_hash: Option<u64>,
    /// Canonical JSON of the primary spec, when one was pinned — what
    /// [`CampaignRunner::resume`](crate::CampaignRunner::resume) re-runs.
    pub spec_json: Option<String>,
}

/// The append side: one file handle positioned at the end of the valid
/// region, plus the next record sequence number.
struct Writer {
    file: fs::File,
    next_seq: u64,
}

/// An open result journal: the recovered records of previous incarnations
/// plus the fsync'd append channel of this one.
pub struct Journal {
    path: PathBuf,
    header: JournalHeader,
    slots: BTreeMap<(u64, usize), Value>,
    probes: BTreeMap<u64, Vec<Option<bool>>>,
    truncated_tail: bool,
    writer: Mutex<Writer>,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path`, replaying any
    /// records a previous incarnation completed. `spec`, when given, pins
    /// the header of a freshly created journal.
    fn open(
        path: &Path,
        scope: JournalScope,
        spec: Option<&CampaignSpec>,
    ) -> Result<Self, CampaignError> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fs::create_dir_all(parent)
                .map_err(|e| err(format!("cannot create {}: {e}", parent.display())))?;
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| err(format!("cannot open journal {}: {e}", path.display())))?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)
            .map_err(|e| err(format!("cannot read journal {}: {e}", path.display())))?;

        // The valid region ends at the last newline; a non-empty tail
        // beyond it is a torn append from a crash mid-write. Drop it and
        // truncate, so this incarnation's appends start on a clean
        // boundary instead of gluing onto garbage.
        let valid_len = raw
            .iter()
            .rposition(|byte| *byte == b'\n')
            .map_or(0, |last| last + 1);
        let truncated_tail = valid_len < raw.len();
        if truncated_tail {
            file.set_len(valid_len as u64)
                .map_err(|e| err(format!("cannot truncate journal {}: {e}", path.display())))?;
        }
        file.seek(SeekFrom::Start(valid_len as u64))
            .map_err(|e| err(format!("cannot seek journal {}: {e}", path.display())))?;
        raw.truncate(valid_len);
        let text = String::from_utf8(raw)
            .map_err(|_| err(format!("journal {} is not valid UTF-8", path.display())))?;

        let mut lines = text.lines();
        let header = match lines.next() {
            Some(line) => {
                let header = parse_header(line)
                    .map_err(|reason| err(format!("journal {}: {reason}", path.display())))?;
                if header.scope != scope {
                    return Err(err(format!(
                        "journal {} has {} scope, this runner expects {}",
                        path.display(),
                        header.scope.label(),
                        scope.label()
                    )));
                }
                header
            }
            None => {
                let header = JournalHeader {
                    scope,
                    config_hash: match spec {
                        Some(spec) => Some(spec.config_hash()?),
                        None => None,
                    },
                    spec_json: match spec {
                        Some(spec) => Some(spec.to_json()?),
                        None => None,
                    },
                };
                let line = render_header(&header)?;
                file.write_all(line.as_bytes())
                    .and_then(|()| file.sync_data())
                    .map_err(|e| err(format!("cannot write journal {}: {e}", path.display())))?;
                header
            }
        };

        let mut slots = BTreeMap::new();
        let mut probes = BTreeMap::new();
        let mut next_seq = 0u64;
        for (index, line) in lines.enumerate() {
            let record = parse_record(line).map_err(|reason| {
                err(format!(
                    "journal {} record {index}: {reason}",
                    path.display()
                ))
            })?;
            if record.seq != next_seq {
                return Err(err(format!(
                    "journal {} record {index} carries sequence {} where {next_seq} was \
                     expected — the journal is missing or reordering records",
                    path.display(),
                    record.seq
                )));
            }
            next_seq += 1;
            match record.body {
                RecordBody::Slot { hash, job, slot } => {
                    slots.insert((hash, job), slot);
                }
                RecordBody::Probe { hash, outcomes } => {
                    probes.insert(hash, outcomes);
                }
            }
        }

        Ok(Self {
            path: path.to_path_buf(),
            header,
            slots,
            probes,
            truncated_tail,
            writer: Mutex::new(Writer { file, next_seq }),
        })
    }

    /// The journal's parsed header.
    pub fn header(&self) -> &JournalHeader {
        &self.header
    }

    /// Whether opening dropped a torn final record (the crash-mid-append
    /// signature).
    pub fn truncated_tail(&self) -> bool {
        self.truncated_tail
    }

    /// Records recovered from previous incarnations, all kinds.
    pub fn recovered_records(&self) -> usize {
        self.slots.len() + self.probes.len()
    }

    /// The journaled wire encoding of mission slot `job` of the spec
    /// hashing to `hash`, when a previous incarnation completed it.
    pub fn recovered_slot(&self, hash: u64, job: usize) -> Option<&Value> {
        self.slots.get(&(hash, job))
    }

    /// The journaled outcome vector of the probe spec hashing to `hash`,
    /// when a previous incarnation completed it.
    pub fn recovered_probe(&self, hash: u64) -> Option<&[Option<bool>]> {
        self.probes.get(&hash).map(Vec::as_slice)
    }

    /// Appends (and fsyncs) one completed mission slot.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Journal`] when the append cannot be made
    /// durable.
    pub fn append_slot(&self, hash: u64, job: usize, slot: &Value) -> Result<(), CampaignError> {
        self.append(
            "slot",
            hash,
            vec![
                ("job".to_string(), uint(job as u64)),
                ("slot".to_string(), slot.clone()),
            ],
        )
    }

    /// Appends (and fsyncs) one completed probe's full outcome vector.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Journal`] when the append cannot be made
    /// durable.
    pub fn append_probe(&self, hash: u64, outcomes: &[Option<bool>]) -> Result<(), CampaignError> {
        self.append(
            "probe",
            hash,
            vec![
                ("planned".to_string(), uint(outcomes.len() as u64)),
                (
                    "outcomes".to_string(),
                    Value::Array(
                        outcomes
                            .iter()
                            .map(|outcome| uint(wire::probe_outcome_code(*outcome)))
                            .collect(),
                    ),
                ),
            ],
        )
    }

    fn append(
        &self,
        kind: &str,
        hash: u64,
        fields: Vec<(String, Value)>,
    ) -> Result<(), CampaignError> {
        let mut writer = self.writer.lock().expect("journal writer poisoned");
        let mut record = vec![
            ("n".to_string(), uint(writer.next_seq)),
            ("t".to_string(), Value::String(kind.to_string())),
            ("hash".to_string(), uint(hash)),
        ];
        record.extend(fields);
        let mut line = serde_json::to_string(&Value::Object(record))
            .map_err(|e| CampaignError::Serialize(e.to_string()))?;
        line.push('\n');
        writer
            .file
            .write_all(line.as_bytes())
            .and_then(|()| writer.file.sync_data())
            .map_err(|e| {
                err(format!(
                    "cannot append to journal {}: {e}",
                    self.path.display()
                ))
            })?;
        writer.next_seq += 1;
        Ok(())
    }
}

/// One parsed journal record.
struct Record {
    seq: u64,
    body: RecordBody,
}

enum RecordBody {
    Slot {
        hash: u64,
        job: usize,
        slot: Value,
    },
    Probe {
        hash: u64,
        outcomes: Vec<Option<bool>>,
    },
}

fn field_u64(value: &Value, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

fn render_header(header: &JournalHeader) -> Result<String, CampaignError> {
    let value = Value::Object(vec![
        (
            "schema".to_string(),
            Value::String(JOURNAL_SCHEMA.to_string()),
        ),
        (
            "scope".to_string(),
            Value::String(header.scope.label().to_string()),
        ),
        (
            "config_hash".to_string(),
            header.config_hash.map_or(Value::Null, uint),
        ),
        (
            "spec".to_string(),
            header.spec_json.clone().map_or(Value::Null, Value::String),
        ),
    ]);
    let mut line =
        serde_json::to_string(&value).map_err(|e| CampaignError::Serialize(e.to_string()))?;
    line.push('\n');
    Ok(line)
}

fn parse_header(line: &str) -> Result<JournalHeader, String> {
    let value = serde_json::parse(line).map_err(|e| format!("unparseable header: {e}"))?;
    let schema = value
        .get("schema")
        .and_then(Value::as_str)
        .ok_or_else(|| "header carries no schema".to_string())?;
    if schema != JOURNAL_SCHEMA {
        return Err(format!(
            "unsupported journal schema '{schema}' (this build reads {JOURNAL_SCHEMA})"
        ));
    }
    let scope = value
        .get("scope")
        .and_then(Value::as_str)
        .and_then(JournalScope::from_label)
        .ok_or_else(|| "header carries no recognisable scope".to_string())?;
    let config_hash = match value.get("config_hash") {
        None | Some(Value::Null) => None,
        Some(other) => Some(
            other
                .as_u64()
                .ok_or_else(|| "header config_hash is not a u64".to_string())?,
        ),
    };
    let spec_json = match value.get("spec") {
        None | Some(Value::Null) => None,
        Some(other) => Some(
            other
                .as_str()
                .ok_or_else(|| "header spec is not a string".to_string())?
                .to_string(),
        ),
    };
    Ok(JournalHeader {
        scope,
        config_hash,
        spec_json,
    })
}

fn parse_record(line: &str) -> Result<Record, String> {
    let value = serde_json::parse(line).map_err(|e| format!("unparseable record: {e}"))?;
    let seq = field_u64(&value, "n")?;
    let hash = field_u64(&value, "hash")?;
    let kind = value
        .get("t")
        .and_then(Value::as_str)
        .ok_or_else(|| "record carries no type".to_string())?;
    let body = match kind {
        "slot" => RecordBody::Slot {
            hash,
            job: field_u64(&value, "job")? as usize,
            slot: value
                .get("slot")
                .cloned()
                .ok_or_else(|| "slot record carries no slot".to_string())?,
        },
        "probe" => {
            let planned = field_u64(&value, "planned")? as usize;
            let Some(Value::Array(codes)) = value.get("outcomes") else {
                return Err("probe record carries no outcomes array".to_string());
            };
            if codes.len() != planned {
                return Err(format!(
                    "probe record plans {planned} outcomes but carries {}",
                    codes.len()
                ));
            }
            let outcomes = codes
                .iter()
                .map(|code| {
                    code.as_u64()
                        .ok_or_else(|| "probe outcome code is not a u64".to_string())
                        .and_then(|code| {
                            wire::probe_outcome_from_code(code).map_err(|e| e.to_string())
                        })
                })
                .collect::<Result<Vec<_>, _>>()?;
            RecordBody::Probe { hash, outcomes }
        }
        other => return Err(format!("unknown record type '{other}'")),
    };
    Ok(Record { seq, body })
}

/// A lazily opened journal shared by every run of one
/// [`CampaignRunner`](crate::CampaignRunner): the path and scope are fixed
/// at construction, the file is opened (and its records replayed) at most
/// once, on the first run that needs it.
pub struct JournalHandle {
    path: PathBuf,
    scope: JournalScope,
    opened: OnceLock<Result<Arc<Journal>, String>>,
}

impl std::fmt::Debug for JournalHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournalHandle")
            .field("path", &self.path)
            .field("scope", &self.scope)
            .finish_non_exhaustive()
    }
}

impl JournalHandle {
    /// Creates a handle for the journal at `path` with the given scope.
    /// Nothing touches the filesystem until the first open.
    pub fn new(path: PathBuf, scope: JournalScope) -> Self {
        Self {
            path,
            scope,
            opened: OnceLock::new(),
        }
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The handle's scope.
    pub fn scope(&self) -> JournalScope {
        self.scope
    }

    /// Opens the journal as the primary record of `spec`, enforcing the
    /// edited-configuration gate: a pre-existing header whose pinned hash
    /// disagrees with the spec's is rejected loudly.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Journal`] on the hash gate, a scope
    /// mismatch, or any integrity violation in the on-disk journal.
    pub fn open_primary(&self, spec: &CampaignSpec) -> Result<Arc<Journal>, CampaignError> {
        let journal = self.open(Some(spec))?;
        let expected = spec.config_hash()?;
        match journal.header.config_hash {
            Some(found) if found != expected => Err(err(format!(
                "journal {} was written under config hash {found:#018x}, this spec hashes to \
                 {expected:#018x} — refusing to resume a journal against an edited configuration",
                self.path.display()
            ))),
            _ => Ok(journal),
        }
    }

    /// Opens the journal without the primary-spec gate — the form the
    /// probe path and search-member campaigns use, whose records are
    /// keyed by their own per-spec hashes. A freshly created journal
    /// pins `spec` in its header when one is given.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Journal`] on a scope mismatch or any
    /// integrity violation in the on-disk journal.
    pub fn open_ambient(&self, spec: Option<&CampaignSpec>) -> Result<Arc<Journal>, CampaignError> {
        self.open(spec)
    }

    fn open(&self, spec: Option<&CampaignSpec>) -> Result<Arc<Journal>, CampaignError> {
        self.opened
            .get_or_init(|| {
                Journal::open(&self.path, self.scope, spec)
                    .map(Arc::new)
                    .map_err(|e| e.to_string())
            })
            .clone()
            .map_err(CampaignError::Journal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::MissionSlot;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mls-journal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir.join("journal.jsonl")
    }

    fn open(path: &Path, scope: JournalScope) -> Arc<Journal> {
        JournalHandle::new(path.to_path_buf(), scope)
            .open_ambient(None)
            .expect("journal opens")
    }

    #[test]
    fn records_survive_reopen() {
        let path = scratch("reopen");
        let slot = wire::slot_to_value(&MissionSlot::Skipped).unwrap();
        {
            let journal = open(&path, JournalScope::Campaign);
            journal.append_slot(7, 3, &slot).unwrap();
            journal
                .append_probe(9, &[Some(true), None, Some(false)])
                .unwrap();
        }
        let journal = open(&path, JournalScope::Campaign);
        assert!(!journal.truncated_tail());
        assert_eq!(journal.recovered_records(), 2);
        assert!(journal.recovered_slot(7, 3).is_some());
        assert!(journal.recovered_slot(7, 4).is_none());
        assert_eq!(
            journal.recovered_probe(9),
            Some([Some(true), None, Some(false)].as_slice())
        );
    }

    #[test]
    fn torn_final_record_is_dropped_and_truncated() {
        let path = scratch("torn");
        {
            let journal = open(&path, JournalScope::Campaign);
            journal
                .append_slot(1, 0, &wire::slot_to_value(&MissionSlot::Skipped).unwrap())
                .unwrap();
        }
        let intact = fs::read(&path).unwrap();
        let mut torn = intact.clone();
        torn.extend_from_slice(br#"{"n":1,"t":"slot","hash":1,"jo"#);
        fs::write(&path, &torn).unwrap();

        let journal = open(&path, JournalScope::Campaign);
        assert!(journal.truncated_tail());
        assert_eq!(journal.recovered_records(), 1);
        drop(journal);
        // The garbage tail was truncated away, so the file is the intact
        // prefix again and future appends land on a clean boundary.
        assert_eq!(fs::read(&path).unwrap(), intact);
    }

    #[test]
    fn appends_continue_the_sequence_after_a_torn_tail() {
        let path = scratch("torn-append");
        {
            let journal = open(&path, JournalScope::Campaign);
            journal
                .append_slot(1, 0, &wire::slot_to_value(&MissionSlot::Skipped).unwrap())
                .unwrap();
        }
        let mut torn = fs::read(&path).unwrap();
        torn.extend_from_slice(b"garbage without a newline");
        fs::write(&path, &torn).unwrap();
        {
            let journal = open(&path, JournalScope::Campaign);
            journal
                .append_slot(1, 1, &wire::slot_to_value(&MissionSlot::Skipped).unwrap())
                .unwrap();
        }
        let journal = open(&path, JournalScope::Campaign);
        assert!(!journal.truncated_tail());
        assert_eq!(journal.recovered_records(), 2);
    }

    #[test]
    fn interior_corruption_is_loud() {
        let path = scratch("interior");
        {
            let journal = open(&path, JournalScope::Campaign);
            let slot = wire::slot_to_value(&MissionSlot::Skipped).unwrap();
            journal.append_slot(1, 0, &slot).unwrap();
            journal.append_slot(1, 1, &slot).unwrap();
        }
        let text = fs::read_to_string(&path).unwrap();
        let corrupted: String = text
            .lines()
            .enumerate()
            .map(|(index, line)| {
                if index == 1 {
                    "not json\n".to_string()
                } else {
                    format!("{line}\n")
                }
            })
            .collect();
        fs::write(&path, corrupted).unwrap();
        let result = JournalHandle::new(path, JournalScope::Campaign).open_ambient(None);
        assert!(result.is_err());
    }

    #[test]
    fn sequence_gaps_are_loud() {
        let path = scratch("gap");
        {
            let journal = open(&path, JournalScope::Campaign);
            let slot = wire::slot_to_value(&MissionSlot::Skipped).unwrap();
            journal.append_slot(1, 0, &slot).unwrap();
            journal.append_slot(1, 1, &slot).unwrap();
        }
        let text = fs::read_to_string(&path).unwrap();
        let gapped: String = text
            .lines()
            .enumerate()
            .filter(|(index, _)| *index != 1)
            .map(|(_, line)| format!("{line}\n"))
            .collect();
        fs::write(&path, gapped).unwrap();
        let result = JournalHandle::new(path, JournalScope::Campaign).open_ambient(None);
        let message = result.err().expect("gap is rejected").to_string();
        assert!(message.contains("sequence"), "{message}");
    }

    #[test]
    fn scope_mismatch_is_loud() {
        let path = scratch("scope");
        drop(open(&path, JournalScope::Campaign));
        let result = JournalHandle::new(path, JournalScope::Search).open_ambient(None);
        assert!(result.is_err());
    }

    #[test]
    fn primary_open_rejects_an_edited_spec() {
        let path = scratch("edited");
        let spec = CampaignSpec::default();
        let mut edited = spec.clone();
        edited.seed = spec.seed.wrapping_add(1);
        let handle = JournalHandle::new(path.clone(), JournalScope::Campaign);
        handle.open_primary(&spec).expect("fresh journal opens");
        // A fresh handle models a new process resuming against an edited
        // configuration; the pinned hash must reject it.
        let reopened = JournalHandle::new(path, JournalScope::Campaign);
        let message = reopened
            .open_primary(&edited)
            .err()
            .expect("edited spec is rejected")
            .to_string();
        assert!(message.contains("config hash"), "{message}");
    }

    #[test]
    fn unknown_schema_is_loud() {
        let path = scratch("schema");
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(
            &path,
            "{\"schema\":\"mls-journal-v9\",\"scope\":\"campaign\"}\n",
        )
        .unwrap();
        let result = JournalHandle::new(path, JournalScope::Campaign).open_ambient(None);
        assert!(result.is_err());
    }
}
