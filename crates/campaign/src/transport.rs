//! The execution-transport seam: in-process missions or the distributed
//! campaign fabric.
//!
//! A [`crate::CampaignRunner`] owns a [`Transport`]. The default,
//! [`Transport::InProcess`], flies every mission on the process-wide
//! [`crate::MissionExecutor`] pool. [`Transport::Fabric`] hands the whole
//! batch to a [`DistributedBackend`] — worker processes behind a
//! dispatcher — while keeping the aggregation contract: the resulting
//! [`crate::CampaignReport`], traces and probe rates are byte-identical
//! to the in-process run.
//!
//! The backend lives in its own crate (`mls-fabric`) which *depends on*
//! this one, so the linkage is inverted through a process-global
//! registration: the fabric crate calls [`install_backend`] once (its
//! `install()` helper does), and the runner dispatches through
//! [`backend`] whenever its transport is [`Transport::Fabric`]. Running
//! with a fabric transport before any backend is installed is a clean
//! [`crate::CampaignError::Distributed`] error, never a hang.

use std::sync::{Arc, OnceLock};

use mls_sim_world::Scenario;

use crate::report::CampaignReport;
use crate::runner::{CampaignRunner, ProbeRate};
use crate::spec::CampaignSpec;
use crate::CampaignError;

/// How a runner executes mission batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// Fly every mission on the in-process executor pool (the default).
    #[default]
    InProcess,
    /// Shard the batch over `workers` worker processes via the installed
    /// [`DistributedBackend`].
    Fabric {
        /// Worker processes the dispatcher spawns (clamped to at least 1).
        workers: usize,
    },
}

/// A distributed execution backend (implemented by `mls-fabric`).
///
/// Both entry points receive the dispatching runner so the backend can
/// reuse its trace directory, recorder sizing and aggregation methods
/// ([`CampaignRunner::assemble_report`]) — which is what makes the
/// distributed result byte-identical to the in-process one.
pub trait DistributedBackend: Send + Sync {
    /// Runs a full campaign (the [`CampaignRunner::run_with_shared_suites`]
    /// contract) over `workers` worker processes.
    fn run_campaign(
        &self,
        runner: &CampaignRunner,
        workers: usize,
        spec: &CampaignSpec,
        suites: &[Arc<Vec<Scenario>>],
    ) -> Result<CampaignReport, CampaignError>;

    /// Evaluates a batch of single-cell probe specs (the
    /// [`CampaignRunner::run_probe_rates`] contract) over `workers`
    /// worker processes.
    fn run_probes(
        &self,
        runner: &CampaignRunner,
        workers: usize,
        specs: &[CampaignSpec],
        scenarios: &Arc<Vec<Scenario>>,
    ) -> Result<Vec<ProbeRate>, CampaignError>;
}

static BACKEND: OnceLock<Box<dyn DistributedBackend>> = OnceLock::new();

/// Registers the process-wide distributed backend. First installation
/// wins (the registration is a `OnceLock`); returns `false` when a
/// backend was already installed.
pub fn install_backend(backend: Box<dyn DistributedBackend>) -> bool {
    let mut fresh = false;
    BACKEND.get_or_init(|| {
        fresh = true;
        backend
    });
    fresh
}

/// The installed distributed backend, if any.
pub fn backend() -> Option<&'static dyn DistributedBackend> {
    BACKEND.get().map(|boxed| boxed.as_ref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_transport_is_in_process() {
        assert_eq!(Transport::default(), Transport::InProcess);
    }

    #[test]
    fn fabric_without_backend_is_a_clean_error() {
        // The unit-test binary never installs a backend, so a fabric
        // runner must fail fast with the install hint.
        if backend().is_some() {
            return;
        }
        let runner = CampaignRunner::new(1).with_transport(Transport::Fabric { workers: 2 });
        let err = runner.run(&CampaignSpec::smoke()).unwrap_err();
        assert!(err.to_string().contains("no distributed backend"));
    }
}
