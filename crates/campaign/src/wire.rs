//! Bit-exact wire encoding of mission results for the distributed fabric.
//!
//! The fabric protocol is JSON, and JSON float formatting is the classic
//! way to lose byte-identity across a process boundary. Every `f64` a
//! worker ships back is therefore transported as its IEEE-754 bit pattern
//! (`f64::to_bits`, a lossless `u64`), and enums travel as small integer
//! codes — so a [`MissionRecord`] reconstructed on the dispatcher is
//! *bitwise* equal to the one the worker measured, and the aggregated
//! [`crate::CampaignReport`] cannot drift. Captured traces ride along as
//! their canonical JSONL rendering ([`mls_trace::Trace::to_jsonl`]), the
//! exact bytes the dispatcher persists.

use mls_core::{FailsafeReason, MissionResult};
use mls_trace::Trace;
use serde_json::{Number, Value};

use crate::runner::{MissionRecord, MissionSlot};
use crate::CampaignError;

fn err(reason: impl Into<String>) -> CampaignError {
    CampaignError::Distributed(reason.into())
}

fn bits(value: f64) -> Value {
    Value::Number(Number::PosInt(value.to_bits()))
}

fn uint(value: usize) -> Value {
    Value::Number(Number::PosInt(value as u64))
}

fn field_u64(value: &Value, key: &str) -> Result<u64, CampaignError> {
    value
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| err(format!("wire record is missing field '{key}'")))
}

fn field_bits(value: &Value, key: &str) -> Result<f64, CampaignError> {
    Ok(f64::from_bits(field_u64(value, key)?))
}

fn result_code(result: MissionResult) -> u64 {
    match result {
        MissionResult::Success => 0,
        MissionResult::CollisionFailure => 1,
        MissionResult::PoorLanding => 2,
    }
}

fn result_from_code(code: u64) -> Result<MissionResult, CampaignError> {
    match code {
        0 => Ok(MissionResult::Success),
        1 => Ok(MissionResult::CollisionFailure),
        2 => Ok(MissionResult::PoorLanding),
        other => Err(err(format!("unknown mission-result code {other}"))),
    }
}

fn failsafe_code(reason: FailsafeReason) -> u64 {
    match reason {
        FailsafeReason::SearchExhausted => 0,
        FailsafeReason::MarkerLost => 1,
        FailsafeReason::UnsafeDescent => 2,
        FailsafeReason::PlanningFailure => 3,
        FailsafeReason::MissionTimeout => 4,
    }
}

fn failsafe_from_code(code: u64) -> Result<FailsafeReason, CampaignError> {
    match code {
        0 => Ok(FailsafeReason::SearchExhausted),
        1 => Ok(FailsafeReason::MarkerLost),
        2 => Ok(FailsafeReason::UnsafeDescent),
        3 => Ok(FailsafeReason::PlanningFailure),
        4 => Ok(FailsafeReason::MissionTimeout),
        other => Err(err(format!("unknown failsafe code {other}"))),
    }
}

/// Encodes one probe outcome as its wire code: `0` skipped, `1` failure,
/// `2` success. Shared by the fabric probe-result frames and the result
/// journal, so both surfaces speak the same encoding.
pub fn probe_outcome_code(outcome: Option<bool>) -> u64 {
    match outcome {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    }
}

/// Decodes one probe outcome code (see [`probe_outcome_code`]).
///
/// # Errors
///
/// Returns [`CampaignError::Distributed`] on an unknown code.
pub fn probe_outcome_from_code(code: u64) -> Result<Option<bool>, CampaignError> {
    match code {
        0 => Ok(None),
        1 => Ok(Some(false)),
        2 => Ok(Some(true)),
        other => Err(err(format!("unknown probe outcome code {other}"))),
    }
}

/// Encodes one mission slot for the wire.
///
/// # Errors
///
/// Returns [`CampaignError::Trace`] when an attached trace fails to
/// serialize.
pub fn slot_to_value(slot: &MissionSlot) -> Result<Value, CampaignError> {
    let MissionSlot::Flown(record) = slot else {
        return Ok(Value::Object(vec![(
            "skipped".to_string(),
            Value::Bool(true),
        )]));
    };
    let mut fields = vec![
        (
            "result".to_string(),
            Value::Number(Number::PosInt(result_code(record.result))),
        ),
        (
            "failsafe".to_string(),
            match record.failsafe {
                Some(reason) => Value::Number(Number::PosInt(failsafe_code(reason))),
                None => Value::Null,
            },
        ),
        (
            "landing_error".to_string(),
            record.landing_error.map_or(Value::Null, bits),
        ),
        (
            "detection_error".to_string(),
            record.detection_error.map_or(Value::Null, bits),
        ),
        ("duration".to_string(), bits(record.duration)),
        ("mean_cpu".to_string(), bits(record.mean_cpu)),
        ("peak_memory_mb".to_string(), bits(record.peak_memory_mb)),
        (
            "worst_planning_latency".to_string(),
            bits(record.worst_planning_latency),
        ),
        ("gps_drift".to_string(), bits(record.gps_drift)),
        ("visible_frames".to_string(), uint(record.visible_frames)),
        ("missed_frames".to_string(), uint(record.missed_frames)),
    ];
    if let Some(trace) = &record.trace {
        fields.push((
            "trace_jsonl".to_string(),
            Value::String(trace.to_jsonl().map_err(CampaignError::Trace)?),
        ));
    }
    Ok(Value::Object(fields))
}

/// Decodes one wire mission slot back into the aggregation-stage record.
///
/// # Errors
///
/// Returns [`CampaignError::Distributed`] on missing fields or unknown
/// codes, and [`CampaignError::Trace`] when an embedded trace is
/// malformed.
pub fn slot_from_value(value: &Value) -> Result<MissionSlot, CampaignError> {
    if value.get("skipped").and_then(Value::as_bool) == Some(true) {
        return Ok(MissionSlot::Skipped);
    }
    let optional_bits = |key: &str| -> Result<Option<f64>, CampaignError> {
        match value.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(_) => Ok(Some(field_bits(value, key)?)),
        }
    };
    let trace = match value.get("trace_jsonl") {
        None | Some(Value::Null) => None,
        Some(raw) => {
            let text = raw
                .as_str()
                .ok_or_else(|| err("trace_jsonl is not a string"))?;
            Some(Box::new(
                Trace::from_jsonl(text).map_err(CampaignError::Trace)?,
            ))
        }
    };
    let failsafe = match value.get("failsafe") {
        None | Some(Value::Null) => None,
        Some(_) => Some(failsafe_from_code(field_u64(value, "failsafe")?)?),
    };
    Ok(MissionSlot::Flown(Box::new(MissionRecord {
        result: result_from_code(field_u64(value, "result")?)?,
        failsafe,
        landing_error: optional_bits("landing_error")?,
        detection_error: optional_bits("detection_error")?,
        duration: field_bits(value, "duration")?,
        mean_cpu: field_bits(value, "mean_cpu")?,
        peak_memory_mb: field_bits(value, "peak_memory_mb")?,
        worst_planning_latency: field_bits(value, "worst_planning_latency")?,
        gps_drift: field_bits(value, "gps_drift")?,
        visible_frames: field_u64(value, "visible_frames")? as usize,
        missed_frames: field_u64(value, "missed_frames")? as usize,
        trace,
    })))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> MissionRecord {
        MissionRecord {
            result: MissionResult::PoorLanding,
            failsafe: Some(FailsafeReason::MarkerLost),
            landing_error: Some(f64::from_bits(0x3C8D_2AC0_1234_5679)),
            detection_error: None,
            duration: 132.4567890123,
            mean_cpu: 0.1 + 0.2, // deliberately not representable exactly
            peak_memory_mb: 512.0625,
            worst_planning_latency: f64::MIN_POSITIVE,
            gps_drift: -0.0,
            visible_frames: 310,
            missed_frames: 7,
            trace: None,
        }
    }

    #[test]
    fn slots_round_trip_bit_exactly() {
        let original = MissionSlot::Flown(Box::new(record()));
        let back = slot_from_value(&slot_to_value(&original).unwrap()).unwrap();
        let MissionSlot::Flown(decoded) = back else {
            panic!("flown slot decoded as skipped");
        };
        let reference = record();
        assert_eq!(*decoded, reference);
        // PartialEq treats -0.0 == 0.0; pin the sign bit explicitly.
        assert_eq!(decoded.gps_drift.to_bits(), reference.gps_drift.to_bits());
    }

    #[test]
    fn skipped_slots_round_trip() {
        let back = slot_from_value(&slot_to_value(&MissionSlot::Skipped).unwrap()).unwrap();
        assert!(matches!(back, MissionSlot::Skipped));
    }

    #[test]
    fn unknown_codes_are_rejected() {
        let mut value = slot_to_value(&MissionSlot::Flown(Box::new(record()))).unwrap();
        let Value::Object(fields) = &mut value else {
            unreachable!()
        };
        for (key, slot) in fields.iter_mut() {
            if key == "result" {
                *slot = Value::Number(Number::PosInt(9));
            }
        }
        assert!(slot_from_value(&value).is_err());
    }

    #[test]
    fn missing_fields_are_rejected() {
        let value = Value::Object(vec![(
            "result".to_string(),
            Value::Number(Number::PosInt(0)),
        )]);
        let err = slot_from_value(&value).unwrap_err();
        assert!(err.to_string().contains("missing field"));
    }
}
