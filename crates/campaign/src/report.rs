//! Campaign reports: per-cell aggregates, JSON and CSV serialisation.
//!
//! A report is a deterministic function of (spec, seed): the runner feeds
//! mission records into the streaming accumulators in global job order, so
//! the same campaign produces byte-identical JSON regardless of how many
//! worker threads flew it — the property the determinism integration tests
//! pin down.

use mls_core::SystemVariant;
use mls_sim_world::ScenarioFamily;
use serde::{Deserialize, Serialize};

use crate::faults::{FaultKind, FaultPlan};
use crate::spec::fault_point_label;
use crate::CampaignError;

/// Escapes one CSV field per RFC 4180: fields containing a comma, a double
/// quote or a line break are wrapped in double quotes, with embedded quotes
/// doubled. Everything else passes through unchanged, so reports without
/// awkward labels render byte-identically to the unescaped form.
pub fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Streaming summary of one scalar metric over a cell's missions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricSummary {
    /// Number of samples.
    pub count: u64,
    /// Sample mean.
    pub mean: Option<f64>,
    /// Population standard deviation.
    pub std_dev: Option<f64>,
    /// Smallest sample.
    pub min: Option<f64>,
    /// Largest sample.
    pub max: Option<f64>,
    /// Median (P² estimate interpolated at the desired rank; exact at five
    /// or fewer samples).
    pub p50: Option<f64>,
    /// 95th percentile (P² estimate interpolated at the desired rank; exact
    /// at five or fewer samples).
    pub p95: Option<f64>,
}

impl MetricSummary {
    /// A summary of zero samples.
    pub fn empty() -> Self {
        Self {
            count: 0,
            mean: None,
            std_dev: None,
            min: None,
            max: None,
            p50: None,
            p95: None,
        }
    }
}

/// How a cell's early-stopped mission schedule was decided: the verdict,
/// and how many of the planned missions were actually flown before the
/// bound closed ([`crate::spec::EarlyStopPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EarlyStopSummary {
    /// Missions the spec's schedule planned for the cell.
    pub planned: usize,
    /// Missions actually flown (the deterministic decided prefix).
    pub flown: usize,
    /// The decided verdict: `true` when the cell passed (success rate ≥
    /// the policy threshold).
    pub verdict: bool,
    /// The threshold the verdict was decided against.
    pub threshold: f64,
}

/// Aggregates for one (family, variant, profile, fault point) cell.
///
/// `Deserialize` is implemented by hand so report JSONs persisted before
/// multi-fault cells existed (a scalar `fault` key instead of the `faults`
/// list), before scenario families (no `family` key) or before early
/// stopping (no `early_stop` key) still parse — the vendored serde has no
/// `#[serde(default)]`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CellReport {
    /// Cell position in the campaign grid.
    pub index: usize,
    /// Scenario family the cell's suite was generated under.
    pub family: ScenarioFamily,
    /// System generation flown.
    pub variant: SystemVariant,
    /// Compute-profile name.
    pub profile: String,
    /// The fault plans concurrently injected; empty for the baseline cell.
    pub faults: Vec<FaultPlan>,
    /// Missions flown in the cell.
    pub missions: usize,
    /// Fraction of missions ending in [`mls_core::MissionResult::Success`].
    pub success_rate: f64,
    /// Fraction ending in a collision.
    pub collision_rate: f64,
    /// Fraction ending in the poor-landing bucket.
    pub poor_landing_rate: f64,
    /// Fraction of missions a failsafe terminated (V3's safety valve).
    pub failsafe_rate: f64,
    /// Detection false-negative rate pooled over the cell.
    pub false_negative_rate: f64,
    /// Touchdown distance from the true marker, metres (landed missions).
    pub landing_error: MetricSummary,
    /// Mean target-marker detection error per mission, metres.
    pub detection_error: MetricSummary,
    /// Mission duration, seconds.
    pub duration: MetricSummary,
    /// Mean CPU utilisation of the compute platform.
    pub mean_cpu: MetricSummary,
    /// Peak resident memory on the compute platform, MiB.
    pub peak_memory_mb: MetricSummary,
    /// Worst planning latency per mission, seconds.
    pub worst_planning_latency: MetricSummary,
    /// Final GNSS drift magnitude, metres.
    pub gps_drift: MetricSummary,
    /// Early-stop accounting when the spec's
    /// [`probe_early_stop`](crate::CampaignSpec::probe_early_stop) policy
    /// was active for the cell; `None` when every planned mission flew
    /// because no policy was set.
    pub early_stop: Option<EarlyStopSummary>,
}

impl serde::Deserialize for CellReport {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self {
            index: serde::de_field(value, "index")?,
            // Reports persisted before scenario families were all open.
            family: match value.get("family") {
                Some(inner) => serde::Deserialize::from_value(inner)?,
                None => ScenarioFamily::Open,
            },
            variant: serde::de_field(value, "variant")?,
            profile: serde::de_field(value, "profile")?,
            // Reports predating multi-fault cells carry a scalar
            // `fault: Option<FaultPlan>` instead of the `faults` list.
            faults: match value.get("faults") {
                Some(inner) => serde::Deserialize::from_value(inner)?,
                None => match value.get("fault") {
                    Some(inner) => {
                        let legacy: Option<FaultPlan> = serde::Deserialize::from_value(inner)?;
                        legacy.into_iter().collect()
                    }
                    None => Vec::new(),
                },
            },
            missions: serde::de_field(value, "missions")?,
            success_rate: serde::de_field(value, "success_rate")?,
            collision_rate: serde::de_field(value, "collision_rate")?,
            poor_landing_rate: serde::de_field(value, "poor_landing_rate")?,
            failsafe_rate: serde::de_field(value, "failsafe_rate")?,
            false_negative_rate: serde::de_field(value, "false_negative_rate")?,
            landing_error: serde::de_field(value, "landing_error")?,
            detection_error: serde::de_field(value, "detection_error")?,
            duration: serde::de_field(value, "duration")?,
            mean_cpu: serde::de_field(value, "mean_cpu")?,
            peak_memory_mb: serde::de_field(value, "peak_memory_mb")?,
            worst_planning_latency: serde::de_field(value, "worst_planning_latency")?,
            gps_drift: serde::de_field(value, "gps_drift")?,
            // Reports predating early stopping flew every mission.
            early_stop: match value.get("early_stop") {
                Some(inner) => serde::Deserialize::from_value(inner)?,
                None => None,
            },
        })
    }
}

impl CellReport {
    /// Stable row label (`MLS-V3/desktop-sil/gps-bias@0.500`, multi-fault
    /// plans joined with `+`, non-open families prefixed).
    pub fn label(&self) -> String {
        let base = format!(
            "{}/{}/{}",
            self.variant.label(),
            self.profile,
            fault_point_label(&self.faults)
        );
        match self.family {
            ScenarioFamily::Open => base,
            family => format!("{}/{base}", family.label()),
        }
    }
}

/// One persisted mission trace, linked from the report so forensics can go
/// straight from an aggregate row to the replayable artifact behind it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceLink {
    /// Campaign-grid cell the mission belonged to.
    pub cell_index: usize,
    /// Cell row label (`MLS-V2/desktop-sil/gps-bias@0.500`).
    pub cell_label: String,
    /// Scenario flown.
    pub scenario_id: usize,
    /// Repeat index within the cell.
    pub repeat: usize,
    /// The mission seed (also in the trace header).
    pub seed: u64,
    /// Final mission classification.
    pub result: mls_core::MissionResult,
    /// Fig. 5 triage class assigned to the trace, when one matched.
    pub triage: Option<String>,
    /// Path of the trace file on disk.
    pub path: String,
}

/// A complete campaign result.
///
/// `Deserialize` is implemented by hand so report JSONs persisted before
/// the trace subsystem existed (no `traces` key) still parse with an empty
/// trace list — the vendored serde has no `#[serde(default)]`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CampaignReport {
    /// Campaign name, copied from the spec.
    pub name: String,
    /// Master seed the campaign ran under.
    pub seed: u64,
    /// Total missions flown.
    pub missions: usize,
    /// Per-cell aggregates, in grid order.
    pub cells: Vec<CellReport>,
    /// Persisted mission traces, in grid order (empty when the spec's
    /// capture policy is `Off`).
    pub traces: Vec<TraceLink>,
}

impl serde::Deserialize for CampaignReport {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self {
            name: serde::de_field(value, "name")?,
            seed: serde::de_field(value, "seed")?,
            missions: serde::de_field(value, "missions")?,
            cells: serde::de_field(value, "cells")?,
            // Reports predating the trace subsystem have no traces key.
            traces: match value.get("traces") {
                Some(inner) => serde::Deserialize::from_value(inner)?,
                None => Vec::new(),
            },
        })
    }
}

impl CampaignReport {
    /// Serialises the report as pretty JSON (deterministic for a given
    /// spec + seed).
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Serialize`] when serde rejects the value.
    pub fn to_json(&self) -> Result<String, CampaignError> {
        serde_json::to_string_pretty(self).map_err(|e| CampaignError::Serialize(e.to_string()))
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Serialize`] on malformed input.
    pub fn from_json(text: &str) -> Result<Self, CampaignError> {
        serde_json::from_str(text).map_err(|e| CampaignError::Serialize(e.to_string()))
    }

    /// Renders the headline columns as CSV (one row per cell). String
    /// fields are escaped per RFC 4180 ([`csv_escape`]), so labels carrying
    /// commas or quotes cannot shift columns.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "cell,family,variant,profile,fault,intensity,missions,success_rate,collision_rate,\
             poor_landing_rate,failsafe_rate,false_negative_rate,mean_landing_error,\
             p95_landing_error,mean_duration,mean_cpu,p95_planning_latency\n",
        );
        for cell in &self.cells {
            let (fault, intensity) = if cell.faults.is_empty() {
                ("baseline".to_string(), String::new())
            } else {
                (
                    cell.faults
                        .iter()
                        .map(|plan| plan.kind.label())
                        .collect::<Vec<_>>()
                        .join("+"),
                    cell.faults
                        .iter()
                        .map(|plan| format!("{:.3}", plan.intensity))
                        .collect::<Vec<_>>()
                        .join("+"),
                )
            };
            let opt = |v: Option<f64>| v.map_or(String::new(), |v| format!("{v:.4}"));
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{},{},{},{},{}\n",
                cell.index,
                cell.family.label(),
                csv_escape(cell.variant.label()),
                csv_escape(&cell.profile),
                csv_escape(&fault),
                csv_escape(&intensity),
                cell.missions,
                cell.success_rate,
                cell.collision_rate,
                cell.poor_landing_rate,
                cell.failsafe_rate,
                cell.false_negative_rate,
                opt(cell.landing_error.mean),
                opt(cell.landing_error.p95),
                opt(cell.duration.mean),
                opt(cell.mean_cpu.mean),
                opt(cell.worst_planning_latency.p95),
            ));
        }
        out
    }

    /// Finds a cell by variant, profile name and single fault kind (`None`
    /// for the baseline cell; multi-fault cells never match). When several
    /// intensities of the same kind exist, the first in grid order is
    /// returned.
    pub fn cell(
        &self,
        variant: SystemVariant,
        profile: &str,
        fault: Option<FaultKind>,
    ) -> Option<&CellReport> {
        self.cell_with_kinds(variant, profile, fault.as_slice())
    }

    /// Finds a cell by variant, profile name and the exact fault-kind
    /// sequence injected, compared in activation order (`&[]` for the
    /// baseline cell). When several cells share the kinds at different
    /// intensities, the first in grid order is returned.
    pub fn cell_with_kinds(
        &self,
        variant: SystemVariant,
        profile: &str,
        kinds: &[FaultKind],
    ) -> Option<&CellReport> {
        self.cells.iter().find(|c| {
            c.variant == variant
                && c.profile == profile
                && c.faults.len() == kinds.len()
                && c.faults
                    .iter()
                    .zip(kinds)
                    .all(|(plan, kind)| plan.kind == *kind)
        })
    }

    /// Finds a cell by scenario family, variant, profile name and single
    /// fault kind (`None` for the baseline cell) — the per-family form of
    /// [`CampaignReport::cell`].
    pub fn cell_in_family(
        &self,
        family: ScenarioFamily,
        variant: SystemVariant,
        profile: &str,
        fault: Option<FaultKind>,
    ) -> Option<&CellReport> {
        let kinds = fault.as_slice();
        self.cells.iter().find(|c| {
            c.family == family
                && c.variant == variant
                && c.profile == profile
                && c.faults.len() == kinds.len()
                && c.faults
                    .iter()
                    .zip(kinds)
                    .all(|(plan, kind)| plan.kind == *kind)
        })
    }

    /// All cells of one variant, in grid order.
    pub fn cells_for(&self, variant: SystemVariant) -> impl Iterator<Item = &CellReport> {
        self.cells.iter().filter(move |c| c.variant == variant)
    }

    /// All cells of one scenario family, in grid order.
    pub fn cells_in_family(&self, family: ScenarioFamily) -> impl Iterator<Item = &CellReport> {
        self.cells.iter().filter(move |c| c.family == family)
    }

    /// All persisted traces of one cell, in grid order.
    pub fn traces_for_cell(&self, cell_index: usize) -> impl Iterator<Item = &TraceLink> {
        self.traces
            .iter()
            .filter(move |t| t.cell_index == cell_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(index: usize, variant: SystemVariant, fault: Option<FaultPlan>) -> CellReport {
        CellReport {
            index,
            family: ScenarioFamily::Open,
            variant,
            profile: "desktop-sil".to_string(),
            faults: fault.into_iter().collect(),
            missions: 4,
            success_rate: 0.75,
            collision_rate: 0.25,
            poor_landing_rate: 0.0,
            failsafe_rate: 0.0,
            false_negative_rate: 0.1,
            landing_error: MetricSummary::empty(),
            detection_error: MetricSummary::empty(),
            duration: MetricSummary::empty(),
            mean_cpu: MetricSummary::empty(),
            peak_memory_mb: MetricSummary::empty(),
            worst_planning_latency: MetricSummary::empty(),
            gps_drift: MetricSummary::empty(),
            early_stop: None,
        }
    }

    fn report() -> CampaignReport {
        CampaignReport {
            name: "t".to_string(),
            seed: 1,
            missions: 8,
            cells: vec![
                cell(0, SystemVariant::MlsV1, None),
                cell(
                    1,
                    SystemVariant::MlsV1,
                    Some(FaultPlan::new(FaultKind::GpsBias, 0.5)),
                ),
            ],
            traces: vec![TraceLink {
                cell_index: 1,
                cell_label: "MLS-V1/desktop-sil/gps-bias@0.500".to_string(),
                scenario_id: 3,
                repeat: 0,
                seed: 99,
                result: mls_core::MissionResult::PoorLanding,
                triage: Some("gps-drift".to_string()),
                path: "traces/t/c001-s003-r0.jsonl".to_string(),
            }],
        }
    }

    #[test]
    fn json_round_trip_preserves_the_report() {
        let report = report();
        let json = report.to_json().unwrap();
        let parsed = CampaignReport::from_json(&json).unwrap();
        assert_eq!(report, parsed);
    }

    #[test]
    fn reports_without_a_traces_key_parse_with_an_empty_list() {
        let json = report().to_json().unwrap();
        let serde::Value::Object(mut fields) = serde_json::parse(&json).unwrap() else {
            panic!("report serialises to an object");
        };
        fields.retain(|(key, _)| key != "traces");
        let legacy = serde_json::to_string(&serde::Value::Object(fields)).unwrap();
        let parsed = CampaignReport::from_json(&legacy).unwrap();
        assert!(parsed.traces.is_empty());
        assert_eq!(parsed.cells.len(), 2);
    }

    #[test]
    fn legacy_cells_with_a_scalar_fault_key_still_parse() {
        // A report cell persisted before multi-fault cells existed: the
        // `faults` list replaced a scalar `fault: Option<FaultPlan>`.
        let json = report().to_json().unwrap();
        let serde::Value::Object(mut fields) = serde_json::parse(&json).unwrap() else {
            panic!("report serialises to an object");
        };
        for (key, value) in &mut fields {
            if key != "cells" {
                continue;
            }
            let serde::Value::Array(cells) = value else {
                panic!("cells serialise to an array");
            };
            for cell in cells {
                let serde::Value::Object(cell_fields) = cell else {
                    panic!("a cell serialises to an object");
                };
                for (cell_key, cell_value) in cell_fields.iter_mut() {
                    if cell_key == "faults" {
                        let serde::Value::Array(plans) = &*cell_value else {
                            panic!("faults serialise to an array");
                        };
                        *cell_key = "fault".to_string();
                        *cell_value = plans.first().cloned().unwrap_or(serde::Value::Null);
                    }
                }
            }
        }
        let legacy = serde_json::to_string(&serde::Value::Object(fields)).unwrap();
        let parsed = CampaignReport::from_json(&legacy).unwrap();
        assert!(parsed.cells[0].faults.is_empty());
        assert_eq!(
            parsed.cells[1].faults,
            vec![FaultPlan::new(FaultKind::GpsBias, 0.5)]
        );
    }

    #[test]
    fn multi_fault_cells_render_joined_labels_and_csv_columns() {
        let mut report = report();
        report.cells[1].faults = vec![
            FaultPlan::new(FaultKind::MarkerOcclusion, 0.4),
            FaultPlan::new(FaultKind::GpsBias, 0.6),
        ];
        assert_eq!(
            report.cells[1].label(),
            "MLS-V1/desktop-sil/marker-occlusion@0.400+gps-bias@0.600"
        );
        let csv = report.to_csv();
        let row = csv.lines().nth(2).unwrap();
        assert!(row.contains("marker-occlusion+gps-bias"), "{row}");
        assert!(row.contains("0.400+0.600"), "{row}");
        // The exact-kinds lookup finds it; the single-kind lookup does not.
        assert!(report
            .cell_with_kinds(
                SystemVariant::MlsV1,
                "desktop-sil",
                &[FaultKind::MarkerOcclusion, FaultKind::GpsBias],
            )
            .is_some());
        assert!(report
            .cell(
                SystemVariant::MlsV1,
                "desktop-sil",
                Some(FaultKind::GpsBias)
            )
            .is_none());
    }

    #[test]
    fn csv_has_one_row_per_cell_plus_header() {
        let csv = report().to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().nth(2).unwrap().contains("gps-bias"));
    }

    /// Splits one CSV record respecting RFC 4180 quoting — what any
    /// conforming reader does, and what the escaping must keep stable.
    fn parse_csv_record(line: &str) -> Vec<String> {
        let mut fields = Vec::new();
        let mut field = String::new();
        let mut chars = line.chars().peekable();
        let mut quoted = false;
        while let Some(c) = chars.next() {
            match c {
                '"' if quoted && chars.peek() == Some(&'"') => {
                    chars.next();
                    field.push('"');
                }
                '"' => quoted = !quoted,
                ',' if !quoted => fields.push(std::mem::take(&mut field)),
                c => field.push(c),
            }
        }
        fields.push(field);
        fields
    }

    #[test]
    fn csv_fields_with_commas_and_quotes_are_escaped_per_rfc_4180() {
        let mut report = report();
        // A profile label an operator could plausibly type: commas + quotes.
        report.cells[1].profile = "jetson nano, 10W \"maxn\"".to_string();
        let csv = report.to_csv();
        let header_columns = parse_csv_record(csv.lines().next().unwrap()).len();
        for line in csv.lines().skip(1) {
            let fields = parse_csv_record(line);
            assert_eq!(
                fields.len(),
                header_columns,
                "row has shifted columns: {line}"
            );
        }
        let row = parse_csv_record(csv.lines().nth(2).unwrap());
        assert_eq!(row[3], "jetson nano, 10W \"maxn\"");
        // The raw line carries the doubled-quote escaped form.
        assert!(csv.contains("\"jetson nano, 10W \"\"maxn\"\"\""));
        // Unescaped reports render exactly as before (no spurious quoting).
        assert!(!report.to_csv().lines().nth(1).unwrap().contains('"'));
    }

    #[test]
    fn csv_escape_passes_clean_fields_through() {
        assert_eq!(csv_escape("gps-bias@0.500"), "gps-bias@0.500");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_escape("line\nbreak"), "\"line\nbreak\"");
    }

    #[test]
    fn family_aware_lookups_and_labels() {
        let mut report = report();
        report.cells[1].family = ScenarioFamily::ConstrainedPad;
        assert_eq!(
            report.cells[1].label(),
            "constrained-pad/MLS-V1/desktop-sil/gps-bias@0.500"
        );
        assert_eq!(
            report
                .cells_in_family(ScenarioFamily::ConstrainedPad)
                .count(),
            1
        );
        assert!(report
            .cell_in_family(
                ScenarioFamily::ConstrainedPad,
                SystemVariant::MlsV1,
                "desktop-sil",
                Some(FaultKind::GpsBias),
            )
            .is_some());
        assert!(report
            .cell_in_family(
                ScenarioFamily::Open,
                SystemVariant::MlsV1,
                "desktop-sil",
                Some(FaultKind::GpsBias),
            )
            .is_none());
        // The CSV carries the family column.
        let row = parse_csv_record(report.to_csv().lines().nth(2).unwrap());
        assert_eq!(row[1], "constrained-pad");
    }

    #[test]
    fn legacy_cells_without_a_family_key_parse_as_open() {
        let json = report().to_json().unwrap();
        let serde::Value::Object(mut fields) = serde_json::parse(&json).unwrap() else {
            panic!("report serialises to an object");
        };
        for (key, value) in &mut fields {
            if key != "cells" {
                continue;
            }
            let serde::Value::Array(cells) = value else {
                panic!("cells serialise to an array");
            };
            for cell in cells {
                let serde::Value::Object(cell_fields) = cell else {
                    panic!("a cell serialises to an object");
                };
                cell_fields.retain(|(cell_key, _)| cell_key != "family");
            }
        }
        let legacy = serde_json::to_string(&serde::Value::Object(fields)).unwrap();
        let parsed = CampaignReport::from_json(&legacy).unwrap();
        assert!(parsed
            .cells
            .iter()
            .all(|c| c.family == ScenarioFamily::Open));
    }

    #[test]
    fn legacy_cells_without_an_early_stop_key_parse_as_none() {
        let mut report = report();
        report.cells[1].early_stop = Some(EarlyStopSummary {
            planned: 8,
            flown: 3,
            verdict: false,
            threshold: 0.75,
        });
        let json = report.to_json().unwrap();
        assert_eq!(CampaignReport::from_json(&json).unwrap(), report);
        let serde::Value::Object(mut fields) = serde_json::parse(&json).unwrap() else {
            panic!("report serialises to an object");
        };
        for (key, value) in &mut fields {
            if key != "cells" {
                continue;
            }
            let serde::Value::Array(cells) = value else {
                panic!("cells serialise to an array");
            };
            for cell in cells {
                let serde::Value::Object(cell_fields) = cell else {
                    panic!("a cell serialises to an object");
                };
                cell_fields.retain(|(cell_key, _)| cell_key != "early_stop");
            }
        }
        let legacy = serde_json::to_string(&serde::Value::Object(fields)).unwrap();
        let parsed = CampaignReport::from_json(&legacy).unwrap();
        assert!(parsed.cells.iter().all(|c| c.early_stop.is_none()));
    }

    #[test]
    fn cell_lookup_by_fault_kind() {
        let report = report();
        assert!(report
            .cell(SystemVariant::MlsV1, "desktop-sil", None)
            .is_some());
        let gps = report
            .cell(
                SystemVariant::MlsV1,
                "desktop-sil",
                Some(FaultKind::GpsBias),
            )
            .unwrap();
        assert_eq!(gps.index, 1);
        assert!(report
            .cell(SystemVariant::MlsV3, "desktop-sil", None)
            .is_none());
        assert_eq!(report.cells_for(SystemVariant::MlsV1).count(), 2);
        assert!(report.cells[1].label().contains("gps-bias@0.500"));
    }

    #[test]
    fn trace_links_are_queryable_per_cell() {
        let report = report();
        assert_eq!(report.traces_for_cell(1).count(), 1);
        assert_eq!(report.traces_for_cell(0).count(), 0);
        let link = report.traces_for_cell(1).next().unwrap();
        assert_eq!(link.triage.as_deref(), Some("gps-drift"));
        assert!(link.path.ends_with(".jsonl"));
    }
}
