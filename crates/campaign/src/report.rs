//! Campaign reports: per-cell aggregates, JSON and CSV serialisation.
//!
//! A report is a deterministic function of (spec, seed): the runner feeds
//! mission records into the streaming accumulators in global job order, so
//! the same campaign produces byte-identical JSON regardless of how many
//! worker threads flew it — the property the determinism integration tests
//! pin down.

use mls_core::SystemVariant;
use serde::{Deserialize, Serialize};

use crate::faults::{FaultKind, FaultPlan};
use crate::CampaignError;

/// Streaming summary of one scalar metric over a cell's missions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricSummary {
    /// Number of samples.
    pub count: u64,
    /// Sample mean.
    pub mean: Option<f64>,
    /// Population standard deviation.
    pub std_dev: Option<f64>,
    /// Smallest sample.
    pub min: Option<f64>,
    /// Largest sample.
    pub max: Option<f64>,
    /// Median (P² estimate; exact below five samples).
    pub p50: Option<f64>,
    /// 95th percentile (P² estimate; exact below five samples).
    pub p95: Option<f64>,
}

impl MetricSummary {
    /// A summary of zero samples.
    pub fn empty() -> Self {
        Self {
            count: 0,
            mean: None,
            std_dev: None,
            min: None,
            max: None,
            p50: None,
            p95: None,
        }
    }
}

/// Aggregates for one (variant, profile, fault) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellReport {
    /// Cell position in the campaign grid.
    pub index: usize,
    /// System generation flown.
    pub variant: SystemVariant,
    /// Compute-profile name.
    pub profile: String,
    /// The fault injected, or `None` for the baseline cell.
    pub fault: Option<FaultPlan>,
    /// Missions flown in the cell.
    pub missions: usize,
    /// Fraction of missions ending in [`mls_core::MissionResult::Success`].
    pub success_rate: f64,
    /// Fraction ending in a collision.
    pub collision_rate: f64,
    /// Fraction ending in the poor-landing bucket.
    pub poor_landing_rate: f64,
    /// Fraction of missions a failsafe terminated (V3's safety valve).
    pub failsafe_rate: f64,
    /// Detection false-negative rate pooled over the cell.
    pub false_negative_rate: f64,
    /// Touchdown distance from the true marker, metres (landed missions).
    pub landing_error: MetricSummary,
    /// Mean target-marker detection error per mission, metres.
    pub detection_error: MetricSummary,
    /// Mission duration, seconds.
    pub duration: MetricSummary,
    /// Mean CPU utilisation of the compute platform.
    pub mean_cpu: MetricSummary,
    /// Peak resident memory on the compute platform, MiB.
    pub peak_memory_mb: MetricSummary,
    /// Worst planning latency per mission, seconds.
    pub worst_planning_latency: MetricSummary,
    /// Final GNSS drift magnitude, metres.
    pub gps_drift: MetricSummary,
}

impl CellReport {
    /// Stable row label (`MLS-V3/desktop-sil/gps-bias@0.500`).
    pub fn label(&self) -> String {
        let fault = self
            .fault
            .map_or_else(|| "baseline".to_string(), |f| f.label());
        format!("{}/{}/{}", self.variant.label(), self.profile, fault)
    }
}

/// One persisted mission trace, linked from the report so forensics can go
/// straight from an aggregate row to the replayable artifact behind it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceLink {
    /// Campaign-grid cell the mission belonged to.
    pub cell_index: usize,
    /// Cell row label (`MLS-V2/desktop-sil/gps-bias@0.500`).
    pub cell_label: String,
    /// Scenario flown.
    pub scenario_id: usize,
    /// Repeat index within the cell.
    pub repeat: usize,
    /// The mission seed (also in the trace header).
    pub seed: u64,
    /// Final mission classification.
    pub result: mls_core::MissionResult,
    /// Fig. 5 triage class assigned to the trace, when one matched.
    pub triage: Option<String>,
    /// Path of the trace file on disk.
    pub path: String,
}

/// A complete campaign result.
///
/// `Deserialize` is implemented by hand so report JSONs persisted before
/// the trace subsystem existed (no `traces` key) still parse with an empty
/// trace list — the vendored serde has no `#[serde(default)]`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CampaignReport {
    /// Campaign name, copied from the spec.
    pub name: String,
    /// Master seed the campaign ran under.
    pub seed: u64,
    /// Total missions flown.
    pub missions: usize,
    /// Per-cell aggregates, in grid order.
    pub cells: Vec<CellReport>,
    /// Persisted mission traces, in grid order (empty when the spec's
    /// capture policy is `Off`).
    pub traces: Vec<TraceLink>,
}

impl serde::Deserialize for CampaignReport {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self {
            name: serde::de_field(value, "name")?,
            seed: serde::de_field(value, "seed")?,
            missions: serde::de_field(value, "missions")?,
            cells: serde::de_field(value, "cells")?,
            // Reports predating the trace subsystem have no traces key.
            traces: match value.get("traces") {
                Some(inner) => serde::Deserialize::from_value(inner)?,
                None => Vec::new(),
            },
        })
    }
}

impl CampaignReport {
    /// Serialises the report as pretty JSON (deterministic for a given
    /// spec + seed).
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Serialize`] when serde rejects the value.
    pub fn to_json(&self) -> Result<String, CampaignError> {
        serde_json::to_string_pretty(self).map_err(|e| CampaignError::Serialize(e.to_string()))
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Serialize`] on malformed input.
    pub fn from_json(text: &str) -> Result<Self, CampaignError> {
        serde_json::from_str(text).map_err(|e| CampaignError::Serialize(e.to_string()))
    }

    /// Renders the headline columns as CSV (one row per cell).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "cell,variant,profile,fault,intensity,missions,success_rate,collision_rate,\
             poor_landing_rate,failsafe_rate,false_negative_rate,mean_landing_error,\
             p95_landing_error,mean_duration,mean_cpu,p95_planning_latency\n",
        );
        for cell in &self.cells {
            let (fault, intensity) = match cell.fault {
                Some(plan) => (
                    plan.kind.label().to_string(),
                    format!("{:.3}", plan.intensity),
                ),
                None => ("baseline".to_string(), String::new()),
            };
            let opt = |v: Option<f64>| v.map_or(String::new(), |v| format!("{v:.4}"));
            out.push_str(&format!(
                "{},{},{},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{},{},{},{},{}\n",
                cell.index,
                cell.variant.label(),
                cell.profile,
                fault,
                intensity,
                cell.missions,
                cell.success_rate,
                cell.collision_rate,
                cell.poor_landing_rate,
                cell.failsafe_rate,
                cell.false_negative_rate,
                opt(cell.landing_error.mean),
                opt(cell.landing_error.p95),
                opt(cell.duration.mean),
                opt(cell.mean_cpu.mean),
                opt(cell.worst_planning_latency.p95),
            ));
        }
        out
    }

    /// Finds a cell by variant, profile name and fault kind (`None` for the
    /// baseline cell). When several intensities of the same kind exist, the
    /// first in grid order is returned.
    pub fn cell(
        &self,
        variant: SystemVariant,
        profile: &str,
        fault: Option<FaultKind>,
    ) -> Option<&CellReport> {
        self.cells.iter().find(|c| {
            c.variant == variant && c.profile == profile && c.fault.map(|f| f.kind) == fault
        })
    }

    /// All cells of one variant, in grid order.
    pub fn cells_for(&self, variant: SystemVariant) -> impl Iterator<Item = &CellReport> {
        self.cells.iter().filter(move |c| c.variant == variant)
    }

    /// All persisted traces of one cell, in grid order.
    pub fn traces_for_cell(&self, cell_index: usize) -> impl Iterator<Item = &TraceLink> {
        self.traces
            .iter()
            .filter(move |t| t.cell_index == cell_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(index: usize, variant: SystemVariant, fault: Option<FaultPlan>) -> CellReport {
        CellReport {
            index,
            variant,
            profile: "desktop-sil".to_string(),
            fault,
            missions: 4,
            success_rate: 0.75,
            collision_rate: 0.25,
            poor_landing_rate: 0.0,
            failsafe_rate: 0.0,
            false_negative_rate: 0.1,
            landing_error: MetricSummary::empty(),
            detection_error: MetricSummary::empty(),
            duration: MetricSummary::empty(),
            mean_cpu: MetricSummary::empty(),
            peak_memory_mb: MetricSummary::empty(),
            worst_planning_latency: MetricSummary::empty(),
            gps_drift: MetricSummary::empty(),
        }
    }

    fn report() -> CampaignReport {
        CampaignReport {
            name: "t".to_string(),
            seed: 1,
            missions: 8,
            cells: vec![
                cell(0, SystemVariant::MlsV1, None),
                cell(
                    1,
                    SystemVariant::MlsV1,
                    Some(FaultPlan::new(FaultKind::GpsBias, 0.5)),
                ),
            ],
            traces: vec![TraceLink {
                cell_index: 1,
                cell_label: "MLS-V1/desktop-sil/gps-bias@0.500".to_string(),
                scenario_id: 3,
                repeat: 0,
                seed: 99,
                result: mls_core::MissionResult::PoorLanding,
                triage: Some("gps-drift".to_string()),
                path: "traces/t/c001-s003-r0.jsonl".to_string(),
            }],
        }
    }

    #[test]
    fn json_round_trip_preserves_the_report() {
        let report = report();
        let json = report.to_json().unwrap();
        let parsed = CampaignReport::from_json(&json).unwrap();
        assert_eq!(report, parsed);
    }

    #[test]
    fn reports_without_a_traces_key_parse_with_an_empty_list() {
        let json = report().to_json().unwrap();
        let serde::Value::Object(mut fields) = serde_json::parse(&json).unwrap() else {
            panic!("report serialises to an object");
        };
        fields.retain(|(key, _)| key != "traces");
        let legacy = serde_json::to_string(&serde::Value::Object(fields)).unwrap();
        let parsed = CampaignReport::from_json(&legacy).unwrap();
        assert!(parsed.traces.is_empty());
        assert_eq!(parsed.cells.len(), 2);
    }

    #[test]
    fn csv_has_one_row_per_cell_plus_header() {
        let csv = report().to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().nth(2).unwrap().contains("gps-bias"));
    }

    #[test]
    fn cell_lookup_by_fault_kind() {
        let report = report();
        assert!(report
            .cell(SystemVariant::MlsV1, "desktop-sil", None)
            .is_some());
        let gps = report
            .cell(
                SystemVariant::MlsV1,
                "desktop-sil",
                Some(FaultKind::GpsBias),
            )
            .unwrap();
        assert_eq!(gps.index, 1);
        assert!(report
            .cell(SystemVariant::MlsV3, "desktop-sil", None)
            .is_none());
        assert_eq!(report.cells_for(SystemVariant::MlsV1).count(), 2);
        assert!(report.cells[1].label().contains("gps-bias@0.500"));
    }

    #[test]
    fn trace_links_are_queryable_per_cell() {
        let report = report();
        assert_eq!(report.traces_for_cell(1).count(), 1);
        assert_eq!(report.traces_for_cell(0).count(), 0);
        let link = report.traces_for_cell(1).next().unwrap();
        assert_eq!(link.triage.as_deref(), Some("gps-drift"));
        assert!(link.path.ends_with(".jsonl"));
    }
}
