//! Sharded fault-injection campaign engine with falsification search.
//!
//! The paper's evaluation is a *campaign*: hundreds of missions swept over
//! scenario suites, weather, system generations and compute platforms
//! (Tables I–III, Fig. 5). This crate is the engine those sweeps run on, and
//! the natural extension the falsification literature suggests — actively
//! searching the fault space for the smallest perturbation that breaks a
//! landing system.
//!
//! The engine has four parts:
//!
//! * [`faults`] — a deterministic, seed-driven fault model: marker-occlusion
//!   bursts, detection dropout, spoofed markers, GNSS bias steps, wind-gust
//!   spikes and compute throttling, each a [`FaultPlan`](faults::FaultPlan)
//!   the `mls-core` executor consumes through its fault hook.
//! * [`spec`] — a declarative, serde-serializable
//!   [`CampaignSpec`](spec::CampaignSpec): scenarios × system variants ×
//!   compute profiles × fault plans.
//! * [`runner`] — a work-stealing worker pool over OS threads with
//!   per-mission deterministic RNG streams, plus the streaming
//!   [`stats`] accumulators (Welford mean/variance, P² percentiles) the
//!   per-cell aggregates are built from. Reports are byte-identical for a
//!   given spec and seed regardless of thread count.
//! * [`search`] — per-(variant, fault) bisection on fault intensity that
//!   reports the minimal intensity at which landing reliably fails, and
//!   [`report`] — JSON/CSV campaign reports.
//!
//! Campaigns can additionally fly with the `mls-trace` flight recorder
//! attached: a [`TracePolicy`] on the spec (`Off` / `FailuresOnly` / `All`)
//! makes the runner persist per-mission traces, link them from the
//! [`CampaignReport`](report::CampaignReport) with their Fig. 5 triage
//! class, and [`CampaignRunner::replay`](runner::CampaignRunner::replay)
//! re-executes any recorded trace and byte-compares the regenerated event
//! stream.
//!
//! # Examples
//!
//! Run a small fault campaign end to end:
//!
//! ```no_run
//! use mls_campaign::spec::CampaignSpec;
//! use mls_campaign::runner::CampaignRunner;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = CampaignSpec::smoke();
//! let report = CampaignRunner::new(4).run(&spec)?;
//! println!("{}", report.to_json()?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

pub mod faults;
pub mod report;
pub mod runner;
pub mod search;
pub mod spec;
pub mod stats;

pub use faults::{FaultInjector, FaultKind, FaultPlan, MissionFaultContext};
pub use mls_trace::TracePolicy;
pub use report::{CampaignReport, CellReport, MetricSummary, TraceLink};
pub use runner::{execute_sharded, CampaignRunner};
pub use search::{FalsificationConfig, FalsificationResult, FalsificationSearch};
pub use spec::{CampaignCell, CampaignSpec};
pub use stats::{MetricAccumulator, P2Quantile, Welford};

/// Errors produced by the campaign engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum CampaignError {
    /// The campaign specification was rejected.
    InvalidSpec {
        /// Human-readable description.
        reason: String,
    },
    /// Scenario generation failed.
    World(mls_sim_world::SimWorldError),
    /// Assembling a landing system failed.
    Mls(mls_core::MlsError),
    /// Capturing, persisting or parsing a mission trace failed.
    Trace(mls_trace::TraceError),
    /// Serialising a report failed.
    Serialize(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::InvalidSpec { reason } => {
                write!(f, "invalid campaign specification: {reason}")
            }
            CampaignError::World(err) => write!(f, "scenario generation failed: {err}"),
            CampaignError::Mls(err) => write!(f, "landing-system assembly failed: {err}"),
            CampaignError::Trace(err) => write!(f, "trace capture failed: {err}"),
            CampaignError::Serialize(reason) => write!(f, "report serialisation failed: {reason}"),
        }
    }
}

impl Error for CampaignError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CampaignError::World(err) => Some(err),
            CampaignError::Mls(err) => Some(err),
            CampaignError::Trace(err) => Some(err),
            _ => None,
        }
    }
}

impl From<mls_sim_world::SimWorldError> for CampaignError {
    fn from(err: mls_sim_world::SimWorldError) -> Self {
        CampaignError::World(err)
    }
}

impl From<mls_core::MlsError> for CampaignError {
    fn from(err: mls_core::MlsError) -> Self {
        CampaignError::Mls(err)
    }
}

impl From<mls_trace::TraceError> for CampaignError {
    fn from(err: mls_trace::TraceError) -> Self {
        CampaignError::Trace(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_source() {
        let err = CampaignError::InvalidSpec {
            reason: "zero maps".to_string(),
        };
        assert!(err.to_string().contains("zero maps"));
        assert!(err.source().is_none());
        let err: CampaignError = mls_core::MlsError::InvalidConfig {
            reason: "bad".to_string(),
        }
        .into();
        assert!(err.source().is_some());
    }
}
