//! Sharded fault-injection campaign engine with multi-dimensional
//! falsification search.
//!
//! The paper's evaluation is a *campaign*: hundreds of missions swept over
//! scenario suites, weather, system generations and compute platforms
//! (Tables I–III, Fig. 5). This crate is the engine those sweeps run on, and
//! the extension the falsification literature suggests — actively searching
//! the *joint* fault space for the smallest perturbation that breaks a
//! landing system, because failures live at the intersection of stressors.
//!
//! # Module map
//!
//! * [`faults`] — the deterministic, seed-driven fault model: eight
//!   [`FaultKind`] axes (occlusion bursts, detection dropout, spoofed
//!   markers, GNSS bias, wind gusts, compute throttling, depth-cloud
//!   corruption, planner starvation), each a declarative [`FaultPlan`]
//!   instantiated into a [`FaultInjector`]; a [`CompositeInjector`] flies
//!   several plans concurrently, and a [`FaultSpace`] names the intensity
//!   axes the falsification engine searches over.
//! * [`spec`] — the declarative, serde-serializable [`CampaignSpec`]:
//!   scenario-suite dimensions × system variants × compute profiles ×
//!   single-fault plans and multi-fault `combos`, plus the [`TracePolicy`]
//!   deciding which missions keep their traces.
//! * [`executor`] — the persistent work-stealing [`MissionExecutor`] pool:
//!   worker threads spawned once per process and shared (via
//!   [`MissionExecutor::global`]) across campaigns, search probes and
//!   replay verification, so hot paths stop paying pool setup/teardown per
//!   batch.
//! * [`runner`] — deterministic mission sweeps on that pool, with
//!   per-mission deterministic RNG streams, optional early-stopped cells
//!   ([`EarlyStopPolicy`]) and the streaming [`stats`] accumulators
//!   (Welford mean/variance, P² percentiles) the per-cell aggregates are
//!   built from. Reports are byte-identical for a given spec and seed
//!   regardless of thread count, and
//!   [`CampaignRunner::replay`](runner::CampaignRunner::replay) re-executes
//!   any recorded trace and byte-compares the regenerated stream.
//! * [`journal`] — the crash-safety layer: a versioned write-ahead result
//!   journal recording one fsync'd record per completed work unit, keyed
//!   by configuration hash with floats as IEEE-754 bit patterns, so an
//!   interrupted campaign ([`CampaignRunner::resume`](runner::CampaignRunner::resume))
//!   re-flies only the missing missions and reproduces its artifacts
//!   byte-identically.
//! * [`suites`] — the process-wide [`SuiteCache`] memoizing generated
//!   scenario suites by `(family, suite seed, maps, scenarios per map)`,
//!   so repeated campaigns and multi-space falsification runs stop
//!   regenerating identical worlds.
//! * [`search`] — the falsification engine: pluggable [`Searcher`]s
//!   (coarse-to-fine grid refinement, a small self-contained diagonal
//!   CMA-ES) driven through an ask/tell batch interface, so a whole
//!   generation of probes fans out over the executor concurrently
//!   ([`ProbeExecution`]) while counterexamples and probe logs stay
//!   byte-identical to sequential evaluation; counterexample minimization
//!   onto the failure frontier, and capture of each minimal failing point
//!   as a triaged, replay-verified trace linked from the
//!   [`FalsificationReport`].
//! * [`report`] — JSON/CSV campaign reports ([`CampaignReport`]) with
//!   per-trace links ([`TraceLink`]) carrying Fig. 5 triage classes.
//!
//! # Examples
//!
//! Run a small fault campaign end to end:
//!
//! ```no_run
//! use mls_campaign::{CampaignRunner, CampaignSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = CampaignSpec::smoke();
//! let report = CampaignRunner::new(4).run(&spec)?;
//! println!("{}", report.to_json()?);
//! # Ok(())
//! # }
//! ```
//!
//! Falsify a system generation over a two-axis fault space and ship the
//! minimal counterexample as a replayable trace:
//!
//! ```no_run
//! use mls_campaign::{
//!     FalsificationConfig, FalsificationSearch, FaultAxis, FaultKind, FaultSpace,
//!     GridRefinementConfig, Searcher,
//! };
//! use mls_core::SystemVariant;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let search = FalsificationSearch::new(FalsificationConfig::default(), 4);
//! let space = FaultSpace::new(
//!     "occlusion-x-gps-bias",
//!     vec![
//!         FaultAxis::full(FaultKind::MarkerOcclusion),
//!         FaultAxis::full(FaultKind::GpsBias),
//!     ],
//! );
//! let searcher = Searcher::GridRefinement(GridRefinementConfig::default());
//! let result = search.falsify(SystemVariant::MlsV1, &space, &searcher)?;
//! if let Some(ce) = &result.counterexample {
//!     println!(
//!         "minimal failure at {} → {:?}",
//!         space.label_point(&ce.point),
//!         ce.trace.as_ref().map(|t| &t.path),
//!     );
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

pub mod executor;
pub mod faults;
pub mod journal;
mod obs_util;
pub mod report;
pub mod runner;
pub mod search;
pub mod spec;
pub mod stats;
pub mod suites;
pub mod transport;
pub mod wire;

pub use executor::MissionExecutor;
pub use faults::{
    CompositeInjector, FaultAxis, FaultInjector, FaultKind, FaultPlan, FaultSpace,
    MissionFaultContext,
};
pub use journal::{Journal, JournalHandle, JournalHeader, JournalScope, JOURNAL_SCHEMA};
pub use mls_trace::{
    CorpusQuery, CorpusRecord, FailureSignature, TraceCorpus, TracePolicy, CORPUS_INDEX_FILE,
};
pub use report::{CampaignReport, CellReport, EarlyStopSummary, MetricSummary, TraceLink};
pub use runner::{probe_rate_from_outcomes, CampaignRunner, MissionRecord, MissionSlot, ProbeRate};
pub use search::{
    CmaEsConfig, Counterexample, FalsificationConfig, FalsificationReport, FalsificationSearch,
    GridRefinementConfig, ProbeExecution, ProbePoint, SearchStage, Searcher, SpaceFalsification,
};
pub use spec::{fault_point_label, CampaignCell, CampaignSpec, EarlyStopPolicy};
pub use stats::{MetricAccumulator, P2Quantile, Welford};
pub use suites::{SuiteCache, SuiteKey};
pub use transport::{DistributedBackend, Transport};

/// Errors produced by the campaign engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum CampaignError {
    /// The campaign specification was rejected.
    InvalidSpec {
        /// Human-readable description.
        reason: String,
    },
    /// Scenario generation failed.
    World(mls_sim_world::SimWorldError),
    /// Assembling a landing system failed.
    Mls(mls_core::MlsError),
    /// Capturing, persisting or parsing a mission trace failed.
    Trace(mls_trace::TraceError),
    /// Serialising a report failed.
    Serialize(String),
    /// The distributed campaign fabric failed (worker spawn, protocol or
    /// failover exhaustion).
    Distributed(String),
    /// The write-ahead result journal failed (I/O, integrity, or a
    /// resume against an edited configuration).
    Journal(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::InvalidSpec { reason } => {
                write!(f, "invalid campaign specification: {reason}")
            }
            CampaignError::World(err) => write!(f, "scenario generation failed: {err}"),
            CampaignError::Mls(err) => write!(f, "landing-system assembly failed: {err}"),
            CampaignError::Trace(err) => write!(f, "trace capture failed: {err}"),
            CampaignError::Serialize(reason) => write!(f, "report serialisation failed: {reason}"),
            CampaignError::Distributed(reason) => {
                write!(f, "distributed campaign fabric failed: {reason}")
            }
            CampaignError::Journal(reason) => {
                write!(f, "result journal failed: {reason}")
            }
        }
    }
}

impl Error for CampaignError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CampaignError::World(err) => Some(err),
            CampaignError::Mls(err) => Some(err),
            CampaignError::Trace(err) => Some(err),
            _ => None,
        }
    }
}

impl From<mls_sim_world::SimWorldError> for CampaignError {
    fn from(err: mls_sim_world::SimWorldError) -> Self {
        CampaignError::World(err)
    }
}

impl From<mls_core::MlsError> for CampaignError {
    fn from(err: mls_core::MlsError) -> Self {
        CampaignError::Mls(err)
    }
}

impl From<mls_trace::TraceError> for CampaignError {
    fn from(err: mls_trace::TraceError) -> Self {
        CampaignError::Trace(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_source() {
        let err = CampaignError::InvalidSpec {
            reason: "zero maps".to_string(),
        };
        assert!(err.to_string().contains("zero maps"));
        assert!(err.source().is_none());
        let err: CampaignError = mls_core::MlsError::InvalidConfig {
            reason: "bad".to_string(),
        }
        .into();
        assert!(err.source().is_some());
    }
}
