//! Multi-dimensional falsification search with replayable counterexamples.
//!
//! Fixed benchmark grids answer "how often does the system land under fault
//! X at intensity Y"; falsification asks the sharper dependability question —
//! *what is the smallest perturbation that makes landing fail?* The paper's
//! core lesson is that failures live at the *intersection* of stressors
//! (marker occlusion during GPS drift, wind on a starved planner), so the
//! search domain here is a [`FaultSpace`]: named intensity axes searched
//! jointly, following the optimization-based approach of "Falsification of a
//! Vision-based Automatic Landing System" (arXiv:2307.01925).
//!
//! The engine has three stages, all driven through one memoised oracle (a
//! deterministic mini-campaign per probe, so the whole search reproduces
//! from one seed):
//!
//! 1. **Search** — a pluggable [`Searcher`] hunts a failing point in the
//!    normalized unit cube: [`Searcher::GridRefinement`] sweeps a coarse
//!    lattice and recursively refines around the lowest-severity failure;
//!    [`Searcher::CmaEs`] runs a small, self-contained (diagonal) CMA-ES on
//!    the workspace's deterministic RNG.
//! 2. **Minimization** — coordinate-descent shrinking: each axis of the
//!    failing point is bisected toward zero while the failure persists, for
//!    several passes, leaving a point *on the failure frontier* (lowering
//!    any single axis further makes the system pass again).
//! 3. **Capture** — the minimal point is re-flown with the flight recorder
//!    on; the first failing mission's trace is persisted, triaged against
//!    the Fig. 5 taxonomy, linked into the result and replay-verified
//!    byte-for-byte. A minimal counterexample ships as a file, not a number.
//!
//! # Ask/tell batching
//!
//! Searchers do not pull probes one at a time: each emits its whole next
//! *generation* (a full lattice sweep, a full CMA-ES population) through an
//! ask/tell interface, the oracle fans the uncached points of the
//! generation out over the persistent [`MissionExecutor`] concurrently
//! ([`ProbeExecution::Batched`]), and the measured success rates are told
//! back in deterministic point order. Because every searcher decision is a
//! pure function of the told rates, counterexamples, probe logs and
//! minimizer trajectories are byte-identical to sequential evaluation
//! ([`ProbeExecution::Sequential`]) at any thread count — the batched mode
//! merely keeps the machine saturated while a generation flies.
//!
//! Probe campaigns default to early-stopped mission schedules
//! ([`FalsificationConfig::probe_early_stop`]): a probe's remaining repeats
//! are cancelled once the exact [`EarlyStopPolicy`] bound already decides
//! pass/fail against the failure threshold, which cuts the dominant cost of
//! a search — missions whose outcome can no longer change the verdict.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mls_compute::ComputeProfile;
use mls_core::{ExecutorConfig, LandingConfig, SystemVariant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::executor::MissionExecutor;
use crate::faults::{FaultKind, FaultPlan, FaultSpace};
use crate::report::TraceLink;
use crate::runner::CampaignRunner;
use crate::spec::{CampaignSpec, EarlyStopPolicy};
use crate::CampaignError;

/// Cached search instruments (see [`crate::obs_util`]).
mod instruments {
    use crate::obs_util::cached_counter;

    cached_counter!(oracle_hits, "mls_search_oracle_hits_total");
    cached_counter!(oracle_misses, "mls_search_oracle_misses_total");
    cached_counter!(generations, "mls_search_generations_total");
    cached_counter!(
        minimizer_bisections,
        "mls_search_minimizer_bisections_total"
    );
}

/// Configuration of a falsification search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FalsificationConfig {
    /// Master seed (probes derive their campaign seeds from it).
    pub seed: u64,
    /// Maps per probe campaign.
    pub maps: usize,
    /// Scenarios per map per probe campaign.
    pub scenarios_per_map: usize,
    /// Scenario family every probe campaign flies over: the constrained
    /// families give the search a measurably harder space (failures appear
    /// at lower fault severities than over open pads).
    pub family: mls_sim_world::ScenarioFamily,
    /// Repetitions per scenario per probe.
    pub repeats: usize,
    /// A probe "fails" when its success rate drops below this threshold.
    pub failure_threshold: f64,
    /// Coordinate-descent passes of the counterexample minimizer.
    pub minimizer_passes: usize,
    /// Bisection steps per axis per minimizer pass (5 steps resolve an axis
    /// to ~3 % of its span).
    pub minimizer_bisections: usize,
    /// Whether probe campaigns early-stop their mission schedules once the
    /// exact bound decides pass/fail against `failure_threshold` (on by
    /// default for search probes; plain campaigns default off). The decided
    /// verdict is recorded alongside the missions actually flown, and
    /// pass/fail classifications are guaranteed identical to flying every
    /// mission.
    pub probe_early_stop: bool,
    /// Compute platform the probes fly on.
    pub profile: ComputeProfile,
    /// Landing-system configuration.
    pub landing: LandingConfig,
    /// Mission-executor configuration.
    pub executor: ExecutorConfig,
}

impl Default for FalsificationConfig {
    fn default() -> Self {
        Self {
            seed: 2025,
            maps: 2,
            scenarios_per_map: 4,
            family: mls_sim_world::ScenarioFamily::Open,
            repeats: 1,
            failure_threshold: 0.5,
            minimizer_passes: 2,
            minimizer_bisections: 5,
            probe_early_stop: true,
            profile: ComputeProfile::desktop_sil(),
            landing: LandingConfig::default(),
            executor: ExecutorConfig::default(),
        }
    }
}

/// How the oracle evaluates the uncached points of a searcher generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeExecution {
    /// One probe campaign at a time, each internally sharded — the
    /// pre-batching behaviour, kept as the perf baseline and the
    /// equivalence reference.
    Sequential,
    /// The whole generation fans out over the persistent executor at
    /// mission granularity ([`CampaignRunner::run_probe_rates`]), so the
    /// pool stays saturated even when each probe flies only a handful of
    /// missions. Results are identical to [`ProbeExecution::Sequential`].
    Batched,
}

/// Coarse-to-fine lattice refinement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridRefinementConfig {
    /// Lattice points per axis (≥ 2); 3 probes each axis at 0, ½ and 1.
    pub resolution: usize,
    /// Refinement rounds after the initial lattice; each halves the span of
    /// the lattice around the lowest-severity failure.
    pub rounds: usize,
}

impl Default for GridRefinementConfig {
    fn default() -> Self {
        Self {
            resolution: 3,
            rounds: 2,
        }
    }
}

/// A small, self-contained (μ/μ-weighted, λ) evolution strategy with
/// diagonal covariance adaptation — the CMA-ES variant that needs no
/// eigendecomposition, which keeps it dependency-free on the vendored RNG.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CmaEsConfig {
    /// Candidates per generation (λ).
    pub population: usize,
    /// Generations to evolve.
    pub generations: usize,
    /// Initial global step size σ, in normalized axis units.
    pub initial_step: f64,
    /// RNG seed of the sampler (independent of the campaign seed, so the
    /// same probe suite can be searched with different exploration streams).
    pub seed: u64,
}

impl Default for CmaEsConfig {
    fn default() -> Self {
        Self {
            population: 8,
            generations: 8,
            initial_step: 0.3,
            seed: 7,
        }
    }
}

/// The pluggable search strategy hunting a failing point in `[0, 1]^d`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Searcher {
    /// Coarse lattice sweep with recursive refinement around the
    /// lowest-severity failure.
    GridRefinement(GridRefinementConfig),
    /// Diagonal CMA-ES steered toward low-success, low-severity points.
    CmaEs(CmaEsConfig),
}

impl Searcher {
    /// Stable label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Searcher::GridRefinement(_) => "grid-refinement",
            Searcher::CmaEs(_) => "cma-es",
        }
    }
}

/// One evaluated point of the search, in evaluation order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbePoint {
    /// Normalized coordinates in `[0, 1]^d` (one per space axis).
    pub point: Vec<f64>,
    /// Landing success rate observed at that point.
    pub success_rate: f64,
}

/// A minimal failing point of a fault space, with its replayable artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Counterexample {
    /// Normalized coordinates of the minimized failing point.
    pub point: Vec<f64>,
    /// The concrete fault plans the point maps onto (axis intensities).
    pub plans: Vec<FaultPlan>,
    /// Success rate measured at the minimized point — below the failure
    /// threshold, except in the degenerate case of a failing baseline on a
    /// space whose floored axes make even the origin a genuine injection.
    pub success_rate: f64,
    /// The first failing mission's persisted trace, with its triage class.
    pub trace: Option<TraceLink>,
    /// Whether the trace replayed byte-identically when re-executed from
    /// its (seed, spec); `None` when no trace was captured.
    pub replay_identical: Option<bool>,
}

/// The outcome of falsifying one (variant, fault space) pair.
///
/// `Deserialize` is implemented by hand so result JSONs persisted before
/// scenario families existed (no `family` key) or before mission
/// accounting (no `missions_flown` key) still parse — the vendored serde
/// has no `#[serde(default)]`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SpaceFalsification {
    /// The fault space searched.
    pub space: FaultSpace,
    /// System generation probed.
    pub variant: SystemVariant,
    /// Scenario family the probe campaigns flew over.
    pub family: mls_sim_world::ScenarioFamily,
    /// Label of the searcher used.
    pub searcher: String,
    /// Success rate with no fault injected.
    pub baseline_success_rate: f64,
    /// The minimized counterexample, or `None` when no point of the space
    /// falsified the system (not even the all-axes-at-max corner).
    pub counterexample: Option<Counterexample>,
    /// Every distinct point evaluated, in evaluation order (memoised
    /// re-visits are not repeated).
    pub probes: Vec<ProbePoint>,
    /// Missions actually flown across the whole run (baseline, probes,
    /// capture and replay verification) — the wall-clock currency early
    /// stopping saves.
    pub missions_flown: usize,
}

impl serde::Deserialize for SpaceFalsification {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self {
            space: serde::de_field(value, "space")?,
            variant: serde::de_field(value, "variant")?,
            // Results persisted before scenario families searched open pads.
            family: match value.get("family") {
                Some(inner) => serde::Deserialize::from_value(inner)?,
                None => mls_sim_world::ScenarioFamily::Open,
            },
            searcher: serde::de_field(value, "searcher")?,
            baseline_success_rate: serde::de_field(value, "baseline_success_rate")?,
            counterexample: serde::de_field(value, "counterexample")?,
            probes: serde::de_field(value, "probes")?,
            // Results persisted before mission accounting carry no count.
            missions_flown: match value.get("missions_flown") {
                Some(inner) => serde::Deserialize::from_value(inner)?,
                None => 0,
            },
        })
    }
}

/// A complete falsification study over several (variant, space) pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FalsificationReport {
    /// One result per searched (variant, space) pair, in input order.
    pub results: Vec<SpaceFalsification>,
}

impl FalsificationReport {
    /// Serialises the report as pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Serialize`] when serde rejects the value.
    pub fn to_json(&self) -> Result<String, CampaignError> {
        serde_json::to_string_pretty(self).map_err(|e| CampaignError::Serialize(e.to_string()))
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Serialize`] on malformed input.
    pub fn from_json(text: &str) -> Result<Self, CampaignError> {
        serde_json::from_str(text).map_err(|e| CampaignError::Serialize(e.to_string()))
    }

    /// Renders the headline columns as CSV (one row per searched space).
    /// String fields are escaped per RFC 4180
    /// ([`crate::report::csv_escape`]), so labels carrying commas or quotes
    /// cannot shift columns.
    pub fn to_csv(&self) -> String {
        let escape = crate::report::csv_escape;
        let mut out = String::from(
            "space,variant,family,searcher,axes,baseline_success_rate,probes,falsified,\
             counterexample,success_at_counterexample,triage,replay_identical,trace,\
             missions_flown\n",
        );
        for result in &self.results {
            let (counterexample, success, triage, replay, trace) = match &result.counterexample {
                Some(ce) => (
                    crate::spec::fault_point_label(&ce.plans),
                    format!("{:.4}", ce.success_rate),
                    ce.trace
                        .as_ref()
                        .and_then(|t| t.triage.clone())
                        .unwrap_or_default(),
                    ce.replay_identical
                        .map(|ok| ok.to_string())
                        .unwrap_or_default(),
                    ce.trace
                        .as_ref()
                        .map(|t| t.path.clone())
                        .unwrap_or_default(),
                ),
                None => Default::default(),
            };
            out.push_str(&format!(
                "{},{},{},{},{},{:.4},{},{},{},{},{},{},{},{}\n",
                escape(&result.space.name),
                escape(result.variant.label()),
                result.family.label(),
                escape(&result.searcher),
                result.space.dim(),
                result.baseline_success_rate,
                result.probes.len(),
                result.counterexample.is_some(),
                escape(&counterexample),
                success,
                escape(&triage),
                replay,
                escape(&trace),
                result.missions_flown,
            ));
        }
        out
    }
}

/// Upper bound on fault-space dimensionality: one axis per distinct
/// [`FaultKind`] (spaces repeating a kind are rejected by
/// [`FaultSpace::validate`]).
const MAX_SPACE_AXES: usize = FaultKind::ALL.len();

/// Fixed-size, allocation-free memo key: coordinates quantized to 1e-9
/// (far below any searcher's resolution), so float jitter cannot double-fly
/// a probe — and a cache hit in a hot loop (the minimizer probes one point
/// per bisection step) allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PointKey {
    coords: [u64; MAX_SPACE_AXES],
    dim: u8,
}

impl PointKey {
    fn of(point: &[f64]) -> Self {
        assert!(
            point.len() <= MAX_SPACE_AXES,
            "a fault space has at most one axis per fault kind"
        );
        let mut coords = [0u64; MAX_SPACE_AXES];
        for (slot, &x) in coords.iter_mut().zip(point) {
            *slot = (x * 1e9).round() as u64;
        }
        Self {
            coords,
            dim: point.len() as u8,
        }
    }
}

/// The probe evaluation a searcher generation is fanned out through:
/// normalized points → success rates, in order.
type BatchProbeFn<'a> = Box<dyn FnMut(&[Vec<f64>]) -> Result<Vec<f64>, CampaignError> + 'a>;

/// The memoised probe oracle: maps normalized points onto landing success
/// rates, evaluating each distinct point at most once and recording every
/// fresh evaluation in deterministic point order.
struct Oracle<'a> {
    evaluate: BatchProbeFn<'a>,
    cache: HashMap<PointKey, f64>,
    probes: Vec<ProbePoint>,
}

impl<'a> Oracle<'a> {
    /// An oracle over a one-point-at-a-time evaluator (unit tests and
    /// synthetic oracles).
    #[cfg(test)]
    fn new(mut evaluate: impl FnMut(&[f64]) -> Result<f64, CampaignError> + 'a) -> Self {
        Self::new_batch(move |points: &[Vec<f64>]| {
            points.iter().map(|point| evaluate(point)).collect()
        })
    }

    /// An oracle over a generation-at-a-time evaluator.
    fn new_batch(
        evaluate: impl FnMut(&[Vec<f64>]) -> Result<Vec<f64>, CampaignError> + 'a,
    ) -> Self {
        Self {
            evaluate: Box::new(evaluate),
            cache: HashMap::new(),
            probes: Vec::new(),
        }
    }

    /// Seeds the cache with an externally measured rate (the baseline
    /// campaign standing in for the all-no-op origin probe).
    fn prime(&mut self, point: &[f64], success_rate: f64) {
        self.cache.insert(PointKey::of(point), success_rate);
    }

    /// Success rates for a whole generation, in point order. Cached points
    /// and within-generation duplicates are not re-flown; the fresh points
    /// are evaluated in first-occurrence order (concurrently, when the
    /// evaluator batches) and logged in exactly the order a sequential
    /// evaluation would have produced.
    fn success_rates(&mut self, points: &[Vec<f64>]) -> Result<Vec<f64>, CampaignError> {
        let keys: Vec<PointKey> = points.iter().map(|point| PointKey::of(point)).collect();
        let mut fresh: Vec<usize> = Vec::new();
        let mut seen: std::collections::HashSet<PointKey> = std::collections::HashSet::new();
        for (index, key) in keys.iter().enumerate() {
            if !self.cache.contains_key(key) && seen.insert(*key) {
                fresh.push(index);
            }
        }
        if mls_obs::enabled() {
            // Within-generation duplicates beyond the first occurrence are
            // hits too: they never fly.
            instruments::oracle_misses().add(fresh.len() as u64);
            instruments::oracle_hits().add((points.len() - fresh.len()) as u64);
        }
        if !fresh.is_empty() {
            let unique: Vec<Vec<f64>> = fresh.iter().map(|&index| points[index].clone()).collect();
            let measured = (self.evaluate)(&unique)?;
            if measured.len() != unique.len() {
                return Err(CampaignError::InvalidSpec {
                    reason: format!(
                        "the probe evaluator returned {} rates for {} points",
                        measured.len(),
                        unique.len()
                    ),
                });
            }
            for (&index, rate) in fresh.iter().zip(measured) {
                self.cache.insert(keys[index], rate);
                self.probes.push(ProbePoint {
                    point: points[index].clone(),
                    success_rate: rate,
                });
            }
        }
        Ok(keys.iter().map(|key| self.cache[key]).collect())
    }

    /// Success rate of one point; a cache hit allocates nothing.
    fn success_rate(&mut self, point: &[f64]) -> Result<f64, CampaignError> {
        let key = PointKey::of(point);
        if let Some(&rate) = self.cache.get(&key) {
            if mls_obs::enabled() {
                instruments::oracle_hits().inc();
            }
            return Ok(rate);
        }
        if mls_obs::enabled() {
            instruments::oracle_misses().inc();
        }
        let measured = (self.evaluate)(&[point.to_vec()])?;
        let rate = *measured.first().ok_or_else(|| CampaignError::InvalidSpec {
            reason: "the probe evaluator returned no rate for one point".to_string(),
        })?;
        self.cache.insert(key, rate);
        self.probes.push(ProbePoint {
            point: point.to_vec(),
            success_rate: rate,
        });
        Ok(rate)
    }

    fn fails(&mut self, point: &[f64], threshold: f64) -> Result<bool, CampaignError> {
        Ok(self.success_rate(point)? < threshold)
    }
}

/// Euclidean norm of a normalized point — the severity order the searchers
/// and the minimizer prefer lower values of.
fn severity(point: &[f64]) -> f64 {
    point.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// The ask/tell state machine behind a [`Searcher`]: `ask` emits the next
/// whole generation of points, `tell` feeds their success rates back (in
/// the same order). An empty generation ends the search.
trait SearchState {
    fn ask(&mut self) -> Vec<Vec<f64>>;
    fn tell(&mut self, points: &[Vec<f64>], rates: &[f64]);
    fn take_best(&mut self) -> Option<Vec<f64>>;
}

/// Drives an ask/tell state against the oracle until it stops emitting
/// generations.
fn drive(
    state: &mut dyn SearchState,
    oracle: &mut Oracle,
) -> Result<Option<Vec<f64>>, CampaignError> {
    let mut generation_index = 0usize;
    loop {
        let generation = state.ask();
        if generation.is_empty() {
            return Ok(state.take_best());
        }
        let mut span = mls_obs::span("search_generation");
        if span.is_enabled() {
            span.field("generation", generation_index)
                .field("points", generation.len());
            instruments::generations().inc();
        }
        let rates = oracle.success_rates(&generation)?;
        drop(span);
        state.tell(&generation, &rates);
        generation_index += 1;
    }
}

impl Searcher {
    /// Hunts a failing point in `[0, 1]^dim`, preferring low severity.
    fn find_failure(
        &self,
        dim: usize,
        threshold: f64,
        oracle: &mut Oracle,
    ) -> Result<Option<Vec<f64>>, CampaignError> {
        match self {
            Searcher::GridRefinement(config) => {
                drive(&mut GridState::new(config, dim, threshold), oracle)
            }
            Searcher::CmaEs(config) => drive(&mut CmaState::new(config, dim, threshold), oracle),
        }
    }
}

/// All points of a `resolution^dim` lattice over the box
/// `center ± span/2`, clamped to the unit cube, in odometer order. One
/// scratch buffer builds every point; the returned generation owns its
/// points (the ask/tell contract).
fn lattice_points(center: &[f64], span: f64, resolution: usize) -> Vec<Vec<f64>> {
    let dim = center.len();
    let resolution = resolution.max(2);
    let mut points = Vec::with_capacity(resolution.pow(dim as u32));
    let mut index = vec![0usize; dim];
    let mut scratch = vec![0.0; dim];
    loop {
        for (slot, (&i, &c)) in scratch.iter_mut().zip(index.iter().zip(center)) {
            let offset = i as f64 / (resolution - 1) as f64 - 0.5;
            *slot = (c + offset * span).clamp(0.0, 1.0);
        }
        points.push(scratch.clone());
        // Odometer increment over the lattice indices.
        let mut axis = 0;
        loop {
            if axis == dim {
                return points;
            }
            index[axis] += 1;
            if index[axis] < resolution {
                break;
            }
            index[axis] = 0;
            axis += 1;
        }
    }
}

/// The lowest-severity failing point of one told generation (strictly
/// lower severity wins, so the first point of equal severity in generation
/// order is kept — matching what a sequential sweep records).
fn generation_best(points: &[Vec<f64>], rates: &[f64], threshold: f64) -> Option<(f64, Vec<f64>)> {
    let mut best: Option<(f64, Vec<f64>)> = None;
    for (point, &rate) in points.iter().zip(rates) {
        if rate < threshold {
            let norm = severity(point);
            if best.as_ref().map(|(b, _)| norm < *b).unwrap_or(true) {
                best = Some((norm, point.clone()));
            }
        }
    }
    best
}

/// Coarse-to-fine refinement as an ask/tell state: a full-cube lattice,
/// then progressively halved lattices centred on the lowest-severity
/// failure found so far.
struct GridState {
    resolution: usize,
    rounds_left: usize,
    threshold: f64,
    center: Vec<f64>,
    span: f64,
    best: Option<(f64, Vec<f64>)>,
    initial: bool,
    done: bool,
}

impl GridState {
    fn new(config: &GridRefinementConfig, dim: usize, threshold: f64) -> Self {
        Self {
            resolution: config.resolution.max(2),
            rounds_left: config.rounds,
            threshold,
            center: vec![0.5; dim],
            span: 1.0,
            best: None,
            initial: true,
            done: false,
        }
    }

    fn advance(&mut self) {
        if self.rounds_left == 0 {
            self.done = true;
            return;
        }
        self.rounds_left -= 1;
        self.span /= 2.0;
        self.center = self
            .best
            .as_ref()
            .expect("refinement only runs once a failure exists")
            .1
            .clone();
    }
}

impl SearchState for GridState {
    fn ask(&mut self) -> Vec<Vec<f64>> {
        if self.done {
            return Vec::new();
        }
        lattice_points(&self.center, self.span, self.resolution)
    }

    fn tell(&mut self, points: &[Vec<f64>], rates: &[f64]) {
        let round_best = generation_best(points, rates, self.threshold);
        if self.initial {
            self.initial = false;
            match round_best {
                // No failure on the full-cube lattice: the search is over.
                None => self.done = true,
                Some(found) => {
                    self.best = Some(found);
                    self.advance();
                }
            }
            return;
        }
        if let Some((norm, point)) = round_best {
            let current = self.best.as_ref().map(|(b, _)| *b);
            if current.map(|b| norm < b).unwrap_or(true) {
                self.best = Some((norm, point));
            }
        }
        self.advance();
    }

    fn take_best(&mut self) -> Option<Vec<f64>> {
        self.best.take().map(|(_, point)| point)
    }
}

/// One standard-normal draw (Box–Muller on the vendored uniform stream).
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = (1.0 - rng.random::<f64>()).max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Diagonal CMA-ES as an ask/tell state: weighted-recombination mean
/// update, per-axis variance adaptation, multiplicative step-size control.
/// The objective ranks failing points by severity (lower is better)
/// strictly below passing points, and passing points by how close their
/// success rate is to the threshold — so the population walks downhill
/// toward the failure frontier and then along it toward the origin.
struct CmaState {
    threshold: f64,
    dim: usize,
    population: usize,
    parents: usize,
    weights: Vec<f64>,
    variance_rate: f64,
    rng: StdRng,
    mean: Vec<f64>,
    axis_scale: Vec<f64>,
    sigma: f64,
    generations_left: usize,
    /// The normal draws behind the pending generation's candidates, in
    /// candidate order (`tell` needs them for variance adaptation).
    steps: Vec<Vec<f64>>,
    best: Option<(f64, Vec<f64>)>,
}

impl CmaState {
    fn new(config: &CmaEsConfig, dim: usize, threshold: f64) -> Self {
        let population = config.population.max(4);
        let parents = population / 2;
        // Log-rank recombination weights, normalized.
        let raw: Vec<f64> = (0..parents)
            .map(|i| ((parents + 1) as f64).ln() - ((i + 1) as f64).ln())
            .collect();
        let total: f64 = raw.iter().sum();
        Self {
            threshold,
            dim,
            population,
            parents,
            weights: raw.iter().map(|w| w / total).collect(),
            variance_rate: 0.3,
            rng: StdRng::seed_from_u64(config.seed),
            mean: vec![0.5; dim],
            axis_scale: vec![1.0; dim],
            sigma: config.initial_step.clamp(1e-3, 1.0),
            generations_left: config.generations.max(1),
            steps: Vec::new(),
            best: None,
        }
    }
}

impl SearchState for CmaState {
    fn ask(&mut self) -> Vec<Vec<f64>> {
        if self.generations_left == 0 {
            return Vec::new();
        }
        self.steps.clear();
        let mut candidates = Vec::with_capacity(self.population);
        for _ in 0..self.population {
            let steps: Vec<f64> = (0..self.dim)
                .map(|_| standard_normal(&mut self.rng))
                .collect();
            let candidate: Vec<f64> = (0..self.dim)
                .map(|j| {
                    (self.mean[j] + self.sigma * self.axis_scale[j] * steps[j]).clamp(0.0, 1.0)
                })
                .collect();
            self.steps.push(steps);
            candidates.push(candidate);
        }
        candidates
    }

    fn tell(&mut self, points: &[Vec<f64>], rates: &[f64]) {
        // Score the generation in candidate order (best-so-far updates use
        // strict inequality, so ties resolve exactly as a sequential
        // evaluation would).
        let mut scored: Vec<(f64, usize)> = Vec::with_capacity(points.len());
        for (index, (candidate, &success)) in points.iter().zip(rates).enumerate() {
            let score = if success < self.threshold {
                // Failing: strictly better than any passing point, ranked by
                // severity so the strategy minimizes the counterexample.
                let norm = severity(candidate);
                if self.best.as_ref().map(|(b, _)| norm < *b).unwrap_or(true) {
                    self.best = Some((norm, candidate.clone()));
                }
                norm / (self.dim as f64).sqrt() - 2.0
            } else {
                success - self.threshold
            };
            scored.push((score, index));
        }
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));

        // Weighted recombination of the μ best.
        let old_mean = self.mean.clone();
        for (j, mean) in self.mean.iter_mut().enumerate() {
            *mean = scored
                .iter()
                .take(self.parents)
                .zip(&self.weights)
                .map(|(&(_, index), w)| w * points[index][j])
                .sum();
        }
        // Per-axis variance adaptation from the selected steps.
        let steps = &self.steps;
        for (j, scale) in self.axis_scale.iter_mut().enumerate() {
            let selected: f64 = scored
                .iter()
                .take(self.parents)
                .zip(&self.weights)
                .map(|(&(_, index), w)| w * steps[index][j] * steps[index][j])
                .sum();
            let adapted = (1.0 - self.variance_rate) * *scale * *scale
                + self.variance_rate * *scale * *scale * selected;
            *scale = adapted.sqrt().clamp(1e-3, 10.0);
        }
        // Step-size control: expand while exploring, contract once the mean
        // settles (mean displacement against the expected step).
        let displacement: f64 = self
            .mean
            .iter()
            .zip(&old_mean)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        if displacement > self.sigma * 0.5 {
            self.sigma = (self.sigma * 1.2).min(1.0);
        } else {
            self.sigma = (self.sigma * 0.8).max(1e-3);
        }
        self.generations_left -= 1;
    }

    fn take_best(&mut self) -> Option<Vec<f64>> {
        self.best.take().map(|(_, point)| point)
    }
}

/// Coarse-to-fine refinement over a synthetic oracle (test seam; the
/// engine drives the same state through [`Searcher::find_failure`]).
#[cfg(test)]
fn grid_refinement(
    config: &GridRefinementConfig,
    dim: usize,
    threshold: f64,
    oracle: &mut Oracle,
) -> Result<Option<Vec<f64>>, CampaignError> {
    drive(&mut GridState::new(config, dim, threshold), oracle)
}

/// Diagonal CMA-ES over a synthetic oracle (test seam).
#[cfg(test)]
fn cma_es(
    config: &CmaEsConfig,
    dim: usize,
    threshold: f64,
    oracle: &mut Oracle,
) -> Result<Option<Vec<f64>>, CampaignError> {
    drive(&mut CmaState::new(config, dim, threshold), oracle)
}

/// Coordinate-descent minimization: bisect each axis toward zero while the
/// failure persists, for the configured number of passes. The invariant is
/// that the returned point always fails; after the final pass every axis
/// sits on the failure frontier at the bisection resolution.
fn minimize(
    point: Vec<f64>,
    threshold: f64,
    passes: usize,
    bisections: usize,
    oracle: &mut Oracle,
) -> Result<Vec<f64>, CampaignError> {
    let mut minimal = point;
    let mut span = mls_obs::span("minimize");
    span.field("axes", minimal.len()).field("passes", passes);
    for _ in 0..passes.max(1) {
        for axis in 0..minimal.len() {
            if minimal[axis] <= 0.0 {
                continue;
            }
            let mut probe = minimal.clone();
            probe[axis] = 0.0;
            if oracle.fails(&probe, threshold)? {
                minimal[axis] = 0.0;
                continue;
            }
            // Invariant: `lo` passes, `hi` fails.
            let (mut lo, mut hi) = (0.0, minimal[axis]);
            for _ in 0..bisections.max(1) {
                if span.is_enabled() {
                    instruments::minimizer_bisections().inc();
                }
                let mid = (lo + hi) / 2.0;
                probe[axis] = mid;
                if oracle.fails(&probe, threshold)? {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            minimal[axis] = hi;
        }
    }
    Ok(minimal)
}

/// The search stage of a falsification run, without minimization and
/// capture — what the perf suite times when it compares batched against
/// sequential probe evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchStage {
    /// Success rate with no fault injected.
    pub baseline_success_rate: f64,
    /// The failing point the searcher found (not yet minimized), when one
    /// exists.
    pub failing_point: Option<Vec<f64>>,
    /// Every distinct point evaluated, in evaluation order.
    pub probes: Vec<ProbePoint>,
    /// Missions actually flown (baseline + probes).
    pub missions_flown: usize,
}

/// The multi-dimensional falsification engine.
#[derive(Debug, Clone)]
pub struct FalsificationSearch {
    config: FalsificationConfig,
    runner: CampaignRunner,
    execution: ProbeExecution,
    trace_dir: Option<std::path::PathBuf>,
}

impl FalsificationSearch {
    /// Creates a search executing probes on up to `threads` concurrent
    /// mission workers of the shared persistent executor, with batched
    /// probe evaluation.
    pub fn new(config: FalsificationConfig, threads: usize) -> Self {
        Self {
            config,
            runner: CampaignRunner::new(threads),
            execution: ProbeExecution::Batched,
            trace_dir: None,
        }
    }

    /// The search configuration.
    pub fn config(&self) -> &FalsificationConfig {
        &self.config
    }

    /// The campaign runner probes fly on (shared with replay verification).
    pub fn runner(&self) -> &CampaignRunner {
        &self.runner
    }

    /// The executor pool probes fan out over.
    pub fn executor(&self) -> &Arc<MissionExecutor> {
        self.runner.executor()
    }

    /// Overrides how searcher generations are evaluated
    /// ([`ProbeExecution::Batched`] is the default). Results are identical
    /// either way; [`ProbeExecution::Sequential`] exists as the perf
    /// baseline and the equivalence reference.
    #[must_use]
    pub fn with_probe_execution(mut self, execution: ProbeExecution) -> Self {
        self.execution = execution;
        self
    }

    /// Overrides the base directory counterexample traces are persisted in:
    /// each space still gets its own `falsify-<space name>` subdirectory, so
    /// searching several spaces never collides on trace filenames (default
    /// base: `traces/`).
    #[must_use]
    pub fn with_trace_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.trace_dir = Some(dir.into());
        self
    }

    /// Attaches a write-ahead result journal at `path`: every probe
    /// batch, baseline campaign and capture campaign the search flies is
    /// journaled under its own spec hash, and re-running the same search
    /// against the same journal replays completed work instead of
    /// re-flying it — converging on byte-identical reports, probe logs
    /// and counterexample traces however often the search is interrupted.
    /// One journal covers one search target (a `(variant, space)` pair):
    /// re-opening it with the same target under an edited configuration
    /// fails loudly.
    #[must_use]
    pub fn with_journal(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.runner =
            self.runner
                .with_journal_handle(Arc::new(crate::journal::JournalHandle::new(
                    path.into(),
                    crate::journal::JournalScope::Search,
                )));
        self
    }

    /// Selects the execution transport of the search's probe campaigns:
    /// in-process (the default) or the distributed campaign fabric. The
    /// search itself (ask/tell loop, minimization, capture) stays on the
    /// dispatcher; only mission batches fan out, and results are
    /// byte-identical either way.
    #[must_use]
    pub fn with_transport(mut self, transport: crate::transport::Transport) -> Self {
        self.runner = self.runner.with_transport(transport);
        self
    }

    /// Runs only the search stage — baseline plus searcher, no
    /// minimization, no capture. The perf suite times this against both
    /// [`ProbeExecution`] modes.
    ///
    /// # Errors
    ///
    /// Returns an error when the space is degenerate or a probe campaign
    /// fails to run.
    pub fn search_space(
        &self,
        variant: SystemVariant,
        space: &FaultSpace,
        searcher: &Searcher,
    ) -> Result<SearchStage, CampaignError> {
        space.validate()?;
        let mut search_span = mls_obs::span("search_stage");
        search_span
            .field("space", space.name.as_str())
            .field("variant", variant.label())
            .field("searcher", searcher.label());
        let scenarios = self
            .runner
            .generate_scenarios(&self.probe_spec(variant, space, &[]))?;
        let missions = Arc::new(AtomicUsize::new(0));
        let (mut oracle, baseline_success_rate) =
            self.search_oracle(variant, space, &scenarios, &missions)?;
        let failing_point = self.hunt(space, searcher, &mut oracle, baseline_success_rate)?;
        Ok(SearchStage {
            baseline_success_rate,
            failing_point,
            probes: std::mem::take(&mut oracle.probes),
            missions_flown: missions.load(Ordering::Relaxed),
        })
    }

    /// Falsifies one (variant, fault space) pair: search, minimize, capture.
    ///
    /// # Errors
    ///
    /// Returns an error when the space is degenerate or a probe campaign
    /// fails to run.
    pub fn falsify(
        &self,
        variant: SystemVariant,
        space: &FaultSpace,
        searcher: &Searcher,
    ) -> Result<SpaceFalsification, CampaignError> {
        space.validate()?;
        let mut falsify_span = mls_obs::span("falsify_space");
        falsify_span
            .field("space", space.name.as_str())
            .field("variant", variant.label())
            .field("searcher", searcher.label());
        // One scenario suite serves every probe of the search: probes differ
        // only in their fault point, never in the world flown over. The
        // suite cache shares it across spaces of the same (family, seed).
        let scenarios = self
            .runner
            .generate_scenarios(&self.probe_spec(variant, space, &[]))?;
        let missions = Arc::new(AtomicUsize::new(0));
        let (mut oracle, baseline_success_rate) =
            self.search_oracle(variant, space, &scenarios, &missions)?;
        let found = self.hunt(space, searcher, &mut oracle, baseline_success_rate)?;

        let counterexample = match found {
            None => None,
            Some(point) => {
                let minimal = minimize(
                    point,
                    self.config.failure_threshold,
                    self.config.minimizer_passes,
                    self.config.minimizer_bisections,
                    &mut oracle,
                )?;
                // The memoised oracle reports the success rate actually
                // measured at the minimized point; with a primed origin this
                // is the baseline rate exactly when the point injects
                // nothing, and a real measurement when floored axes make
                // even the origin a genuine injection.
                let success_rate = oracle.success_rate(&minimal)?;
                let (trace, replay_identical) =
                    self.capture(variant, space, &minimal, &scenarios, &missions)?;
                Some(Counterexample {
                    plans: space.plans(&minimal),
                    point: minimal,
                    success_rate,
                    trace,
                    replay_identical,
                })
            }
        };

        if falsify_span.is_enabled() {
            falsify_span
                .field("found", counterexample.is_some())
                .field("missions_flown", missions.load(Ordering::Relaxed));
        }
        Ok(SpaceFalsification {
            space: space.clone(),
            variant,
            family: self.config.family,
            searcher: searcher.label().to_string(),
            baseline_success_rate,
            counterexample,
            probes: std::mem::take(&mut oracle.probes),
            missions_flown: missions.load(Ordering::Relaxed),
        })
    }

    /// Builds the memoised oracle over the configured probe transport, runs
    /// the baseline campaign and primes the origin when it is a no-op.
    fn search_oracle<'a>(
        &'a self,
        variant: SystemVariant,
        space: &'a FaultSpace,
        scenarios: &Arc<Vec<mls_sim_world::Scenario>>,
        missions: &Arc<AtomicUsize>,
    ) -> Result<(Oracle<'a>, f64), CampaignError> {
        let runner = &self.runner;
        let config = &self.config;
        let suite = scenarios.clone();
        let counter = missions.clone();
        let evaluate: BatchProbeFn<'a> = match self.execution {
            ProbeExecution::Sequential => Box::new(move |points: &[Vec<f64>]| {
                points
                    .iter()
                    .map(|point| {
                        let spec = probe_spec_for(config, variant, space, &space.plans(point));
                        let report =
                            runner.run_with_shared_suites(&spec, std::slice::from_ref(&suite))?;
                        counter.fetch_add(report.cells[0].missions, Ordering::Relaxed);
                        Ok(report.cells[0].success_rate)
                    })
                    .collect()
            }),
            ProbeExecution::Batched => Box::new(move |points: &[Vec<f64>]| {
                let specs = points
                    .iter()
                    .map(|point| probe_spec_for(config, variant, space, &space.plans(point)))
                    .collect();
                let rates = runner.run_probe_rates(specs, suite.clone())?;
                counter.fetch_add(
                    rates.iter().map(|rate| rate.missions_flown).sum(),
                    Ordering::Relaxed,
                );
                Ok(rates.into_iter().map(|rate| rate.success_rate).collect())
            }),
        };
        let mut oracle = Oracle::new_batch(evaluate);

        let baseline_spec = self.probe_spec(variant, space, &[]);
        // A search-scoped journal pins the first baseline spec it sees in
        // its header. Resuming the same search target after the
        // configuration changed must fail loudly — a silent hash mismatch
        // would just re-fly everything and quietly produce artifacts from
        // a different experiment than the journal's name promises.
        if let Some(handle) = runner.journal_handle() {
            let journal = handle.open_ambient(Some(&baseline_spec))?;
            let header = journal.header();
            if let (Some(pinned), Some(spec_json)) = (header.config_hash, &header.spec_json) {
                let pinned_spec = CampaignSpec::from_json(spec_json)?;
                let expected = baseline_spec.config_hash()?;
                if pinned_spec.name == baseline_spec.name
                    && pinned_spec.variants == baseline_spec.variants
                    && pinned != expected
                {
                    return Err(CampaignError::Journal(format!(
                        "search journal {} pins baseline '{}' under config hash \
                         {pinned:#018x}, this search's baseline hashes to {expected:#018x} \
                         — refusing to resume against an edited configuration",
                        handle.path().display(),
                        pinned_spec.name,
                    )));
                }
            }
        }
        let baseline_report = self
            .runner
            .run_with_shared_suites(&baseline_spec, std::slice::from_ref(scenarios))?;
        missions.fetch_add(baseline_report.cells[0].missions, Ordering::Relaxed);
        let baseline_success_rate = baseline_report.cells[0].success_rate;

        // Intensity 0 is a guaranteed no-op for every fault kind, so when
        // the space's origin maps onto all-zero intensities its probe is the
        // baseline campaign — prime the cache instead of re-flying it.
        let origin = vec![0.0; space.dim()];
        let origin_is_noop = space
            .plans(&origin)
            .iter()
            .all(|plan| plan.intensity == 0.0);
        if origin_is_noop {
            oracle.prime(&origin, baseline_success_rate);
        }
        Ok((oracle, baseline_success_rate))
    }

    /// Runs the searcher (or shortcuts on a failing baseline) and brackets
    /// the all-axes-at-max corner before concluding "unfalsifiable".
    fn hunt(
        &self,
        space: &FaultSpace,
        searcher: &Searcher,
        oracle: &mut Oracle,
        baseline_success_rate: f64,
    ) -> Result<Option<Vec<f64>>, CampaignError> {
        let threshold = self.config.failure_threshold;
        // A failing baseline means the origin already falsifies: the space
        // is degenerate for this variant, and the origin is trivially the
        // minimal counterexample.
        if baseline_success_rate < threshold {
            return Ok(Some(vec![0.0; space.dim()]));
        }
        match searcher.find_failure(space.dim(), threshold, oracle)? {
            Some(point) => Ok(Some(point)),
            // Bracket before concluding "unfalsifiable": a stochastic
            // searcher (CMA-ES) may exhaust its budget without ever
            // sampling the worst corner, and `counterexample: None`
            // promises that not even all-axes-at-max breaks the system.
            None => {
                let corner = vec![1.0; space.dim()];
                Ok(oracle.fails(&corner, threshold)?.then_some(corner))
            }
        }
    }

    /// Falsifies several (variant, space) pairs with one searcher, returning
    /// a combined report in input order.
    ///
    /// # Errors
    ///
    /// Returns the [`FalsificationSearch::falsify`] errors.
    pub fn falsify_all(
        &self,
        targets: &[(SystemVariant, FaultSpace)],
        searcher: &Searcher,
    ) -> Result<FalsificationReport, CampaignError> {
        let mut results = Vec::with_capacity(targets.len());
        for (variant, space) in targets {
            results.push(self.falsify(*variant, space, searcher)?);
        }
        Ok(FalsificationReport { results })
    }

    /// Re-flies the minimized point with the flight recorder on, persists
    /// the first failing mission's trace and verifies it replays
    /// byte-identically.
    fn capture(
        &self,
        variant: SystemVariant,
        space: &FaultSpace,
        point: &[f64],
        scenarios: &Arc<Vec<mls_sim_world::Scenario>>,
        missions: &Arc<AtomicUsize>,
    ) -> Result<(Option<TraceLink>, Option<bool>), CampaignError> {
        let mut spec = self.probe_spec(variant, space, &space.plans(point));
        spec.capture = mls_trace::TracePolicy::FailuresOnly;
        // Under a custom base dir every space keeps its own subdirectory
        // (the spec name), matching the runner's per-spec default layout.
        let runner = match &self.trace_dir {
            Some(base) => self.runner.clone().with_trace_dir(base.join(&spec.name)),
            None => self.runner.clone(),
        };
        let report = runner.run_with_shared_suites(&spec, std::slice::from_ref(scenarios))?;
        missions.fetch_add(report.missions, Ordering::Relaxed);
        let Some(link) = report.traces.first().cloned() else {
            return Ok((None, None));
        };
        let trace = mls_trace::Trace::read_from(Path::new(&link.path))?;
        let verdict = runner.replay(&spec, scenarios, &trace)?;
        missions.fetch_add(1, Ordering::Relaxed);
        Ok((Some(link), Some(verdict.is_identical())))
    }

    /// The spec of one probe campaign at a fault point (`plans` empty for
    /// the baseline probe).
    fn probe_spec(
        &self,
        variant: SystemVariant,
        space: &FaultSpace,
        plans: &[FaultPlan],
    ) -> CampaignSpec {
        probe_spec_for(&self.config, variant, space, plans)
    }
}

/// Free-function form of the probe spec so the oracle closure can borrow the
/// config while the search object stays shared.
fn probe_spec_for(
    config: &FalsificationConfig,
    variant: SystemVariant,
    space: &FaultSpace,
    plans: &[FaultPlan],
) -> CampaignSpec {
    CampaignSpec {
        name: format!("falsify-{}", space.name),
        seed: config.seed,
        maps: config.maps,
        scenarios_per_map: config.scenarios_per_map,
        families: vec![config.family],
        repeats: config.repeats,
        variants: vec![variant],
        profiles: vec![config.profile.clone()],
        baseline: plans.is_empty(),
        faults: Vec::new(),
        combos: if plans.is_empty() {
            Vec::new()
        } else {
            vec![plans.to_vec()]
        },
        landing: config.landing.clone(),
        executor: config.executor.clone(),
        capture: mls_trace::TracePolicy::Off,
        // Degenerate thresholds (≤ 0 or > 1) were accepted by the searcher
        // before early stopping existed; they simply fall back to flying
        // every mission instead of failing probe-spec validation.
        probe_early_stop: (config.probe_early_stop
            && EarlyStopPolicy::exact(config.failure_threshold)
                .validate()
                .is_ok())
        .then(|| EarlyStopPolicy::exact(config.failure_threshold)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultAxis;

    /// A synthetic oracle with a planar failure boundary: the system fails
    /// (success rate 0) wherever `a·x > limit`, passes (success 1.0 − margin
    /// shrinking toward the boundary) elsewhere.
    fn planar_oracle<'a>(weights: &'a [f64], limit: f64, evaluations: &'a mut usize) -> Oracle<'a> {
        Oracle::new(move |point: &[f64]| {
            *evaluations += 1;
            let dot: f64 = point.iter().zip(weights).map(|(x, w)| x * w).sum();
            Ok(if dot > limit {
                0.0
            } else {
                1.0 - 0.4 * (dot / limit).clamp(0.0, 1.0)
            })
        })
    }

    #[test]
    fn grid_refinement_converges_onto_a_planted_boundary() {
        let weights = [1.0, 1.0];
        let mut evaluations = 0;
        let mut oracle = planar_oracle(&weights, 1.2, &mut evaluations);
        let config = GridRefinementConfig {
            resolution: 3,
            rounds: 3,
        };
        let found = grid_refinement(&config, 2, 0.5, &mut oracle)
            .unwrap()
            .expect("the corner (1,1) fails, so the lattice must find a failure");
        let dot: f64 = found.iter().sum();
        assert!(dot > 1.2, "found point must actually fail: {found:?}");
        // Refinement pulls the failure toward the boundary: within half the
        // final lattice spacing of it.
        assert!(dot < 1.2 + 0.3, "refined point too deep: {found:?}");
        // And the severity is near the boundary's minimal-norm point
        // (0.6, 0.6), not the initial (1, 1) corner.
        assert!(severity(&found) < 1.1, "severity {found:?}");
    }

    #[test]
    fn grid_refinement_reports_unfalsifiable_spaces() {
        let mut oracle = Oracle::new(|_: &[f64]| Ok(1.0));
        let config = GridRefinementConfig::default();
        assert!(grid_refinement(&config, 2, 0.5, &mut oracle)
            .unwrap()
            .is_none());
    }

    #[test]
    fn cma_es_finds_a_failure_and_is_deterministic_per_seed() {
        let weights = [1.0, 0.8];
        let config = CmaEsConfig {
            population: 8,
            generations: 6,
            initial_step: 0.3,
            seed: 11,
        };
        let run = |seed: u64| {
            let mut evaluations = 0;
            let mut oracle = planar_oracle(&weights, 1.1, &mut evaluations);
            let config = CmaEsConfig { seed, ..config };
            (
                cma_es(&config, 2, 0.5, &mut oracle).unwrap(),
                oracle.probes.clone(),
            )
        };
        let (a_point, a_probes) = run(11);
        let (b_point, b_probes) = run(11);
        assert_eq!(a_point, b_point, "same seed, same search");
        assert_eq!(a_probes, b_probes, "same seed, same probe sequence");
        let found = a_point
            .clone()
            .expect("the strategy must walk into the failing half-space");
        let dot: f64 = found.iter().zip(&weights).map(|(x, w)| x * w).sum();
        assert!(dot > 1.1, "returned point must fail: {found:?}");

        let (c_point, c_probes) = run(12);
        assert!(
            c_point != a_point || c_probes != a_probes,
            "a different seed must explore differently"
        );
    }

    #[test]
    fn batched_generations_match_sequential_evaluation_exactly() {
        // The same searcher over the same synthetic boundary, once through
        // the one-point-at-a-time adapter and once through a generation
        // evaluator: the probe log and the found point must be identical.
        let weights = [1.0, 0.7];
        let config = GridRefinementConfig {
            resolution: 3,
            rounds: 2,
        };
        let rate_of = |point: &[f64]| {
            let dot: f64 = point.iter().zip(&weights).map(|(x, w)| x * w).sum();
            if dot > 1.0 {
                0.0
            } else {
                1.0 - 0.4 * dot
            }
        };
        let mut sequential = Oracle::new(move |point: &[f64]| Ok(rate_of(point)));
        let found_sequential = grid_refinement(&config, 2, 0.5, &mut sequential).unwrap();

        let mut batch_calls = 0usize;
        let mut batched = Oracle::new_batch(|points: &[Vec<f64>]| {
            batch_calls += 1;
            Ok(points.iter().map(|p| rate_of(p)).collect())
        });
        let found_batched = grid_refinement(&config, 2, 0.5, &mut batched).unwrap();

        assert_eq!(found_sequential, found_batched);
        assert_eq!(sequential.probes, batched.probes);
        drop(batched);
        assert_eq!(
            batch_calls, 3,
            "one evaluator call per generation: initial lattice + 2 refinements"
        );
    }

    #[test]
    fn minimizer_lands_on_the_failure_frontier() {
        let weights = [1.0, 1.0];
        let mut evaluations = 0;
        let mut oracle = planar_oracle(&weights, 1.2, &mut evaluations);
        let minimal = minimize(vec![1.0, 1.0], 0.5, 2, 8, &mut oracle).unwrap();
        let dot: f64 = minimal.iter().sum();
        // Still failing...
        assert!(dot > 1.2, "minimized point must keep failing: {minimal:?}");
        // ...but on the frontier: within the bisection resolution of it.
        assert!(dot < 1.2 + 0.02, "not minimal: {minimal:?}");
        // Lowering either axis by more than the resolution makes it pass.
        for axis in 0..2 {
            let mut nudged = minimal.clone();
            nudged[axis] = (nudged[axis] - 0.02).max(0.0);
            let passes = !oracle.fails(&nudged, 0.5).unwrap();
            assert!(passes, "axis {axis} is not on the frontier: {minimal:?}");
        }
    }

    #[test]
    fn minimizer_zeroes_irrelevant_axes() {
        // Only axis 0 matters: fail iff x0 > 0.3.
        let mut oracle = Oracle::new(|point: &[f64]| Ok(if point[0] > 0.3 { 0.0 } else { 1.0 }));
        let minimal = minimize(vec![0.9, 0.9], 0.5, 2, 8, &mut oracle).unwrap();
        assert_eq!(minimal[1], 0.0, "the irrelevant axis must collapse to 0");
        assert!(minimal[0] > 0.3 && minimal[0] < 0.32, "{minimal:?}");
    }

    #[test]
    fn oracle_memoises_repeat_probes() {
        let mut count = 0usize;
        let mut oracle = Oracle::new(|_: &[f64]| {
            count += 1;
            Ok(1.0)
        });
        oracle.success_rate(&[0.5, 0.5]).unwrap();
        oracle.success_rate(&[0.5, 0.5]).unwrap();
        oracle.success_rate(&[0.5, 0.5000000001]).unwrap();
        assert_eq!(oracle.probes.len(), 1, "quantized revisits are cached");
        drop(oracle);
        assert_eq!(count, 1);
    }

    #[test]
    fn oracle_deduplicates_within_a_generation() {
        let mut count = 0usize;
        let mut oracle = Oracle::new_batch(|points: &[Vec<f64>]| {
            count += points.len();
            Ok(points.iter().map(|_| 1.0).collect())
        });
        let generation = vec![
            vec![0.25, 0.5],
            vec![0.25, 0.5],          // exact duplicate
            vec![0.25, 0.5000000001], // sub-quantum jitter
            vec![0.75, 0.5],
        ];
        let rates = oracle.success_rates(&generation).unwrap();
        assert_eq!(rates, vec![1.0; 4]);
        assert_eq!(oracle.probes.len(), 2, "two distinct points");
        // The log keeps first-occurrence order.
        assert_eq!(oracle.probes[0].point, vec![0.25, 0.5]);
        assert_eq!(oracle.probes[1].point, vec![0.75, 0.5]);
        drop(oracle);
        assert_eq!(count, 2, "duplicates are not re-flown");
    }

    #[test]
    fn point_keys_quantize_like_the_legacy_vec_keys() {
        // Pins the cache-hit behaviour the fixed-size key replaced: 1e-9
        // quantization, dimension-sensitivity, distinctness past the
        // quantum.
        assert_eq!(
            PointKey::of(&[0.5, 0.5]),
            PointKey::of(&[0.5, 0.5000000001])
        );
        assert_ne!(PointKey::of(&[0.5, 0.5]), PointKey::of(&[0.5, 0.500000002]));
        assert_ne!(PointKey::of(&[0.5]), PointKey::of(&[0.5, 0.0]));
        assert_eq!(PointKey::of(&[]).dim, 0);
    }

    #[test]
    fn default_config_is_sane_and_searchers_label() {
        let config = FalsificationConfig::default();
        assert!(config.failure_threshold > 0.0 && config.failure_threshold < 1.0);
        assert!(config.minimizer_bisections >= 1);
        assert!(
            config.probe_early_stop,
            "search probes early-stop by default"
        );
        let search = FalsificationSearch::new(config, 2);
        assert_eq!(search.config().maps, 2);
        assert_eq!(
            Searcher::GridRefinement(GridRefinementConfig::default()).label(),
            "grid-refinement"
        );
        assert_eq!(Searcher::CmaEs(CmaEsConfig::default()).label(), "cma-es");
    }

    #[test]
    fn probe_specs_embed_the_point_as_a_combo_cell() {
        let config = FalsificationConfig::default();
        let space = FaultSpace::new(
            "s",
            vec![
                FaultAxis::full(FaultKind::MarkerOcclusion),
                FaultAxis::full(FaultKind::GpsBias),
            ],
        );
        let plans = space.plans(&[0.25, 0.75]);
        let spec = probe_spec_for(&config, SystemVariant::MlsV2, &space, &plans);
        spec.validate().unwrap();
        assert_eq!(spec.cells().len(), 1);
        assert_eq!(spec.cells()[0].faults.len(), 2);
        assert!(!spec.baseline);
        assert_eq!(
            spec.probe_early_stop,
            Some(EarlyStopPolicy::exact(config.failure_threshold)),
            "search probes early-stop against the failure threshold"
        );
        let baseline = probe_spec_for(&config, SystemVariant::MlsV2, &space, &[]);
        assert!(baseline.baseline);
        assert!(baseline.combos.is_empty());
        // Degenerate thresholds disable early stop instead of producing a
        // probe spec that fails validation.
        let degenerate = FalsificationConfig {
            failure_threshold: 1.5,
            ..FalsificationConfig::default()
        };
        let spec = probe_spec_for(&degenerate, SystemVariant::MlsV2, &space, &[]);
        assert_eq!(spec.probe_early_stop, None);
        spec.validate().unwrap();
        // The searched report round-trips.
        let report = FalsificationReport {
            results: vec![SpaceFalsification {
                space,
                variant: SystemVariant::MlsV2,
                family: mls_sim_world::ScenarioFamily::Open,
                searcher: "grid-refinement".to_string(),
                baseline_success_rate: 0.9,
                counterexample: Some(Counterexample {
                    point: vec![0.25, 0.75],
                    plans,
                    success_rate: 0.25,
                    trace: None,
                    replay_identical: None,
                }),
                probes: vec![ProbePoint {
                    point: vec![0.25, 0.75],
                    success_rate: 0.25,
                }],
                missions_flown: 17,
            }],
        };
        let json = report.to_json().unwrap();
        assert_eq!(FalsificationReport::from_json(&json).unwrap(), report);
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("marker-occlusion@0.250+gps-bias@0.750"));
        assert!(csv.lines().nth(1).unwrap().ends_with(",17"));
    }

    #[test]
    fn legacy_results_without_mission_accounting_parse_as_zero() {
        let result = SpaceFalsification {
            space: FaultSpace::new("s", vec![FaultAxis::full(FaultKind::WindGust)]),
            variant: SystemVariant::MlsV1,
            family: mls_sim_world::ScenarioFamily::Open,
            searcher: "grid-refinement".to_string(),
            baseline_success_rate: 1.0,
            counterexample: None,
            probes: Vec::new(),
            missions_flown: 9,
        };
        let json = serde_json::to_string(&result).unwrap();
        let serde::Value::Object(mut fields) = serde_json::parse(&json).unwrap() else {
            panic!("results serialise to objects");
        };
        fields.retain(|(key, _)| key != "missions_flown");
        let legacy = serde_json::to_string(&serde::Value::Object(fields)).unwrap();
        let parsed: SpaceFalsification = serde_json::from_str(&legacy).unwrap();
        assert_eq!(parsed.missions_flown, 0);
        assert_eq!(parsed.space, result.space);
    }
}
