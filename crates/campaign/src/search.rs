//! Falsification search: the minimal fault intensity that breaks a system.
//!
//! Fixed benchmark grids answer "how often does the system land under fault
//! X at intensity Y"; falsification asks the sharper dependability question —
//! *how small a perturbation suffices to make landing fail?* Following the
//! approach of "Falsification of a Vision-based Automatic Landing System",
//! the search treats the campaign engine as a black-box oracle and bisects
//! the intensity axis per (variant, fault kind), assuming the failure
//! response is monotone in intensity (the fault model is built that way:
//! every kind's severity scales monotonically with its intensity knob).
//!
//! Each probe is itself a deterministic mini-campaign, so the whole search is
//! reproducible from one seed.

use mls_compute::ComputeProfile;
use mls_core::{ExecutorConfig, LandingConfig, SystemVariant};
use serde::{Deserialize, Serialize};

use crate::faults::{FaultKind, FaultPlan};
use crate::runner::CampaignRunner;
use crate::spec::CampaignSpec;
use crate::CampaignError;

/// Configuration of a falsification search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FalsificationConfig {
    /// Master seed (probes derive their campaign seeds from it).
    pub seed: u64,
    /// Maps per probe campaign.
    pub maps: usize,
    /// Scenarios per map per probe campaign.
    pub scenarios_per_map: usize,
    /// Repetitions per scenario per probe.
    pub repeats: usize,
    /// Bisection refinement steps after the initial bracket (each halves the
    /// intensity interval; 6 steps give a resolution of ~0.016).
    pub iterations: usize,
    /// A probe "fails" when its success rate drops below this threshold.
    pub failure_threshold: f64,
    /// Compute platform the probes fly on.
    pub profile: ComputeProfile,
    /// Landing-system configuration.
    pub landing: LandingConfig,
    /// Mission-executor configuration.
    pub executor: ExecutorConfig,
}

impl Default for FalsificationConfig {
    fn default() -> Self {
        Self {
            seed: 2025,
            maps: 2,
            scenarios_per_map: 4,
            repeats: 1,
            iterations: 5,
            failure_threshold: 0.5,
            profile: ComputeProfile::desktop_sil(),
            landing: LandingConfig::default(),
            executor: ExecutorConfig::default(),
        }
    }
}

/// One evaluated point of the search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbePoint {
    /// Fault intensity probed.
    pub intensity: f64,
    /// Landing success rate observed at that intensity.
    pub success_rate: f64,
}

/// The outcome of falsifying one (variant, fault kind) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FalsificationResult {
    /// System generation probed.
    pub variant: SystemVariant,
    /// Fault axis probed.
    pub kind: FaultKind,
    /// Success rate with no fault injected.
    pub baseline_success_rate: f64,
    /// The minimal intensity at which the success rate falls below the
    /// failure threshold, to bisection resolution; `None` when even
    /// intensity 1.0 does not falsify the system.
    pub minimal_intensity: Option<f64>,
    /// Success rate observed at `minimal_intensity`.
    pub success_at_minimal: Option<f64>,
    /// Every probe evaluated, in evaluation order.
    pub probes: Vec<ProbePoint>,
}

impl FalsificationResult {
    /// Width of the final intensity bracket (the search's resolution).
    pub fn resolution(iterations: usize) -> f64 {
        1.0 / (1u64 << iterations.min(53)) as f64
    }
}

/// Bisection-based falsification search over the fault-intensity axis.
#[derive(Debug, Clone)]
pub struct FalsificationSearch {
    config: FalsificationConfig,
    runner: CampaignRunner,
}

impl FalsificationSearch {
    /// Creates a search executing probes on `threads` worker threads.
    pub fn new(config: FalsificationConfig, threads: usize) -> Self {
        Self {
            config,
            runner: CampaignRunner::new(threads),
        }
    }

    /// The search configuration.
    pub fn config(&self) -> &FalsificationConfig {
        &self.config
    }

    /// Falsifies every (variant, kind) pair of the cartesian product,
    /// returning results in sweep order.
    ///
    /// # Errors
    ///
    /// Returns an error when a probe campaign fails to run.
    pub fn run(
        &self,
        variants: &[SystemVariant],
        kinds: &[FaultKind],
    ) -> Result<Vec<FalsificationResult>, CampaignError> {
        // One scenario suite serves every probe of the search: probes differ
        // only in variant and fault plan, never in the world flown over.
        let scenarios = self
            .runner
            .generate_scenarios(&self.probe_spec(None, None))?;
        let mut results = Vec::with_capacity(variants.len() * kinds.len());
        for &variant in variants {
            let baseline = self.probe(variant, None, &scenarios)?;
            for &kind in kinds {
                results.push(self.bisect(variant, kind, baseline, &scenarios)?);
            }
        }
        Ok(results)
    }

    /// Falsifies a single (variant, kind) pair.
    ///
    /// # Errors
    ///
    /// Returns an error when a probe campaign fails to run.
    pub fn minimal_intensity(
        &self,
        variant: SystemVariant,
        kind: FaultKind,
    ) -> Result<FalsificationResult, CampaignError> {
        let scenarios = self
            .runner
            .generate_scenarios(&self.probe_spec(None, None))?;
        let baseline = self.probe(variant, None, &scenarios)?;
        self.bisect(variant, kind, baseline, &scenarios)
    }

    fn bisect(
        &self,
        variant: SystemVariant,
        kind: FaultKind,
        baseline_success_rate: f64,
        scenarios: &[mls_sim_world::Scenario],
    ) -> Result<FalsificationResult, CampaignError> {
        let mut probes = Vec::new();
        let threshold = self.config.failure_threshold;
        let mut record = |intensity: f64, success_rate: f64| {
            probes.push(ProbePoint {
                intensity,
                success_rate,
            });
        };

        // The baseline itself failing means intensity 0 already falsifies:
        // the fault axis is irrelevant for this variant.
        if baseline_success_rate < threshold {
            return Ok(FalsificationResult {
                variant,
                kind,
                baseline_success_rate,
                minimal_intensity: Some(0.0),
                success_at_minimal: Some(baseline_success_rate),
                probes,
            });
        }

        // Bracket: does the worst-case injection falsify at all?
        let at_max = self.probe(variant, Some(FaultPlan::new(kind, 1.0)), scenarios)?;
        record(1.0, at_max);
        if at_max >= threshold {
            return Ok(FalsificationResult {
                variant,
                kind,
                baseline_success_rate,
                minimal_intensity: None,
                success_at_minimal: None,
                probes,
            });
        }

        // Invariant: `lo` passes (success ≥ threshold), `hi` fails.
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        let mut success_at_hi = at_max;
        for _ in 0..self.config.iterations {
            let mid = (lo + hi) / 2.0;
            let success = self.probe(variant, Some(FaultPlan::new(kind, mid)), scenarios)?;
            record(mid, success);
            if success < threshold {
                hi = mid;
                success_at_hi = success;
            } else {
                lo = mid;
            }
        }

        Ok(FalsificationResult {
            variant,
            kind,
            baseline_success_rate,
            minimal_intensity: Some(hi),
            success_at_minimal: Some(success_at_hi),
            probes,
        })
    }

    /// The spec of one probe campaign. `variant: None` yields a template
    /// spec (used only for scenario generation, which ignores the variant).
    fn probe_spec(&self, variant: Option<SystemVariant>, fault: Option<FaultPlan>) -> CampaignSpec {
        let config = &self.config;
        CampaignSpec {
            name: "falsification-probe".to_string(),
            seed: config.seed,
            maps: config.maps,
            scenarios_per_map: config.scenarios_per_map,
            repeats: config.repeats,
            variants: vec![variant.unwrap_or(SystemVariant::MlsV1)],
            profiles: vec![config.profile.clone()],
            baseline: fault.is_none(),
            faults: fault.into_iter().collect(),
            landing: config.landing.clone(),
            executor: config.executor.clone(),
            capture: mls_trace::TracePolicy::Off,
        }
    }

    /// Runs one probe campaign over the shared suite and returns its landing
    /// success rate.
    fn probe(
        &self,
        variant: SystemVariant,
        fault: Option<FaultPlan>,
        scenarios: &[mls_sim_world::Scenario],
    ) -> Result<f64, CampaignError> {
        let spec = self.probe_spec(Some(variant), fault);
        let report = self.runner.run_with_scenarios(&spec, scenarios)?;
        Ok(report.cells[0].success_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_halves_per_iteration() {
        assert_eq!(FalsificationResult::resolution(0), 1.0);
        assert_eq!(FalsificationResult::resolution(5), 1.0 / 32.0);
    }

    #[test]
    fn default_config_is_sane() {
        let config = FalsificationConfig::default();
        assert!(config.failure_threshold > 0.0 && config.failure_threshold < 1.0);
        assert!(config.iterations >= 1);
        let search = FalsificationSearch::new(config, 2);
        assert_eq!(search.config().maps, 2);
    }
}
