//! Memoization of generated scenario suites.
//!
//! Scenario suites are pure functions of `(family, suite seed, maps,
//! scenarios per map)`, yet before this cache existed every campaign — and
//! every falsification *space* — regenerated its worlds from scratch: the
//! nine bench binaries each rebuild the same benchmark suite per campaign
//! they fly, and a multi-space `falsify` run regenerates one identical
//! suite per space. The [`SuiteCache`] generates each distinct suite once
//! per process and hands out shared [`Arc`] references, which also gives
//! the persistent mission executor the owned suite handles its `'static`
//! job closures need.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use mls_sim_world::{Scenario, ScenarioConfig, ScenarioFamily, ScenarioGenerator};

use crate::CampaignError;

/// Cached suite-cache instruments (see [`crate::obs_util`]).
mod instruments {
    use crate::obs_util::cached_counter;

    cached_counter!(hits, "mls_suite_cache_hits_total");
    cached_counter!(misses, "mls_suite_cache_misses_total");
}

/// The generation inputs a suite is keyed by — a suite is a pure function
/// of exactly these four values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SuiteKey {
    /// Scenario family generated.
    pub family: ScenarioFamily,
    /// Seed the suite derives from ([`crate::CampaignSpec::suite_seed`]).
    pub suite_seed: u64,
    /// Number of benchmark maps.
    pub maps: usize,
    /// Scenarios generated per map.
    pub scenarios_per_map: usize,
}

/// A process-wide memo of generated scenario suites.
///
/// Cloned handles share the same underlying cache; [`SuiteCache::global`]
/// is the instance every [`CampaignRunner`](crate::CampaignRunner) and the
/// falsification search driver use by default.
#[derive(Debug, Clone, Default)]
pub struct SuiteCache {
    suites: Arc<Mutex<HashMap<SuiteKey, Arc<Vec<Scenario>>>>>,
}

impl SuiteCache {
    /// An empty, private cache (tests that must observe generation counts
    /// use this instead of the shared one).
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide shared cache.
    pub fn global() -> &'static SuiteCache {
        static GLOBAL: OnceLock<SuiteCache> = OnceLock::new();
        GLOBAL.get_or_init(SuiteCache::new)
    }

    /// Returns the suite for `key`, generating (and memoizing) it on first
    /// use.
    ///
    /// Generation happens outside the cache lock, so a slow first build
    /// never blocks hits on other keys; if two threads race on the same
    /// fresh key, the first insert wins and both get the same `Arc`.
    ///
    /// # Errors
    ///
    /// Returns an error when the scenario generator rejects the
    /// dimensions.
    pub fn get_or_generate(&self, key: SuiteKey) -> Result<Arc<Vec<Scenario>>, CampaignError> {
        if let Some(suite) = self.suites.lock().expect("suite cache poisoned").get(&key) {
            if mls_obs::enabled() {
                instruments::hits().inc();
            }
            return Ok(suite.clone());
        }
        if mls_obs::enabled() {
            instruments::misses().inc();
        }
        let config = ScenarioConfig {
            family: key.family,
            maps: key.maps,
            scenarios_per_map: key.scenarios_per_map,
            ..ScenarioConfig::default()
        };
        let generated =
            Arc::new(ScenarioGenerator::new(config).generate_benchmark(key.suite_seed)?);
        let mut suites = self.suites.lock().expect("suite cache poisoned");
        Ok(suites.entry(key).or_insert(generated).clone())
    }

    /// Number of distinct suites currently memoized.
    pub fn len(&self) -> usize {
        self.suites.lock().expect("suite cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every memoized suite.
    pub fn clear(&self) {
        self.suites.lock().expect("suite cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64) -> SuiteKey {
        SuiteKey {
            family: ScenarioFamily::Open,
            suite_seed: seed,
            maps: 1,
            scenarios_per_map: 2,
        }
    }

    #[test]
    fn identical_keys_share_one_generated_suite() {
        let cache = SuiteCache::new();
        let first = cache.get_or_generate(key(7)).unwrap();
        let second = cache.get_or_generate(key(7)).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "the suite must be memoized");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_generate_distinct_suites() {
        let cache = SuiteCache::new();
        let open = cache.get_or_generate(key(7)).unwrap();
        let reseeded = cache.get_or_generate(key(8)).unwrap();
        assert!(!Arc::ptr_eq(&open, &reseeded));
        let constrained = cache
            .get_or_generate(SuiteKey {
                family: ScenarioFamily::ConstrainedPad,
                ..key(7)
            })
            .unwrap();
        assert!(!Arc::ptr_eq(&open, &constrained));
        assert_eq!(cache.len(), 3);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn cached_suites_match_direct_generation() {
        let cache = SuiteCache::new();
        let cached = cache.get_or_generate(key(11)).unwrap();
        let direct = ScenarioGenerator::new(ScenarioConfig {
            maps: 1,
            scenarios_per_map: 2,
            ..ScenarioConfig::default()
        })
        .generate_benchmark(11)
        .unwrap();
        assert_eq!(*cached, direct);
    }
}
