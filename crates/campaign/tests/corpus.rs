//! Integration tests for the trace corpus: campaigns index every kept
//! trace next to the files, the index survives relocating the corpus tree
//! (the report's absolute paths do not), and failure signatures separate
//! distinct injected fault kinds on a seeded ground-truth grid.

use std::path::{Path, PathBuf};

use mls_campaign::{
    CampaignRunner, CampaignSpec, FaultKind, FaultPlan, TraceCorpus, TracePolicy, CORPUS_INDEX_FILE,
};
use mls_core::SystemVariant;
use mls_trace::Trace;

/// Stable artifact directory (uploaded by the CI workflow).
fn trace_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/test-traces")
        .join(name)
}

/// A strongly biased MLS-V1 sweep known to fail several missions, so
/// `FailuresOnly` capture has something to index.
fn captured_spec(name: &str) -> CampaignSpec {
    let mut spec = CampaignSpec {
        name: name.to_string(),
        seed: 2025,
        maps: 1,
        scenarios_per_map: 4,
        repeats: 1,
        variants: vec![SystemVariant::MlsV1],
        baseline: false,
        faults: vec![FaultPlan::new(FaultKind::GpsBias, 0.8)],
        capture: TracePolicy::FailuresOnly,
        ..CampaignSpec::default()
    };
    spec.landing.mission_timeout = 150.0;
    spec.executor.max_duration = 180.0;
    spec
}

#[test]
fn campaigns_index_every_kept_trace() {
    let spec = captured_spec("corpus-index");
    let dir = trace_root("corpus-index");
    let _ = std::fs::remove_dir_all(&dir);
    let report = CampaignRunner::new(2)
        .with_trace_dir(&dir)
        .run(&spec)
        .unwrap();
    assert!(!report.traces.is_empty());

    let corpus = TraceCorpus::open(&dir).unwrap();
    assert_eq!(
        corpus.len(),
        report.traces.len(),
        "one corpus record per report trace link"
    );
    for (record, link) in corpus.records().iter().zip(report.traces.iter()) {
        assert_eq!(record.cell_index, link.cell_index);
        assert_eq!(record.scenario_id, link.scenario_id);
        assert_eq!(record.repeat, link.repeat);
        assert_eq!(record.seed, link.seed);
        assert_eq!(record.campaign, spec.name);
        assert_eq!(record.coordinates.len(), 1);
        assert_eq!(record.coordinates[0].axis, "gps-bias");
        assert!(
            corpus.resolve(record).is_file(),
            "index paths resolve to the persisted files"
        );
        // The report link and the index agree on the triage class.
        match &link.triage {
            Some(class) => assert_eq!(&record.class, class),
            None => assert_eq!(record.class, "unclassified"),
        }
    }
    assert_eq!(
        corpus.query().fault_axis("gps-bias").count(),
        corpus.len(),
        "every indexed mission flew the gps-bias axis"
    );
    assert!(corpus.distinct_signatures() >= 1);
}

#[test]
fn replay_resolves_relocated_traces_through_the_index() {
    let spec = captured_spec("corpus-relocate");
    let dir = trace_root("corpus-relocate");
    let moved = trace_root("corpus-relocated");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&moved);
    let runner = CampaignRunner::new(2).with_trace_dir(&dir);
    let report = runner.run(&spec).unwrap();
    let link = report.traces.first().expect("a biased sweep fails").clone();

    // Relocate the whole corpus tree: the link's recorded path dangles...
    std::fs::rename(&dir, &moved).unwrap();
    assert!(
        Trace::read_from(Path::new(&link.path)).is_err(),
        "the canonical-layout path must dangle after the move"
    );

    // ...but resolution through the relocated index still replays, byte
    // for byte.
    let scenarios = runner.generate_scenarios(&spec).unwrap();
    let verdict = runner
        .replay_from_corpus(&spec, &scenarios, &moved, &link)
        .unwrap();
    assert!(verdict.is_identical(), "replay diverged: {verdict}");

    // A link the index does not know is rejected with a clear error.
    let mut unknown = link.clone();
    unknown.repeat += 7;
    let err = CampaignRunner::load_corpus_trace(&moved, &unknown).unwrap_err();
    assert!(err.to_string().contains("no record"), "{err}");
    std::fs::remove_dir_all(&moved).ok();
}

#[test]
fn signatures_discriminate_between_fault_kinds() {
    // A seeded ground-truth corpus: three fault kinds with sharply
    // different mechanisms (GNSS bias, depth-cloud corruption, marker
    // occlusion), each at full intensity over the same scenarios.
    let mut spec = captured_spec("corpus-signatures");
    spec.scenarios_per_map = 8;
    spec.faults = vec![
        FaultPlan::new(FaultKind::GpsBias, 1.0),
        FaultPlan::new(FaultKind::DepthCorruption, 1.0),
        FaultPlan::new(FaultKind::MarkerOcclusion, 1.0),
    ];
    let dir = trace_root("corpus-signatures");
    let _ = std::fs::remove_dir_all(&dir);
    CampaignRunner::new(2)
        .with_trace_dir(&dir)
        .run(&spec)
        .unwrap();

    // Compare the *classified* failures: a mission that dies before its
    // fault window opens fails identically whatever kind was scheduled,
    // and collapsing those onto one shared signature is the dedup working
    // as designed. The failures the injected fault actually caused must
    // separate.
    let corpus = TraceCorpus::open(&dir).unwrap();
    let signatures_for = |axis: &str| {
        corpus
            .query()
            .fault_axis(axis)
            .matching(|record| record.class != "unclassified")
            .records()
            .into_iter()
            .map(|record| record.signature.clone())
            .collect::<std::collections::BTreeSet<_>>()
    };
    let gps = signatures_for("gps-bias");
    let depth = signatures_for("depth-corruption");
    let occlusion = signatures_for("marker-occlusion");
    assert!(
        !gps.is_empty() && !depth.is_empty() && !occlusion.is_empty(),
        "every full-intensity kind must cause at least one classified failure \
         (gps {}, depth {}, occlusion {})",
        gps.len(),
        depth.len(),
        occlusion.len()
    );
    assert!(
        gps.is_disjoint(&depth) && gps.is_disjoint(&occlusion) && depth.is_disjoint(&occlusion),
        "distinct fault kinds must not collapse onto shared signatures:\n\
         gps: {gps:?}\ndepth: {depth:?}\nocclusion: {occlusion:?}"
    );
}

#[test]
fn corpus_index_is_thread_count_independent() {
    let spec = captured_spec("corpus-threads");
    let dir_a = trace_root("corpus-threads-1");
    let dir_b = trace_root("corpus-threads-4");
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
    CampaignRunner::new(1)
        .with_trace_dir(&dir_a)
        .run(&spec)
        .unwrap();
    CampaignRunner::new(4)
        .with_trace_dir(&dir_b)
        .run(&spec)
        .unwrap();
    let bytes_a = std::fs::read(dir_a.join(CORPUS_INDEX_FILE)).unwrap();
    let bytes_b = std::fs::read(dir_b.join(CORPUS_INDEX_FILE)).unwrap();
    assert_eq!(
        bytes_a, bytes_b,
        "the corpus index must not depend on the worker-thread count"
    );
}
