//! Integration tests for the campaign engine: thread-count-independent
//! determinism and fault-induced degradation.
//!
//! Workloads are deliberately tiny (one map, a handful of scenarios): every
//! assertion is against deterministic, seed-pinned behaviour, not statistics.

use mls_campaign::{CampaignRunner, CampaignSpec, FaultKind, FaultPlan};
use mls_core::SystemVariant;

/// A small spec the determinism tests share: one variant, baseline +
/// detection dropout, four missions per cell, bounded mission duration so a
/// dropout-blinded mission cannot burn the full 300 s default.
fn small_spec() -> CampaignSpec {
    let mut spec = CampaignSpec {
        name: "integration".to_string(),
        seed: 90,
        maps: 1,
        scenarios_per_map: 2,
        repeats: 1,
        variants: vec![SystemVariant::MlsV1],
        faults: vec![FaultPlan::new(FaultKind::DetectionDropout, 0.5)],
        ..CampaignSpec::default()
    };
    spec.landing.mission_timeout = 100.0;
    spec.executor.max_duration = 120.0;
    spec
}

#[test]
fn report_is_byte_identical_across_thread_counts() {
    let spec = small_spec();
    let single = CampaignRunner::new(1).run(&spec).unwrap();
    let sharded = CampaignRunner::new(4).run(&spec).unwrap();
    assert_eq!(
        single.to_json().unwrap(),
        sharded.to_json().unwrap(),
        "the report must not depend on the worker-thread count"
    );
    assert_eq!(single.to_csv(), sharded.to_csv());
}

#[test]
fn report_reruns_identically_for_the_same_seed_and_differs_for_another() {
    let spec = small_spec();
    let first = CampaignRunner::new(2).run(&spec).unwrap();
    let second = CampaignRunner::new(2).run(&spec).unwrap();
    assert_eq!(first.to_json().unwrap(), second.to_json().unwrap());

    let reseeded = CampaignSpec { seed: 91, ..spec };
    let other = CampaignRunner::new(2).run(&reseeded).unwrap();
    assert_ne!(
        first.to_json().unwrap(),
        other.to_json().unwrap(),
        "a different campaign seed must change the missions"
    );
}

#[test]
fn detection_dropout_degrades_v1_but_v3_keeps_its_failsafes() {
    let mut spec = CampaignSpec {
        name: "dropout-degradation".to_string(),
        seed: 2025,
        maps: 1,
        scenarios_per_map: 4,
        repeats: 1,
        variants: vec![SystemVariant::MlsV1, SystemVariant::MlsV3],
        faults: vec![FaultPlan::new(FaultKind::DetectionDropout, 0.95)],
        ..CampaignSpec::default()
    };
    spec.landing.mission_timeout = 100.0;
    spec.executor.max_duration = 120.0;

    let report = CampaignRunner::new(4).run(&spec).unwrap();

    let v1_baseline = report
        .cell(SystemVariant::MlsV1, "desktop-sil", None)
        .unwrap();
    let v1_dropout = report
        .cell(
            SystemVariant::MlsV1,
            "desktop-sil",
            Some(FaultKind::DetectionDropout),
        )
        .unwrap();
    assert!(
        v1_dropout.success_rate < v1_baseline.success_rate,
        "dropping 95% of detection frames must lower the MLS-V1 success rate \
         ({} vs baseline {})",
        v1_dropout.success_rate,
        v1_baseline.success_rate
    );

    // MLS-V3's decision module treats a starved observation stream as marker
    // loss and aborts or retries instead of crashing: the fault must not
    // produce collisions.
    let v3_dropout = report
        .cell(
            SystemVariant::MlsV3,
            "desktop-sil",
            Some(FaultKind::DetectionDropout),
        )
        .unwrap();
    assert_eq!(
        v3_dropout.collision_rate, 0.0,
        "a blinded MLS-V3 must fail safe, not collide"
    );
}

#[test]
fn multi_family_campaign_is_thread_count_independent_and_family_major() {
    use mls_campaign::TracePolicy;
    use mls_sim_world::ScenarioFamily;

    let mut spec = CampaignSpec {
        name: "family-grid".to_string(),
        seed: 41,
        maps: 1,
        scenarios_per_map: 2,
        repeats: 1,
        variants: vec![SystemVariant::MlsV3],
        families: vec![ScenarioFamily::Open, ScenarioFamily::ConstrainedPad],
        capture: TracePolicy::Off,
        ..CampaignSpec::default()
    };
    spec.landing.mission_timeout = 100.0;
    spec.executor.max_duration = 120.0;

    let single = CampaignRunner::new(1).run(&spec).unwrap();
    let sharded = CampaignRunner::new(4).run(&spec).unwrap();
    assert_eq!(
        single.to_json().unwrap(),
        sharded.to_json().unwrap(),
        "a family-grid report must not depend on the worker-thread count"
    );

    // One baseline cell per family, family-major, each flown over its own
    // suite.
    assert_eq!(single.cells.len(), 2);
    assert_eq!(single.cells[0].family, ScenarioFamily::Open);
    assert_eq!(single.cells[1].family, ScenarioFamily::ConstrainedPad);
    assert_eq!(single.missions, 4);

    // The constrained suite is a different world: the runner derives a
    // distinct per-family seed, so the two cells cannot be copies of each
    // other even though they fly the same variant and mission seeds.
    let runner = CampaignRunner::new(1);
    let suites = runner.generate_suites(&spec).unwrap();
    assert_eq!(suites.len(), 2);
    assert_ne!(suites[0], suites[1]);
    assert!(suites[1]
        .iter()
        .all(|s| s.family == ScenarioFamily::ConstrainedPad));

    // Feeding the suites back through run_with_suites reproduces run().
    let replayed = runner.run_with_suites(&spec, &suites).unwrap();
    assert_eq!(single.to_json().unwrap(), replayed.to_json().unwrap());

    // run_with_scenarios refuses the ambiguity of a multi-family spec.
    assert!(runner.run_with_scenarios(&spec, &suites[0]).is_err());

    // Scenario ids restart at 0 per family suite, so refly must reject a
    // suite from the wrong family instead of re-flying the same-id scenario
    // of another world and reporting the byte mismatch as nondeterminism.
    let header = mls_trace::TraceHeader {
        version: mls_trace::TRACE_FORMAT_VERSION,
        campaign: spec.name.clone(),
        seed: spec.mission_seed(0, 0),
        variant: SystemVariant::MlsV3,
        scenario_id: 0,
        scenario_name: suites[1][0].name.clone(),
        family: ScenarioFamily::ConstrainedPad.label().to_string(),
        cell_index: 1,
        repeat: 0,
        config_hash: spec.config_hash().unwrap(),
        tick_decimation: 25,
        map_decimation: 8,
        capacity: 8192,
        dropped_events: 0,
        coordinates: Vec::new(),
    };
    let err = runner.refly(&spec, &suites[0], &header).unwrap_err();
    assert!(
        err.to_string().contains("family"),
        "wrong-family suite must be rejected, got: {err}"
    );
    // The right suite re-flies cleanly.
    assert!(runner.refly(&spec, &suites[1], &header).is_ok());
}
