//! Crash-safe resume equivalence: a journaled campaign interrupted at
//! *any* write-ahead journal boundary and resumed must reproduce its
//! report and persisted traces byte for byte — and journaling at all must
//! not change a single artifact byte relative to an unjournaled run.
//!
//! The kill is simulated by truncating the journal file to each record
//! boundary (plus a torn, partially-written final record — what a real
//! `kill -9` mid-`write` leaves) and resuming into a wiped trace
//! directory, so even the trace *paths* inside the report must match.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use mls_campaign::{
    CampaignError, CampaignRunner, CampaignSpec, FalsificationConfig, FalsificationSearch,
    FaultAxis, FaultKind, FaultPlan, FaultSpace, GridRefinementConfig, Searcher,
};
use mls_core::SystemVariant;
use mls_trace::TracePolicy;

/// Stable artifact directory (uploaded by the CI workflow).
fn trace_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/test-traces")
        .join(name)
}

fn journal_path(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/test-journals");
    fs::create_dir_all(&dir).expect("journal dir");
    dir.join(format!("{name}.jsonl"))
}

/// A tiny campaign with failures to capture: 2 cells × 2 missions.
fn tiny_spec(name: &str) -> CampaignSpec {
    let mut spec = CampaignSpec {
        name: name.to_string(),
        seed: 90,
        maps: 1,
        scenarios_per_map: 2,
        repeats: 1,
        variants: vec![SystemVariant::MlsV1],
        faults: vec![FaultPlan::new(FaultKind::DetectionDropout, 0.7)],
        capture: TracePolicy::FailuresOnly,
        ..CampaignSpec::default()
    };
    spec.landing.mission_timeout = 100.0;
    spec.executor.max_duration = 120.0;
    spec
}

/// Reads every file under `dir` (recursively) into path-relative bytes.
fn snapshot_dir(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    if !dir.exists() {
        return files;
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        for entry in fs::read_dir(&current).expect("read trace dir") {
            let path = entry.expect("read trace dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let relative = path
                    .strip_prefix(dir)
                    .expect("trace path under root")
                    .to_string_lossy()
                    .into_owned();
                files.insert(relative, fs::read(&path).expect("read trace file"));
            }
        }
    }
    files
}

fn wipe(dir: &Path) {
    if dir.exists() {
        fs::remove_dir_all(dir).expect("wipe trace dir");
    }
}

/// Header plus the first `records` journal records, newline-terminated.
fn journal_prefix(full: &str, records: usize) -> String {
    let mut out = String::new();
    for line in full.lines().take(1 + records) {
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[test]
fn journaling_does_not_change_a_single_artifact_byte() {
    let spec = tiny_spec("resume-equiv");
    let dir = trace_root("resume-equiv");

    wipe(&dir);
    let baseline = CampaignRunner::new(2)
        .with_trace_dir(&dir)
        .run(&spec)
        .expect("unjournaled run");
    let baseline_json = baseline.to_json().expect("serialise baseline");
    let baseline_traces = snapshot_dir(&dir);
    assert!(
        !baseline_traces.is_empty(),
        "the dropout campaign must capture failure traces"
    );

    let journal = journal_path("resume-equiv");
    let _ = fs::remove_file(&journal);
    wipe(&dir);
    let journaled = CampaignRunner::new(2)
        .with_journal(&journal)
        .with_trace_dir(&dir)
        .run(&spec)
        .expect("journaled run");
    assert_eq!(
        baseline_json,
        journaled.to_json().expect("serialise journaled"),
        "journaling changed the report bytes"
    );
    assert_eq!(
        baseline_traces,
        snapshot_dir(&dir),
        "journaling changed the persisted traces"
    );
    let full = fs::read_to_string(&journal).expect("journal written");
    assert!(
        full.lines().count() > 1,
        "the journal must hold one record per flown mission"
    );
}

#[test]
fn resume_from_every_journal_boundary_is_byte_identical() {
    let spec = tiny_spec("resume-boundaries");
    let dir = trace_root("resume-boundaries");
    let journal = journal_path("resume-boundaries");
    let _ = fs::remove_file(&journal);

    wipe(&dir);
    let baseline = CampaignRunner::new(2)
        .with_journal(&journal)
        .with_trace_dir(&dir)
        .run(&spec)
        .expect("journaled run");
    let baseline_json = baseline.to_json().expect("serialise baseline");
    let baseline_traces = snapshot_dir(&dir);

    let full = fs::read_to_string(&journal).expect("read journal");
    let records = full.lines().count() - 1;
    assert!(
        records >= 2,
        "expected several journal boundaries to kill at"
    );

    for kill_at in 0..=records {
        let boundary = journal_path(&format!("resume-boundary-{kill_at}"));
        let mut prefix = journal_prefix(&full, kill_at);
        if kill_at < records {
            // A real kill -9 lands mid-write: leave the next record torn
            // (half its bytes, no newline). Resume must drop the tail.
            let next = full.lines().nth(1 + kill_at).expect("next record");
            prefix.push_str(&next[..next.len() / 2]);
        }
        fs::write(&boundary, prefix).expect("write boundary journal");

        wipe(&dir);
        let resumed = CampaignRunner::new(2)
            .with_trace_dir(&dir)
            .resume(&boundary)
            .unwrap_or_else(|err| panic!("resume at boundary {kill_at} failed: {err}"));
        assert_eq!(
            baseline_json,
            resumed.to_json().expect("serialise resumed"),
            "report diverged when killed after {kill_at} records"
        );
        assert_eq!(
            baseline_traces,
            snapshot_dir(&dir),
            "traces diverged when killed after {kill_at} records"
        );
    }
}

#[test]
fn interrupting_twice_still_converges_to_the_same_bytes() {
    let spec = tiny_spec("resume-twice");
    let dir = trace_root("resume-twice");
    let journal = journal_path("resume-twice");
    let _ = fs::remove_file(&journal);

    wipe(&dir);
    let baseline = CampaignRunner::new(2)
        .with_journal(&journal)
        .with_trace_dir(&dir)
        .run(&spec)
        .expect("journaled run");
    let baseline_json = baseline.to_json().expect("serialise baseline");

    // First kill: one record survives. Second kill: the resumed journal,
    // truncated again two records further in. Then a final full resume.
    let full = fs::read_to_string(&journal).expect("read journal");
    let records = full.lines().count() - 1;
    let twice = journal_path("resume-twice-replay");
    fs::write(&twice, journal_prefix(&full, 1)).expect("first kill");
    wipe(&dir);
    let _ = CampaignRunner::new(2)
        .with_trace_dir(&dir)
        .resume(&twice)
        .expect("first resume");
    let grown = fs::read_to_string(&twice).expect("re-read journal");
    assert_eq!(
        grown.lines().count() - 1,
        records,
        "the first resume must re-journal every missing record"
    );
    fs::write(&twice, journal_prefix(&grown, (records / 2).max(2))).expect("second kill");
    wipe(&dir);
    let resumed = CampaignRunner::new(2)
        .with_trace_dir(&dir)
        .resume(&twice)
        .expect("second resume");
    assert_eq!(
        baseline_json,
        resumed.to_json().expect("serialise resumed"),
        "two interruptions changed the report bytes"
    );
}

#[test]
fn resume_rejects_a_journal_whose_spec_was_edited() {
    let spec = tiny_spec("resume-edited");
    let journal = journal_path("resume-edited");
    let _ = fs::remove_file(&journal);
    let dir = trace_root("resume-edited");
    wipe(&dir);
    CampaignRunner::new(2)
        .with_journal(&journal)
        .with_trace_dir(&dir)
        .run(&spec)
        .expect("journaled run");

    // Doctor the embedded spec (a different seed) while the header keeps
    // the original pinned hash — the signature of a hand-edited journal.
    let full = fs::read_to_string(&journal).expect("read journal");
    let mut lines = full.lines();
    let header = lines.next().expect("header line");
    let mut header: serde_json::Value = serde_json::parse(header).expect("parse header");
    let edited_spec = CampaignSpec {
        seed: spec.seed + 1,
        ..spec.clone()
    };
    if let serde_json::Value::Object(fields) = &mut header {
        for (key, value) in fields.iter_mut() {
            if key == "spec" {
                *value = serde_json::Value::String(edited_spec.to_json().expect("serialise edit"));
            }
        }
    }
    let mut doctored = serde_json::to_string(&header).expect("serialise header");
    doctored.push('\n');
    for line in lines {
        doctored.push_str(line);
        doctored.push('\n');
    }
    fs::write(&journal, doctored).expect("write doctored journal");

    let err = CampaignRunner::new(2)
        .with_trace_dir(&dir)
        .resume(&journal)
        .expect_err("an edited journal must be refused");
    assert!(
        matches!(&err, CampaignError::Journal(reason) if reason.contains("edited")),
        "unexpected error: {err}"
    );
}

#[test]
fn falsification_search_resumes_byte_identically() {
    let config = FalsificationConfig {
        maps: 1,
        scenarios_per_map: 2,
        repeats: 1,
        failure_threshold: 0.75,
        minimizer_passes: 1,
        minimizer_bisections: 1,
        probe_early_stop: true,
        ..FalsificationConfig::default()
    };
    let space = FaultSpace::new(
        "resume-search-space",
        vec![
            FaultAxis::full(FaultKind::MarkerOcclusion),
            FaultAxis::new(FaultKind::GpsBias, 0.15, 1.0),
        ],
    );
    let searcher = Searcher::GridRefinement(GridRefinementConfig {
        resolution: 2,
        rounds: 0,
    });

    let baseline = FalsificationSearch::new(config.clone(), 2)
        .search_space(SystemVariant::MlsV1, &space, &searcher)
        .expect("unjournaled search");

    let journal = journal_path("resume-search");
    let _ = fs::remove_file(&journal);
    let journaled = FalsificationSearch::new(config.clone(), 2)
        .with_journal(&journal)
        .search_space(SystemVariant::MlsV1, &space, &searcher)
        .expect("journaled search");
    assert_eq!(baseline.probes, journaled.probes, "probe logs diverged");
    assert_eq!(baseline.failing_point, journaled.failing_point);
    assert_eq!(
        baseline.baseline_success_rate,
        journaled.baseline_success_rate
    );

    // Kill the search mid-journal, then resume: same probes, same point.
    let full = fs::read_to_string(&journal).expect("read search journal");
    let records = full.lines().count() - 1;
    assert!(records >= 2, "the search must journal probe batches");
    let truncated = journal_path("resume-search-killed");
    fs::write(&truncated, journal_prefix(&full, records / 2)).expect("kill search journal");
    let resumed = FalsificationSearch::new(config.clone(), 2)
        .with_journal(&truncated)
        .search_space(SystemVariant::MlsV1, &space, &searcher)
        .expect("resumed search");
    assert_eq!(
        baseline.probes, resumed.probes,
        "resumed probe logs diverged"
    );
    assert_eq!(baseline.failing_point, resumed.failing_point);
    assert_eq!(baseline.missions_flown, resumed.missions_flown);
}
