//! Integration tests for trace capture and deterministic replay: a
//! `FailuresOnly` campaign persists exactly the failed missions, the
//! recorded streams are independent of the worker-thread count, and
//! replaying a trace regenerates it byte for byte.
//!
//! Traces land under `target/test-traces/` so CI can upload them as a
//! workflow artifact for post-mortem inspection.

use std::path::PathBuf;

use mls_campaign::{CampaignRunner, CampaignSpec, FaultKind, FaultPlan, TracePolicy};
use mls_core::{MissionResult, SystemVariant};
use mls_trace::Trace;

/// Stable artifact directory (uploaded by the CI workflow).
fn trace_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/test-traces")
        .join(name)
}

/// A small captured campaign: MLS-V1 under a strong GNSS bias over four
/// scenarios — a sweep known to land several missions metres off the marker
/// (the Fig. 5d configuration), so `FailuresOnly` has something to keep.
fn captured_spec() -> CampaignSpec {
    let mut spec = CampaignSpec {
        name: "trace-replay".to_string(),
        seed: 2025,
        maps: 1,
        scenarios_per_map: 4,
        repeats: 1,
        variants: vec![SystemVariant::MlsV1],
        baseline: false,
        faults: vec![FaultPlan::new(FaultKind::GpsBias, 0.8)],
        capture: TracePolicy::FailuresOnly,
        ..CampaignSpec::default()
    };
    spec.landing.mission_timeout = 150.0;
    spec.executor.max_duration = 180.0;
    spec
}

#[test]
fn failures_only_persists_exactly_the_failed_missions() {
    let spec = captured_spec();
    let dir = trace_root("failures-only");
    let report = CampaignRunner::new(2)
        .with_trace_dir(&dir)
        .run(&spec)
        .unwrap();

    // Count the non-successes the aggregates promise.
    let expected_failures: usize = report
        .cells
        .iter()
        .map(|cell| cell.missions - (cell.success_rate * cell.missions as f64).round() as usize)
        .sum();
    assert_eq!(
        report.traces.len(),
        expected_failures,
        "FailuresOnly must keep exactly the non-Success missions"
    );
    assert!(
        !report.traces.is_empty(),
        "a heavily biased MLS-V1 campaign must fail somewhere"
    );

    for link in &report.traces {
        assert_ne!(link.result, MissionResult::Success);
        let trace = Trace::read_from(std::path::Path::new(&link.path)).unwrap();
        assert_eq!(trace.header.seed, link.seed);
        assert_eq!(trace.header.scenario_id, link.scenario_id);
        assert_eq!(trace.header.cell_index, link.cell_index);
        assert!(
            !trace.events.is_empty(),
            "persisted traces carry the event stream"
        );
    }
}

#[test]
fn recorded_streams_are_thread_count_independent_and_replayable() {
    let spec = captured_spec();
    let single_dir = trace_root("replay-1thread");
    let sharded_dir = trace_root("replay-4threads");
    let single = CampaignRunner::new(1)
        .with_trace_dir(&single_dir)
        .run(&spec)
        .unwrap();
    let sharded = CampaignRunner::new(4)
        .with_trace_dir(&sharded_dir)
        .run(&spec)
        .unwrap();

    // The reports (minus the differing directories) agree on which missions
    // were kept.
    assert_eq!(single.traces.len(), sharded.traces.len());
    assert!(!single.traces.is_empty());
    for (a, b) in single.traces.iter().zip(sharded.traces.iter()) {
        assert_eq!(
            (a.cell_index, a.scenario_id, a.repeat),
            (b.cell_index, b.scenario_id, b.repeat)
        );
        let trace_a = Trace::read_from(std::path::Path::new(&a.path)).unwrap();
        let trace_b = Trace::read_from(std::path::Path::new(&b.path)).unwrap();
        assert_eq!(
            trace_a.to_jsonl().unwrap(),
            trace_b.to_jsonl().unwrap(),
            "the recorded stream must not depend on the worker-thread count"
        );
    }

    // Deterministic replay: re-executing the (seed, spec) of a recorded
    // trace regenerates a byte-identical event stream.
    let runner = CampaignRunner::new(1);
    let scenarios = runner.generate_scenarios(&spec).unwrap();
    let recorded = Trace::read_from(std::path::Path::new(&single.traces[0].path)).unwrap();
    let verdict = runner.replay(&spec, &scenarios, &recorded).unwrap();
    assert!(verdict.is_identical(), "replay diverged: {verdict}");

    // A drifted spec is rejected instead of silently diverging.
    let mut drifted = spec.clone();
    drifted.landing.mission_timeout = 99.0;
    let err = runner.replay(&drifted, &scenarios, &recorded).unwrap_err();
    assert!(err.to_string().contains("config hash"), "{err}");
}
