//! Batched-vs-sequential equivalence over the falsify spaces.
//!
//! The batched executor is a pure transport change: over every falsify
//! space shape (at `MLS_FALSIFY_SMOKE`-scale lattices), the batched path
//! must find the identical counterexample coordinates, evaluate the
//! identical probe set and capture byte-identical traces as the sequential
//! path — independent of thread count and of whether probe schedules
//! early-stop. The two open-pad grid/CMA spaces are checked at the search
//! stage (probe logs + failing point); the V1 space and the
//! constrained-pad smoke space run the full search → minimize → capture
//! pipeline so the persisted trace bytes are compared too.
//!
//! Traces land under `target/test-traces/` so CI can upload them as a
//! workflow artifact for post-mortem inspection.

use std::path::PathBuf;

use mls_campaign::{
    CmaEsConfig, FalsificationConfig, FalsificationSearch, FaultAxis, FaultKind, FaultSpace,
    GridRefinementConfig, ProbeExecution, SearchStage, Searcher, SpaceFalsification,
};
use mls_core::SystemVariant;
use mls_sim_world::ScenarioFamily;
use mls_trace::Trace;

/// Stable artifact directory (uploaded by the CI workflow).
fn trace_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/test-traces")
        .join(name)
}

/// A smoke-scale falsification config: tiny probe suites, short missions.
fn smoke_config(seed: u64, family: ScenarioFamily, early_stop: bool) -> FalsificationConfig {
    let mut config = FalsificationConfig {
        seed,
        maps: 1,
        scenarios_per_map: 2,
        family,
        repeats: 1,
        failure_threshold: 0.75,
        minimizer_passes: 1,
        minimizer_bisections: 1,
        probe_early_stop: early_stop,
        ..FalsificationConfig::default()
    };
    config.landing.mission_timeout = 120.0;
    config.executor.max_duration = 150.0;
    config
}

/// A minimal-lattice grid searcher (the falsify binary's smoke setting).
fn smoke_grid() -> Searcher {
    Searcher::GridRefinement(GridRefinementConfig {
        resolution: 2,
        rounds: 0,
    })
}

/// Runs the full falsification (search → minimize → capture) of `space`
/// with the given probe execution mode, keeping traces per mode.
fn falsify(
    config: &FalsificationConfig,
    execution: ProbeExecution,
    threads: usize,
    variant: SystemVariant,
    space: &FaultSpace,
    searcher: &Searcher,
    tag: &str,
) -> SpaceFalsification {
    FalsificationSearch::new(config.clone(), threads)
        .with_probe_execution(execution)
        .with_trace_dir(trace_root(&format!("equiv-{}-{tag}", space.name)))
        .falsify(variant, space, searcher)
        .unwrap_or_else(|err| panic!("falsify({}, {tag}) failed: {err}", space.name))
}

/// Runs only the search stage (baseline + searcher).
fn search(
    config: &FalsificationConfig,
    execution: ProbeExecution,
    threads: usize,
    variant: SystemVariant,
    space: &FaultSpace,
    searcher: &Searcher,
) -> SearchStage {
    FalsificationSearch::new(config.clone(), threads)
        .with_probe_execution(execution)
        .search_space(variant, space, searcher)
        .unwrap_or_else(|err| panic!("search_space({}) failed: {err}", space.name))
}

/// Asserts two falsification results are equivalent: identical probe
/// sequences (points *and* rates), identical counterexample coordinates
/// and byte-identical captured traces. Only the trace *paths* may differ
/// (each run keeps its own directory).
fn assert_equivalent(a: &SpaceFalsification, b: &SpaceFalsification, what: &str) {
    assert_eq!(a.probes, b.probes, "{what}: probe logs diverged");
    assert_eq!(
        a.baseline_success_rate, b.baseline_success_rate,
        "{what}: baselines diverged"
    );
    assert_eq!(
        a.missions_flown, b.missions_flown,
        "{what}: mission accounting diverged"
    );
    match (&a.counterexample, &b.counterexample) {
        (None, None) => {}
        (Some(ce_a), Some(ce_b)) => {
            assert_eq!(ce_a.point, ce_b.point, "{what}: counterexample coordinates");
            assert_eq!(ce_a.plans, ce_b.plans, "{what}: counterexample plans");
            assert_eq!(
                ce_a.success_rate, ce_b.success_rate,
                "{what}: counterexample rates"
            );
            assert_eq!(
                ce_a.replay_identical, ce_b.replay_identical,
                "{what}: replay verdicts"
            );
            match (&ce_a.trace, &ce_b.trace) {
                (None, None) => {}
                (Some(link_a), Some(link_b)) => {
                    assert_eq!(link_a.triage, link_b.triage, "{what}: triage classes");
                    assert_eq!(link_a.seed, link_b.seed, "{what}: trace seeds");
                    let trace_a = Trace::read_from(std::path::Path::new(&link_a.path)).unwrap();
                    let trace_b = Trace::read_from(std::path::Path::new(&link_b.path)).unwrap();
                    assert_eq!(
                        trace_a.to_jsonl().unwrap(),
                        trace_b.to_jsonl().unwrap(),
                        "{what}: captured traces are not byte-identical"
                    );
                }
                mismatched => panic!("{what}: trace capture diverged: {mismatched:?}"),
            }
        }
        mismatched => panic!("{what}: counterexample existence diverged: {mismatched:?}"),
    }
}

#[test]
fn v1_occlusion_x_gps_full_pipeline_is_batched_equivalent() {
    // The known-falsifiable MLS-V1 space (the falsification_e2e
    // reference), through the full search → minimize → capture pipeline
    // with early-stopped probes: counterexample coordinates, probe logs
    // and the persisted trace bytes must not depend on the transport.
    let config = smoke_config(3, ScenarioFamily::Open, true);
    let space = FaultSpace::new(
        "eq-v1-occlusion-x-gps",
        vec![
            FaultAxis::full(FaultKind::MarkerOcclusion),
            FaultAxis::new(FaultKind::GpsBias, 0.15, 1.0),
        ],
    );
    let searcher = smoke_grid();
    let variant = SystemVariant::MlsV1;
    let sequential = falsify(
        &config,
        ProbeExecution::Sequential,
        2,
        variant,
        &space,
        &searcher,
        "seq",
    );
    let batched = falsify(
        &config,
        ProbeExecution::Batched,
        2,
        variant,
        &space,
        &searcher,
        "bat",
    );
    assert!(
        sequential.counterexample.is_some(),
        "the all-axes-at-max corner falsifies MLS-V1"
    );
    assert_equivalent(&sequential, &batched, "sequential vs batched");
}

#[test]
fn v2_starvation_x_wind_search_is_batched_and_thread_independent() {
    let config = smoke_config(3, ScenarioFamily::Open, true);
    let space = FaultSpace::new(
        "eq-v2-starvation-x-wind",
        vec![
            FaultAxis::new(FaultKind::PlannerStarvation, 0.5, 1.0),
            FaultAxis::full(FaultKind::WindGust),
        ],
    );
    let searcher = smoke_grid();
    let variant = SystemVariant::MlsV2;
    let sequential = search(
        &config,
        ProbeExecution::Sequential,
        2,
        variant,
        &space,
        &searcher,
    );
    let batched = search(
        &config,
        ProbeExecution::Batched,
        2,
        variant,
        &space,
        &searcher,
    );
    assert_eq!(sequential, batched, "sequential vs batched search stages");
    // Thread-count independence of the batched fan-out.
    let three = search(
        &config,
        ProbeExecution::Batched,
        3,
        variant,
        &space,
        &searcher,
    );
    assert_eq!(batched, three, "2 threads vs 3 threads");
}

#[test]
fn v3_cma_search_is_batched_equivalent() {
    // The CMA-ES searcher feeds measured rates back into its ranking, so
    // equivalence here also pins that batched generations tell identical
    // rates in identical order.
    let config = smoke_config(3, ScenarioFamily::Open, true);
    let space = FaultSpace::new(
        "eq-v3-dropout-x-gps",
        vec![
            FaultAxis::full(FaultKind::DetectionDropout),
            FaultAxis::new(FaultKind::GpsBias, 0.15, 1.0),
        ],
    );
    let searcher = Searcher::CmaEs(CmaEsConfig {
        population: 4,
        generations: 1,
        initial_step: 0.3,
        seed: 7,
    });
    let variant = SystemVariant::MlsV3;
    let sequential = search(
        &config,
        ProbeExecution::Sequential,
        2,
        variant,
        &space,
        &searcher,
    );
    let batched = search(
        &config,
        ProbeExecution::Batched,
        2,
        variant,
        &space,
        &searcher,
    );
    assert_eq!(sequential, batched, "sequential vs batched search stages");
}

#[test]
fn constrained_space_without_early_stop_is_batched_equivalent() {
    // Early stopping off: both paths fly every planned mission, so this
    // pins the pure transport equivalence — full pipeline, on the
    // constrained-pad family (the falsify binary's smoke space, seed 2 as
    // there).
    let config = smoke_config(2, ScenarioFamily::ConstrainedPad, false);
    let space = FaultSpace::new(
        "eq-v3-constrained-occlusion-x-wind",
        vec![
            FaultAxis::full(FaultKind::MarkerOcclusion),
            FaultAxis::full(FaultKind::WindGust),
        ],
    );
    let searcher = smoke_grid();
    let variant = SystemVariant::MlsV3;
    let sequential = falsify(
        &config,
        ProbeExecution::Sequential,
        2,
        variant,
        &space,
        &searcher,
        "seq",
    );
    let batched = falsify(
        &config,
        ProbeExecution::Batched,
        2,
        variant,
        &space,
        &searcher,
        "bat",
    );
    // With early stopping off, every probe flies its full schedule.
    let planned = config.maps * config.scenarios_per_map * config.repeats;
    assert!(
        sequential.missions_flown >= sequential.probes.len() * planned,
        "without early stop every probe flies all {planned} missions"
    );
    assert_equivalent(&sequential, &batched, "sequential vs batched");
}
