//! The non-perturbation contract of `mls-obs`, pinned end to end: a
//! captured campaign and a batched falsification search must produce
//! byte-identical reports and traces with observability fully on versus
//! fully off.
//!
//! The obs global initializes once per process, so everything lives in a
//! single test function that toggles the runtime master switch
//! ([`mls_obs::set_enabled`]) between runs — the same mechanism
//! `perfsuite` uses for its overhead measurement. The on-runs write both
//! sinks (JSONL + exposition) into `target/test-obs/` so the comparison
//! is against live instrumentation, not a silently disabled stub; the
//! test ends by checking the event log actually recorded the stack's
//! spans and events.

use std::path::PathBuf;

use mls_campaign::{
    CampaignRunner, CampaignSpec, FalsificationConfig, FalsificationSearch, FaultAxis, FaultKind,
    FaultPlan, FaultSpace, GridRefinementConfig, ProbeExecution, SearchStage, Searcher,
    TracePolicy,
};
use mls_core::SystemVariant;

/// Stable scratch root under `target/` (uploaded by the CI workflow).
fn scratch_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/test-obs")
        .join(name)
}

/// The captured campaign both toggles fly: MLS-V1 under a strong GNSS
/// bias (the trace-replay suite's known-failing sweep), so `FailuresOnly`
/// persists traces whose bytes the comparison can pin.
fn captured_spec() -> CampaignSpec {
    let mut spec = CampaignSpec {
        name: "obs-equivalence".to_string(),
        seed: 2025,
        maps: 1,
        scenarios_per_map: 4,
        repeats: 1,
        variants: vec![SystemVariant::MlsV1],
        baseline: false,
        faults: vec![FaultPlan::new(FaultKind::GpsBias, 0.8)],
        capture: TracePolicy::FailuresOnly,
        ..CampaignSpec::default()
    };
    spec.landing.mission_timeout = 150.0;
    spec.executor.max_duration = 180.0;
    spec
}

/// Runs the captured campaign into `dir` and returns the report JSON plus
/// every persisted trace as `(path, bytes)`. Both toggles use the *same*
/// directory, so even the trace paths inside the report JSON must match.
fn run_campaign(dir: &PathBuf) -> (String, Vec<(String, Vec<u8>)>) {
    let report = CampaignRunner::new(2)
        .with_trace_dir(dir)
        .run(&captured_spec())
        .expect("the equivalence campaign runs");
    let json = report.to_json().expect("reports serialise");
    let traces = report
        .traces
        .iter()
        .map(|link| {
            let bytes = std::fs::read(&link.path)
                .unwrap_or_else(|err| panic!("trace {} readable: {err}", link.path));
            (link.path.clone(), bytes)
        })
        .collect();
    (json, traces)
}

/// Runs the batched falsification search stage over a small grid lattice.
fn run_search() -> SearchStage {
    let mut config = FalsificationConfig {
        seed: 3,
        maps: 1,
        scenarios_per_map: 2,
        repeats: 1,
        failure_threshold: 0.75,
        minimizer_passes: 1,
        minimizer_bisections: 1,
        probe_early_stop: true,
        ..FalsificationConfig::default()
    };
    config.landing.mission_timeout = 120.0;
    config.executor.max_duration = 150.0;
    let space = FaultSpace::new(
        "obs-eq-v1-occlusion-x-gps",
        vec![
            FaultAxis::full(FaultKind::MarkerOcclusion),
            FaultAxis::new(FaultKind::GpsBias, 0.15, 1.0),
        ],
    );
    let searcher = Searcher::GridRefinement(GridRefinementConfig {
        resolution: 2,
        rounds: 0,
    });
    FalsificationSearch::new(config, 2)
        .with_probe_execution(ProbeExecution::Batched)
        .search_space(SystemVariant::MlsV1, &space, &searcher)
        .expect("the equivalence search runs")
}

#[test]
fn reports_and_traces_are_byte_identical_with_obs_on_and_off() {
    let obs_dir = scratch_root("artifacts");
    let fresh = mls_obs::init(mls_obs::ObsConfig {
        jsonl: true,
        exposition: true,
        progress: false,
        dir: obs_dir,
        tag: None,
    });
    assert!(fresh, "this test owns its process's obs state");
    assert!(mls_obs::enabled(), "both sinks are configured");

    // Campaign with trace capture: obs on, then off, into the same trace
    // directory — the report JSON (including trace paths) and the trace
    // bytes themselves must not change.
    let trace_dir = scratch_root("traces");
    mls_obs::set_enabled(true);
    let (report_on, traces_on) = run_campaign(&trace_dir);
    mls_obs::set_enabled(false);
    let (report_off, traces_off) = run_campaign(&trace_dir);
    assert_eq!(
        report_on, report_off,
        "campaign report JSON must be byte-identical across the obs toggle"
    );
    assert!(
        !traces_on.is_empty(),
        "a heavily biased MLS-V1 campaign must fail somewhere"
    );
    assert_eq!(traces_on.len(), traces_off.len());
    for ((path_on, bytes_on), (path_off, bytes_off)) in traces_on.iter().zip(&traces_off) {
        assert_eq!(path_on, path_off, "trace layout must not depend on obs");
        assert_eq!(
            bytes_on, bytes_off,
            "trace {path_on} must be byte-identical across the obs toggle"
        );
    }

    // Falsification search: probe log, rates and the found failing point
    // must be identical (SearchStage compares all of them).
    mls_obs::set_enabled(true);
    let stage_on = run_search();
    mls_obs::set_enabled(false);
    let stage_off = run_search();
    assert_eq!(
        stage_on, stage_off,
        "search stages must be identical across the obs toggle"
    );

    // The on-runs must have *actually* been observed: flush the sinks and
    // check the event log recorded the stack's instrumentation, top
    // (campaign span) to bottom (mls-core mission_phases events).
    mls_obs::set_enabled(true);
    let artifacts = mls_obs::flush();
    let jsonl = artifacts
        .iter()
        .find(|path| path.extension().is_some_and(|ext| ext == "jsonl"))
        .expect("the on-runs wrote an event log");
    let log = std::fs::read_to_string(jsonl).expect("event log readable");
    assert!(
        log.lines().next().is_some_and(|l| l.contains("mls-obs-v1")),
        "the event log leads with its schema header"
    );
    for needle in [
        "\"event\":\"span\",\"name\":\"campaign\"",
        "\"event\":\"span\",\"name\":\"executor_batch\"",
        "\"event\":\"mission_phases\"",
        "\"event\":\"cell_outcomes\"",
    ] {
        assert!(
            log.contains(needle),
            "the obs-on runs must have recorded {needle}"
        );
    }
}
