//! End-to-end integration tests for the multi-dimensional falsification
//! pipeline: multi-fault (combo) cells fly deterministically, captured
//! traces carry their fault-space coordinates and replay byte-identically,
//! and the search → minimize → capture chain produces a triaged, replayable
//! counterexample.
//!
//! Traces land under `target/test-traces/` so CI can upload them as a
//! workflow artifact for post-mortem inspection.

use std::path::PathBuf;

use mls_campaign::{
    CampaignRunner, CampaignSpec, FalsificationConfig, FalsificationSearch, FaultAxis, FaultKind,
    FaultPlan, FaultSpace, GridRefinementConfig, Searcher, TracePolicy,
};
use mls_core::SystemVariant;
use mls_trace::Trace;

/// Stable artifact directory (uploaded by the CI workflow).
fn trace_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/test-traces")
        .join(name)
}

/// A combo campaign known to fail: MLS-V1 blinded by occlusion bursts while
/// a strong GNSS bias walks the landing away from the marker.
fn combo_spec() -> CampaignSpec {
    let mut spec = CampaignSpec {
        name: "combo-replay".to_string(),
        seed: 2025,
        maps: 1,
        scenarios_per_map: 4,
        repeats: 1,
        variants: vec![SystemVariant::MlsV1],
        baseline: false,
        combos: vec![vec![
            FaultPlan::new(FaultKind::MarkerOcclusion, 0.6),
            FaultPlan::new(FaultKind::GpsBias, 0.8),
        ]],
        capture: TracePolicy::FailuresOnly,
        ..CampaignSpec::default()
    };
    spec.landing.mission_timeout = 150.0;
    spec.executor.max_duration = 180.0;
    spec
}

#[test]
fn multi_fault_cells_stamp_coordinates_and_replay_byte_identically() {
    let spec = combo_spec();
    let dir = trace_root("combo-replay");
    let runner = CampaignRunner::new(2).with_trace_dir(&dir);
    let report = runner.run(&spec).unwrap();

    assert_eq!(report.cells.len(), 1);
    assert_eq!(report.cells[0].faults.len(), 2);
    assert!(
        !report.traces.is_empty(),
        "a blinded, biased MLS-V1 campaign must fail somewhere"
    );

    // Every captured trace is self-describing about its fault-space point.
    for link in &report.traces {
        let trace = Trace::read_from(std::path::Path::new(&link.path)).unwrap();
        let coordinates = &trace.header.coordinates;
        assert_eq!(coordinates.len(), 2, "one coordinate per injected plan");
        assert_eq!(coordinates[0].axis, "marker-occlusion");
        assert_eq!(coordinates[0].value, 0.6);
        assert_eq!(coordinates[1].axis, "gps-bias");
        assert_eq!(coordinates[1].value, 0.8);
    }

    // Composite injection is deterministic: replay regenerates the stream
    // byte for byte, coordinates included.
    let scenarios = runner.generate_scenarios(&spec).unwrap();
    let recorded = Trace::read_from(std::path::Path::new(&report.traces[0].path)).unwrap();
    let verdict = runner.replay(&spec, &scenarios, &recorded).unwrap();
    assert!(verdict.is_identical(), "combo replay diverged: {verdict}");
}

#[test]
fn multi_fault_streams_are_thread_count_independent() {
    let spec = combo_spec();
    let single = CampaignRunner::new(1)
        .with_trace_dir(trace_root("combo-1thread"))
        .run(&spec)
        .unwrap();
    let sharded = CampaignRunner::new(3)
        .with_trace_dir(trace_root("combo-3threads"))
        .run(&spec)
        .unwrap();
    assert_eq!(single.traces.len(), sharded.traces.len());
    assert!(!single.traces.is_empty());
    for (a, b) in single.traces.iter().zip(sharded.traces.iter()) {
        let trace_a = Trace::read_from(std::path::Path::new(&a.path)).unwrap();
        let trace_b = Trace::read_from(std::path::Path::new(&b.path)).unwrap();
        assert_eq!(
            trace_a.to_jsonl().unwrap(),
            trace_b.to_jsonl().unwrap(),
            "combo streams must not depend on the worker-thread count"
        );
    }
}

#[test]
fn falsification_searches_minimizes_and_ships_a_replayable_counterexample() {
    // The MLS-V1 occlusion × GNSS-bias space over a suite the baseline
    // lands clean (seed 3; see the falsify harness): the search must find a
    // failing point, shrink it onto the frontier and capture its trace.
    let mut config = FalsificationConfig {
        seed: 3,
        maps: 1,
        scenarios_per_map: 2,
        repeats: 1,
        failure_threshold: 0.75,
        minimizer_passes: 1,
        minimizer_bisections: 2,
        ..FalsificationConfig::default()
    };
    config.landing.mission_timeout = 120.0;
    config.executor.max_duration = 150.0;
    let search =
        FalsificationSearch::new(config, 2).with_trace_dir(trace_root("falsify-counterexample"));
    let space = FaultSpace::new(
        "it-occlusion-x-gps",
        vec![
            FaultAxis::full(FaultKind::MarkerOcclusion),
            FaultAxis::new(FaultKind::GpsBias, 0.15, 1.0),
        ],
    );
    let searcher = Searcher::GridRefinement(GridRefinementConfig {
        resolution: 3,
        rounds: 1,
    });
    let result = search
        .falsify(SystemVariant::MlsV1, &space, &searcher)
        .unwrap();

    assert!(
        result.baseline_success_rate >= 0.75,
        "the baseline must pass for the search to be meaningful, got {}",
        result.baseline_success_rate
    );
    assert!(!result.probes.is_empty());
    let ce = result
        .counterexample
        .as_ref()
        .expect("the all-axes-at-max corner falsifies MLS-V1");
    assert_eq!(ce.point.len(), 2);
    assert!(
        ce.success_rate < 0.75,
        "the counterexample must actually fail: {}",
        ce.success_rate
    );
    // The GNSS floor guarantees a classifiable signature.
    let link = ce.trace.as_ref().expect("a failing probe leaves a trace");
    assert!(link.triage.is_some(), "counterexample traces triage");
    assert_eq!(ce.replay_identical, Some(true), "replay must verify");
    // The persisted trace exists and carries the minimized coordinates.
    let trace = Trace::read_from(std::path::Path::new(&link.path)).unwrap();
    assert_eq!(trace.header.coordinates.len(), 2);
    for (coordinate, plan) in trace.header.coordinates.iter().zip(&ce.plans) {
        assert_eq!(coordinate.axis, plan.kind.label());
        assert!((coordinate.value - plan.intensity).abs() < 1e-12);
    }
}
