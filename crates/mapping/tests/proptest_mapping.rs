//! Property-based tests of the occupancy-map substrates.

use mls_geom::Vec3;
use mls_mapping::{
    voxel_traversal, CellState, OccupancyQuery, OctreeConfig, OctreeMap, VoxelGridConfig,
    VoxelGridMap,
};
use proptest::prelude::*;

fn vec3(range: std::ops::Range<f64>) -> impl Strategy<Value = Vec3> {
    (range.clone(), range.clone(), 0.5f64..12.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The voxel traversal is always face-connected, starts in the start
    /// cell, and never contains the end cell.
    #[test]
    fn traversal_is_connected_and_bounded(
        from in vec3(-15.0..15.0),
        to in vec3(-15.0..15.0),
        resolution in 0.2f64..1.0,
    ) {
        let cells = voxel_traversal(from, to, resolution);
        let start = mls_geom::VoxelIndex::from_point(from, resolution);
        let end = mls_geom::VoxelIndex::from_point(to, resolution);
        if start == end {
            prop_assert!(cells.is_empty());
        } else {
            prop_assert_eq!(cells[0], start);
            prop_assert!(!cells.contains(&end));
            for pair in cells.windows(2) {
                prop_assert_eq!(pair[0].manhattan_distance(pair[1]), 1);
            }
            // Never more cells than a generous bound on the crossed distance.
            let bound = (3.0 * from.distance(to) / resolution).ceil() as usize + 6;
            prop_assert!(cells.len() <= bound);
        }
    }

    /// Inserting a cloud always marks its endpoints occupied (both backends),
    /// and a point that was never observed stays unknown.
    #[test]
    fn endpoints_become_occupied_and_unobserved_stays_unknown(
        endpoints in prop::collection::vec(vec3(3.0..15.0), 1..40),
    ) {
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let mut grid = VoxelGridMap::new(VoxelGridConfig {
            resolution: 0.5,
            half_extent_xy: 20.0,
            height: 14.0,
            carve_free_space: true,
            max_range: 40.0,
        }).unwrap();
        // max_range must cover the sampled endpoints (up to ~22 m away) and
        // match the grid, or the octree silently drops what the grid records.
        let mut tree = OctreeMap::new(OctreeConfig { resolution: 0.5, half_extent: 32.0, max_range: 40.0, ..OctreeConfig::default() }).unwrap();
        for _ in 0..3 {
            grid.insert_cloud(origin, &endpoints);
            tree.insert_cloud(origin, &endpoints);
        }
        for p in &endpoints {
            prop_assert_eq!(grid.state_at(*p), CellState::Occupied);
            prop_assert_eq!(tree.state_at(*p), CellState::Occupied);
        }
        // A corner of the map far from every ray stays unknown.
        let probe = Vec3::new(-18.0, -18.0, 10.0);
        prop_assert_eq!(grid.state_at(probe), CellState::Unknown);
        prop_assert_eq!(tree.state_at(probe), CellState::Unknown);
    }

    /// The octree's log-odds saturation means occupancy decisions are always
    /// reversible within a bounded number of contrary observations.
    #[test]
    fn octree_occupancy_is_reversible(hits in 1usize..60) {
        let mut tree = OctreeMap::new(OctreeConfig { resolution: 0.5, half_extent: 16.0, ..OctreeConfig::default() }).unwrap();
        let origin = Vec3::new(0.0, 0.0, 3.0);
        let cell = Vec3::new(5.0, 0.0, 3.0);
        for _ in 0..hits {
            tree.insert_cloud(origin, &[cell]);
        }
        prop_assert_eq!(tree.state_at(cell), CellState::Occupied);
        // Observe through the cell (miss) until it flips; the clamp bounds
        // how long that can take regardless of how many hits accumulated.
        let beyond = Vec3::new(9.0, 0.0, 3.0);
        let mut flips = 0;
        while tree.state_at(cell) == CellState::Occupied && flips < 60 {
            tree.insert_cloud(origin, &[beyond]);
            flips += 1;
        }
        prop_assert!(flips < 30, "took {flips} misses to flip a clamped cell");
    }

    /// Inflation queries are monotone in the radius: a larger radius never
    /// reports "clear" where a smaller one reported "occupied".
    #[test]
    fn inflation_is_monotone_in_radius(
        obstacle in vec3(2.0..12.0),
        probe in vec3(2.0..12.0),
        r_small in 0.2f64..1.0,
        r_extra in 0.1f64..2.0,
    ) {
        let mut grid = VoxelGridMap::new(VoxelGridConfig {
            resolution: 0.5,
            half_extent_xy: 16.0,
            height: 14.0,
            carve_free_space: false,
            max_range: 40.0,
        }).unwrap();
        grid.mark_occupied(obstacle);
        let small = grid.occupied_within(probe, r_small, false);
        let large = grid.occupied_within(probe, r_small + r_extra, false);
        prop_assert!(!small || large, "larger radius must still see the obstacle");
    }
}
