//! Occupancy-mapping substrates.
//!
//! The paper's mapping module went through two generations:
//!
//! * **MLS-V2** keeps a *local* static voxel grid around the vehicle
//!   (EGO-Planner style). It is fast but only knows about space it has
//!   recently observed, and it forgets everything that scrolls out of the
//!   window — which is how V2 ends up planning "through at-the-time unseen
//!   obstacles". Implemented by [`VoxelGridMap`].
//! * **MLS-V3** switches to a *global* probabilistic octree (OctoMap style):
//!   log-odds occupancy, ray-carving of free space, hierarchical pruning, and
//!   far lower memory for large mostly-empty worlds. Implemented by
//!   [`OctreeMap`].
//!
//! Both implement [`OccupancyQuery`], the interface the planners consume,
//! including inflation-aware queries ([`OccupancyQuery::occupied_within`])
//! that reproduce the Fig. 6 "inflated bounding box" behaviour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use mls_geom::Vec3;
use serde::{Deserialize, Serialize};

mod grid;
mod octree;
mod raycast;

pub use grid::{VoxelGridConfig, VoxelGridMap};
pub use octree::{OctreeConfig, OctreeMap};
pub use raycast::voxel_traversal;

/// Errors produced by the mapping crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MappingError {
    /// A map parameter was out of range.
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::InvalidConfig { reason } => {
                write!(f, "invalid map configuration: {reason}")
            }
        }
    }
}

impl Error for MappingError {}

/// Occupancy state of a queried point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellState {
    /// Observed and occupied.
    Occupied,
    /// Observed and free.
    Free,
    /// Never observed (or outside the map).
    Unknown,
}

/// The query interface planners and safety checks use, shared by the grid
/// and octree maps.
pub trait OccupancyQuery: Send + Sync {
    /// Edge length of the smallest map cell, metres.
    fn resolution(&self) -> f64;

    /// Occupancy state of the cell containing `point`.
    fn state_at(&self, point: Vec3) -> CellState;

    /// Approximate memory consumed by the map storage, bytes.
    fn memory_bytes(&self) -> usize;

    /// `true` when any cell within `radius` of `point` is occupied — the
    /// inflation primitive. `treat_unknown_as_occupied` selects the
    /// conservative behaviour used during the landing descent.
    ///
    /// For radii up to ~2.5 map cells (the planners' hot path) a fixed
    /// 15-direction probe pattern is used — the centre, the six axis
    /// directions at `radius`, and the eight cube diagonals — which is an
    /// adequate and much cheaper approximation of true inflation when the
    /// cells are comparable in size to the vehicle. Larger radii (descent
    /// corridors, Fig. 6 sweeps) fall back to an exhaustive lattice so thin
    /// obstacles cannot slip between probes.
    fn occupied_within(&self, point: Vec3, radius: f64, treat_unknown_as_occupied: bool) -> bool {
        let r = radius.max(0.0);
        let check = |p: Vec3| match self.state_at(p) {
            CellState::Occupied => true,
            CellState::Unknown => treat_unknown_as_occupied,
            CellState::Free => false,
        };
        if r <= 2.5 * self.resolution() {
            let d = r / 3.0f64.sqrt();
            let offsets = [
                Vec3::ZERO,
                Vec3::new(r, 0.0, 0.0),
                Vec3::new(-r, 0.0, 0.0),
                Vec3::new(0.0, r, 0.0),
                Vec3::new(0.0, -r, 0.0),
                Vec3::new(0.0, 0.0, r),
                Vec3::new(0.0, 0.0, -r),
                Vec3::new(d, d, d),
                Vec3::new(d, d, -d),
                Vec3::new(d, -d, d),
                Vec3::new(d, -d, -d),
                Vec3::new(-d, d, d),
                Vec3::new(-d, d, -d),
                Vec3::new(-d, -d, d),
                Vec3::new(-d, -d, -d),
            ];
            return offsets.iter().any(|offset| check(point + *offset));
        }
        let step = self.resolution().max(0.05);
        let n = (r / step).ceil() as i32;
        for dz in -n..=n {
            for dy in -n..=n {
                for dx in -n..=n {
                    let offset = Vec3::new(dx as f64 * step, dy as f64 * step, dz as f64 * step);
                    if offset.norm() > r + 1e-9 {
                        continue;
                    }
                    if check(point + offset) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// `true` when the straight segment from `a` to `b`, inflated by
    /// `radius`, touches occupied space.
    fn segment_blocked(
        &self,
        a: Vec3,
        b: Vec3,
        radius: f64,
        treat_unknown_as_occupied: bool,
    ) -> bool {
        let length = a.distance(b);
        let step = self.resolution().max(0.1);
        let samples = (length / step).ceil().max(1.0) as usize;
        for i in 0..=samples {
            let t = i as f64 / samples as f64;
            if self.occupied_within(a.lerp(b, t), radius, treat_unknown_as_occupied) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct HalfSpace;

    impl OccupancyQuery for HalfSpace {
        fn resolution(&self) -> f64 {
            0.25
        }
        fn state_at(&self, point: Vec3) -> CellState {
            if point.x > 5.0 {
                CellState::Occupied
            } else if point.x > 4.0 {
                CellState::Unknown
            } else {
                CellState::Free
            }
        }
        fn memory_bytes(&self) -> usize {
            0
        }
    }

    #[test]
    fn default_inflation_detects_nearby_occupancy() {
        let map = HalfSpace;
        assert!(!map.occupied_within(Vec3::new(0.0, 0.0, 0.0), 1.0, false));
        assert!(map.occupied_within(Vec3::new(4.6, 0.0, 0.0), 1.0, false));
        // Unknown treated as occupied only when asked.
        assert!(!map.occupied_within(Vec3::new(3.5, 0.0, 0.0), 1.0, false));
        assert!(map.occupied_within(Vec3::new(3.5, 0.0, 0.0), 1.0, true));
    }

    #[test]
    fn default_segment_check_detects_crossing() {
        let map = HalfSpace;
        assert!(map.segment_blocked(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(8.0, 0.0, 0.0),
            0.3,
            false
        ));
        assert!(!map.segment_blocked(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(3.0, 0.0, 0.0),
            0.3,
            false
        ));
    }

    #[test]
    fn errors_display() {
        let e = MappingError::InvalidConfig {
            reason: "resolution".to_string(),
        };
        assert!(e.to_string().contains("resolution"));
    }
}
