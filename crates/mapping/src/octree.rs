//! Global probabilistic octree map (OctoMap style), used by MLS-V3.
//!
//! Log-odds occupancy over a hierarchically subdivided cube: sensor returns
//! raise the log-odds of the endpoint cell, traversed cells are lowered
//! (free-space carving), values are clamped, and fully-agreeing sibling
//! leaves are pruned back into their parent so large uniform regions cost a
//! single node. Unlike the V2 grid the octree covers the whole mission area
//! and never forgets what it has seen.

use mls_geom::Vec3;
use serde::{Deserialize, Serialize};

use crate::raycast::voxel_traversal;
use crate::{CellState, MappingError, OccupancyQuery};

/// Configuration of the octree map.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OctreeConfig {
    /// Leaf cell edge length, metres.
    pub resolution: f64,
    /// Half-extent of the cubic mapped volume, metres (the cube is centred on
    /// the origin horizontally and starts at z = 0).
    pub half_extent: f64,
    /// Log-odds added for a hit (endpoint).
    pub hit_log_odds: f64,
    /// Log-odds added for a miss (traversed cell).
    pub miss_log_odds: f64,
    /// Log-odds above which a cell is considered occupied.
    pub occupied_threshold: f64,
    /// Log-odds below which a cell is considered free.
    pub free_threshold: f64,
    /// Log-odds clamping bounds (OctoMap's clamping update).
    pub clamp: (f64, f64),
    /// Ignore returns farther than this from the sensor origin, metres.
    pub max_range: f64,
}

impl Default for OctreeConfig {
    fn default() -> Self {
        Self {
            resolution: 0.4,
            half_extent: 128.0,
            hit_log_odds: 0.85,
            miss_log_odds: -0.4,
            // Requires at least two agreeing hits before a cell reads as
            // occupied, so single spurious returns (pose-error artefacts,
            // rain dropouts) do not immediately poison the planning map.
            occupied_threshold: 1.2,
            free_threshold: -0.3,
            clamp: (-2.0, 3.5),
            max_range: 18.0,
        }
    }
}

/// One octree node in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Node {
    /// Child arena indices; 0 means "no child" (index 0 is the root, which is
    /// never a child of anything).
    children: [u32; 8],
    /// Accumulated log-odds.
    log_odds: f32,
    /// `true` once the node (or its collapsed subtree) has been observed.
    observed: bool,
}

impl Node {
    const EMPTY: Node = Node {
        children: [0; 8],
        log_odds: 0.0,
        observed: false,
    };

    fn is_leaf(&self) -> bool {
        self.children.iter().all(|&c| c == 0)
    }
}

/// Probabilistic octree occupancy map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OctreeMap {
    config: OctreeConfig,
    depth: u32,
    /// Number of leaf cells along each axis (2^depth).
    cells_per_axis: u64,
    nodes: Vec<Node>,
    free_list: Vec<u32>,
    inserted_points: u64,
}

impl OctreeMap {
    /// Creates an empty octree.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::InvalidConfig`] for non-positive resolution or
    /// extents, or if the implied depth exceeds 16.
    pub fn new(config: OctreeConfig) -> Result<Self, MappingError> {
        if config.resolution <= 0.0 || config.half_extent <= 0.0 {
            return Err(MappingError::InvalidConfig {
                reason: "resolution and half extent must be positive".to_string(),
            });
        }
        if config.hit_log_odds <= 0.0 || config.miss_log_odds >= 0.0 {
            return Err(MappingError::InvalidConfig {
                reason: "hit log-odds must be positive and miss log-odds negative".to_string(),
            });
        }
        let cells = (2.0 * config.half_extent / config.resolution).ceil();
        let depth = (cells.log2().ceil() as u32).max(1);
        if depth > 16 {
            return Err(MappingError::InvalidConfig {
                reason: format!("depth {depth} exceeds the supported maximum of 16"),
            });
        }
        Ok(Self {
            config,
            depth,
            cells_per_axis: 1u64 << depth,
            nodes: vec![Node::EMPTY],
            free_list: Vec::new(),
            inserted_points: 0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &OctreeConfig {
        &self.config
    }

    /// Tree depth (leaf level).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of live nodes in the arena.
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free_list.len()
    }

    /// Total points inserted so far.
    pub fn inserted_points(&self) -> u64 {
        self.inserted_points
    }

    /// Inserts a point cloud captured from `origin`.
    pub fn insert_cloud(&mut self, origin: Vec3, points: &[Vec3]) {
        // Endpoint cells of this scan: like OctoMap's batch insert, a cell
        // that received a hit in the scan is exempt from the scan's own
        // free-space updates, so a ray grazing past one endpoint cannot erase
        // another endpoint observed a moment earlier.
        let endpoints: std::collections::HashSet<(u64, u64, u64)> = points
            .iter()
            .filter(|p| origin.distance(**p) <= self.config.max_range)
            .filter_map(|p| self.leaf_coordinates(*p))
            .collect();
        for &point in points {
            if origin.distance(point) > self.config.max_range {
                continue;
            }
            for cell in voxel_traversal(origin, point, self.config.resolution) {
                let world = cell.center(self.config.resolution);
                if self
                    .leaf_coordinates(world)
                    .is_some_and(|coords| endpoints.contains(&coords))
                {
                    continue;
                }
                self.update_cell(world, self.config.miss_log_odds);
            }
            self.update_cell(point, self.config.hit_log_odds);
            self.inserted_points += 1;
        }
    }

    /// Marks a single point occupied with one hit update (tests / injection).
    pub fn mark_occupied(&mut self, point: Vec3) {
        // Saturate immediately.
        let saturating = self.config.clamp.1;
        self.update_cell(point, saturating);
    }

    /// Applies a log-odds delta to the leaf containing `point`.
    fn update_cell(&mut self, point: Vec3, delta: f64) {
        let Some((mut ix, mut iy, mut iz)) = self.leaf_coordinates(point) else {
            return;
        };
        // Descend, creating children (and expanding collapsed nodes) as
        // needed, remembering the path for pruning on the way back.
        let mut path = Vec::with_capacity(self.depth as usize);
        let mut node_idx = 0u32;
        for level in (0..self.depth).rev() {
            let octant = (((ix >> level) & 1) << 2 | ((iy >> level) & 1) << 1 | ((iz >> level) & 1))
                as usize;
            path.push((node_idx, octant));
            let node = self.nodes[node_idx as usize];
            if node.is_leaf() && node.observed {
                // Expand a collapsed node: children inherit its value.
                for o in 0..8 {
                    let child = self.allocate(Node {
                        children: [0; 8],
                        log_odds: node.log_odds,
                        observed: true,
                    });
                    self.nodes[node_idx as usize].children[o] = child;
                }
            }
            let child_idx = self.nodes[node_idx as usize].children[octant];
            let child_idx = if child_idx == 0 {
                let child = self.allocate(Node::EMPTY);
                self.nodes[node_idx as usize].children[octant] = child;
                child
            } else {
                child_idx
            };
            node_idx = child_idx;
            // Strip the consumed bit so lower levels see local coordinates.
            ix &= (1 << level) - 1;
            iy &= (1 << level) - 1;
            iz &= (1 << level) - 1;
        }
        let (lo, hi) = self.config.clamp;
        let leaf = &mut self.nodes[node_idx as usize];
        leaf.log_odds = ((leaf.log_odds as f64 + delta).clamp(lo, hi)) as f32;
        leaf.observed = true;

        self.prune_path(&path);
    }

    /// Collapses saturated, agreeing sibling leaves into their parent, from
    /// the deepest level of `path` upwards.
    fn prune_path(&mut self, path: &[(u32, usize)]) {
        for &(parent_idx, _) in path.iter().rev() {
            let parent = self.nodes[parent_idx as usize];
            if parent.children.contains(&0) {
                return;
            }
            let mut state: Option<CellState> = None;
            let mut value = 0.0f32;
            for &child_idx in &parent.children {
                let child = self.nodes[child_idx as usize];
                if !child.is_leaf() || !child.observed {
                    return;
                }
                let child_state = self.classify(child.log_odds as f64, true);
                if child_state == CellState::Unknown {
                    return;
                }
                match state {
                    None => {
                        state = Some(child_state);
                        value = child.log_odds;
                    }
                    Some(s) if s == child_state => {
                        value = if s == CellState::Occupied {
                            value.max(child.log_odds)
                        } else {
                            value.min(child.log_odds)
                        };
                    }
                    _ => return,
                }
            }
            // Collapse.
            for &child_idx in &parent.children {
                self.free_list.push(child_idx);
            }
            let parent = &mut self.nodes[parent_idx as usize];
            parent.children = [0; 8];
            parent.log_odds = value;
            parent.observed = true;
        }
    }

    fn allocate(&mut self, node: Node) -> u32 {
        if let Some(idx) = self.free_list.pop() {
            self.nodes[idx as usize] = node;
            idx
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    /// Integer leaf coordinates of a world point, or `None` outside the map.
    fn leaf_coordinates(&self, point: Vec3) -> Option<(u64, u64, u64)> {
        let h = self.config.half_extent;
        let res = self.config.resolution;
        let rel_x = point.x + h;
        let rel_y = point.y + h;
        let rel_z = point.z;
        if rel_x < 0.0 || rel_y < 0.0 || rel_z < 0.0 {
            return None;
        }
        let ix = (rel_x / res) as u64;
        let iy = (rel_y / res) as u64;
        let iz = (rel_z / res) as u64;
        if ix >= self.cells_per_axis || iy >= self.cells_per_axis || iz >= self.cells_per_axis {
            return None;
        }
        Some((ix, iy, iz))
    }

    fn classify(&self, log_odds: f64, observed: bool) -> CellState {
        if !observed {
            return CellState::Unknown;
        }
        if log_odds >= self.config.occupied_threshold {
            CellState::Occupied
        } else if log_odds <= self.config.free_threshold {
            CellState::Free
        } else {
            CellState::Unknown
        }
    }
}

impl OccupancyQuery for OctreeMap {
    fn resolution(&self) -> f64 {
        self.config.resolution
    }

    fn state_at(&self, point: Vec3) -> CellState {
        let Some((mut ix, mut iy, mut iz)) = self.leaf_coordinates(point) else {
            return CellState::Unknown;
        };
        let mut node_idx = 0u32;
        for level in (0..self.depth).rev() {
            let node = self.nodes[node_idx as usize];
            if node.is_leaf() {
                return self.classify(node.log_odds as f64, node.observed);
            }
            let octant = (((ix >> level) & 1) << 2 | ((iy >> level) & 1) << 1 | ((iz >> level) & 1))
                as usize;
            let child = node.children[octant];
            if child == 0 {
                return CellState::Unknown;
            }
            node_idx = child;
            ix &= (1 << level) - 1;
            iy &= (1 << level) - 1;
            iz &= (1 << level) - 1;
        }
        let node = self.nodes[node_idx as usize];
        self.classify(node.log_odds as f64, node.observed)
    }

    fn memory_bytes(&self) -> usize {
        self.node_count() * std::mem::size_of::<Node>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{VoxelGridConfig, VoxelGridMap};

    fn small_octree() -> OctreeMap {
        OctreeMap::new(OctreeConfig {
            resolution: 0.5,
            half_extent: 32.0,
            ..OctreeConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let cfg = OctreeConfig {
            resolution: 0.0,
            ..OctreeConfig::default()
        };
        assert!(OctreeMap::new(cfg).is_err());
        let cfg = OctreeConfig {
            miss_log_odds: 0.1,
            ..OctreeConfig::default()
        };
        assert!(OctreeMap::new(cfg).is_err());
        let cfg = OctreeConfig {
            resolution: 0.001,
            half_extent: 500.0,
            ..OctreeConfig::default()
        };
        assert!(OctreeMap::new(cfg).is_err(), "depth limit");
    }

    #[test]
    fn unknown_before_any_observation() {
        let tree = small_octree();
        assert_eq!(tree.state_at(Vec3::new(1.0, 1.0, 1.0)), CellState::Unknown);
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn hits_become_occupied_and_rays_become_free() {
        let mut tree = small_octree();
        let origin = Vec3::new(0.0, 0.0, 2.0);
        let hit = Vec3::new(6.0, 0.0, 2.0);
        // Repeated observations saturate the endpoint.
        for _ in 0..3 {
            tree.insert_cloud(origin, &[hit]);
        }
        assert_eq!(tree.state_at(hit), CellState::Occupied);
        assert_eq!(tree.state_at(Vec3::new(3.0, 0.0, 2.0)), CellState::Free);
        assert_eq!(tree.state_at(Vec3::new(0.0, 5.0, 2.0)), CellState::Unknown);
        assert_eq!(tree.inserted_points(), 3);
    }

    #[test]
    fn conflicting_evidence_requires_more_hits_to_flip() {
        let mut tree = small_octree();
        let cell = Vec3::new(2.0, 2.0, 2.0);
        // Many misses drive it solidly free.
        for _ in 0..10 {
            tree.update_cell(cell, tree.config.miss_log_odds);
        }
        assert_eq!(tree.state_at(cell), CellState::Free);
        // A single hit is not enough to flip it back to occupied.
        tree.update_cell(cell, tree.config.hit_log_odds);
        assert_ne!(tree.state_at(cell), CellState::Occupied);
        // Sustained hits eventually do.
        for _ in 0..6 {
            tree.update_cell(cell, tree.config.hit_log_odds);
        }
        assert_eq!(tree.state_at(cell), CellState::Occupied);
    }

    #[test]
    fn log_odds_are_clamped() {
        let mut tree = small_octree();
        let cell = Vec3::new(1.0, 1.0, 1.0);
        for _ in 0..1000 {
            tree.update_cell(cell, tree.config.hit_log_odds);
        }
        // One strong burst of misses flips it back within a bounded number of
        // updates because the log-odds were clamped.
        let mut flips = 0;
        while tree.state_at(cell) == CellState::Occupied && flips < 50 {
            tree.update_cell(cell, tree.config.miss_log_odds);
            flips += 1;
        }
        assert!(
            flips < 30,
            "clamping should bound the flip count, took {flips}"
        );
    }

    #[test]
    fn map_does_not_forget_distant_observations() {
        // Unlike the local grid, the octree keeps obstacles observed long ago
        // and far away — the property that lets V3 plan with global
        // information.
        let mut tree = small_octree();
        let mut grid = VoxelGridMap::new(VoxelGridConfig {
            resolution: 0.5,
            half_extent_xy: 10.0,
            height: 12.0,
            carve_free_space: true,
            max_range: 18.0,
        })
        .unwrap();
        let origin = Vec3::new(0.0, 0.0, 2.0);
        let obstacle = Vec3::new(8.0, 0.0, 2.0);
        for _ in 0..3 {
            tree.insert_cloud(origin, &[obstacle]);
            grid.insert_cloud(origin, &[obstacle]);
        }
        // Vehicle moves 25 m away; the grid recenters and forgets.
        grid.recenter(Vec3::new(25.0, 0.0, 2.0));
        assert_eq!(grid.state_at(obstacle), CellState::Unknown);
        assert_eq!(tree.state_at(obstacle), CellState::Occupied);
    }

    #[test]
    fn pruning_collapses_uniform_regions() {
        let mut tree = small_octree();
        // Saturate a 2x2x2-leaf block (one parent's worth of children) to
        // occupied; pruning should collapse them into the parent.
        let res = tree.config.resolution;
        let base = Vec3::new(4.0, 4.0, 4.0);
        let mut peak_nodes = 0;
        for dz in 0..2 {
            for dy in 0..2 {
                for dx in 0..2 {
                    tree.mark_occupied(
                        base + Vec3::new(dx as f64 * res, dy as f64 * res, dz as f64 * res),
                    );
                    peak_nodes = peak_nodes.max(tree.node_count());
                }
            }
        }
        assert!(
            tree.node_count() < peak_nodes,
            "pruning should reclaim nodes once all eight siblings agree ({} vs peak {peak_nodes})",
            tree.node_count()
        );
        // The collapsed region still reads occupied.
        assert_eq!(tree.state_at(base), CellState::Occupied);
        assert_eq!(tree.state_at(base + Vec3::splat(res)), CellState::Occupied);
    }

    #[test]
    fn octree_uses_less_memory_than_dense_grid_for_sparse_worlds() {
        // The paper's motivation for OctoMap: "granularity and effective
        // memory usage were mutually exclusive" with the dense grid.
        let mut tree = OctreeMap::new(OctreeConfig {
            resolution: 0.4,
            half_extent: 80.0,
            ..OctreeConfig::default()
        })
        .unwrap();
        let mut grid = VoxelGridMap::new(VoxelGridConfig {
            resolution: 0.4,
            half_extent_xy: 80.0,
            height: 40.0,
            carve_free_space: true,
            max_range: 18.0,
        })
        .unwrap();
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let mut points = Vec::new();
        for i in 0..200 {
            let angle = i as f64 * 0.05;
            points.push(Vec3::new(
                10.0 + angle.cos() * 3.0,
                angle.sin() * 3.0,
                2.0 + (i % 5) as f64,
            ));
        }
        tree.insert_cloud(origin, &points);
        grid.insert_cloud(origin, &points);
        assert!(
            tree.memory_bytes() < grid.memory_bytes() / 10,
            "octree {} B vs grid {} B",
            tree.memory_bytes(),
            grid.memory_bytes()
        );
    }

    #[test]
    fn points_outside_the_volume_are_ignored() {
        let mut tree = small_octree();
        tree.insert_cloud(Vec3::new(0.0, 0.0, 2.0), &[Vec3::new(500.0, 0.0, 2.0)]);
        tree.mark_occupied(Vec3::new(0.0, 0.0, -5.0));
        assert_eq!(
            tree.state_at(Vec3::new(500.0, 0.0, 2.0)),
            CellState::Unknown
        );
        assert_eq!(tree.node_count(), 1);
    }
}
