//! Local static voxel-grid map (EGO-Planner style), used by MLS-V2.
//!
//! A dense three-dimensional array of occupancy states centred on the
//! vehicle. Access is O(1), but the window is local: whatever scrolls out of
//! it is forgotten, and space that was never observed stays `Unknown` — both
//! properties behind the V2 failure modes the paper documents.

use mls_geom::Vec3;
use serde::{Deserialize, Serialize};

use crate::raycast::voxel_traversal;
use crate::{CellState, MappingError, OccupancyQuery};

/// Configuration of the local voxel grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoxelGridConfig {
    /// Cell edge length, metres.
    pub resolution: f64,
    /// Horizontal half-extent of the window around its centre, metres.
    pub half_extent_xy: f64,
    /// Vertical extent of the window (from the ground up), metres.
    pub height: f64,
    /// Carve free space along each sensor ray (in addition to marking the
    /// endpoint occupied).
    pub carve_free_space: bool,
    /// Ignore returns farther than this from the sensor origin, metres.
    pub max_range: f64,
}

impl Default for VoxelGridConfig {
    fn default() -> Self {
        Self {
            resolution: 0.4,
            half_extent_xy: 20.0,
            height: 24.0,
            carve_free_space: true,
            max_range: 18.0,
        }
    }
}

/// Dense local occupancy grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoxelGridMap {
    config: VoxelGridConfig,
    nx: usize,
    ny: usize,
    nz: usize,
    /// World position of the window's minimum corner.
    origin: Vec3,
    /// 0 = unknown, 1 = free, 2 = occupied.
    cells: Vec<u8>,
}

const UNKNOWN: u8 = 0;
const FREE: u8 = 1;
const OCCUPIED: u8 = 2;

impl VoxelGridMap {
    /// Creates an all-unknown grid centred on the origin.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::InvalidConfig`] for non-positive resolution or
    /// extents.
    pub fn new(config: VoxelGridConfig) -> Result<Self, MappingError> {
        if config.resolution <= 0.0 {
            return Err(MappingError::InvalidConfig {
                reason: "resolution must be positive".to_string(),
            });
        }
        if config.half_extent_xy <= 0.0 || config.height <= 0.0 {
            return Err(MappingError::InvalidConfig {
                reason: "window extents must be positive".to_string(),
            });
        }
        let nx = (2.0 * config.half_extent_xy / config.resolution).ceil() as usize + 1;
        let ny = nx;
        let nz = (config.height / config.resolution).ceil() as usize + 1;
        Ok(Self {
            nx,
            ny,
            nz,
            origin: Vec3::new(-config.half_extent_xy, -config.half_extent_xy, 0.0),
            cells: vec![UNKNOWN; nx * ny * nz],
            config,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &VoxelGridConfig {
        &self.config
    }

    /// World position of the window centre.
    pub fn center(&self) -> Vec3 {
        self.origin + Vec3::new(self.config.half_extent_xy, self.config.half_extent_xy, 0.0)
    }

    /// Number of cells currently marked occupied.
    pub fn occupied_cells(&self) -> usize {
        self.cells.iter().filter(|&&c| c == OCCUPIED).count()
    }

    /// Number of cells observed (free or occupied).
    pub fn known_cells(&self) -> usize {
        self.cells.iter().filter(|&&c| c != UNKNOWN).count()
    }

    /// Moves the window so it is centred (horizontally) on `center`,
    /// preserving the cells that remain inside the window and forgetting the
    /// rest — the "local obstacle information" limitation of EGO-Planner the
    /// paper calls out.
    pub fn recenter(&mut self, center: Vec3) {
        let new_origin = Vec3::new(
            snap(
                center.x - self.config.half_extent_xy,
                self.config.resolution,
            ),
            snap(
                center.y - self.config.half_extent_xy,
                self.config.resolution,
            ),
            0.0,
        );
        if (new_origin - self.origin).norm() < self.config.resolution * 0.5 {
            return;
        }
        let mut new_cells = vec![UNKNOWN; self.cells.len()];
        let shift_x = ((new_origin.x - self.origin.x) / self.config.resolution).round() as i64;
        let shift_y = ((new_origin.y - self.origin.y) / self.config.resolution).round() as i64;
        for z in 0..self.nz {
            for y in 0..self.ny {
                for x in 0..self.nx {
                    let old_x = x as i64 + shift_x;
                    let old_y = y as i64 + shift_y;
                    if old_x < 0 || old_y < 0 || old_x >= self.nx as i64 || old_y >= self.ny as i64
                    {
                        continue;
                    }
                    let old_idx = (z * self.ny + old_y as usize) * self.nx + old_x as usize;
                    let new_idx = (z * self.ny + y) * self.nx + x;
                    new_cells[new_idx] = self.cells[old_idx];
                }
            }
        }
        self.cells = new_cells;
        self.origin = new_origin;
    }

    /// Inserts a point cloud captured from `origin`: endpoints become
    /// occupied, traversed cells (optionally) become free.
    pub fn insert_cloud(&mut self, origin: Vec3, points: &[Vec3]) {
        for &point in points {
            let distance = origin.distance(point);
            if distance > self.config.max_range {
                continue;
            }
            if self.config.carve_free_space {
                for cell in voxel_traversal(origin, point, self.config.resolution) {
                    let world = cell.center(self.config.resolution);
                    if let Some(idx) = self.index_of(world) {
                        if self.cells[idx] != OCCUPIED {
                            self.cells[idx] = FREE;
                        }
                    }
                }
            }
            if let Some(idx) = self.index_of(point) {
                self.cells[idx] = OCCUPIED;
            }
        }
    }

    /// Marks a single world point occupied (used by tests and failure
    /// injection).
    pub fn mark_occupied(&mut self, point: Vec3) {
        if let Some(idx) = self.index_of(point) {
            self.cells[idx] = OCCUPIED;
        }
    }

    fn index_of(&self, point: Vec3) -> Option<usize> {
        let rel = point - self.origin;
        if rel.x < 0.0 || rel.y < 0.0 || rel.z < 0.0 {
            return None;
        }
        let x = (rel.x / self.config.resolution) as usize;
        let y = (rel.y / self.config.resolution) as usize;
        let z = (rel.z / self.config.resolution) as usize;
        if x >= self.nx || y >= self.ny || z >= self.nz {
            return None;
        }
        Some((z * self.ny + y) * self.nx + x)
    }
}

/// Snaps a coordinate to the voxel lattice.
fn snap(value: f64, resolution: f64) -> f64 {
    (value / resolution).round() * resolution
}

impl OccupancyQuery for VoxelGridMap {
    fn resolution(&self) -> f64 {
        self.config.resolution
    }

    fn state_at(&self, point: Vec3) -> CellState {
        match self.index_of(point).map(|idx| self.cells[idx]) {
            Some(OCCUPIED) => CellState::Occupied,
            Some(FREE) => CellState::Free,
            _ => CellState::Unknown,
        }
    }

    fn memory_bytes(&self) -> usize {
        self.cells.len() * std::mem::size_of::<u8>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> VoxelGridMap {
        VoxelGridMap::new(VoxelGridConfig {
            resolution: 0.5,
            half_extent_xy: 10.0,
            height: 10.0,
            carve_free_space: true,
            max_range: 20.0,
        })
        .unwrap()
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let cfg = VoxelGridConfig {
            resolution: 0.0,
            ..VoxelGridConfig::default()
        };
        assert!(VoxelGridMap::new(cfg).is_err());
        let cfg = VoxelGridConfig {
            height: -1.0,
            ..VoxelGridConfig::default()
        };
        assert!(VoxelGridMap::new(cfg).is_err());
    }

    #[test]
    fn starts_unknown_everywhere() {
        let grid = small_grid();
        assert_eq!(grid.state_at(Vec3::new(0.0, 0.0, 2.0)), CellState::Unknown);
        assert_eq!(grid.known_cells(), 0);
    }

    #[test]
    fn insert_marks_endpoint_occupied_and_ray_free() {
        let mut grid = small_grid();
        let origin = Vec3::new(0.0, 0.0, 2.0);
        let hit = Vec3::new(5.0, 0.0, 2.0);
        grid.insert_cloud(origin, &[hit]);
        assert_eq!(grid.state_at(hit), CellState::Occupied);
        assert_eq!(grid.state_at(Vec3::new(2.5, 0.0, 2.0)), CellState::Free);
        assert_eq!(grid.state_at(Vec3::new(0.0, 3.0, 2.0)), CellState::Unknown);
        assert!(grid.occupied_cells() >= 1);
    }

    #[test]
    fn occupied_endpoint_is_not_overwritten_by_later_rays() {
        let mut grid = small_grid();
        let origin = Vec3::new(0.0, 0.0, 2.0);
        let wall = Vec3::new(4.0, 0.0, 2.0);
        grid.insert_cloud(origin, &[wall]);
        // A later ray passing through the same cell towards a farther point
        // must not erase the occupied mark.
        grid.insert_cloud(origin, &[Vec3::new(8.0, 0.05, 2.0)]);
        assert_eq!(grid.state_at(wall), CellState::Occupied);
    }

    #[test]
    fn points_beyond_max_range_are_ignored() {
        let mut grid = VoxelGridMap::new(VoxelGridConfig {
            max_range: 5.0,
            ..VoxelGridConfig::default()
        })
        .unwrap();
        grid.insert_cloud(Vec3::new(0.0, 0.0, 2.0), &[Vec3::new(10.0, 0.0, 2.0)]);
        assert_eq!(grid.known_cells(), 0);
    }

    #[test]
    fn recenter_preserves_overlap_and_forgets_the_rest() {
        let mut grid = small_grid();
        let origin = Vec3::new(0.0, 0.0, 2.0);
        // An obstacle close by and one near the trailing edge of the window.
        grid.insert_cloud(
            origin,
            &[Vec3::new(4.0, 0.0, 2.0), Vec3::new(-9.0, 0.0, 2.0)],
        );
        assert_eq!(
            grid.state_at(Vec3::new(-9.0, 0.0, 2.0)),
            CellState::Occupied
        );

        // Move the window 12 m forward: the obstacle behind falls outside and
        // is forgotten; the one ahead is preserved.
        grid.recenter(Vec3::new(12.0, 0.0, 2.0));
        assert_eq!(grid.state_at(Vec3::new(4.0, 0.0, 2.0)), CellState::Occupied);
        assert_eq!(grid.state_at(Vec3::new(-9.0, 0.0, 2.0)), CellState::Unknown);
    }

    #[test]
    fn recenter_is_a_noop_for_small_motion() {
        let mut grid = small_grid();
        grid.mark_occupied(Vec3::new(1.0, 1.0, 1.0));
        let before = grid.clone();
        grid.recenter(Vec3::new(0.1, 0.05, 3.0));
        assert_eq!(grid, before);
    }

    #[test]
    fn memory_is_the_dense_array_size() {
        let grid = small_grid();
        // 41 x 41 x 21 cells at 1 byte each.
        assert_eq!(grid.memory_bytes(), 41 * 41 * 21);
    }

    #[test]
    fn inflation_query_reports_nearby_obstacles() {
        let mut grid = small_grid();
        grid.mark_occupied(Vec3::new(3.0, 0.0, 2.0));
        assert!(grid.occupied_within(Vec3::new(2.2, 0.0, 2.0), 1.0, false));
        assert!(!grid.occupied_within(Vec3::new(0.0, 0.0, 2.0), 1.0, false));
    }
}
