//! Voxel ray traversal (Amanatides & Woo DDA), shared by both map types for
//! free-space carving between the sensor origin and each return.

use mls_geom::{Vec3, VoxelIndex};

/// Returns every voxel index crossed by the segment from `from` to `to`
/// (inclusive of the start voxel, exclusive of the end voxel), at the given
/// resolution.
///
/// The endpoint voxel is excluded so callers can mark it occupied separately
/// after carving the traversed cells free.
pub fn voxel_traversal(from: Vec3, to: Vec3, resolution: f64) -> Vec<VoxelIndex> {
    let resolution = resolution.max(1e-6);
    let mut cells = Vec::new();
    let start = VoxelIndex::from_point(from, resolution);
    let end = VoxelIndex::from_point(to, resolution);
    if start == end {
        return cells;
    }

    let direction = to - from;
    let length = direction.norm();
    if length < 1e-12 {
        return cells;
    }
    let dir = direction / length;

    let mut current = start;
    let step_x = if dir.x > 0.0 { 1 } else { -1 };
    let step_y = if dir.y > 0.0 { 1 } else { -1 };
    let step_z = if dir.z > 0.0 { 1 } else { -1 };

    let next_boundary = |index: i32, step: i32| -> f64 {
        if step > 0 {
            (index as f64 + 1.0) * resolution
        } else {
            index as f64 * resolution
        }
    };

    let t_for_axis = |origin: f64, d: f64, boundary: f64| -> f64 {
        if d.abs() < 1e-12 {
            f64::INFINITY
        } else {
            (boundary - origin) / d
        }
    };

    let mut t_max_x = t_for_axis(from.x, dir.x, next_boundary(current.x, step_x));
    let mut t_max_y = t_for_axis(from.y, dir.y, next_boundary(current.y, step_y));
    let mut t_max_z = t_for_axis(from.z, dir.z, next_boundary(current.z, step_z));
    let t_delta_x = if dir.x.abs() < 1e-12 {
        f64::INFINITY
    } else {
        resolution / dir.x.abs()
    };
    let t_delta_y = if dir.y.abs() < 1e-12 {
        f64::INFINITY
    } else {
        resolution / dir.y.abs()
    };
    let t_delta_z = if dir.z.abs() < 1e-12 {
        f64::INFINITY
    } else {
        resolution / dir.z.abs()
    };

    // Generous bound on the number of crossed cells.
    let max_cells = (3.0 * length / resolution).ceil() as usize + 6;
    for _ in 0..max_cells {
        cells.push(current);
        if t_max_x <= t_max_y && t_max_x <= t_max_z {
            current = VoxelIndex::new(current.x + step_x, current.y, current.z);
            t_max_x += t_delta_x;
        } else if t_max_y <= t_max_z {
            current = VoxelIndex::new(current.x, current.y + step_y, current.z);
            t_max_y += t_delta_y;
        } else {
            current = VoxelIndex::new(current.x, current.y, current.z + step_z);
            t_max_z += t_delta_z;
        }
        if current == end {
            break;
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_x_ray_visits_consecutive_cells() {
        let cells = voxel_traversal(
            Vec3::new(0.05, 0.05, 0.05),
            Vec3::new(1.05, 0.05, 0.05),
            0.1,
        );
        assert_eq!(cells.len(), 10);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(*c, VoxelIndex::new(i as i32, 0, 0));
        }
    }

    #[test]
    fn diagonal_ray_is_connected() {
        let cells = voxel_traversal(Vec3::new(0.0, 0.0, 0.0), Vec3::new(2.0, 1.5, 1.0), 0.2);
        assert!(!cells.is_empty());
        for pair in cells.windows(2) {
            let d = pair[0].manhattan_distance(pair[1]);
            assert_eq!(d, 1, "traversal must move one face at a time: {pair:?}");
        }
        // The endpoint cell is excluded.
        let end = VoxelIndex::from_point(Vec3::new(2.0, 1.5, 1.0), 0.2);
        assert!(!cells.contains(&end));
    }

    #[test]
    fn same_cell_returns_empty() {
        assert!(
            voxel_traversal(Vec3::new(0.01, 0.0, 0.0), Vec3::new(0.02, 0.0, 0.0), 0.1).is_empty()
        );
    }

    #[test]
    fn negative_direction_works() {
        let cells = voxel_traversal(
            Vec3::new(1.05, 0.05, 0.05),
            Vec3::new(-0.95, 0.05, 0.05),
            0.1,
        );
        assert!(cells.len() >= 19);
        assert_eq!(cells[0], VoxelIndex::new(10, 0, 0));
        assert!(cells.iter().all(|c| c.y == 0 && c.z == 0));
    }

    #[test]
    fn traversal_starts_at_start_cell() {
        let cells = voxel_traversal(Vec3::new(-0.35, 0.2, 0.0), Vec3::new(0.8, -0.4, 0.3), 0.25);
        assert_eq!(
            cells[0],
            VoxelIndex::from_point(Vec3::new(-0.35, 0.2, 0.0), 0.25)
        );
    }
}
