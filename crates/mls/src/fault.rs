//! Fault-injection hook: the seam through which a dependability campaign
//! perturbs a running mission.
//!
//! The paper's evaluation is a fault-and-stress study — adverse weather,
//! starved compute, sensor drift — but the seed executor could only vary
//! those conditions *between* missions, never inject a fault *into* one.
//! [`FaultHook`] closes that gap: the [`MissionExecutor`](crate::MissionExecutor)
//! consults the hook at three well-defined points of its loop, and a campaign
//! engine (the `mls-campaign` crate) supplies deterministic, seed-driven
//! implementations.
//!
//! The five injection points, in loop order:
//!
//! 1. [`FaultHook::tick`] — once per physics tick, before the vehicle steps.
//!    Returns [`TickFaults`]: a GNSS position bias, an additive wind
//!    disturbance, and a compute-throttle factor.
//! 2. [`FaultHook::pre_mapping`] — once per mapping frame, after the depth
//!    capture but before the cloud is integrated. May corrupt the cloud
//!    (per-point dropout, pose-drift painting): the map genuinely degrades,
//!    reproducing the paper's Fig. 5c mis-painted point clouds.
//! 3. [`FaultHook::pre_detection`] — once per detection frame, after the
//!    camera capture but before the detector runs. May corrupt the image
//!    (marker occlusion): the detector genuinely misses, so the Table II
//!    false-negative statistics see the fault.
//! 4. [`FaultHook::post_detection`] — after the detector, before the
//!    observations reach the decision module. May drop the frame's
//!    observations (pipeline dropout downstream of the detector) or inject
//!    spoofed ones.
//! 5. [`FaultHook::pre_planning`] — once per planning query, before the
//!    planner runs. Returns a search-budget scale in `[0, 1]`: starved
//!    budgets exhaust the bounded A* pool or the RRT* sampling budget,
//!    reproducing the paper's planner-exhaustion failures on demand.

use mls_geom::Vec3;
use mls_sim_uav::PointCloud;
use mls_vision::{GrayImage, MarkerObservation};

/// Per-tick fault effects applied to the vehicle and compute platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickFaults {
    /// Additive bias on every GNSS fix, metres.
    pub gps_bias: Vec3,
    /// Additional wind velocity applied to the airframe, m/s.
    pub wind_disturbance: Vec3,
    /// Compute-capacity factor in `(0, 1]`; `1.0` is the unthrottled
    /// platform, lower values model thermal or power throttling.
    pub compute_throttle: f64,
}

impl TickFaults {
    /// No fault: zero bias, zero disturbance, full compute capacity.
    pub const NONE: TickFaults = TickFaults {
        gps_bias: Vec3::ZERO,
        wind_disturbance: Vec3::ZERO,
        compute_throttle: 1.0,
    };
}

impl Default for TickFaults {
    fn default() -> Self {
        Self::NONE
    }
}

/// A mission-scoped fault injector consulted by the executor.
///
/// Implementations must be deterministic functions of their construction
/// parameters (plan + seed): the executor calls the hook in a fixed order, so
/// any internal RNG consumption replays identically for identical missions.
pub trait FaultHook: Send {
    /// Fault effects for the physics tick at `time` seconds.
    fn tick(&mut self, time: f64) -> TickFaults {
        let _ = time;
        TickFaults::NONE
    }

    /// Invoked on every captured depth cloud before the mapping module
    /// integrates it; may drop or displace points in place.
    fn pre_mapping(&mut self, time: f64, cloud: &mut PointCloud) {
        let _ = (time, cloud);
    }

    /// `true` when this hook's [`FaultHook::pre_mapping`] may ever alter a
    /// cloud. The executor only snapshots pristine clouds for trace
    /// tamper-accounting when this returns `true`, so the six fault kinds
    /// that never touch clouds cost nothing extra while tracing.
    fn corrupts_depth_clouds(&self) -> bool {
        false
    }

    /// Invoked on every captured detection frame before the detector runs;
    /// may mutate the image in place.
    fn pre_detection(&mut self, time: f64, image: &mut GrayImage) {
        let _ = (time, image);
    }

    /// Invoked after the detector; may drop or inject observations.
    fn post_detection(&mut self, time: f64, observations: &mut Vec<MarkerObservation>) {
        let _ = (time, observations);
    }

    /// Invoked before every planning query; the returned scale in `[0, 1]`
    /// multiplies the planner's search budget for that query (`1.0` leaves
    /// it untouched). Models search-budget starvation: a contended or
    /// throttled platform grants the planner fewer expansions per deadline.
    fn pre_planning(&mut self, time: f64) -> f64 {
        let _ = time;
        1.0
    }
}

/// The trivial hook: injects nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFaults;

impl FaultHook for NoFaults {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_neutral() {
        let mut hook = NoFaults;
        let faults = hook.tick(3.0);
        assert_eq!(faults, TickFaults::NONE);
        assert_eq!(faults.compute_throttle, 1.0);
        assert_eq!(TickFaults::default(), TickFaults::NONE);

        let mut image = GrayImage::filled(4, 4, 0.5);
        hook.pre_detection(0.0, &mut image);
        assert!(image.data().iter().all(|&v| (v - 0.5).abs() < 1e-9));

        let mut cloud = PointCloud {
            origin: Vec3::ZERO,
            points: vec![Vec3::new(1.0, 2.0, 3.0)],
            max_range: 18.0,
        };
        hook.pre_mapping(0.0, &mut cloud);
        assert_eq!(cloud.points, vec![Vec3::new(1.0, 2.0, 3.0)]);

        let mut observations = Vec::new();
        hook.post_detection(0.0, &mut observations);
        assert!(observations.is_empty());

        assert_eq!(hook.pre_planning(0.0), 1.0);
    }
}
