//! Aggregation of mission outcomes into the rates the paper's tables report.

use serde::{Deserialize, Serialize};

use crate::executor::{MissionOutcome, MissionResult};
use crate::system::SystemVariant;

/// Aggregate results of a batch of missions for one system variant
/// (one row of Table I / Table III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkSummary {
    /// System variant the batch was flown with.
    pub variant: SystemVariant,
    /// Number of missions aggregated.
    pub missions: usize,
    /// Fraction of missions classified [`MissionResult::Success`].
    pub success_rate: f64,
    /// Fraction classified [`MissionResult::CollisionFailure`].
    pub collision_rate: f64,
    /// Fraction classified [`MissionResult::PoorLanding`].
    pub poor_landing_rate: f64,
    /// Mean horizontal touchdown error over the missions that landed, metres.
    pub mean_landing_error: Option<f64>,
    /// Mean marker-detection position error, metres.
    pub mean_detection_error: Option<f64>,
    /// Detection false-negative rate pooled over all missions (Table II).
    pub false_negative_rate: f64,
    /// Mean CPU utilisation over all missions.
    pub mean_cpu: f64,
    /// Peak memory over all missions, MiB.
    pub peak_memory_mb: f64,
    /// Mean number of planning failures per mission.
    pub mean_planning_failures: f64,
    /// Mean number of landing aborts per mission.
    pub mean_landing_aborts: f64,
}

impl BenchmarkSummary {
    /// Aggregates a batch of outcomes.
    ///
    /// # Panics
    ///
    /// Panics when `outcomes` is empty.
    pub fn from_outcomes(variant: SystemVariant, outcomes: &[MissionOutcome]) -> Self {
        assert!(!outcomes.is_empty(), "cannot summarise zero missions");
        let n = outcomes.len() as f64;
        let count = |result: MissionResult| {
            outcomes.iter().filter(|o| o.result == result).count() as f64 / n
        };

        let landing_errors: Vec<f64> = outcomes.iter().filter_map(|o| o.landing_error).collect();
        let detection_errors: Vec<f64> = outcomes
            .iter()
            .filter_map(|o| o.mean_detection_error)
            .collect();

        let visible: usize = outcomes
            .iter()
            .map(|o| o.detection_stats.visible_frames)
            .sum();
        let missed: usize = outcomes
            .iter()
            .map(|o| o.detection_stats.missed_frames)
            .sum();

        Self {
            variant,
            missions: outcomes.len(),
            success_rate: count(MissionResult::Success),
            collision_rate: count(MissionResult::CollisionFailure),
            poor_landing_rate: count(MissionResult::PoorLanding),
            mean_landing_error: mean(&landing_errors),
            mean_detection_error: mean(&detection_errors),
            false_negative_rate: if visible == 0 {
                0.0
            } else {
                missed as f64 / visible as f64
            },
            mean_cpu: outcomes.iter().map(|o| o.mean_cpu).sum::<f64>() / n,
            peak_memory_mb: outcomes
                .iter()
                .map(|o| o.peak_memory_mb)
                .fold(0.0, f64::max),
            mean_planning_failures: outcomes
                .iter()
                .map(|o| o.planning_failures as f64)
                .sum::<f64>()
                / n,
            mean_landing_aborts: outcomes
                .iter()
                .map(|o| o.landing_aborts as f64)
                .sum::<f64>()
                / n,
        }
    }

    /// Formats the summary as one row of a plain-text table
    /// (`label  success%  collision%  poor-landing%`).
    pub fn table_row(&self) -> String {
        format!(
            "{:<8} {:>7.2}% {:>7.2}% {:>7.2}%",
            self.variant.label(),
            self.success_rate * 100.0,
            self.collision_rate * 100.0,
            self.poor_landing_rate * 100.0,
        )
    }
}

fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection::DetectionStats;

    fn outcome(result: MissionResult, landing_error: Option<f64>) -> MissionOutcome {
        MissionOutcome {
            scenario_id: 0,
            scenario_name: "test".to_string(),
            seed: 0,
            adverse_weather: false,
            variant: SystemVariant::MlsV3,
            result,
            landed: landing_error.is_some(),
            landing_error,
            mean_detection_error: Some(0.2),
            collisions: usize::from(result == MissionResult::CollisionFailure),
            failsafe: None,
            duration: 60.0,
            detection_stats: DetectionStats {
                visible_frames: 10,
                missed_frames: 1,
                false_positive_frames: 0,
                total_frames: 20,
            },
            planning_failures: 1,
            planning_fallbacks: 0,
            landing_aborts: 0,
            mean_cpu: 0.4,
            peak_memory_mb: 2000.0,
            worst_planning_latency: 0.05,
            estimation_error: 0.3,
            gps_drift: 0.2,
        }
    }

    #[test]
    fn rates_sum_to_one_and_match_counts() {
        let outcomes = vec![
            outcome(MissionResult::Success, Some(0.3)),
            outcome(MissionResult::Success, Some(0.4)),
            outcome(MissionResult::CollisionFailure, None),
            outcome(MissionResult::PoorLanding, Some(2.5)),
        ];
        let summary = BenchmarkSummary::from_outcomes(SystemVariant::MlsV3, &outcomes);
        assert_eq!(summary.missions, 4);
        assert!((summary.success_rate - 0.5).abs() < 1e-12);
        assert!((summary.collision_rate - 0.25).abs() < 1e-12);
        assert!((summary.poor_landing_rate - 0.25).abs() < 1e-12);
        assert!(
            (summary.success_rate + summary.collision_rate + summary.poor_landing_rate - 1.0).abs()
                < 1e-12
        );
        let landing = summary.mean_landing_error.unwrap();
        assert!((landing - (0.3 + 0.4 + 2.5) / 3.0).abs() < 1e-12);
        assert!((summary.false_negative_rate - 0.1).abs() < 1e-12);
        assert!(summary.table_row().contains("MLS-V3"));
    }

    #[test]
    #[should_panic(expected = "zero missions")]
    fn empty_batch_panics() {
        let _ = BenchmarkSummary::from_outcomes(SystemVariant::MlsV1, &[]);
    }
}
