//! Marker-detection module: wraps a pixel-space detector and lifts its
//! detections into world-frame observations for the decision-making module.
//!
//! The module also keeps the per-frame event log from which the Table II
//! false-negative rate is computed: for every processed frame the executor
//! tells the module whether the target marker was actually visible, and the
//! module records whether the detector found it.

use mls_geom::Pose;
use mls_vision::{Camera, Detection, GrayImage, MarkerDetector, MarkerObservation};
use serde::{Deserialize, Serialize};

/// One processed frame, for detection-statistics purposes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionEvent {
    /// Simulation time the frame was processed at, seconds.
    pub time: f64,
    /// Whether the target marker was physically inside the camera footprint
    /// and unoccluded enough to be detectable in principle.
    pub target_visible: bool,
    /// Whether the detector reported the target marker id.
    pub target_detected: bool,
    /// Number of detections (any id) in the frame.
    pub detections: usize,
}

/// Aggregate detection statistics (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct DetectionStats {
    /// Frames in which the target was visible.
    pub visible_frames: usize,
    /// Frames in which the target was visible but not detected.
    pub missed_frames: usize,
    /// Frames in which a marker with the wrong id was reported while the
    /// target was not visible (false positives).
    pub false_positive_frames: usize,
    /// Total frames processed.
    pub total_frames: usize,
}

impl DetectionStats {
    /// False-negative rate over the frames where the target was visible.
    pub fn false_negative_rate(&self) -> f64 {
        if self.visible_frames == 0 {
            return 0.0;
        }
        self.missed_frames as f64 / self.visible_frames as f64
    }
}

/// The marker-detection module.
pub struct DetectionModule {
    detector: Box<dyn MarkerDetector>,
    target_id: u32,
    min_confidence: f64,
    events: Vec<DetectionEvent>,
    stats: DetectionStats,
}

impl std::fmt::Debug for DetectionModule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetectionModule")
            .field("detector", &self.detector.name())
            .field("target_id", &self.target_id)
            .field("stats", &self.stats)
            .finish()
    }
}

impl DetectionModule {
    /// Creates the module around a detector looking for `target_id`.
    pub fn new(detector: Box<dyn MarkerDetector>, target_id: u32, min_confidence: f64) -> Self {
        Self {
            detector,
            target_id,
            min_confidence,
            events: Vec::new(),
            stats: DetectionStats::default(),
        }
    }

    /// The detector's report name.
    pub fn detector_name(&self) -> &str {
        self.detector.name()
    }

    /// Relative computational cost of one inference (drives the compute
    /// model).
    pub fn inference_cost(&self) -> f64 {
        self.detector.relative_cost()
    }

    /// The marker id this mission is looking for.
    pub fn target_id(&self) -> u32 {
        self.target_id
    }

    /// Processes one frame and returns world-frame observations, filtered by
    /// confidence and sorted best-first.
    ///
    /// `target_visible` is ground truth supplied by the executor for the
    /// statistics; it does not influence the detector.
    pub fn process_frame(
        &mut self,
        camera: &Camera,
        image: &GrayImage,
        estimated_pose: &Pose,
        ground_z: f64,
        time: f64,
        target_visible: bool,
    ) -> Vec<MarkerObservation> {
        let detections: Vec<Detection> = self.detector.detect(image);
        let observations: Vec<MarkerObservation> = detections
            .iter()
            .filter(|d| d.confidence >= self.min_confidence)
            .filter_map(|d| MarkerObservation::from_detection(camera, estimated_pose, d, ground_z))
            .collect();

        let target_detected = observations.iter().any(|o| o.id == self.target_id);
        let event = DetectionEvent {
            time,
            target_visible,
            target_detected,
            detections: observations.len(),
        };
        self.stats.total_frames += 1;
        if target_visible {
            self.stats.visible_frames += 1;
            if !target_detected {
                self.stats.missed_frames += 1;
            }
        } else if observations.iter().any(|o| o.id == self.target_id) {
            self.stats.false_positive_frames += 1;
        }
        self.events.push(event);
        observations
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> DetectionStats {
        self.stats
    }

    /// Per-frame event log.
    pub fn events(&self) -> &[DetectionEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mls_geom::{Pose, Vec2, Vec3};
    use mls_vision::{
        ClassicalDetector, GroundScene, MarkerDictionary, MarkerPlacement, MarkerRenderer,
    };

    fn frame_with_marker(id: u32) -> (Camera, GrayImage, Pose) {
        let dict = MarkerDictionary::standard();
        let renderer = MarkerRenderer::new(dict);
        let camera = Camera::downward();
        let pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, 8.0), 0.0);
        let scene = GroundScene::new().with_marker(MarkerPlacement::new(id, Vec2::ZERO, 1.5, 0.0));
        let image = renderer.render(&camera, &pose, &scene);
        (camera, image, pose)
    }

    fn module(target: u32) -> DetectionModule {
        DetectionModule::new(
            Box::new(ClassicalDetector::new(MarkerDictionary::standard())),
            target,
            0.2,
        )
    }

    #[test]
    fn detects_target_and_updates_stats() {
        let (camera, image, pose) = frame_with_marker(6);
        let mut module = module(6);
        let obs = module.process_frame(&camera, &image, &pose, 0.0, 1.0, true);
        assert!(obs.iter().any(|o| o.id == 6));
        let stats = module.stats();
        assert_eq!(stats.total_frames, 1);
        assert_eq!(stats.visible_frames, 1);
        assert_eq!(stats.missed_frames, 0);
        assert_eq!(module.events().len(), 1);
        assert!(module.events()[0].target_detected);
    }

    #[test]
    fn missed_visible_target_counts_as_false_negative() {
        let dict = MarkerDictionary::standard();
        let renderer = MarkerRenderer::new(dict);
        let camera = Camera::downward();
        // Empty frame but the executor says the target was visible (e.g. it
        // was occluded by glare): a miss.
        let pose = Pose::from_position_yaw(Vec3::new(0.0, 0.0, 8.0), 0.0);
        let image = renderer.render(&camera, &pose, &GroundScene::new());
        let mut module = module(6);
        let obs = module.process_frame(&camera, &image, &pose, 0.0, 1.0, true);
        assert!(obs.is_empty());
        assert!((module.stats().false_negative_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn confidence_filter_applies() {
        let (camera, image, pose) = frame_with_marker(6);
        let mut strict = DetectionModule::new(
            Box::new(ClassicalDetector::new(MarkerDictionary::standard())),
            6,
            0.999,
        );
        let obs = strict.process_frame(&camera, &image, &pose, 0.0, 1.0, true);
        assert!(
            obs.is_empty(),
            "no detection should clear a 0.999 confidence bar"
        );
        assert_eq!(strict.stats().missed_frames, 1);
    }

    #[test]
    fn non_target_markers_are_reported_but_not_counted_as_target() {
        let (camera, image, pose) = frame_with_marker(9);
        let mut module = module(6);
        let obs = module.process_frame(&camera, &image, &pose, 0.0, 1.0, false);
        assert!(obs.iter().any(|o| o.id == 9));
        assert!(!module.events()[0].target_detected);
        assert_eq!(module.stats().visible_frames, 0);
    }

    #[test]
    fn empty_history_has_zero_false_negative_rate() {
        let module = module(1);
        assert_eq!(module.stats().false_negative_rate(), 0.0);
        assert_eq!(module.detector_name(), "opencv-aruco");
        assert!(module.inference_cost() >= 1.0);
    }
}
