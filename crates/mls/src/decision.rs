//! Decision-making module: the Fig. 2 state machine.
//!
//! The module owns the mission phases — **search** (fly the GPS estimate,
//! then a spiral pattern), **validation** (hover and accumulate detections
//! over multiple frames), **landing** (staged descent that keeps the marker
//! in view and the corridor clear), **final descent** (commit below 1.5 m)
//! — plus the failsafe transitions between them. It deliberately knows
//! nothing about planners or autopilots: it consumes fused observations and
//! the occupancy map, and emits a [`Directive`] the executor translates into
//! trajectories and autopilot commands.

use mls_geom::Vec3;
use mls_mapping::OccupancyQuery;
use mls_planning::safety::{validate_descent_corridor, SafetyVerdict};
use mls_vision::MarkerObservation;
use serde::{Deserialize, Serialize};

use crate::config::LandingConfig;

/// Why the system gave up on the mission (or an attempt).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailsafeReason {
    /// The spiral search exhausted its legs without a validated marker.
    SearchExhausted,
    /// The marker stayed lost for longer than the loss timeout during
    /// descent.
    MarkerLost,
    /// The descent corridor failed its safety check too many times.
    UnsafeDescent,
    /// Planning failed and no fallback was allowed.
    PlanningFailure,
    /// The overall mission timeout elapsed.
    MissionTimeout,
}

/// The mission phase (Fig. 2 states).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DecisionState {
    /// Searching for the marker (GPS estimate, then spiral legs).
    Search,
    /// Hovering and accumulating detections.
    Validation,
    /// Staged descent towards the validated marker.
    Landing,
    /// Committed final descent below the final-descent altitude.
    FinalDescent,
    /// On the ground.
    Landed,
    /// Mission abandoned.
    Failsafe(FailsafeReason),
}

/// What the executor should do right now.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Directive {
    /// Plan and follow a collision-free trajectory to `goal`.
    FlyTo {
        /// Goal position (cruise/search altitude).
        goal: Vec3,
    },
    /// Hold the current position (validation hover).
    Hover,
    /// Plan and follow a descent to `goal` (above the validated marker).
    DescendTo {
        /// Next staged descent waypoint.
        goal: Vec3,
    },
    /// Commit the final descent onto `target` (autopilot land).
    CommitFinalDescent {
        /// Ground-level landing target.
        target: Vec3,
    },
    /// Abort: stop and hold (the mission is over).
    Abort {
        /// Why the failsafe fired.
        reason: FailsafeReason,
    },
    /// The vehicle is down; nothing more to do.
    MissionComplete,
}

/// Everything the decision module sees on one tick.
#[derive(Debug, Clone)]
pub struct DecisionInputs<'a> {
    /// Simulation time, seconds.
    pub time: f64,
    /// Estimated vehicle position.
    pub position: Vec3,
    /// World-frame marker observations produced since the last tick.
    pub observations: &'a [MarkerObservation],
    /// Number of detection frames processed since the last tick (needed to
    /// count validation frames even when nothing was detected).
    pub frames_processed: usize,
    /// `true` once the airframe reports ground contact.
    pub landed: bool,
    /// Ground elevation below the vehicle.
    pub ground_z: f64,
}

/// The decision-making module.
#[derive(Debug, Clone)]
pub struct DecisionModule {
    config: LandingConfig,
    target_id: u32,
    gps_target: Vec3,
    state: DecisionState,
    search_legs: Vec<Vec3>,
    current_leg: usize,
    validation_frames_seen: usize,
    validation_hits: usize,
    validation_positions: Vec<Vec3>,
    validated_target: Option<Vec3>,
    last_marker_seen: Option<f64>,
    landing_aborts: usize,
    mission_start: Option<f64>,
    state_log: Vec<(f64, DecisionState)>,
}

impl DecisionModule {
    /// Creates the module for a mission looking for `target_id` near
    /// `gps_target`.
    pub fn new(config: LandingConfig, target_id: u32, gps_target: Vec3) -> Self {
        let search_legs = Self::build_search_legs(&config, gps_target);
        Self {
            config,
            target_id,
            gps_target,
            state: DecisionState::Search,
            search_legs,
            current_leg: 0,
            validation_frames_seen: 0,
            validation_hits: 0,
            validation_positions: Vec::new(),
            validated_target: None,
            last_marker_seen: None,
            landing_aborts: 0,
            mission_start: None,
            state_log: Vec::new(),
        }
    }

    /// The current state.
    pub fn state(&self) -> DecisionState {
        self.state
    }

    /// The validated marker position, once validation has succeeded.
    pub fn validated_target(&self) -> Option<Vec3> {
        self.validated_target
    }

    /// Number of aborted landing attempts so far.
    pub fn landing_aborts(&self) -> usize {
        self.landing_aborts
    }

    /// Chronological log of state transitions.
    pub fn state_log(&self) -> &[(f64, DecisionState)] {
        &self.state_log
    }

    /// The nominal GPS target the search starts from.
    pub fn gps_target(&self) -> Vec3 {
        self.gps_target
    }

    /// Spiral search legs: the GPS estimate first, then an outward spiral.
    fn build_search_legs(config: &LandingConfig, gps_target: Vec3) -> Vec<Vec3> {
        let mut legs = vec![Vec3::new(
            gps_target.x,
            gps_target.y,
            config.cruise_altitude,
        )];
        let turns = config.max_search_legs.max(1);
        for i in 0..turns {
            let angle = i as f64 * std::f64::consts::FRAC_PI_2 * 1.5;
            let radius = config.search_radius * (i + 1) as f64 / turns as f64;
            legs.push(Vec3::new(
                gps_target.x + angle.cos() * radius,
                gps_target.y + angle.sin() * radius,
                config.cruise_altitude,
            ));
        }
        legs
    }

    fn transition(&mut self, time: f64, state: DecisionState) {
        if self.state != state {
            self.state = state;
            self.state_log.push((time, state));
        }
    }

    /// Best observation of the target marker in this tick's batch.
    fn best_target_observation<'a>(
        &self,
        observations: &'a [MarkerObservation],
    ) -> Option<&'a MarkerObservation> {
        observations
            .iter()
            .filter(|o| {
                o.id == self.target_id && o.confidence >= self.config.min_detection_confidence
            })
            .max_by(|a, b| {
                a.confidence
                    .partial_cmp(&b.confidence)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// Advances the state machine by one decision tick.
    pub fn update(&mut self, inputs: &DecisionInputs<'_>, map: &dyn OccupancyQuery) -> Directive {
        if self.mission_start.is_none() {
            self.mission_start = Some(inputs.time);
            self.state_log.push((inputs.time, self.state));
        }
        let elapsed = inputs.time - self.mission_start.unwrap_or(0.0);
        if elapsed > self.config.mission_timeout
            && !matches!(
                self.state,
                DecisionState::Landed | DecisionState::Failsafe(_)
            )
        {
            self.transition(
                inputs.time,
                DecisionState::Failsafe(FailsafeReason::MissionTimeout),
            );
        }

        let target_observation = self.best_target_observation(inputs.observations).cloned();
        if target_observation.is_some() {
            self.last_marker_seen = Some(inputs.time);
        }

        match self.state {
            DecisionState::Search => {
                if let Some(obs) = &target_observation {
                    // A candidate marker: hover here and validate it.
                    self.validation_frames_seen = 0;
                    self.validation_hits = 1;
                    self.validation_positions = vec![obs.world_position];
                    self.transition(inputs.time, DecisionState::Validation);
                    return Directive::Hover;
                }
                let goal = self.search_legs[self.current_leg.min(self.search_legs.len() - 1)];
                if inputs.position.horizontal_distance(goal) < 1.5
                    && (inputs.position.z - goal.z).abs() < 1.5
                {
                    // Leg reached without a detection: move to the next one.
                    if self.current_leg + 1 >= self.search_legs.len() {
                        self.transition(
                            inputs.time,
                            DecisionState::Failsafe(FailsafeReason::SearchExhausted),
                        );
                        return Directive::Abort {
                            reason: FailsafeReason::SearchExhausted,
                        };
                    }
                    self.current_leg += 1;
                }
                Directive::FlyTo {
                    goal: self.search_legs[self.current_leg],
                }
            }
            DecisionState::Validation => {
                self.validation_frames_seen += inputs.frames_processed;
                if let Some(obs) = &target_observation {
                    self.validation_hits += 1;
                    self.validation_positions.push(obs.world_position);
                }
                if self.validation_frames_seen >= self.config.validation_frames {
                    if self.validation_hits >= self.config.validation_threshold {
                        let mean = self
                            .validation_positions
                            .iter()
                            .fold(Vec3::ZERO, |acc, p| acc + *p)
                            / self.validation_positions.len().max(1) as f64;
                        self.validated_target = Some(Vec3::new(mean.x, mean.y, inputs.ground_z));
                        self.transition(inputs.time, DecisionState::Landing);
                    } else {
                        // Validation failed: resume the search.
                        self.validation_frames_seen = 0;
                        self.validation_hits = 0;
                        self.validation_positions.clear();
                        self.transition(inputs.time, DecisionState::Search);
                    }
                }
                Directive::Hover
            }
            DecisionState::Landing => {
                let Some(mut target) = self.validated_target else {
                    // Should not happen; recover by searching again.
                    self.transition(inputs.time, DecisionState::Search);
                    return Directive::Hover;
                };
                // Refine the target with fresh observations.
                if let Some(obs) = &target_observation {
                    target = Vec3::new(
                        0.7 * target.x + 0.3 * obs.world_position.x,
                        0.7 * target.y + 0.3 * obs.world_position.y,
                        inputs.ground_z,
                    );
                    self.validated_target = Some(target);
                }

                // Marker-loss failsafe.
                let lost_for = self
                    .last_marker_seen
                    .map(|t| inputs.time - t)
                    .unwrap_or(f64::INFINITY);
                if lost_for > self.config.marker_loss_timeout {
                    return self.abort_attempt(inputs.time, FailsafeReason::MarkerLost);
                }

                let altitude_above_ground = inputs.position.z - inputs.ground_z;
                let horizontal_error = inputs.position.horizontal_distance(target);

                // Commit the final descent when low and centred (Fig. 2's
                // "within 1.5 m" gate).
                if altitude_above_ground <= self.config.final_descent_altitude + 0.4
                    && horizontal_error <= 1.5
                {
                    self.transition(inputs.time, DecisionState::FinalDescent);
                    return Directive::CommitFinalDescent { target };
                }

                // Next staged descent waypoint, directly above the target.
                let next_altitude = (altitude_above_ground - self.config.descent_step)
                    .max(self.config.final_descent_altitude);
                let goal = Vec3::new(target.x, target.y, inputs.ground_z + next_altitude);

                // Corridor safety check from the waypoint down to the pad.
                let corridor_from = Vec3::new(target.x, target.y, inputs.position.z.max(goal.z));
                if !validate_descent_corridor(map, corridor_from, target, &self.config.safety)
                    .is_safe()
                {
                    return self.abort_attempt(inputs.time, FailsafeReason::UnsafeDescent);
                }
                if matches!(
                    validate_descent_corridor(map, goal, target, &self.config.safety),
                    SafetyVerdict::CorridorBlocked
                ) {
                    return self.abort_attempt(inputs.time, FailsafeReason::UnsafeDescent);
                }

                Directive::DescendTo { goal }
            }
            DecisionState::FinalDescent => {
                if inputs.landed {
                    self.transition(inputs.time, DecisionState::Landed);
                    return Directive::MissionComplete;
                }
                Directive::CommitFinalDescent {
                    target: self.validated_target.unwrap_or(self.gps_target),
                }
            }
            DecisionState::Landed => Directive::MissionComplete,
            DecisionState::Failsafe(reason) => Directive::Abort { reason },
        }
    }

    /// Notifies the module that planning failed for the current directive
    /// (used by the executor when no fallback exists).
    pub fn notify_planning_failure(&mut self, time: f64) -> Directive {
        match self.state {
            DecisionState::Landing => self.abort_attempt(time, FailsafeReason::PlanningFailure),
            DecisionState::Search | DecisionState::Validation => {
                // Skip the unreachable leg; give up if none remain.
                if self.current_leg + 1 < self.search_legs.len() {
                    self.current_leg += 1;
                    Directive::FlyTo {
                        goal: self.search_legs[self.current_leg],
                    }
                } else {
                    self.transition(
                        time,
                        DecisionState::Failsafe(FailsafeReason::PlanningFailure),
                    );
                    Directive::Abort {
                        reason: FailsafeReason::PlanningFailure,
                    }
                }
            }
            _ => Directive::Abort {
                reason: FailsafeReason::PlanningFailure,
            },
        }
    }

    /// Aborts the current landing attempt; retries by searching again unless
    /// the abort budget is exhausted.
    fn abort_attempt(&mut self, time: f64, reason: FailsafeReason) -> Directive {
        self.landing_aborts += 1;
        if self.landing_aborts > self.config.max_landing_aborts {
            self.transition(time, DecisionState::Failsafe(reason));
            return Directive::Abort { reason };
        }
        // Re-initiate the marker search from the current leg (Fig. 2's
        // "returning to the validation or search state as appropriate").
        self.validation_frames_seen = 0;
        self.validation_hits = 0;
        self.validation_positions.clear();
        self.transition(time, DecisionState::Search);
        Directive::FlyTo {
            goal: self.search_legs[self.current_leg.min(self.search_legs.len() - 1)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::NoMap;
    use mls_geom::Vec2;
    use mls_vision::Detection;

    fn observation(id: u32, position: Vec3, confidence: f64) -> MarkerObservation {
        MarkerObservation {
            id,
            world_position: position,
            confidence,
            apparent_size: 20.0,
            estimated_size: 1.5,
            detection: Detection::from_corners(id, [Vec2::ZERO; 4], confidence),
        }
    }

    fn inputs<'a>(
        time: f64,
        position: Vec3,
        observations: &'a [MarkerObservation],
        frames: usize,
    ) -> DecisionInputs<'a> {
        DecisionInputs {
            time,
            position,
            observations,
            frames_processed: frames,
            landed: false,
            ground_z: 0.0,
        }
    }

    fn module() -> DecisionModule {
        DecisionModule::new(LandingConfig::default(), 7, Vec3::new(40.0, 0.0, 0.0))
    }

    #[test]
    fn starts_by_flying_to_the_gps_estimate() {
        let mut dm = module();
        let directive = dm.update(&inputs(0.0, Vec3::new(0.0, 0.0, 12.0), &[], 0), &NoMap);
        match directive {
            Directive::FlyTo { goal } => {
                assert!((goal.x - 40.0).abs() < 1e-9);
                assert!((goal.z - LandingConfig::default().cruise_altitude).abs() < 1e-9);
            }
            other => panic!("expected FlyTo, got {other:?}"),
        }
        assert_eq!(dm.state(), DecisionState::Search);
    }

    #[test]
    fn spiral_advances_when_legs_are_reached_and_eventually_gives_up() {
        let cfg = LandingConfig {
            max_search_legs: 3,
            ..LandingConfig::default()
        };
        let mut dm = DecisionModule::new(cfg, 7, Vec3::new(40.0, 0.0, 0.0));
        let mut time = 0.0;
        let mut aborted = false;
        // Teleport to each commanded goal until the search gives up.
        let mut position = Vec3::new(40.0, 0.0, 12.0);
        for _ in 0..20 {
            time += 1.0;
            match dm.update(&inputs(time, position, &[], 1), &NoMap) {
                Directive::FlyTo { goal } => position = goal,
                Directive::Abort { reason } => {
                    assert_eq!(reason, FailsafeReason::SearchExhausted);
                    aborted = true;
                    break;
                }
                other => panic!("unexpected directive {other:?}"),
            }
        }
        assert!(aborted, "search must eventually exhaust");
    }

    #[test]
    fn detection_triggers_validation_then_landing() {
        let mut dm = module();
        let marker = Vec3::new(42.0, 1.0, 0.0);
        let obs = [observation(7, marker, 0.9)];
        // First tick with a detection: hover for validation.
        let d = dm.update(&inputs(1.0, Vec3::new(40.0, 0.0, 12.0), &obs, 1), &NoMap);
        assert_eq!(d, Directive::Hover);
        assert_eq!(dm.state(), DecisionState::Validation);
        // Keep seeing the marker for the required frames.
        let mut time = 1.0;
        for _ in 0..LandingConfig::default().validation_frames {
            time += 0.5;
            dm.update(&inputs(time, Vec3::new(40.0, 0.0, 12.0), &obs, 1), &NoMap);
        }
        assert_eq!(dm.state(), DecisionState::Landing);
        let validated = dm.validated_target().expect("target validated");
        assert!(validated.horizontal_distance(marker) < 0.5);
    }

    #[test]
    fn failed_validation_returns_to_search() {
        let mut dm = module();
        let obs = [observation(7, Vec3::new(42.0, 1.0, 0.0), 0.9)];
        dm.update(&inputs(1.0, Vec3::new(40.0, 0.0, 12.0), &obs, 1), &NoMap);
        assert_eq!(dm.state(), DecisionState::Validation);
        // Now the marker disappears for the rest of the validation window.
        let mut time = 1.0;
        for _ in 0..LandingConfig::default().validation_frames {
            time += 0.5;
            dm.update(&inputs(time, Vec3::new(40.0, 0.0, 12.0), &[], 1), &NoMap);
        }
        assert_eq!(dm.state(), DecisionState::Search);
        assert!(dm.validated_target().is_none());
    }

    #[test]
    fn landing_descends_in_stages_and_commits_final_descent() {
        let mut dm = module();
        let marker = Vec3::new(42.0, 1.0, 0.0);
        let obs = [observation(7, marker, 0.9)];
        // Get through validation.
        let mut time = 0.0;
        dm.update(&inputs(time, Vec3::new(40.0, 0.0, 12.0), &obs, 1), &NoMap);
        for _ in 0..LandingConfig::default().validation_frames {
            time += 0.5;
            dm.update(&inputs(time, Vec3::new(40.0, 0.0, 12.0), &obs, 1), &NoMap);
        }
        assert_eq!(dm.state(), DecisionState::Landing);

        // Descend: follow whatever waypoint the module commands.
        let mut position = Vec3::new(42.0, 1.0, 12.0);
        let mut committed = false;
        for _ in 0..20 {
            time += 1.0;
            match dm.update(&inputs(time, position, &obs, 1), &NoMap) {
                Directive::DescendTo { goal } => {
                    assert!(goal.z < position.z + 1e-9, "descent must go down");
                    position = goal;
                }
                Directive::CommitFinalDescent { target } => {
                    assert!(target.horizontal_distance(marker) < 1.0);
                    committed = true;
                    break;
                }
                other => panic!("unexpected directive {other:?}"),
            }
        }
        assert!(committed, "descent should reach the final-descent gate");
        assert_eq!(dm.state(), DecisionState::FinalDescent);

        // Touchdown completes the mission.
        let mut final_inputs = inputs(time + 5.0, Vec3::new(42.0, 1.0, 0.0), &[], 1);
        final_inputs.landed = true;
        assert_eq!(dm.update(&final_inputs, &NoMap), Directive::MissionComplete);
        assert_eq!(dm.state(), DecisionState::Landed);
    }

    #[test]
    fn marker_loss_during_descent_aborts_the_attempt() {
        let cfg = LandingConfig {
            marker_loss_timeout: 2.0,
            max_landing_aborts: 0,
            ..LandingConfig::default()
        };
        let mut dm = DecisionModule::new(cfg, 7, Vec3::new(40.0, 0.0, 0.0));
        let marker = Vec3::new(42.0, 1.0, 0.0);
        let obs = [observation(7, marker, 0.9)];
        let mut time = 0.0;
        dm.update(&inputs(time, Vec3::new(40.0, 0.0, 12.0), &obs, 1), &NoMap);
        for _ in 0..6 {
            time += 0.5;
            dm.update(&inputs(time, Vec3::new(40.0, 0.0, 12.0), &obs, 1), &NoMap);
        }
        assert_eq!(dm.state(), DecisionState::Landing);
        // Marker disappears for longer than the loss timeout.
        let d = dm.update(
            &inputs(time + 5.0, Vec3::new(42.0, 1.0, 10.0), &[], 1),
            &NoMap,
        );
        assert!(matches!(
            d,
            Directive::Abort {
                reason: FailsafeReason::MarkerLost
            }
        ));
    }

    #[test]
    fn mission_timeout_fires_from_any_state() {
        let mut dm = module();
        dm.update(&inputs(0.0, Vec3::new(0.0, 0.0, 12.0), &[], 0), &NoMap);
        let d = dm.update(&inputs(1000.0, Vec3::new(0.0, 0.0, 12.0), &[], 0), &NoMap);
        assert!(matches!(
            d,
            Directive::Abort {
                reason: FailsafeReason::MissionTimeout
            }
        ));
    }

    #[test]
    fn planning_failure_in_search_skips_leg_then_gives_up() {
        let cfg = LandingConfig {
            max_search_legs: 1,
            ..LandingConfig::default()
        };
        let mut dm = DecisionModule::new(cfg, 7, Vec3::new(40.0, 0.0, 0.0));
        dm.update(&inputs(0.0, Vec3::new(0.0, 0.0, 12.0), &[], 0), &NoMap);
        // First failure: skip to the next leg.
        let d = dm.notify_planning_failure(1.0);
        assert!(matches!(d, Directive::FlyTo { .. }));
        // Second failure: nothing left, abort.
        let d = dm.notify_planning_failure(2.0);
        assert!(matches!(
            d,
            Directive::Abort {
                reason: FailsafeReason::PlanningFailure
            }
        ));
    }

    #[test]
    fn low_confidence_observations_are_ignored() {
        let mut dm = module();
        let obs = [observation(7, Vec3::new(42.0, 1.0, 0.0), 0.05)];
        let d = dm.update(&inputs(1.0, Vec3::new(40.0, 0.0, 12.0), &obs, 1), &NoMap);
        assert!(matches!(d, Directive::FlyTo { .. }));
        assert_eq!(dm.state(), DecisionState::Search);
    }

    #[test]
    fn state_log_records_transitions() {
        let mut dm = module();
        let obs = [observation(7, Vec3::new(42.0, 1.0, 0.0), 0.9)];
        dm.update(&inputs(0.0, Vec3::new(40.0, 0.0, 12.0), &[], 0), &NoMap);
        dm.update(&inputs(1.0, Vec3::new(40.0, 0.0, 12.0), &obs, 1), &NoMap);
        let log = dm.state_log();
        assert!(log.iter().any(|(_, s)| *s == DecisionState::Search));
        assert!(log.iter().any(|(_, s)| *s == DecisionState::Validation));
    }
}
