//! Path-planning module: wraps a planner, turns its paths into trajectories,
//! and implements the V2 fallback behaviour the paper describes (when the
//! bounded A* fails, the system "default[s] to unsafe straight-line paths").

use mls_geom::Vec3;
use mls_mapping::OccupancyQuery;
use mls_planning::{Path, PathPlanner, PlanningError, Trajectory, TrajectoryConfig};
use serde::{Deserialize, Serialize};

use crate::MlsError;

/// A trajectory produced by the planning module, annotated with how it was
/// obtained.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannedTrajectory {
    /// The time-parameterised trajectory to follow.
    pub trajectory: Trajectory,
    /// Planner iterations consumed (drives the compute model).
    pub iterations: usize,
    /// `true` when the planner failed and the module fell back to an
    /// unchecked straight line (the documented MLS-V2 behaviour).
    pub used_fallback: bool,
}

/// The path-planning module.
pub struct PlanningModule {
    planner: Box<dyn PathPlanner>,
    fallback_straight_line: bool,
    trajectory_config: TrajectoryConfig,
    plans_attempted: usize,
    plans_failed: usize,
    fallbacks_used: usize,
}

impl std::fmt::Debug for PlanningModule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanningModule")
            .field("planner", &self.planner.name())
            .field("fallback_straight_line", &self.fallback_straight_line)
            .field("plans_attempted", &self.plans_attempted)
            .field("plans_failed", &self.plans_failed)
            .finish()
    }
}

impl PlanningModule {
    /// Creates the module.
    ///
    /// `fallback_straight_line` enables the V2 behaviour of flying an
    /// unchecked straight line when the planner reports failure; V3 aborts
    /// instead (handled by the decision module).
    pub fn new(
        planner: Box<dyn PathPlanner>,
        fallback_straight_line: bool,
        trajectory_config: TrajectoryConfig,
    ) -> Self {
        Self {
            planner,
            fallback_straight_line,
            trajectory_config,
            plans_attempted: 0,
            plans_failed: 0,
            fallbacks_used: 0,
        }
    }

    /// The wrapped planner's name.
    pub fn planner_name(&self) -> &str {
        self.planner.name()
    }

    /// Number of planning queries attempted so far.
    pub fn plans_attempted(&self) -> usize {
        self.plans_attempted
    }

    /// Number of planning queries that failed outright.
    pub fn plans_failed(&self) -> usize {
        self.plans_failed
    }

    /// Number of times the straight-line fallback was used.
    pub fn fallbacks_used(&self) -> usize {
        self.fallbacks_used
    }

    /// Plans a trajectory from `start` to `goal` over `map`.
    ///
    /// # Errors
    ///
    /// Returns [`MlsError::Planning`] when the planner fails and the fallback
    /// is disabled (or the trajectory itself cannot be built).
    pub fn plan(
        &mut self,
        map: &dyn OccupancyQuery,
        start: Vec3,
        goal: Vec3,
    ) -> Result<PlannedTrajectory, MlsError> {
        self.plan_with_budget(map, start, goal, 1.0)
    }

    /// Plans like [`PlanningModule::plan`] but with the planner's search
    /// budget scaled to `budget_scale` in `[0, 1]` for this query — the
    /// mission executor passes the [`FaultHook::pre_planning`] scale through
    /// here, so a starvation fault degrades the actual search, not a proxy.
    ///
    /// The straight-line fallback (and planner) have no bounded budget and
    /// are unaffected, matching the paper: MLS-V1 never plans, so starving
    /// the planner cannot hurt it.
    ///
    /// [`FaultHook::pre_planning`]: crate::FaultHook::pre_planning
    ///
    /// # Errors
    ///
    /// Returns [`MlsError::Planning`] when the planner fails and the fallback
    /// is disabled (or the trajectory itself cannot be built).
    pub fn plan_with_budget(
        &mut self,
        map: &dyn OccupancyQuery,
        start: Vec3,
        goal: Vec3,
        budget_scale: f64,
    ) -> Result<PlannedTrajectory, MlsError> {
        self.plans_attempted += 1;
        self.planner.set_budget_scale(budget_scale);
        match self.planner.plan(map, start, goal) {
            Ok(outcome) => {
                let trajectory = Trajectory::from_path(&outcome.path, self.trajectory_config)
                    .map_err(MlsError::Planning)?;
                Ok(PlannedTrajectory {
                    trajectory,
                    iterations: outcome.iterations,
                    used_fallback: false,
                })
            }
            Err(err) => {
                self.plans_failed += 1;
                if self.fallback_straight_line {
                    self.fallbacks_used += 1;
                    let iterations = match &err {
                        PlanningError::NoPathFound { iterations, .. } => *iterations,
                        _ => 0,
                    };
                    let path = Path::straight_line(start, goal);
                    let trajectory = Trajectory::from_path(&path, self.trajectory_config)
                        .map_err(MlsError::Planning)?;
                    Ok(PlannedTrajectory {
                        trajectory,
                        iterations,
                        used_fallback: true,
                    })
                } else {
                    Err(MlsError::Planning(err))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mls_geom::Vec3;
    use mls_mapping::{VoxelGridConfig, VoxelGridMap};
    use mls_planning::{AStarConfig, AStarPlanner, RrtStarPlanner, StraightLinePlanner};

    fn map_with_huge_wall() -> VoxelGridMap {
        let mut grid = VoxelGridMap::new(VoxelGridConfig {
            resolution: 0.4,
            half_extent_xy: 25.0,
            height: 26.0,
            carve_free_space: false,
            max_range: 100.0,
        })
        .unwrap();
        for y in -60..=60 {
            for z in 0..60 {
                grid.mark_occupied(Vec3::new(10.0, y as f64 * 0.4, z as f64 * 0.4));
            }
        }
        grid
    }

    #[test]
    fn successful_plan_produces_a_trajectory() {
        let grid = VoxelGridMap::new(VoxelGridConfig::default()).unwrap();
        let mut module = PlanningModule::new(
            Box::new(StraightLinePlanner),
            false,
            TrajectoryConfig::default(),
        );
        let planned = module
            .plan(&grid, Vec3::new(0.0, 0.0, 5.0), Vec3::new(10.0, 0.0, 5.0))
            .unwrap();
        assert!(!planned.used_fallback);
        assert!(planned.trajectory.duration() > 0.0);
        assert_eq!(module.plans_attempted(), 1);
        assert_eq!(module.plans_failed(), 0);
    }

    #[test]
    fn v2_falls_back_to_straight_line_when_pool_exhausts() {
        let grid = map_with_huge_wall();
        let mut module = PlanningModule::new(
            Box::new(AStarPlanner::with_config(AStarConfig {
                max_expansions: 800,
                ..AStarConfig::default()
            })),
            true,
            TrajectoryConfig::default(),
        );
        let planned = module
            .plan(&grid, Vec3::new(0.0, 0.0, 5.0), Vec3::new(20.0, 0.0, 5.0))
            .unwrap();
        assert!(
            planned.used_fallback,
            "bounded A* must fail against the wall"
        );
        assert_eq!(module.fallbacks_used(), 1);
        // The fallback path goes straight at the goal — through the wall.
        assert_eq!(planned.trajectory.waypoints().len(), 2);
    }

    #[test]
    fn starved_budget_fails_a_solvable_query_and_full_budget_restores_it() {
        // A wall the default A* pool can route around.
        let mut grid = VoxelGridMap::new(VoxelGridConfig {
            resolution: 0.4,
            half_extent_xy: 25.0,
            height: 26.0,
            carve_free_space: false,
            max_range: 100.0,
        })
        .unwrap();
        for y in -15..=15 {
            for z in 0..20 {
                grid.mark_occupied(Vec3::new(10.0, y as f64 * 0.4, z as f64 * 0.4));
            }
        }
        let mut module = PlanningModule::new(
            Box::new(AStarPlanner::new()),
            false,
            TrajectoryConfig::default(),
        );
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(20.0, 0.0, 5.0);
        module.plan(&grid, start, goal).unwrap();
        let err = module
            .plan_with_budget(&grid, start, goal, 0.01)
            .unwrap_err();
        assert!(matches!(err, MlsError::Planning(_)));
        assert_eq!(module.plans_failed(), 1);
        // `plan` resets the scale to 1.0; the starvation does not stick.
        module.plan(&grid, start, goal).unwrap();
        assert_eq!(module.plans_attempted(), 3);
    }

    #[test]
    fn v3_reports_failure_instead_of_falling_back() {
        let grid = map_with_huge_wall();
        // An RRT* with a tiny budget will fail on the oversized wall.
        let mut module = PlanningModule::new(
            Box::new(RrtStarPlanner::with_config(mls_planning::RrtStarConfig {
                max_iterations: 50,
                ..mls_planning::RrtStarConfig::default()
            })),
            false,
            TrajectoryConfig::default(),
        );
        let err = module
            .plan(&grid, Vec3::new(0.0, 0.0, 5.0), Vec3::new(20.0, 0.0, 5.0))
            .unwrap_err();
        assert!(matches!(err, MlsError::Planning(_)));
        assert_eq!(module.plans_failed(), 1);
        assert_eq!(module.fallbacks_used(), 0);
    }
}
