//! Assembly of the three landing-system generations evaluated in the paper.
//!
//! | Variant  | Detection            | Mapping        | Planning                    |
//! |----------|----------------------|----------------|-----------------------------|
//! | MLS-V1   | classical (OpenCV)   | none           | straight line               |
//! | MLS-V2   | learned (TPH-YOLO)   | local grid     | bounded A* (+ straight-line fallback) |
//! | MLS-V3   | learned (TPH-YOLO)   | global octree  | RRT*                        |

use mls_geom::Vec3;
use mls_planning::{AStarConfig, AStarPlanner, RrtStarConfig, RrtStarPlanner, StraightLinePlanner};
use mls_vision::{ClassicalDetector, LearnedDetector, MarkerDictionary};
use serde::{Deserialize, Serialize};

use crate::config::LandingConfig;
use crate::decision::DecisionModule;
use crate::detection::DetectionModule;
use crate::mapping::{MappingBackend, MappingModule};
use crate::planning::PlanningModule;
use crate::MlsError;

/// The three generations of the marker-based landing system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemVariant {
    /// First generation: OpenCV detection, no obstacle avoidance.
    MlsV1,
    /// Second generation: TPH-YOLO detection, local grid, EGO-Planner-style A*.
    MlsV2,
    /// Third generation: TPH-YOLO detection, OctoMap-style octree, RRT*.
    MlsV3,
}

impl SystemVariant {
    /// All variants in benchmark order.
    pub const ALL: [SystemVariant; 3] = [
        SystemVariant::MlsV1,
        SystemVariant::MlsV2,
        SystemVariant::MlsV3,
    ];

    /// Report label ("MLS-V1").
    pub fn label(self) -> &'static str {
        match self {
            SystemVariant::MlsV1 => "MLS-V1",
            SystemVariant::MlsV2 => "MLS-V2",
            SystemVariant::MlsV3 => "MLS-V3",
        }
    }

    /// Which mapping backend the variant uses.
    pub fn mapping_backend(self) -> MappingBackend {
        match self {
            SystemVariant::MlsV1 => MappingBackend::None,
            SystemVariant::MlsV2 => MappingBackend::LocalGrid,
            SystemVariant::MlsV3 => MappingBackend::GlobalOctree,
        }
    }

    /// `true` when the variant uses the learned (TPH-YOLO surrogate)
    /// detector.
    pub fn uses_learned_detector(self) -> bool {
        !matches!(self, SystemVariant::MlsV1)
    }
}

/// One assembled landing system: all four software modules of Fig. 1.
#[derive(Debug)]
pub struct LandingSystem {
    /// Which generation this is.
    pub variant: SystemVariant,
    /// Marker-detection module.
    pub detection: DetectionModule,
    /// Mapping module.
    pub mapping: MappingModule,
    /// Path-planning module.
    pub planning: PlanningModule,
    /// Decision-making module (Fig. 2 state machine).
    pub decision: DecisionModule,
    /// Mission configuration.
    pub config: LandingConfig,
}

impl LandingSystem {
    /// Assembles a landing system for one mission.
    ///
    /// `target_id` and `gps_target` come from the scenario; `seed` makes the
    /// sampling-based planner deterministic per mission.
    ///
    /// # Errors
    ///
    /// Returns [`MlsError::InvalidConfig`] when the configuration is
    /// inconsistent, or a mapping error if a map rejects its parameters.
    pub fn new(
        variant: SystemVariant,
        dictionary: MarkerDictionary,
        config: LandingConfig,
        target_id: u32,
        gps_target: Vec3,
        seed: u64,
    ) -> Result<Self, MlsError> {
        config.validate()?;

        let detection = if variant.uses_learned_detector() {
            DetectionModule::new(
                Box::new(LearnedDetector::new(dictionary)),
                target_id,
                config.min_detection_confidence,
            )
        } else {
            DetectionModule::new(
                Box::new(ClassicalDetector::new(dictionary)),
                target_id,
                config.min_detection_confidence,
            )
        };

        let mapping = MappingModule::new(variant.mapping_backend()).map_err(MlsError::Mapping)?;

        let planning = match variant {
            SystemVariant::MlsV1 => {
                PlanningModule::new(Box::new(StraightLinePlanner), false, config.trajectory)
            }
            SystemVariant::MlsV2 => PlanningModule::new(
                Box::new(AStarPlanner::with_config(AStarConfig {
                    inflation_radius: config.inflation_radius,
                    ..AStarConfig::default()
                })),
                true,
                config.trajectory,
            ),
            SystemVariant::MlsV3 => PlanningModule::new(
                Box::new(RrtStarPlanner::with_config(RrtStarConfig {
                    inflation_radius: config.inflation_radius,
                    seed,
                    ..RrtStarConfig::default()
                })),
                false,
                config.trajectory,
            ),
        };

        let decision = DecisionModule::new(config.clone(), target_id, gps_target);

        Ok(Self {
            variant,
            detection,
            mapping,
            planning,
            decision,
            config,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_assemble_the_documented_module_mix() {
        let dict = MarkerDictionary::standard();
        let v1 = LandingSystem::new(
            SystemVariant::MlsV1,
            dict.clone(),
            LandingConfig::default(),
            3,
            Vec3::new(40.0, 0.0, 0.0),
            1,
        )
        .unwrap();
        assert_eq!(v1.detection.detector_name(), "opencv-aruco");
        assert!(!v1.mapping.is_enabled());
        assert_eq!(v1.planning.planner_name(), "straight-line");

        let v2 = LandingSystem::new(
            SystemVariant::MlsV2,
            dict.clone(),
            LandingConfig::default(),
            3,
            Vec3::new(40.0, 0.0, 0.0),
            1,
        )
        .unwrap();
        assert_eq!(v2.detection.detector_name(), "tph-yolo-surrogate");
        assert_eq!(v2.mapping.backend(), MappingBackend::LocalGrid);
        assert_eq!(v2.planning.planner_name(), "astar");

        let v3 = LandingSystem::new(
            SystemVariant::MlsV3,
            dict,
            LandingConfig::default(),
            3,
            Vec3::new(40.0, 0.0, 0.0),
            1,
        )
        .unwrap();
        assert_eq!(v3.detection.detector_name(), "tph-yolo-surrogate");
        assert_eq!(v3.mapping.backend(), MappingBackend::GlobalOctree);
        assert_eq!(v3.planning.planner_name(), "rrt-star");
    }

    #[test]
    fn invalid_config_is_rejected_at_assembly() {
        let cfg = LandingConfig {
            validation_frames: 0,
            validation_threshold: 0,
            ..LandingConfig::default()
        };
        let err = LandingSystem::new(
            SystemVariant::MlsV3,
            MarkerDictionary::standard(),
            cfg,
            3,
            Vec3::ZERO,
            1,
        )
        .unwrap_err();
        assert!(matches!(err, MlsError::InvalidConfig { .. }));
    }

    #[test]
    fn variant_labels_are_stable() {
        assert_eq!(SystemVariant::MlsV1.label(), "MLS-V1");
        assert_eq!(SystemVariant::MlsV3.label(), "MLS-V3");
        assert_eq!(SystemVariant::ALL.len(), 3);
        assert!(!SystemVariant::MlsV1.uses_learned_detector());
        assert!(SystemVariant::MlsV2.uses_learned_detector());
    }
}
