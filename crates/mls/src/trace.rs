//! Trace-capture hook: the seam through which a flight recorder observes a
//! running mission.
//!
//! Mirrors [`FaultHook`](crate::FaultHook): the
//! [`MissionExecutor`](crate::MissionExecutor) invokes the sink at each
//! module boundary of its loop, and missions run trace-free (zero cost
//! beyond an `Option` check) when no sink is attached. The `mls-trace` crate
//! provides the ring-buffered [`TraceRecorder`] implementation plus the
//! on-disk format, replay verification and failure triage built on top of
//! this seam.
//!
//! The callbacks, in loop order:
//!
//! 1. [`TraceSink::on_fault`] — the fault effects applied this tick (only
//!    invoked when a fault hook is attached).
//! 2. [`TraceSink::on_tick`] — the physics state after the vehicle stepped.
//! 3. [`TraceSink::on_mapping`] — after a depth cloud was integrated,
//!    including how much of it the `pre_mapping` fault hook tampered with.
//! 4. [`TraceSink::on_observations`] — the detection frame's marker
//!    observations, once before ([`ObservationStage::PreFault`]) and, when a
//!    fault hook is attached, once after ([`ObservationStage::PostFault`])
//!    observation tampering.
//! 5. [`TraceSink::on_directive`] — the decision module's directive for this
//!    decision tick.
//! 6. [`TraceSink::on_plan_request`] / [`TraceSink::on_plan_result`] — around
//!    every planning query.
//! 7. [`TraceSink::on_failsafe`] — when an abort directive ends the mission.
//! 8. [`TraceSink::on_mission_end`] — the final classification.
//!
//! [`TraceRecorder`]: https://docs.rs/mls-trace

use mls_geom::Vec3;
use mls_sim_uav::VehicleState;
use mls_vision::MarkerObservation;
use serde::{Deserialize, Serialize};

use crate::decision::{Directive, FailsafeReason};
use crate::executor::MissionResult;
use crate::fault::TickFaults;

/// Whether an observation batch was captured before or after the fault
/// hook's observation tampering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObservationStage {
    /// Straight out of the detector, before `post_detection` faults.
    PreFault,
    /// After the fault hook possibly dropped or injected observations.
    PostFault,
}

/// A mission-scoped trace consumer the executor feeds at every module
/// boundary.
///
/// All methods default to no-ops so implementations subscribe only to the
/// boundaries they care about. Implementations must not perturb the mission:
/// the executor hands them read-only views, and a recording mission must
/// replay byte-identically with or without a sink attached.
pub trait TraceSink: Send {
    /// Fault effects applied to this physics tick (fault hook attached only).
    fn on_fault(&mut self, time: f64, faults: &TickFaults) {
        let _ = (time, faults);
    }

    /// Physics state after the vehicle stepped.
    ///
    /// `estimated` is the EKF position estimate, `gps_drift` the accumulated
    /// natural GNSS random-walk drift (excluding injected bias) and
    /// `estimation_error` the horizontal distance between the estimated and
    /// true positions — the signal that exposes both silent GPS drift and
    /// injected bias.
    fn on_tick(
        &mut self,
        time: f64,
        state: &VehicleState,
        estimated: Vec3,
        gps_drift: f64,
        estimation_error: f64,
    ) {
        let _ = (time, state, estimated, gps_drift, estimation_error);
    }

    /// A depth cloud was integrated into the map. `dropped` and `displaced`
    /// count points the `pre_mapping` fault hook removed or moved.
    fn on_mapping(&mut self, time: f64, inserted: usize, dropped: usize, displaced: usize) {
        let _ = (time, inserted, dropped, displaced);
    }

    /// A detection frame's marker observations at the given stage.
    fn on_observations(
        &mut self,
        time: f64,
        stage: ObservationStage,
        observations: &[MarkerObservation],
    ) {
        let _ = (time, stage, observations);
    }

    /// The directive the decision module emitted this decision tick.
    fn on_directive(&mut self, time: f64, directive: &Directive) {
        let _ = (time, directive);
    }

    /// A planning query is about to run from `start` to `goal`.
    fn on_plan_request(&mut self, time: f64, start: Vec3, goal: Vec3) {
        let _ = (time, start, goal);
    }

    /// A planning query finished. `fallback` marks the V2 straight-line
    /// fallback; failed queries report zero latency and iterations.
    fn on_plan_result(
        &mut self,
        time: f64,
        success: bool,
        fallback: bool,
        latency: f64,
        iterations: usize,
    ) {
        let _ = (time, success, fallback, latency, iterations);
    }

    /// A failsafe abort ended the mission.
    fn on_failsafe(&mut self, time: f64, reason: FailsafeReason) {
        let _ = (time, reason);
    }

    /// The mission is over with its final classification.
    fn on_mission_end(&mut self, time: f64, result: MissionResult) {
        let _ = (time, result);
    }
}

/// The trivial sink: records nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoTrace;

impl TraceSink for NoTrace {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_trace_accepts_every_callback() {
        let mut sink = NoTrace;
        sink.on_fault(0.0, &TickFaults::NONE);
        let state = VehicleState::grounded(Vec3::ZERO);
        sink.on_tick(0.0, &state, Vec3::ZERO, 0.0, 0.0);
        sink.on_mapping(0.0, 10, 0, 0);
        sink.on_observations(0.0, ObservationStage::PreFault, &[]);
        sink.on_directive(0.0, &Directive::Hover);
        sink.on_plan_request(0.0, Vec3::ZERO, Vec3::new(1.0, 0.0, 5.0));
        sink.on_plan_result(0.0, true, false, 0.1, 40);
        sink.on_failsafe(0.0, FailsafeReason::MissionTimeout);
        sink.on_mission_end(0.0, MissionResult::PoorLanding);
        assert_eq!(
            ObservationStage::PreFault,
            ObservationStage::PreFault,
            "stages compare by value"
        );
        assert_ne!(ObservationStage::PreFault, ObservationStage::PostFault);
    }
}
