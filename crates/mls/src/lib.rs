//! The marker-based autonomous landing system of the paper, assembled from
//! the substrate crates of this workspace.
//!
//! The crate implements the multi-module architecture of Fig. 1: a marker
//! [`DetectionModule`], a [`MappingModule`], a [`PlanningModule`], and the
//! Fig. 2 [`DecisionModule`] state machine, composed into the three system
//! generations the paper evaluates ([`SystemVariant::MlsV1`] /
//! [`SystemVariant::MlsV2`] / [`SystemVariant::MlsV3`]). A
//! [`MissionExecutor`] flies an assembled [`LandingSystem`] through a
//! [`mls_sim_world::Scenario`] on a simulated vehicle and compute platform,
//! producing the [`MissionOutcome`] records the benchmark tables aggregate.
//!
//! # Examples
//!
//! Run MLS-V3 on one benchmark scenario under the SIL (desktop) compute
//! profile:
//!
//! ```no_run
//! use mls_compute::{ComputeModel, ComputeProfile};
//! use mls_core::{ExecutorConfig, LandingConfig, MissionExecutor, SystemVariant};
//! use mls_sim_world::{ScenarioConfig, ScenarioGenerator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenarios = ScenarioGenerator::new(ScenarioConfig { maps: 1, scenarios_per_map: 1, ..Default::default() })
//!     .generate_benchmark(42)?;
//! let compute = ComputeModel::new(ComputeProfile::desktop_sil())?;
//! let executor = MissionExecutor::for_variant(
//!     &scenarios[0],
//!     SystemVariant::MlsV3,
//!     LandingConfig::default(),
//!     compute,
//!     ExecutorConfig::default(),
//!     7,
//! )?;
//! let outcome = executor.run();
//! println!("{:?} landed {:?} m from the marker", outcome.result, outcome.landing_error);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

mod config;
mod decision;
mod detection;
mod executor;
mod fault;
mod mapping;
mod metrics;
mod planning;
mod system;
mod trace;

pub use config::LandingConfig;
pub use decision::{DecisionInputs, DecisionModule, DecisionState, Directive, FailsafeReason};
pub use detection::{DetectionEvent, DetectionModule, DetectionStats};
pub use executor::{ExecutorConfig, MissionExecutor, MissionOutcome, MissionResult};
pub use fault::{FaultHook, NoFaults, TickFaults};
pub use mapping::{MappingBackend, MappingModule, NoMap};
pub use metrics::BenchmarkSummary;
pub use planning::{PlannedTrajectory, PlanningModule};
pub use system::{LandingSystem, SystemVariant};
pub use trace::{NoTrace, ObservationStage, TraceSink};

/// Errors produced by the landing-system crate.
#[derive(Debug)]
#[non_exhaustive]
pub enum MlsError {
    /// A mission or module configuration value was out of range.
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
    /// The mapping substrate rejected its configuration.
    Mapping(mls_mapping::MappingError),
    /// The planning substrate failed.
    Planning(mls_planning::PlanningError),
}

impl fmt::Display for MlsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlsError::InvalidConfig { reason } => {
                write!(f, "invalid landing configuration: {reason}")
            }
            MlsError::Mapping(err) => write!(f, "mapping error: {err}"),
            MlsError::Planning(err) => write!(f, "planning error: {err}"),
        }
    }
}

impl Error for MlsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MlsError::Mapping(err) => Some(err),
            MlsError::Planning(err) => Some(err),
            MlsError::InvalidConfig { .. } => None,
        }
    }
}

impl From<mls_mapping::MappingError> for MlsError {
    fn from(err: mls_mapping::MappingError) -> Self {
        MlsError::Mapping(err)
    }
}

impl From<mls_planning::PlanningError> for MlsError {
    fn from(err: mls_planning::PlanningError) -> Self {
        MlsError::Planning(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync_display_and_sourced() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MlsError>();
        let err = MlsError::InvalidConfig {
            reason: "x".to_string(),
        };
        assert!(err.to_string().contains('x'));
        assert!(err.source().is_none());
        let err: MlsError = mls_planning::PlanningError::InvalidConfig {
            reason: "bad".to_string(),
        }
        .into();
        assert!(err.source().is_some());
        let err: MlsError = mls_mapping::MappingError::InvalidConfig {
            reason: "bad".to_string(),
        }
        .into();
        assert!(err.to_string().contains("mapping"));
    }
}
