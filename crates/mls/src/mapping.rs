//! Mapping module: maintains the occupancy representation used for
//! collision-free planning and for the safety checks.
//!
//! The three system generations differ exactly here: MLS-V1 has no map at
//! all, MLS-V2 keeps a local sliding voxel grid, and MLS-V3 keeps the global
//! probabilistic octree.

use mls_geom::Vec3;
use mls_mapping::{
    CellState, MappingError, OccupancyQuery, OctreeConfig, OctreeMap, VoxelGridConfig, VoxelGridMap,
};
use mls_sim_uav::PointCloud;
use serde::{Deserialize, Serialize};

/// Which occupancy representation the mapping module maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MappingBackend {
    /// No mapping at all (MLS-V1).
    None,
    /// Local sliding voxel grid (MLS-V2).
    LocalGrid,
    /// Global probabilistic octree (MLS-V3).
    GlobalOctree,
}

/// The mapping module.
#[derive(Debug, Clone)]
pub enum MappingModule {
    /// MLS-V1: nothing is mapped; every query reports free space.
    Disabled(NoMap),
    /// MLS-V2: local grid.
    Grid(VoxelGridMap),
    /// MLS-V3: global octree.
    Octree(OctreeMap),
}

/// The "map" of MLS-V1: knows nothing, reports everything as unknown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoMap;

impl OccupancyQuery for NoMap {
    fn resolution(&self) -> f64 {
        1.0
    }
    fn state_at(&self, _point: Vec3) -> CellState {
        CellState::Unknown
    }
    fn memory_bytes(&self) -> usize {
        0
    }
}

impl MappingModule {
    /// Creates the module for a backend with default map parameters.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::InvalidConfig`] when the underlying map
    /// rejects its configuration.
    pub fn new(backend: MappingBackend) -> Result<Self, MappingError> {
        Ok(match backend {
            MappingBackend::None => MappingModule::Disabled(NoMap),
            MappingBackend::LocalGrid => {
                MappingModule::Grid(VoxelGridMap::new(VoxelGridConfig::default())?)
            }
            MappingBackend::GlobalOctree => {
                MappingModule::Octree(OctreeMap::new(OctreeConfig::default())?)
            }
        })
    }

    /// Which backend this module runs.
    pub fn backend(&self) -> MappingBackend {
        match self {
            MappingModule::Disabled(_) => MappingBackend::None,
            MappingModule::Grid(_) => MappingBackend::LocalGrid,
            MappingModule::Octree(_) => MappingBackend::GlobalOctree,
        }
    }

    /// `true` when the module actually maintains occupancy (V2/V3).
    pub fn is_enabled(&self) -> bool {
        !matches!(self, MappingModule::Disabled(_))
    }

    /// Integrates a depth point cloud captured around `vehicle_position`.
    /// Returns the number of points integrated (drives the compute model).
    ///
    /// Returns from the terrain itself (within 0.6 m of `ground_z`) are
    /// dropped before insertion — the ground-segmentation step every real
    /// pipeline performs, without which the flat ground below the vehicle
    /// would fill the map and block every descent corridor. The margin also
    /// absorbs most of the spurious near-ground points that a drifting pose
    /// estimate produces (Fig. 5c); drift beyond it still corrupts the map,
    /// exactly as the paper observed in the field.
    pub fn integrate(
        &mut self,
        vehicle_position: Vec3,
        cloud: &PointCloud,
        ground_z: f64,
    ) -> usize {
        if matches!(self, MappingModule::Disabled(_)) {
            return 0;
        }
        let obstacle_points: Vec<Vec3> = cloud
            .points
            .iter()
            .copied()
            .filter(|p| p.z > ground_z + 0.6)
            .collect();
        match self {
            MappingModule::Disabled(_) => 0,
            MappingModule::Grid(grid) => {
                grid.recenter(vehicle_position);
                grid.insert_cloud(cloud.origin, &obstacle_points);
                obstacle_points.len()
            }
            MappingModule::Octree(tree) => {
                tree.insert_cloud(cloud.origin, &obstacle_points);
                obstacle_points.len()
            }
        }
    }

    /// The occupancy interface handed to the planners and safety checks.
    pub fn as_query(&self) -> &dyn OccupancyQuery {
        match self {
            MappingModule::Disabled(map) => map,
            MappingModule::Grid(map) => map,
            MappingModule::Octree(map) => map,
        }
    }

    /// Approximate memory used by the map storage, bytes.
    pub fn memory_bytes(&self) -> usize {
        self.as_query().memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud_with_wall() -> PointCloud {
        let mut points = Vec::new();
        for y in -10..=10 {
            for z in 1..10 {
                points.push(Vec3::new(10.0, y as f64 * 0.4, z as f64 * 0.4));
            }
        }
        PointCloud {
            origin: Vec3::new(0.0, 0.0, 3.0),
            points,
            max_range: 18.0,
        }
    }

    #[test]
    fn disabled_backend_maps_nothing() {
        let mut module = MappingModule::new(MappingBackend::None).unwrap();
        assert_eq!(module.integrate(Vec3::ZERO, &cloud_with_wall(), 0.0), 0);
        assert_eq!(
            module.as_query().state_at(Vec3::new(10.0, 0.0, 2.0)),
            CellState::Unknown
        );
        assert_eq!(module.memory_bytes(), 0);
        assert!(!module.is_enabled());
        assert_eq!(module.backend(), MappingBackend::None);
    }

    #[test]
    fn grid_and_octree_integrate_clouds() {
        for backend in [MappingBackend::LocalGrid, MappingBackend::GlobalOctree] {
            let mut module = MappingModule::new(backend).unwrap();
            let inserted = module.integrate(Vec3::new(0.0, 0.0, 3.0), &cloud_with_wall(), 0.0);
            assert!(inserted > 100);
            assert!(module.is_enabled());
            // After repeated observations the wall is occupied in the map.
            for _ in 0..3 {
                module.integrate(Vec3::new(0.0, 0.0, 3.0), &cloud_with_wall(), 0.0);
            }
            assert_eq!(
                module.as_query().state_at(Vec3::new(10.0, 0.0, 2.0)),
                CellState::Occupied,
                "{backend:?} should mark the wall occupied"
            );
            assert!(module.memory_bytes() > 0);
        }
    }

    #[test]
    fn grid_forgets_after_recentering_octree_does_not() {
        let mut grid = MappingModule::new(MappingBackend::LocalGrid).unwrap();
        let mut octree = MappingModule::new(MappingBackend::GlobalOctree).unwrap();
        for module in [&mut grid, &mut octree] {
            for _ in 0..3 {
                module.integrate(Vec3::new(0.0, 0.0, 3.0), &cloud_with_wall(), 0.0);
            }
        }
        // Vehicle flies 60 m away; mapping keeps being updated with empty
        // clouds around the new position.
        let empty = PointCloud::empty(Vec3::new(60.0, 0.0, 3.0), 18.0);
        grid.integrate(Vec3::new(60.0, 0.0, 3.0), &empty, 0.0);
        octree.integrate(Vec3::new(60.0, 0.0, 3.0), &empty, 0.0);
        assert_eq!(
            grid.as_query().state_at(Vec3::new(10.0, 0.0, 2.0)),
            CellState::Unknown
        );
        assert_eq!(
            octree.as_query().state_at(Vec3::new(10.0, 0.0, 2.0)),
            CellState::Occupied
        );
    }
}
