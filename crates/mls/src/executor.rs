//! Mission executor: drives one scenario end to end.
//!
//! The executor mirrors the runtime architecture of Fig. 1/Fig. 3: physics
//! and the flight controller tick at 50 Hz; the mapping, detection and
//! decision modules run at their own (lower) rates; planning runs on demand;
//! and every module invocation is charged to the [`ComputeModel`], whose
//! latencies delay when a freshly planned trajectory actually takes effect —
//! the mechanism behind the HIL collision increase the paper reports.

use std::time::Instant;

use mls_compute::{ComputeModel, TaskKind, WorkloadModel};
use mls_geom::Vec3;
use mls_planning::Trajectory;
use mls_sim_uav::{Uav, UavConfig};
use mls_sim_world::Scenario;
use mls_vision::{MarkerDictionary, MarkerObservation};
use serde::{Deserialize, Serialize};

use crate::decision::{Directive, FailsafeReason};
use crate::detection::DetectionStats;
use crate::fault::{FaultHook, TickFaults};
use crate::system::{LandingSystem, SystemVariant};
use crate::trace::{ObservationStage, TraceSink};
use crate::MlsError;

/// Cached obs instruments: registry lookups take a mutex, so the mission
/// loop resolves each histogram once per process through a `OnceLock`.
mod instruments {
    macro_rules! cached_seconds_histogram {
        ($fn_name:ident, $metric:literal) => {
            pub fn $fn_name() -> &'static std::sync::Arc<mls_obs::Histogram> {
                static CELL: std::sync::OnceLock<std::sync::Arc<mls_obs::Histogram>> =
                    std::sync::OnceLock::new();
                CELL.get_or_init(|| mls_obs::histogram($metric, mls_obs::SECONDS_BUCKETS))
            }
        };
    }

    cached_seconds_histogram!(control_seconds, "mls_phase_control_seconds");
    cached_seconds_histogram!(mapping_seconds, "mls_phase_mapping_seconds");
    cached_seconds_histogram!(perception_seconds, "mls_phase_perception_seconds");
    cached_seconds_histogram!(planning_seconds, "mls_phase_planning_seconds");
    cached_seconds_histogram!(decision_seconds, "mls_phase_decision_seconds");
    cached_seconds_histogram!(mission_wall_seconds, "mls_mission_wall_seconds");
}

/// Real wall-clock spent in each mission phase, accumulated only while
/// observability is on. These measurements feed the obs histograms and the
/// mission-end `mission_phases` event exclusively — the report fields
/// (`mean_cpu`, `peak_memory_mb`) stay on the deterministic [`ComputeModel`]
/// simulation, which is what keeps reports byte-identical with obs on or
/// off.
#[derive(Debug, Default, Clone, Copy)]
struct PhaseBudget {
    control: f64,
    mapping: f64,
    perception: f64,
    planning: f64,
    decision: f64,
    ticks: u64,
}

impl PhaseBudget {
    /// Adds `started`'s elapsed time to `slot` when phase timing is active.
    fn charge(slot: &mut f64, started: Option<Instant>) {
        if let Some(started) = started {
            *slot += started.elapsed().as_secs_f64();
        }
    }
}

/// Stable lowercase label for a mission result, used in obs event fields.
fn result_label(result: MissionResult) -> &'static str {
    match result {
        MissionResult::Success => "success",
        MissionResult::CollisionFailure => "collision",
        MissionResult::PoorLanding => "poor_landing",
    }
}

/// Final classification of one mission (the Table I categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MissionResult {
    /// Landed within the success radius of the true marker, no collision.
    Success,
    /// The airframe hit an obstacle (or the ground at speed).
    CollisionFailure,
    /// Everything else: aborted attempts, timeouts, landings far from the
    /// marker — the paper's "failure due to poor landing" bucket.
    PoorLanding,
}

/// Everything recorded about one mission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissionOutcome {
    /// Scenario identifier.
    pub scenario_id: usize,
    /// Scenario name.
    pub scenario_name: String,
    /// The seed the mission ran under, so outcomes, report rows and trace
    /// files can be correlated without re-deriving the seed schedule.
    pub seed: u64,
    /// Whether the scenario counts as adverse weather.
    pub adverse_weather: bool,
    /// System generation flown.
    pub variant: SystemVariant,
    /// Final classification.
    pub result: MissionResult,
    /// `true` if the vehicle ended on the ground (softly).
    pub landed: bool,
    /// Horizontal distance between the touchdown point and the true marker,
    /// metres (when landed).
    pub landing_error: Option<f64>,
    /// Mean horizontal error of target-marker observations versus the true
    /// marker position, metres (Table I metric 1).
    pub mean_detection_error: Option<f64>,
    /// Number of obstacle collisions (the mission stops at the first).
    pub collisions: usize,
    /// Failsafe that ended the mission, if any.
    pub failsafe: Option<FailsafeReason>,
    /// Mission duration, seconds.
    pub duration: f64,
    /// Detection-module statistics (Table II).
    pub detection_stats: DetectionStats,
    /// Planning failures encountered.
    pub planning_failures: usize,
    /// Straight-line fallbacks used (V2 behaviour).
    pub planning_fallbacks: usize,
    /// Landing attempts aborted by the decision module.
    pub landing_aborts: usize,
    /// Mean CPU utilisation on the compute platform.
    pub mean_cpu: f64,
    /// Peak memory on the compute platform, MiB.
    pub peak_memory_mb: f64,
    /// Worst planning latency observed, seconds.
    pub worst_planning_latency: f64,
    /// Final EKF position error, metres.
    pub estimation_error: f64,
    /// Final accumulated GNSS drift, metres.
    pub gps_drift: f64,
}

/// Configuration of the mission executor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutorConfig {
    /// Vehicle configuration.
    pub uav: UavConfig,
    /// Landing success radius: touchdown within this distance of the true
    /// marker counts as success, metres.
    pub success_radius: f64,
    /// Hard cap on wall-clock mission duration, seconds (safety net above the
    /// decision module's own timeout).
    pub max_duration: f64,
    /// Workload → reference-cost exchange rates.
    pub workload: WorkloadModel,
    /// Maximum range at which the target marker counts as "visible" for the
    /// detection statistics, metres.
    pub visibility_range: f64,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self {
            uav: UavConfig::default(),
            success_radius: 1.0,
            max_duration: 300.0,
            workload: WorkloadModel::default(),
            visibility_range: 22.0,
        }
    }
}

/// Drives one landing system through one scenario.
pub struct MissionExecutor {
    scenario: Scenario,
    /// True marker position, resolved (and validated) at construction so the
    /// mission loop never has to handle a target-less scenario.
    true_target: Vec3,
    system: LandingSystem,
    uav: Uav,
    compute: ComputeModel,
    config: ExecutorConfig,
    seed: u64,
    fault_hook: Option<Box<dyn FaultHook>>,
    trace_sink: Option<Box<dyn TraceSink>>,
}

impl MissionExecutor {
    /// Builds an executor for a scenario.
    ///
    /// # Errors
    ///
    /// Returns an error when the landing-system configuration is invalid or
    /// the scenario carries no target marker.
    pub fn new(
        scenario: &Scenario,
        system: LandingSystem,
        compute: ComputeModel,
        config: ExecutorConfig,
        seed: u64,
    ) -> Result<Self, MlsError> {
        let true_target = scenario
            .true_target()
            .map_err(|err| MlsError::InvalidConfig {
                reason: err.to_string(),
            })?;
        let uav = Uav::new(
            config.uav.clone(),
            scenario.weather.clone(),
            scenario.start,
            MarkerDictionary::standard(),
            seed,
        );
        Ok(Self {
            scenario: scenario.clone(),
            true_target,
            system,
            uav,
            compute,
            config,
            seed,
            fault_hook: None,
            trace_sink: None,
        })
    }

    /// Attaches a fault injector the mission loop consults every tick (see
    /// [`FaultHook`] for the injection points). Missions run fault-free when
    /// no hook is attached.
    #[must_use]
    pub fn with_fault_hook(mut self, hook: Box<dyn FaultHook>) -> Self {
        self.fault_hook = Some(hook);
        self
    }

    /// Attaches a flight recorder the mission loop feeds at every module
    /// boundary (see [`TraceSink`] for the callbacks). Missions run
    /// trace-free when no sink is attached.
    #[must_use]
    pub fn with_trace_sink(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.trace_sink = Some(sink);
        self
    }

    /// Convenience constructor: assembles the named system variant with the
    /// given landing configuration for the scenario.
    ///
    /// # Errors
    ///
    /// Returns an error when the landing-system configuration is invalid.
    pub fn for_variant(
        scenario: &Scenario,
        variant: SystemVariant,
        landing_config: crate::LandingConfig,
        compute: ComputeModel,
        config: ExecutorConfig,
        seed: u64,
    ) -> Result<Self, MlsError> {
        let system = LandingSystem::new(
            variant,
            MarkerDictionary::standard(),
            landing_config,
            scenario.target_marker_id,
            Vec3::new(scenario.gps_target.x, scenario.gps_target.y, 0.0),
            seed,
        )?;
        Self::new(scenario, system, compute, config, seed)
    }

    /// Read-only access to the compute model (trace inspection).
    pub fn compute(&self) -> &ComputeModel {
        &self.compute
    }

    /// Read-only access to the landing system.
    pub fn system(&self) -> &LandingSystem {
        &self.system
    }

    /// Runs the mission to completion and returns the outcome.
    pub fn run(self) -> MissionOutcome {
        self.run_with_compute().0
    }

    /// Runs the mission and also returns the compute model, whose recorded
    /// utilisation trace backs the Fig. 7 reproduction.
    pub fn run_with_compute(mut self) -> (MissionOutcome, ComputeModel) {
        let dt = self.uav.physics_dt();
        let world = self.scenario.map.clone();
        let ground_z = world.ground_z;
        let true_target = self.true_target;
        let vehicle_radius = self.config.uav.airframe.radius;

        // Phase timing is sampled only while obs is on: `Instant::now` never
        // runs otherwise, and none of the measurements below feed back into
        // the simulation.
        let observing = mls_obs::enabled();
        let mission_started = observing.then(Instant::now);
        let mut budget = PhaseBudget::default();

        // Memory residency of the modules (drives the compute model's memory
        // trace): detector weights, map storage, image buffers.
        let detector_memory = if self.system.variant.uses_learned_detector() {
            820.0
        } else {
            90.0
        };
        self.compute
            .set_resident_memory(TaskKind::MarkerDetection, detector_memory);
        self.compute
            .set_resident_memory(TaskKind::CameraPipeline, 250.0);
        self.compute
            .set_resident_memory(TaskKind::StateEstimation, 120.0);
        self.compute
            .set_resident_memory(TaskKind::DecisionMaking, 40.0);

        // Take off before the mission modules start (the paper's missions
        // begin with a climb from the origin).
        self.uav
            .autopilot_mut()
            .arm_and_takeoff(self.system.config.cruise_altitude);
        let mut time = 0.0;
        let takeoff_started = observing.then(Instant::now);
        while time < 30.0 {
            self.uav.step(&world);
            time = self.uav.time();
            if matches!(self.uav.autopilot().mode(), mls_sim_uav::FlightMode::Hold) {
                break;
            }
        }
        PhaseBudget::charge(&mut budget.control, takeoff_started);

        let mut next_detection = time;
        let mut next_mapping = time;
        let mut next_decision = time;
        let mut last_replan = f64::NEG_INFINITY;

        let mut pending_observations: Vec<MarkerObservation> = Vec::new();
        let mut frames_since_decision = 0usize;
        let mut detection_errors: Vec<f64> = Vec::new();

        let mut directive = Directive::Hover;
        let mut active_trajectory: Option<(Trajectory, f64)> = None;
        let mut pending_trajectory: Option<(Trajectory, f64)> = None;
        let mut worst_planning_latency = 0.0f64;

        let mut collisions = 0usize;
        let mut failsafe: Option<FailsafeReason> = None;
        let mut hard_impact = false;

        while time < self.config.max_duration {
            if let Some(hook) = self.fault_hook.as_mut() {
                let faults: TickFaults = hook.tick(time);
                self.uav.set_gps_bias(faults.gps_bias);
                self.uav.set_wind_disturbance(faults.wind_disturbance);
                self.compute.set_throttle(faults.compute_throttle);
                if let Some(sink) = self.trace_sink.as_mut() {
                    sink.on_fault(time, &faults);
                }
            }
            self.compute.begin_tick(dt);
            if observing {
                budget.ticks += 1;
            }
            let control_started = observing.then(Instant::now);
            let state = self.uav.step(&world);
            PhaseBudget::charge(&mut budget.control, control_started);
            time = self.uav.time();
            if let Some(sink) = self.trace_sink.as_mut() {
                sink.on_tick(
                    time,
                    &state,
                    self.uav.estimated_pose().position,
                    self.uav.gps_drift().norm(),
                    self.uav.estimation_error(),
                );
            }
            self.compute.submit(
                TaskKind::StateEstimation,
                self.config.workload.estimation_tick,
            );

            // Collision check against obstacles (the ground is handled by the
            // landing logic).
            if !state.landed
                && world
                    .obstacles
                    .iter()
                    .any(|o| o.distance_to(state.position) < vehicle_radius)
            {
                collisions += 1;
                break;
            }
            // Hard ground contact (fast descent into terrain).
            if state.position.z <= ground_z + 1e-9 && !state.landed {
                hard_impact = true;
                break;
            }

            let estimated_pose = self.uav.estimated_pose();

            // Mapping module.
            if self.system.mapping.is_enabled() && time >= next_mapping {
                let mapping_started = observing.then(Instant::now);
                next_mapping = time + 1.0 / self.system.config.mapping_rate_hz;
                let mut cloud = self.uav.capture_depth(&world);
                // The pristine cloud is snapshotted for trace
                // tamper-accounting only when a recorder is attached AND the
                // hook can actually corrupt clouds — every other fault kind
                // maps at full speed while tracing.
                let pristine = match (&self.fault_hook, &self.trace_sink) {
                    (Some(hook), Some(_)) if hook.corrupts_depth_clouds() => {
                        Some(cloud.points.clone())
                    }
                    _ => None,
                };
                if let Some(hook) = self.fault_hook.as_mut() {
                    hook.pre_mapping(time, &mut cloud);
                }
                let (dropped, displaced) = pristine
                    .map(|before| cloud_tampering(&before, &cloud.points))
                    .unwrap_or((0, 0));
                let inserted =
                    self.system
                        .mapping
                        .integrate(estimated_pose.position, &cloud, ground_z);
                if let Some(sink) = self.trace_sink.as_mut() {
                    sink.on_mapping(time, inserted, dropped, displaced);
                }
                self.compute.submit(
                    TaskKind::Mapping,
                    self.config.workload.mapping_cost(inserted),
                );
                self.compute.set_resident_memory(
                    TaskKind::Mapping,
                    80.0 + self.system.mapping.memory_bytes() as f64 / (1024.0 * 1024.0),
                );
                PhaseBudget::charge(&mut budget.mapping, mapping_started);
            }

            // Detection module.
            if time >= next_detection {
                let perception_started = observing.then(Instant::now);
                next_detection = time + 1.0 / self.system.config.detection_rate_hz;
                let mut image = self.uav.capture_image(&world);
                if let Some(hook) = self.fault_hook.as_mut() {
                    hook.pre_detection(time, &mut image);
                }
                let faulted = self.fault_hook.is_some();
                let true_pose = self.uav.true_state().pose();
                let target_visible = self
                    .uav
                    .downward_camera()
                    .project_world_point(&true_pose, true_target)
                    .map(|px| self.uav.downward_camera().intrinsics.in_bounds(px))
                    .unwrap_or(false)
                    && true_pose.position.distance(true_target) <= self.config.visibility_range;
                let mut observations = self.system.detection.process_frame(
                    self.uav.downward_camera(),
                    &image,
                    &estimated_pose,
                    ground_z,
                    time,
                    target_visible,
                );
                if let Some(sink) = self.trace_sink.as_mut() {
                    sink.on_observations(time, ObservationStage::PreFault, &observations);
                }
                if let Some(hook) = self.fault_hook.as_mut() {
                    hook.post_detection(time, &mut observations);
                }
                if faulted {
                    if let Some(sink) = self.trace_sink.as_mut() {
                        sink.on_observations(time, ObservationStage::PostFault, &observations);
                    }
                }
                for obs in &observations {
                    if obs.id == self.scenario.target_marker_id {
                        detection_errors.push(obs.world_position.horizontal_distance(true_target));
                    }
                }
                pending_observations.extend(observations);
                frames_since_decision += 1;
                self.compute.submit(
                    TaskKind::MarkerDetection,
                    self.config
                        .workload
                        .detection_cost(self.system.detection.inference_cost()),
                );
                self.compute.submit(
                    TaskKind::CameraPipeline,
                    self.config.workload.camera_per_frame,
                );
                PhaseBudget::charge(&mut budget.perception, perception_started);
            }

            // Decision module.
            if time >= next_decision {
                next_decision = time + 1.0 / self.system.config.decision_rate_hz;
                let decision_inputs = crate::decision::DecisionInputs {
                    time,
                    position: estimated_pose.position,
                    observations: &pending_observations,
                    frames_processed: frames_since_decision,
                    landed: state.landed,
                    ground_z,
                };
                let decision_started = observing.then(Instant::now);
                let new_directive = self
                    .system
                    .decision
                    .update(&decision_inputs, self.system.mapping.as_query());
                PhaseBudget::charge(&mut budget.decision, decision_started);
                pending_observations.clear();
                frames_since_decision = 0;
                self.compute
                    .submit(TaskKind::DecisionMaking, self.config.workload.decision_tick);

                // A goal counts as "changed" only when it moved appreciably;
                // the staged-descent goal drifts a few centimetres every tick
                // as the target estimate is refined, and replanning at the
                // decision rate for that would swamp the planner (and, on the
                // Jetson profile, the whole CPU).
                let goal_changed =
                    match (directive_goal(&new_directive), directive_goal(&directive)) {
                        (Some(new), Some(old)) => new.distance(old) > 0.75,
                        (new, old) => new.is_some() != old.is_some(),
                    };
                directive = new_directive;
                if let Some(sink) = self.trace_sink.as_mut() {
                    sink.on_directive(time, &directive);
                }

                match &directive {
                    Directive::FlyTo { goal } | Directive::DescendTo { goal } => {
                        let need_replan = goal_changed
                            || active_trajectory.is_none() && pending_trajectory.is_none()
                            || time - last_replan > self.system.config.replan_interval;
                        if need_replan {
                            last_replan = time;
                            if let Some(sink) = self.trace_sink.as_mut() {
                                sink.on_plan_request(time, estimated_pose.position, *goal);
                            }
                            // Planner-starvation seam: the hook may scale
                            // this query's search budget down.
                            let budget_scale = self
                                .fault_hook
                                .as_mut()
                                .map_or(1.0, |hook| hook.pre_planning(time));
                            let planning_started = observing.then(Instant::now);
                            let planned = self.system.planning.plan_with_budget(
                                self.system.mapping.as_query(),
                                estimated_pose.position,
                                *goal,
                                budget_scale,
                            );
                            PhaseBudget::charge(&mut budget.planning, planning_started);
                            match planned {
                                Ok(planned) => {
                                    let outcome = self.compute.submit(
                                        TaskKind::PathPlanning,
                                        self.config.workload.planning_cost(planned.iterations),
                                    );
                                    worst_planning_latency =
                                        worst_planning_latency.max(outcome.latency);
                                    if let Some(sink) = self.trace_sink.as_mut() {
                                        sink.on_plan_result(
                                            time,
                                            true,
                                            planned.used_fallback,
                                            outcome.latency,
                                            planned.iterations,
                                        );
                                    }
                                    pending_trajectory =
                                        Some((planned.trajectory, time + outcome.latency));
                                }
                                Err(_) => {
                                    directive = self.system.decision.notify_planning_failure(time);
                                    if let Some(sink) = self.trace_sink.as_mut() {
                                        sink.on_plan_result(time, false, false, 0.0, 0);
                                        sink.on_directive(time, &directive);
                                    }
                                }
                            }
                        }
                    }
                    Directive::Hover => {
                        active_trajectory = None;
                        pending_trajectory = None;
                        self.uav.autopilot_mut().hold();
                    }
                    Directive::CommitFinalDescent { target } => {
                        active_trajectory = None;
                        pending_trajectory = None;
                        self.uav.autopilot_mut().goto(
                            Vec3::new(target.x, target.y, ground_z),
                            estimated_pose.yaw(),
                        );
                    }
                    Directive::Abort { reason } => {
                        failsafe = Some(*reason);
                        if let Some(sink) = self.trace_sink.as_mut() {
                            sink.on_failsafe(time, *reason);
                        }
                        break;
                    }
                    Directive::MissionComplete => {
                        break;
                    }
                }
            }

            // Trajectory following: a freshly planned trajectory only takes
            // effect once the compute platform has finished producing it.
            if let Some((trajectory, ready_at)) = &pending_trajectory {
                if time >= *ready_at {
                    active_trajectory = Some((trajectory.clone(), time));
                    pending_trajectory = None;
                }
            }
            if matches!(
                directive,
                Directive::FlyTo { .. } | Directive::DescendTo { .. }
            ) {
                if let Some((trajectory, started_at)) = &active_trajectory {
                    let sample = trajectory.sample(time - started_at);
                    let yaw = if sample.velocity.horizontal().norm() > 0.3 {
                        sample.velocity.y.atan2(sample.velocity.x)
                    } else {
                        estimated_pose.yaw()
                    };
                    self.uav.autopilot_mut().goto(sample.position, yaw);
                }
            }

            self.compute.end_tick(time);
        }

        // Final classification.
        let final_state = *self.uav.true_state();
        let landed = final_state.landed;
        let landing_error = landed.then(|| final_state.position.horizontal_distance(true_target));
        let result = if collisions > 0 || hard_impact {
            if hard_impact {
                collisions += 1;
            }
            MissionResult::CollisionFailure
        } else if landed
            && failsafe.is_none()
            && landing_error
                .map(|e| e <= self.config.success_radius)
                .unwrap_or(false)
        {
            MissionResult::Success
        } else {
            MissionResult::PoorLanding
        };

        let mean_detection_error = if detection_errors.is_empty() {
            None
        } else {
            Some(detection_errors.iter().sum::<f64>() / detection_errors.len() as f64)
        };

        if let Some(sink) = self.trace_sink.as_mut() {
            sink.on_mission_end(time, result);
        }

        let outcome = MissionOutcome {
            scenario_id: self.scenario.id,
            scenario_name: self.scenario.name.clone(),
            seed: self.seed,
            adverse_weather: self.scenario.is_adverse(),
            variant: self.system.variant,
            result,
            landed,
            landing_error,
            mean_detection_error,
            collisions,
            failsafe,
            duration: time,
            detection_stats: self.system.detection.stats(),
            planning_failures: self.system.planning.plans_failed(),
            planning_fallbacks: self.system.planning.fallbacks_used(),
            landing_aborts: self.system.decision.landing_aborts(),
            mean_cpu: self.compute.average_cpu(),
            peak_memory_mb: self.compute.peak_memory(),
            worst_planning_latency,
            estimation_error: self.uav.estimation_error(),
            gps_drift: self.uav.gps_drift().norm(),
        };

        // Mission-end telemetry: real per-phase wall-clock into the obs
        // histograms, plus one `mission_phases` event that carries both the
        // measured phase times and the *simulated* compute figures the
        // report keeps, so the two can be compared offline.
        if let Some(started) = mission_started {
            let wall = started.elapsed().as_secs_f64();
            instruments::mission_wall_seconds().observe(wall);
            instruments::control_seconds().observe(budget.control);
            instruments::mapping_seconds().observe(budget.mapping);
            instruments::perception_seconds().observe(budget.perception);
            instruments::planning_seconds().observe(budget.planning);
            instruments::decision_seconds().observe(budget.decision);
            mls_obs::event(
                "mission_phases",
                &[
                    ("scenario_id", outcome.scenario_id.into()),
                    ("scenario", outcome.scenario_name.as_str().into()),
                    ("seed", outcome.seed.into()),
                    ("variant", outcome.variant.label().into()),
                    ("result", result_label(outcome.result).into()),
                    ("sim_duration_s", outcome.duration.into()),
                    ("ticks", budget.ticks.into()),
                    ("wall_s", wall.into()),
                    ("control_s", budget.control.into()),
                    ("mapping_s", budget.mapping.into()),
                    ("perception_s", budget.perception.into()),
                    ("planning_s", budget.planning.into()),
                    ("decision_s", budget.decision.into()),
                    ("sim_mean_cpu", outcome.mean_cpu.into()),
                    ("sim_peak_memory_mb", outcome.peak_memory_mb.into()),
                ],
            );
        }
        (outcome, self.compute)
    }
}

/// Index-aligned approximation of how much a fault hook tampered with a
/// depth cloud: `dropped` is the point-count difference, `displaced` the
/// number of index-aligned pairs that moved. Exact when the hook displaces
/// in place and drops from the tail; an upper bound on `displaced` when
/// dropout shuffles indices — either way, a non-zero count means tampering.
fn cloud_tampering(before: &[Vec3], after: &[Vec3]) -> (usize, usize) {
    let dropped = before.len().saturating_sub(after.len());
    let displaced = before
        .iter()
        .zip(after.iter())
        .filter(|(b, a)| b.distance(**a) > 1e-9)
        .count();
    (dropped, displaced)
}

/// The goal position a directive points at, for change detection.
fn directive_goal(directive: &Directive) -> Option<Vec3> {
    match directive {
        Directive::FlyTo { goal } | Directive::DescendTo { goal } => Some(*goal),
        Directive::CommitFinalDescent { target } => Some(*target),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LandingConfig;
    use mls_compute::ComputeProfile;
    use mls_sim_world::{MapStyle, ScenarioConfig, ScenarioGenerator};

    /// A small, benign scenario that should be landable by V3.
    fn easy_scenario() -> mls_sim_world::Scenario {
        let config = ScenarioConfig {
            maps: 1,
            scenarios_per_map: 2,
            target_distance: (25.0, 30.0),
            ..ScenarioConfig::default()
        };
        let generator = ScenarioGenerator::new(config);
        // Scenario 0 of map 0 is rural + normal weather.
        let scenarios = generator.generate_benchmark(77).unwrap();
        let s = scenarios.into_iter().next().unwrap();
        assert_eq!(s.map.style, MapStyle::Rural);
        s
    }

    fn run_variant(variant: SystemVariant) -> MissionOutcome {
        let scenario = easy_scenario();
        let compute = ComputeModel::new(ComputeProfile::desktop_sil()).unwrap();
        let executor = MissionExecutor::for_variant(
            &scenario,
            variant,
            LandingConfig::default(),
            compute,
            ExecutorConfig::default(),
            11,
        )
        .unwrap();
        executor.run()
    }

    /// A sink that counts what it saw, for seam tests.
    #[derive(Debug, Default)]
    struct CountingSink {
        ticks: usize,
        directives: usize,
        plans: usize,
        mappings: usize,
        observations: usize,
        ended: Option<MissionResult>,
    }

    impl crate::trace::TraceSink for CountingSink {
        fn on_tick(
            &mut self,
            _time: f64,
            _state: &mls_sim_uav::VehicleState,
            _estimated: Vec3,
            _gps_drift: f64,
            _estimation_error: f64,
        ) {
            self.ticks += 1;
        }
        fn on_mapping(&mut self, _time: f64, _inserted: usize, _dropped: usize, _displaced: usize) {
            self.mappings += 1;
        }
        fn on_observations(
            &mut self,
            _time: f64,
            _stage: crate::trace::ObservationStage,
            _observations: &[MarkerObservation],
        ) {
            self.observations += 1;
        }
        fn on_directive(&mut self, _time: f64, _directive: &Directive) {
            self.directives += 1;
        }
        fn on_plan_request(&mut self, _time: f64, _start: Vec3, _goal: Vec3) {
            self.plans += 1;
        }
        fn on_mission_end(&mut self, _time: f64, result: MissionResult) {
            self.ended = Some(result);
        }
    }

    #[test]
    fn trace_sink_sees_every_module_boundary() {
        use std::sync::{Arc, Mutex};

        /// Forwards to a shared counter so the test can inspect it after
        /// `run()` consumed the executor.
        struct SharedSink(Arc<Mutex<CountingSink>>);
        impl crate::trace::TraceSink for SharedSink {
            fn on_tick(
                &mut self,
                time: f64,
                state: &mls_sim_uav::VehicleState,
                estimated: Vec3,
                gps_drift: f64,
                estimation_error: f64,
            ) {
                self.0
                    .lock()
                    .unwrap()
                    .on_tick(time, state, estimated, gps_drift, estimation_error);
            }
            fn on_mapping(&mut self, time: f64, inserted: usize, dropped: usize, displaced: usize) {
                self.0
                    .lock()
                    .unwrap()
                    .on_mapping(time, inserted, dropped, displaced);
            }
            fn on_observations(
                &mut self,
                time: f64,
                stage: crate::trace::ObservationStage,
                observations: &[MarkerObservation],
            ) {
                self.0
                    .lock()
                    .unwrap()
                    .on_observations(time, stage, observations);
            }
            fn on_directive(&mut self, time: f64, directive: &Directive) {
                self.0.lock().unwrap().on_directive(time, directive);
            }
            fn on_plan_request(&mut self, time: f64, start: Vec3, goal: Vec3) {
                self.0.lock().unwrap().on_plan_request(time, start, goal);
            }
            fn on_mission_end(&mut self, time: f64, result: MissionResult) {
                self.0.lock().unwrap().on_mission_end(time, result);
            }
        }

        let counters = Arc::new(Mutex::new(CountingSink::default()));
        let scenario = easy_scenario();
        let compute = ComputeModel::new(ComputeProfile::desktop_sil()).unwrap();
        let outcome = MissionExecutor::for_variant(
            &scenario,
            SystemVariant::MlsV3,
            LandingConfig::default(),
            compute,
            ExecutorConfig::default(),
            11,
        )
        .unwrap()
        .with_trace_sink(Box::new(SharedSink(Arc::clone(&counters))))
        .run();

        let seen = counters.lock().unwrap();
        assert!(seen.ticks > 100, "physics ticks observed: {}", seen.ticks);
        assert!(seen.directives > 0);
        assert!(seen.plans > 0);
        assert!(seen.mappings > 0, "V3 maps, so mapping events must appear");
        assert!(seen.observations > 0);
        assert_eq!(seen.ended, Some(outcome.result));
    }

    #[test]
    fn cloud_tampering_counts_drops_and_displacements() {
        let before = vec![
            Vec3::new(1.0, 0.0, 2.0),
            Vec3::new(2.0, 0.0, 2.0),
            Vec3::new(3.0, 0.0, 2.0),
        ];
        assert_eq!(cloud_tampering(&before, &before), (0, 0));
        let shifted: Vec<Vec3> = before
            .iter()
            .map(|p| *p + Vec3::new(0.5, 0.0, 0.0))
            .collect();
        assert_eq!(cloud_tampering(&before, &shifted), (0, 3));
        let truncated = &shifted[..2];
        assert_eq!(cloud_tampering(&before, truncated), (1, 2));
    }

    #[test]
    fn v3_lands_a_benign_rural_scenario() {
        let outcome = run_variant(SystemVariant::MlsV3);
        assert_eq!(
            outcome.result,
            MissionResult::Success,
            "expected success, got {outcome:?}"
        );
        assert!(outcome.landing_error.unwrap() < 1.0);
        assert!(outcome.detection_stats.total_frames > 5);
        assert!(outcome.mean_cpu > 0.0);
        assert!(outcome.duration > 10.0);
    }

    #[test]
    fn outcome_records_scenario_metadata() {
        let outcome = run_variant(SystemVariant::MlsV1);
        assert_eq!(outcome.variant, SystemVariant::MlsV1);
        assert_eq!(outcome.seed, 11, "the mission seed rides on the outcome");
        assert!(!outcome.scenario_name.is_empty());
        // Whatever happened, the classification is one of the three buckets.
        assert!(matches!(
            outcome.result,
            MissionResult::Success | MissionResult::CollisionFailure | MissionResult::PoorLanding
        ));
    }
}
