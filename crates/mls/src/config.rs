//! Mission-level configuration of the landing system.
//!
//! Every knob behind the paper's safety/availability trade-off (§III-D) lives
//! here: marker-validation strictness, obstacle clearances, failsafe
//! triggers, search behaviour and module rates. The ablation benches sweep
//! these values.

use mls_planning::safety::SafetyConfig;
use mls_planning::TrajectoryConfig;
use serde::{Deserialize, Serialize};

use crate::MlsError;

/// Configuration of the decision-making module and the module scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LandingConfig {
    /// Altitude the mission climbs to and searches at, metres.
    pub cruise_altitude: f64,
    /// Altitude the validation hover happens at, metres.
    pub validation_altitude: f64,
    /// Number of frames collected during validation.
    pub validation_frames: usize,
    /// Number of frames (out of `validation_frames`) that must contain the
    /// expected marker for validation to succeed.
    pub validation_threshold: usize,
    /// Minimum detector confidence for an observation to count.
    pub min_detection_confidence: f64,
    /// Radius of the spiral search around the nominal GPS target, metres.
    pub search_radius: f64,
    /// Number of spiral legs before the search times out.
    pub max_search_legs: usize,
    /// Overall mission timeout, seconds.
    pub mission_timeout: f64,
    /// Time without re-acquiring the marker during descent before the attempt
    /// is aborted, seconds.
    pub marker_loss_timeout: f64,
    /// Altitude below which the final descent is committed ("within 1.5 m"
    /// in Fig. 2), metres.
    pub final_descent_altitude: f64,
    /// Vertical step of the staged descent, metres.
    pub descent_step: f64,
    /// Number of landing aborts tolerated before the mission gives up and
    /// returns a failsafe outcome.
    pub max_landing_aborts: usize,
    /// Safety-check configuration (clearances, corner limits).
    pub safety: SafetyConfig,
    /// Trajectory generation parameters.
    pub trajectory: TrajectoryConfig,
    /// Obstacle inflation radius used by the planners, metres.
    pub inflation_radius: f64,
    /// Detection module rate, Hz.
    pub detection_rate_hz: f64,
    /// Mapping module rate, Hz.
    pub mapping_rate_hz: f64,
    /// Decision module rate, Hz.
    pub decision_rate_hz: f64,
    /// Periodic replanning interval while following a trajectory, seconds.
    pub replan_interval: f64,
}

impl Default for LandingConfig {
    fn default() -> Self {
        Self {
            cruise_altitude: 10.0,
            validation_altitude: 8.0,
            validation_frames: 6,
            validation_threshold: 4,
            min_detection_confidence: 0.3,
            search_radius: 14.0,
            max_search_legs: 10,
            mission_timeout: 240.0,
            marker_loss_timeout: 6.0,
            final_descent_altitude: 1.5,
            descent_step: 2.5,
            max_landing_aborts: 3,
            safety: SafetyConfig::default(),
            trajectory: TrajectoryConfig::default(),
            inflation_radius: 0.9,
            detection_rate_hz: 2.0,
            mapping_rate_hz: 5.0,
            decision_rate_hz: 5.0,
            replan_interval: 3.0,
        }
    }
}

impl LandingConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MlsError::InvalidConfig`] when thresholds, rates or
    /// altitudes are inconsistent.
    pub fn validate(&self) -> Result<(), MlsError> {
        if self.validation_threshold > self.validation_frames || self.validation_frames == 0 {
            return Err(MlsError::InvalidConfig {
                reason: "validation threshold must be <= validation frames (and frames > 0)"
                    .to_string(),
            });
        }
        if self.cruise_altitude <= self.final_descent_altitude {
            return Err(MlsError::InvalidConfig {
                reason: "cruise altitude must exceed the final-descent altitude".to_string(),
            });
        }
        if self.detection_rate_hz <= 0.0
            || self.mapping_rate_hz <= 0.0
            || self.decision_rate_hz <= 0.0
        {
            return Err(MlsError::InvalidConfig {
                reason: "module rates must be positive".to_string(),
            });
        }
        if self.mission_timeout <= 0.0 {
            return Err(MlsError::InvalidConfig {
                reason: "mission timeout must be positive".to_string(),
            });
        }
        if !(0.0..=1.0).contains(&self.min_detection_confidence) {
            return Err(MlsError::InvalidConfig {
                reason: "min detection confidence must be in [0, 1]".to_string(),
            });
        }
        Ok(())
    }

    /// A configuration biased towards availability: weaker validation,
    /// smaller clearances, more tolerated aborts. Used by the
    /// safety-vs-availability ablation.
    pub fn availability_biased() -> Self {
        Self {
            validation_frames: 4,
            validation_threshold: 2,
            max_landing_aborts: 6,
            inflation_radius: 0.5,
            safety: SafetyConfig {
                path_clearance: 0.5,
                descent_clearance: 0.7,
                ..SafetyConfig::default()
            },
            ..Self::default()
        }
    }

    /// A configuration biased towards safety: strict validation, generous
    /// clearances, eager failsafes.
    pub fn safety_biased() -> Self {
        Self {
            validation_frames: 8,
            validation_threshold: 7,
            max_landing_aborts: 1,
            inflation_radius: 1.4,
            safety: SafetyConfig {
                path_clearance: 1.4,
                descent_clearance: 1.8,
                conservative_descent: true,
                ..SafetyConfig::default()
            },
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(LandingConfig::default().validate().is_ok());
        assert!(LandingConfig::availability_biased().validate().is_ok());
        assert!(LandingConfig::safety_biased().validate().is_ok());
    }

    #[test]
    fn inconsistent_thresholds_are_rejected() {
        let cfg = LandingConfig {
            validation_threshold: 10,
            validation_frames: 5,
            ..LandingConfig::default()
        };
        assert!(cfg.validate().is_err());

        let cfg = LandingConfig {
            validation_frames: 0,
            validation_threshold: 0,
            ..LandingConfig::default()
        };
        assert!(cfg.validate().is_err());

        let cfg = LandingConfig {
            cruise_altitude: 1.0,
            ..LandingConfig::default()
        };
        assert!(cfg.validate().is_err());

        let cfg = LandingConfig {
            detection_rate_hz: 0.0,
            ..LandingConfig::default()
        };
        assert!(cfg.validate().is_err());

        let cfg = LandingConfig {
            min_detection_confidence: 2.0,
            ..LandingConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn biased_presets_differ_in_the_expected_direction() {
        let avail = LandingConfig::availability_biased();
        let safe = LandingConfig::safety_biased();
        assert!(avail.validation_threshold < safe.validation_threshold);
        assert!(avail.inflation_radius < safe.inflation_radius);
        assert!(avail.max_landing_aborts > safe.max_landing_aborts);
        assert!(!avail.safety.conservative_descent);
        assert!(safe.safety.conservative_descent);
    }
}
