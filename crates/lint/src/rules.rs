//! The D001–D007 rule catalog and the `mls-lint: allow` machinery.
//!
//! Every rule is a pass over the lexed token stream of one file, scoped by
//! the file's [`FileClass`] (which protocol surfaces the path belongs to)
//! and skipping `#[cfg(test)]` / `#[test]` regions — test code may panic,
//! spawn and time freely, because the determinism contract it exists to
//! *check* only covers shipped paths. `docs/LINT.md` is the rule catalog
//! with the rationale for each rule and the exact allow grammar.

use std::collections::BTreeMap;

use crate::lexer::{lex, number_is_float, Token, TokenKind};
use crate::report::{Finding, Suppressed};

/// The rule identifiers, in catalog order. `A000`/`A001` are the
/// meta-rules (malformed and stale allows) and cannot be allowed away.
pub const RULES: [&str; 7] = ["D001", "D002", "D003", "D004", "D005", "D006", "D007"];

/// Which restricted surfaces a file belongs to. Derived from the
/// workspace-relative path by [`classify`]; fixture files (named
/// `fixture_*.rs`) get every restriction so each rule can be pinned by a
/// self-contained test corpus.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FileClass {
    /// D001 applies: report/trace/wire/corpus serialization paths, where
    /// iteration order becomes artifact bytes.
    pub serialization: bool,
    /// D005 applies: wire/frame encoders, where floats must cross as
    /// `to_bits` and never as formatted text.
    pub wire: bool,
    /// D003 *exempt*: the `MissionExecutor` pool and the fabric
    /// dispatcher/worker — the only sanctioned thread-spawn sites.
    pub spawn_sanctioned: bool,
    /// D002 *exempt*: `mls-obs` (the clock belongs to observability) and
    /// `mls-bench` (wall-clock measurement is its purpose; `BENCH_perf.json`
    /// is expected to vary run to run).
    pub clock_exempt: bool,
    /// D006 applies: fabric worker protocol paths, which must exit with a
    /// protocol error code instead of aborting mid-frame.
    pub worker_protocol: bool,
    /// D007 applies: artifact writer paths, where durable outputs must go
    /// through `mls_obs::atomic_write` (tmp + fsync + rename) so a crash
    /// never leaves a torn file under the final name.
    pub artifact: bool,
}

impl FileClass {
    /// Every restriction on, no exemptions — the class fixture files get.
    pub fn restricted() -> Self {
        FileClass {
            serialization: true,
            wire: true,
            spawn_sanctioned: false,
            clock_exempt: false,
            worker_protocol: true,
            artifact: true,
        }
    }
}

/// Classifies a workspace-relative path (forward slashes) onto the
/// restricted surfaces. The path lists mirror the protocol surfaces named
/// in `docs/ARCHITECTURE.md` ("Determinism contract") and `docs/FABRIC.md`.
pub fn classify(rel: &str) -> FileClass {
    let name = rel.rsplit('/').next().unwrap_or(rel);
    if name.starts_with("fixture_") {
        return FileClass::restricted();
    }
    let serialization = rel.starts_with("crates/trace/src/")
        || matches!(
            rel,
            "crates/campaign/src/report.rs"
                | "crates/campaign/src/wire.rs"
                | "crates/campaign/src/spec.rs"
                | "crates/fabric/src/protocol.rs"
        );
    let wire = matches!(
        rel,
        "crates/campaign/src/wire.rs"
            | "crates/fabric/src/protocol.rs"
            | "crates/trace/src/format.rs"
    );
    let spawn_sanctioned = matches!(
        rel,
        "crates/campaign/src/executor.rs"
            | "crates/fabric/src/dispatcher.rs"
            | "crates/fabric/src/worker.rs"
    );
    let clock_exempt = rel.starts_with("crates/obs/src/") || rel.starts_with("crates/bench/src/");
    let worker_protocol = matches!(
        rel,
        "crates/fabric/src/worker.rs"
            | "crates/fabric/src/protocol.rs"
            | "crates/fabric/src/bin/mls-fabric-worker.rs"
    );
    let artifact = rel.starts_with("crates/trace/src/")
        || rel.starts_with("crates/obs/src/")
        || rel.starts_with("crates/bench/src/")
        || matches!(
            rel,
            "crates/campaign/src/journal.rs"
                | "crates/campaign/src/report.rs"
                | "crates/campaign/src/search.rs"
                | "crates/lint/src/bin/mls-lint.rs"
        );
    FileClass {
        serialization,
        wire,
        spawn_sanctioned,
        clock_exempt,
        worker_protocol,
        artifact,
    }
}

/// A parsed `// mls-lint: allow(D00x): <reason>` comment.
#[derive(Debug)]
struct Allow {
    rule: String,
    reason: String,
    /// Line the comment sits on.
    line: u32,
    /// Line the allow applies to: its own line when trailing code, the
    /// next code line when the comment stands alone.
    target: u32,
    /// Set once a finding is suppressed by this allow; a cold allow is
    /// stale and reported as A001.
    used: bool,
    in_test: bool,
}

/// Everything the engine derives from one file before rules run.
struct FileView<'a> {
    src: &'a str,
    tokens: Vec<Token>,
    /// Indices into `tokens` of code tokens (no whitespace, no comments).
    code: Vec<usize>,
    /// Per-token flag: inside a `#[cfg(test)]` module or `#[test]` fn body.
    in_test: Vec<bool>,
    lines: Vec<&'a str>,
}

impl<'a> FileView<'a> {
    fn new(src: &'a str) -> Self {
        let tokens = lex(src);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map(|(i, _)| i)
            .collect();
        let in_test = test_regions(src, &tokens, &code);
        FileView {
            src,
            tokens,
            code,
            in_test,
            lines: src.lines().collect(),
        }
    }

    fn text(&self, token_index: usize) -> &'a str {
        self.tokens[token_index].text(self.src)
    }

    fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map_or(String::new(), |l| l.trim().to_string())
    }

    /// The code token `offset` positions before/after `code[pos]`.
    fn rel(&self, pos: usize, offset: isize) -> Option<usize> {
        let target = pos as isize + offset;
        if target < 0 {
            return None;
        }
        self.code.get(target as usize).copied()
    }

    fn is_punct(&self, token_index: Option<usize>, ch: &str) -> bool {
        token_index.is_some_and(|i| self.tokens[i].kind == TokenKind::Punct && self.text(i) == ch)
    }

    fn is_ident(&self, token_index: Option<usize>, name: &str) -> bool {
        token_index.is_some_and(|i| self.tokens[i].kind == TokenKind::Ident && self.text(i) == name)
    }
}

/// Computes, for every token, whether it sits inside test-only code:
/// the brace block following a `#[cfg(test)]` or `#[test]` attribute,
/// transitively. `#[cfg(not(test))]` does not count.
fn test_regions(src: &str, tokens: &[Token], code: &[usize]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    // Stack of open braces; each entry records whether its block is test.
    let mut stack: Vec<bool> = Vec::new();
    let mut pending_test = false;
    let mut c = 0usize;
    while c < code.len() {
        let i = code[c];
        let inside = pending_test || stack.last().copied().unwrap_or(false);
        // Everything from here to the region exit keeps the current flag.
        in_test[i] = stack.last().copied().unwrap_or(false) || pending_test;
        let tok = &tokens[i];
        if tok.kind == TokenKind::Punct {
            match tok.text(src) {
                "#" => {
                    // Scan the attribute `#[…]` / `#![…]`, collecting idents.
                    let mut d = c + 1;
                    if code.get(d).is_some_and(|&j| tokens[j].text(src) == "!") {
                        d += 1;
                    }
                    if code.get(d).is_some_and(|&j| tokens[j].text(src) == "[") {
                        let mut depth = 0usize;
                        let mut idents: Vec<&str> = Vec::new();
                        while let Some(&j) = code.get(d) {
                            in_test[j] = inside;
                            match tokens[j].text(src) {
                                "[" => depth += 1,
                                "]" => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                t if tokens[j].kind == TokenKind::Ident => idents.push(t),
                                _ => {}
                            }
                            d += 1;
                        }
                        let is_test_attr = idents.as_slice() == ["test"]
                            || (idents.first() == Some(&"cfg")
                                && idents.contains(&"test")
                                && !idents.contains(&"not"));
                        pending_test = pending_test || is_test_attr;
                        c = d + 1;
                        continue;
                    }
                }
                "{" => {
                    stack.push(inside);
                    pending_test = false;
                }
                "}" => {
                    stack.pop();
                }
                ";" => pending_test = false,
                _ => {}
            }
        }
        c += 1;
    }
    in_test
}

/// Parses allow comments out of the token stream. Malformed ones (bad rule
/// id, missing reason) become `A000` findings immediately.
fn collect_allows(view: &FileView<'_>, file: &str, findings: &mut Vec<Finding>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (i, tok) in view.tokens.iter().enumerate() {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let body = view.text(i).trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("mls-lint:") else {
            continue;
        };
        let line = tok.line;
        let mut fail = |message: String| {
            findings.push(Finding {
                rule: "A000".into(),
                file: file.into(),
                line,
                snippet: view.snippet(line),
                message,
            });
        };
        let rest = rest.trim();
        let Some(rest) = rest.strip_prefix("allow(") else {
            fail("malformed mls-lint comment: expected `allow(D00x): <reason>`".into());
            continue;
        };
        let Some((rule, rest)) = rest.split_once(')') else {
            fail("malformed allow: missing `)` after the rule id".into());
            continue;
        };
        if !RULES.contains(&rule) {
            fail(format!(
                "unknown rule `{rule}` in allow (catalog: D001-D007)"
            ));
            continue;
        }
        let reason = rest.trim_start_matches(':').trim();
        if reason.is_empty() {
            fail(format!(
                "allow({rule}) without a reason — the justification is mandatory"
            ));
            continue;
        }
        // A comment with code before it on the same line targets that line;
        // a standalone comment targets the next line holding code.
        let standalone = !view
            .code
            .iter()
            .any(|&j| view.tokens[j].line == line && view.tokens[j].start < tok.start);
        let target = if standalone { line + 1 } else { line };
        let in_test = view
            .code
            .iter()
            .find(|&&j| view.tokens[j].line >= target)
            .is_some_and(|&j| view.in_test[j]);
        allows.push(Allow {
            rule: rule.to_string(),
            reason: reason.to_string(),
            line,
            target,
            used: false,
            in_test,
        });
    }
    allows
}

/// Runs every rule over one file. `rel` is the workspace-relative path used
/// in diagnostics; `class` scopes the path-dependent rules. Returns the
/// surviving findings (allow-suppressed ones removed, `A000`/`A001` meta
/// findings added) plus the suppressions that were exercised.
pub fn check_source(rel: &str, src: &str, class: FileClass) -> (Vec<Finding>, Vec<Suppressed>) {
    let view = FileView::new(src);
    let mut findings: Vec<Finding> = Vec::new();
    let mut allows = collect_allows(&view, rel, &mut findings);
    let mut raw: Vec<Finding> = Vec::new();

    let mut emit = |rule: &str, line: u32, message: String| {
        raw.push(Finding {
            rule: rule.into(),
            file: rel.into(),
            line,
            snippet: view.snippet(line),
            message,
        });
    };

    for (pos, &i) in view.code.iter().enumerate() {
        if view.in_test[i] {
            continue;
        }
        let tok = &view.tokens[i];
        let line = tok.line;
        match tok.kind {
            TokenKind::Ident => {
                let name = view.text(i);
                let path_call = |target: &str| {
                    // `name :: target` — the qualified-call shape every
                    // clock/spawn rule keys on.
                    view.is_punct(view.rel(pos, 1), ":")
                        && view.is_punct(view.rel(pos, 2), ":")
                        && view.is_ident(view.rel(pos, 3), target)
                };
                match name {
                    "HashMap" | "HashSet" if class.serialization => emit(
                        "D001",
                        line,
                        format!(
                            "{name} in a serialization path: iteration order becomes \
                             artifact bytes — use BTreeMap/BTreeSet or an explicit sort"
                        ),
                    ),
                    "Instant" | "SystemTime" if !class.clock_exempt && path_call("now") => {
                        // Gated pattern: `observing.then(Instant::now)` —
                        // the obs-enabled flag decides whether the clock is
                        // read at all, so determinism is obs-independent.
                        // Walk back over leading path segments so the
                        // fully-qualified `observing.then(std::time::…)`
                        // form gates too.
                        let mut head = pos;
                        while view.is_punct(view.rel(head, -1), ":")
                            && view.is_punct(view.rel(head, -2), ":")
                            && view
                                .rel(head, -3)
                                .is_some_and(|j| view.tokens[j].kind == TokenKind::Ident)
                        {
                            head -= 3;
                        }
                        let gated = view.is_punct(view.rel(head, -1), "(")
                            && view.is_ident(view.rel(head, -2), "then");
                        if !gated {
                            emit(
                                "D002",
                                line,
                                format!(
                                    "{name}::now() outside mls-obs and not behind an \
                                     obs-enabled `.then(…)` gate: wall clock reads must \
                                     never influence report bytes"
                                ),
                            );
                        }
                    }
                    "thread" if !class.spawn_sanctioned && path_call("spawn") => emit(
                        "D003",
                        line,
                        "thread::spawn outside MissionExecutor and the fabric \
                         dispatcher/worker: ad-hoc threads break the deterministic \
                         scheduling argument"
                            .into(),
                    ),
                    "OsRng" | "ThreadRng" | "thread_rng" | "from_entropy" | "getrandom"
                    | "RandomState" => emit(
                        "D004",
                        line,
                        format!(
                            "{name}: unseeded entropy — every stochastic component \
                             must draw from the vendored seeded RNG"
                        ),
                    ),
                    "to_string" if class.wire => {
                        // Only a float receiver trips the rule: a lexer
                        // cannot type-check, but `1.5.to_string()` and
                        // `(x as f64).to_string()`-style chains it can see.
                        let receiver_float = view
                            .rel(pos, -1)
                            .filter(|&d| view.tokens[d].kind == TokenKind::Punct)
                            .filter(|&d| view.text(d) == ".")
                            .and_then(|_| view.rel(pos, -2))
                            .is_some_and(|r| {
                                (view.tokens[r].kind == TokenKind::Number
                                    && number_is_float(view.text(r)))
                                    || view.text(r) == "f32"
                                    || view.text(r) == "f64"
                                    // `(x as f64).to_string()` — the cast is
                                    // the last token before the close paren.
                                    || (view.text(r) == ")"
                                        && view.rel(pos, -3).is_some_and(|q| {
                                            view.text(q) == "f32" || view.text(q) == "f64"
                                        }))
                            });
                        if receiver_float {
                            emit(
                                "D005",
                                line,
                                "float formatted with to_string() in a wire path: \
                                 floats cross the wire as to_bits() only"
                                    .into(),
                            );
                        }
                    }
                    "unwrap" | "expect"
                        if class.worker_protocol && view.is_punct(view.rel(pos, -1), ".") =>
                    {
                        emit(
                            "D006",
                            line,
                            format!(
                                ".{name}() in a fabric worker protocol path: workers \
                                 must exit with a protocol error code, never abort \
                                 mid-frame"
                            ),
                        );
                    }
                    "panic" if class.worker_protocol && view.is_punct(view.rel(pos, 1), "!") => {
                        emit(
                            "D006",
                            line,
                            "panic! in a fabric worker protocol path: workers must \
                             exit with a protocol error code, never abort mid-frame"
                                .into(),
                        );
                    }
                    "File" if class.artifact && path_call("create") => emit(
                        "D007",
                        line,
                        "File::create in an artifact path: a crash mid-write leaves a \
                         torn file under the final name — write durable artifacts via \
                         mls_obs::atomic_write (tmp + fsync + rename)"
                            .into(),
                    ),
                    "fs" if class.artifact && path_call("write") => emit(
                        "D007",
                        line,
                        "fs::write in an artifact path: a crash mid-write leaves a \
                         torn file under the final name — write durable artifacts via \
                         mls_obs::atomic_write (tmp + fsync + rename)"
                            .into(),
                    ),
                    _ => {}
                }
            }
            TokenKind::Str | TokenKind::RawStr if class.wire => {
                let text = view.text(i);
                for spec in ["{:?}", "{:#?}", "{:e}", "{:E}"] {
                    if text.contains(spec) {
                        emit(
                            "D005",
                            line,
                            format!(
                                "`{spec}` format in a wire path string: debug/exponent \
                                 rendering is not a stable wire encoding — floats cross \
                                 as to_bits(), frames as canonical fields"
                            ),
                        );
                        break;
                    }
                }
            }
            _ => {}
        }
    }

    // Apply allows: a finding is suppressed when an allow for its rule
    // targets its line.
    let mut suppressed = Vec::new();
    for finding in raw {
        let hit = allows
            .iter_mut()
            .find(|a| a.rule == finding.rule && a.target == finding.line);
        match hit {
            Some(allow) => {
                allow.used = true;
                suppressed.push(Suppressed {
                    rule: finding.rule,
                    file: finding.file,
                    line: finding.line,
                    reason: allow.reason.clone(),
                });
            }
            None => findings.push(finding),
        }
    }

    // A cold allow is itself an error: the violation it justified is gone,
    // so the justification must go too (or the rule drifted — either way a
    // human looks). Allows inside test regions are ignored, not stale:
    // rules never ran there.
    for allow in &allows {
        if !allow.used && !allow.in_test {
            findings.push(Finding {
                rule: "A001".into(),
                file: rel.into(),
                line: allow.line,
                snippet: view.snippet(allow.line),
                message: format!(
                    "stale allow({}): line {} no longer trips the rule — remove the \
                     allow or restore the justification",
                    allow.rule, allow.target
                ),
            });
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule.as_str()).cmp(&(b.line, b.rule.as_str())));
    (findings, suppressed)
}

/// Per-rule finding counts, for the report summary.
pub fn count_by_rule(findings: &[Finding]) -> BTreeMap<String, usize> {
    let mut by_rule = BTreeMap::new();
    for f in findings {
        *by_rule.entry(f.rule.clone()).or_insert(0) += 1;
    }
    by_rule
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_knows_the_protocol_surfaces() {
        assert!(classify("crates/trace/src/format.rs").serialization);
        assert!(classify("crates/trace/src/format.rs").wire);
        assert!(classify("crates/campaign/src/wire.rs").wire);
        assert!(classify("crates/fabric/src/worker.rs").worker_protocol);
        assert!(classify("crates/fabric/src/worker.rs").spawn_sanctioned);
        assert!(classify("crates/obs/src/span.rs").clock_exempt);
        assert!(classify("crates/bench/src/bin/perfsuite.rs").clock_exempt);
        assert!(classify("crates/trace/src/corpus.rs").artifact);
        assert!(classify("crates/campaign/src/journal.rs").artifact);
        assert!(classify("crates/lint/src/bin/mls-lint.rs").artifact);
        assert!(!classify("crates/planning/src/astar.rs").artifact);
        assert!(!classify("crates/planning/src/astar.rs").serialization);
        assert_eq!(
            classify("fixtures/fixture_d001_bad.rs"),
            FileClass::restricted()
        );
    }

    #[test]
    fn test_regions_shield_rules() {
        let src = "
fn ship() { let t = std::time::Instant::now(); }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let t = std::time::Instant::now(); }
}
";
        let (findings, _) = check_source("x.rs", src, FileClass::default());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nmod ship { fn f() { std::thread::spawn(|| ()); } }\n";
        let (findings, _) = check_source("x.rs", src, FileClass::default());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "D003");
    }

    #[test]
    fn gated_clock_reads_pass() {
        let src = "fn f(observing: bool) { let t = observing.then(Instant::now); }\n";
        let (findings, _) = check_source("x.rs", src, FileClass::default());
        assert!(findings.is_empty(), "{findings:?}");

        let qualified =
            "fn f(observing: bool) { let t = observing.then(std::time::Instant::now); }\n";
        let (findings, _) = check_source("x.rs", qualified, FileClass::default());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn float_to_string_variants_trip_d005() {
        let class = FileClass {
            wire: true,
            ..FileClass::default()
        };
        for src in [
            "fn f() -> String { 1.5f64.to_string() }\n",
            "fn f(x: u32) -> String { (x as f64).to_string() }\n",
        ] {
            let (findings, _) = check_source("x.rs", src, class);
            assert_eq!(findings.len(), 1, "{src}: {findings:?}");
            assert_eq!(findings[0].rule, "D005");
        }
        // Strings stay allowed: only float receivers trip the rule.
        let (findings, _) =
            check_source("x.rs", "fn f() -> String { \"cell\".to_string() }\n", class);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn allows_suppress_and_go_stale() {
        let good = "// mls-lint: allow(D003): test harness thread, joined before asserts\n\
                    fn f() { std::thread::spawn(|| ()); }\n";
        let (findings, suppressed) = check_source("x.rs", good, FileClass::default());
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(suppressed.len(), 1);
        assert_eq!(suppressed[0].rule, "D003");

        let stale = "// mls-lint: allow(D003): nothing here anymore\nfn f() {}\n";
        let (findings, _) = check_source("x.rs", stale, FileClass::default());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "A001");

        let missing_reason = "// mls-lint: allow(D003)\nfn f() { std::thread::spawn(|| ()); }\n";
        let (findings, _) = check_source("x.rs", missing_reason, FileClass::default());
        assert!(findings.iter().any(|f| f.rule == "A000"));
        assert!(findings.iter().any(|f| f.rule == "D003"));
    }

    #[test]
    fn torn_write_shapes_trip_d007() {
        let class = FileClass {
            artifact: true,
            ..FileClass::default()
        };
        for src in [
            "fn f() { let file = std::fs::File::create(\"report.json\").unwrap(); }\n",
            "fn f() { std::fs::write(\"report.json\", b\"{}\").unwrap(); }\n",
        ] {
            let (findings, _) = check_source("x.rs", src, class);
            assert_eq!(findings.len(), 1, "{src}: {findings:?}");
            assert_eq!(findings[0].rule, "D007");
        }
        // Outside artifact paths and inside tests the shapes are free.
        let (findings, _) = check_source(
            "x.rs",
            "fn f() { std::fs::write(\"scratch\", b\"x\").unwrap(); }\n",
            FileClass::default(),
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn strings_and_comments_never_trip_ident_rules() {
        let src = "fn f() { let s = \"thread::spawn HashMap OsRng\"; } // Instant::now()\n";
        let (findings, _) = check_source("x.rs", src, FileClass::restricted());
        assert!(findings.is_empty(), "{findings:?}");
    }
}
