//! `mls-lint` — determinism & protocol-safety static analysis.
//!
//! Every guarantee this workspace makes — byte-identical reports at any
//! thread count (`batched_equivalence`), any fabric worker count
//! (`fabric_equivalence`), obs on or off (`obs_equivalence`) — was enforced
//! only dynamically, by mission-flying test suites that catch a violation
//! minutes after it is written. This crate is the static half of that
//! contract: a source-level analyzer built on a small hand-rolled lexer
//! (no `syn`) that walks the workspace in well under a second and enforces
//! the determinism invariants of `docs/ARCHITECTURE.md` and `docs/FABRIC.md`
//! as machine-checked rules:
//!
//! | rule | invariant |
//! |------|-----------|
//! | D001 | no `HashMap`/`HashSet` in serialization paths (order → bytes) |
//! | D002 | wall-clock reads only in `mls-obs`/`mls-bench` or obs-gated |
//! | D003 | `thread::spawn` only in `MissionExecutor` + fabric dispatcher/worker |
//! | D004 | no unseeded entropy anywhere (OS RNG, `RandomState`) |
//! | D005 | no text-formatted floats in wire paths (`to_bits` only) |
//! | D006 | no `unwrap`/`expect`/`panic!` in worker protocol paths |
//! | D007 | no bare `File::create`/`fs::write` in artifact paths (atomic_write only) |
//!
//! Violations are suppressible only via `// mls-lint: allow(D00x): <reason>`
//! with a mandatory reason, and a *stale* allow (one that no longer
//! suppresses anything) is an error in its own right. `docs/LINT.md` is the
//! full catalog with rationale; `cargo run -p mls-lint` checks the tree and
//! writes `target/reports/lint.json`.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

use std::fs;
use std::io;
use std::path::Path;

use report::LintReport;

/// Lints every shipped source file under `root` (the workspace checkout),
/// classifying each path onto the restricted surfaces and aggregating one
/// deterministic report.
///
/// # Errors
///
/// Propagates filesystem errors from discovery or reading; an unreadable
/// tree is a tooling failure, not a clean run.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let files = walk::workspace_sources(root)?;
    lint_files(root, &files)
}

/// Lints an explicit list of root-relative files — the workspace run and
/// the fixture-corpus tests share this path.
///
/// # Errors
///
/// Propagates read errors for any listed file.
pub fn lint_files(root: &Path, files: &[String]) -> io::Result<LintReport> {
    let mut lint_report = LintReport {
        files_scanned: files.len(),
        ..LintReport::default()
    };
    for rel in files {
        let src = fs::read_to_string(root.join(rel))?;
        let class = rules::classify(rel);
        let (findings, suppressed) = rules::check_source(rel, &src, class);
        lint_report.findings.extend(findings);
        lint_report.suppressed.extend(suppressed);
    }
    lint_report.sort();
    Ok(lint_report)
}
