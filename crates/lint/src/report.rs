//! Diagnostics and the versioned JSON report (`target/reports/lint.json`).
//!
//! The report is rendered with a hand-rolled writer (the crate is
//! dependency-free) and is fully deterministic: findings sorted by
//! (file, line, rule), summary keyed through a `BTreeMap` — running the
//! tool twice on the same tree yields byte-identical bytes, the same bar
//! the rest of the workspace holds its artifacts to.

use std::collections::BTreeMap;

/// The report schema version; bump on any field change.
pub const SCHEMA: &str = "mls-lint-v1";

/// One rule violation (or `A000`/`A001` meta finding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: String,
    pub file: String,
    pub line: u32,
    pub snippet: String,
    pub message: String,
}

/// One exercised `mls-lint: allow` — reported so suppressions stay
/// auditable instead of invisible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppressed {
    pub rule: String,
    pub file: String,
    pub line: u32,
    pub reason: String,
}

/// The full result of one workspace (or fixture-dir) run.
#[derive(Debug, Default)]
pub struct LintReport {
    pub findings: Vec<Finding>,
    pub suppressed: Vec<Suppressed>,
    pub files_scanned: usize,
}

impl LintReport {
    /// True when the tree is clean: no findings (exercised allows are fine).
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Canonical ordering: by (file, line, rule) across the whole run.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
        self.suppressed
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    }

    /// The versioned single-line-per-entry JSON rendering.
    pub fn to_json(&self) -> String {
        let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
        for f in &self.findings {
            *by_rule.entry(&f.rule).or_insert(0) += 1;
        }
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str("  \"summary\": {");
        let mut first = true;
        for (rule, count) in &by_rule {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("\"{rule}\": {count}"));
        }
        out.push_str("},\n");
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"snippet\": \"{}\", \"message\": \"{}\"}}{}\n",
                escape(&f.rule),
                escape(&f.file),
                f.line,
                escape(&f.snippet),
                escape(&f.message),
                if i + 1 < self.findings.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"suppressed\": [\n");
        for (i, s) in self.suppressed.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}{}\n",
                escape(&s.rule),
                escape(&s.file),
                s.line,
                escape(&s.reason),
                if i + 1 < self.suppressed.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Human diagnostics: one `rule file:line` block per finding plus a
    /// one-line verdict, mirroring the compiler's error format closely
    /// enough that editors linkify the locations.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "error[{}]: {}\n  --> {}:{}\n   | {}\n",
                f.rule, f.message, f.file, f.line, f.snippet
            ));
        }
        let suppressed = if self.suppressed.is_empty() {
            String::new()
        } else {
            format!(" ({} allowed with reasons)", self.suppressed.len())
        };
        if self.clean() {
            out.push_str(&format!(
                "mls-lint: clean — {} files scanned{suppressed}\n",
                self.files_scanned
            ));
        } else {
            out.push_str(&format!(
                "mls-lint: {} finding(s) across {} files{suppressed}\n",
                self.findings.len(),
                self.files_scanned
            ));
        }
        out
    }
}

/// Minimal JSON string escaping (mirrors `mls_obs::sink::json_escape`,
/// re-rolled here so the analyzer depends on nothing it lints).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_deterministic_and_escaped() {
        let mut report = LintReport {
            findings: vec![Finding {
                rule: "D001".into(),
                file: "b.rs".into(),
                line: 3,
                snippet: "let m: HashMap<\"k\", _>;".into(),
                message: "order".into(),
            }],
            suppressed: vec![],
            files_scanned: 2,
        };
        report.sort();
        let a = report.to_json();
        let b = report.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\\\"k\\\""));
        assert!(a.contains("\"summary\": {\"D001\": 1}"));
    }
}
