//! The `mls-lint` CLI: lint the workspace, print human diagnostics, write
//! the versioned JSON report, and fail by exit code.
//!
//! ```text
//! mls-lint [--root <dir>] [--json <path>] [--quiet]
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error — the same
//! convention the equivalence smoke binaries use, so CI gates on the code.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_path: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(path) => json_path = Some(PathBuf::from(path)),
                None => return usage("--json needs a path"),
            },
            "--quiet" => quiet = true,
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let report = match mls_lint::lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("mls-lint: cannot scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    let json_path = json_path.unwrap_or_else(|| root.join("target/reports/lint.json"));
    if let Err(err) = mls_obs::atomic_write(&json_path, report.to_json().as_bytes()) {
        eprintln!("mls-lint: cannot write {}: {err}", json_path.display());
        return ExitCode::from(2);
    }

    if !quiet {
        print!("{}", report.render_human());
        println!("report: {}", json_path.display());
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("mls-lint: {problem}\nusage: mls-lint [--root <dir>] [--json <path>] [--quiet]");
    ExitCode::from(2)
}
