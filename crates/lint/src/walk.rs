//! Deterministic workspace file discovery.
//!
//! The scan surface is the *shipped* code: every `.rs` file under a `src/`
//! directory of the workspace root or its crates. Excluded by construction:
//!
//! * `vendor/` — vendored stand-ins for external crates; `vendor/rand` is
//!   the sanctioned seeded RNG and legitimately contains what D004 bans.
//! * `tests/`, `examples/`, `benches/` — test harness code may panic, time
//!   and spawn freely; the equivalence suites the rules protect are
//!   themselves tests. (The lint fixture corpus also lives under `tests/`.)
//! * `target/`, `.git/` — build output and history.
//!
//! Directory entries are visited in sorted order so the report is
//! byte-identical across filesystems.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

const SKIP_DIRS: [&str; 6] = ["target", "vendor", ".git", "tests", "examples", "benches"];

/// Collects every shipped `.rs` source under `root`, sorted, as paths
/// relative to `root` (forward slashes, so diagnostics and the JSON report
/// are OS-independent).
pub fn workspace_sources(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    visit(root, root, false, &mut files)?;
    files.sort();
    Ok(files)
}

fn visit(root: &Path, dir: &Path, under_src: bool, files: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            visit(root, &path, under_src || name == "src", files)?;
        } else if under_src && name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .expect("walk stays under root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            files.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scans_src_trees_and_skips_vendor_tests_target() {
        // The lint crate's own workspace is the natural fixture.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let files = workspace_sources(root).expect("walk");
        assert!(files.iter().any(|f| f == "crates/lint/src/lexer.rs"));
        assert!(files.iter().any(|f| f == "src/lib.rs"));
        assert!(!files.iter().any(|f| f.starts_with("vendor/")));
        assert!(!files.iter().any(|f| f.contains("/tests/")));
        assert!(!files.iter().any(|f| f.starts_with("target/")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "discovery order is deterministic");
    }
}
