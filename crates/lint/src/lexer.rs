//! A hand-rolled, lossless Rust lexer.
//!
//! The rule engine needs exactly one guarantee from this module: a token is
//! never misclassified across the string/comment boundary. `HashMap` inside
//! a doc comment or a format string must not trip D001; `{:?}` inside a
//! *code* string literal must trip D005. Everything else — precise numeric
//! grammar, full Unicode identifier tables — is handled with pragmatic
//! approximations that are documented inline.
//!
//! The lexer is lossless: concatenating the text of every token (whitespace
//! tokens included) reproduces the input byte for byte. The property suite
//! in `tests/lexer_proptest.rs` pins this over both generated sources and
//! the real workspace + vendored-crate corpus.

/// Classification of one source region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Horizontal/vertical whitespace between tokens.
    Whitespace,
    /// `// …` to end of line (doc comments `///`/`//!` included).
    LineComment,
    /// `/* … */`, nesting tracked (doc comments `/** … */` included).
    BlockComment,
    /// `"…"` and `b"…"`/`c"…"` with escape handling.
    Str,
    /// `r"…"`, `r#"…"#`, `br#"…"#` — raw strings, any hash depth.
    RawStr,
    /// `'x'`, `'\n'`, `'€'` character (or byte) literals.
    Char,
    /// `'a` lifetimes and loop labels.
    Lifetime,
    /// Identifiers and keywords, raw identifiers (`r#type`) included.
    Ident,
    /// Integer and float literals, suffixes attached (`1_000u64`, `2.5e-3`).
    Number,
    /// Any other single byte (`::` arrives as two `:` tokens).
    Punct,
}

/// One lexed region: classification plus byte span and 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
}

impl Token {
    /// The token's text, sliced from the source it was lexed from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// True when `text` (a [`TokenKind::Number`] token) is a float literal:
/// a decimal point, an exponent, or an explicit float suffix. Hex/octal/
/// binary literals are never floats (`0xE0` has no exponent).
pub fn number_is_float(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0o") || text.starts_with("0b") {
        return false;
    }
    text.contains('.')
        || text.contains(['e', 'E'])
        || text.ends_with("f32")
        || text.ends_with("f64")
}

fn is_ident_start(c: char) -> bool {
    // ASCII identifier characters plus a blanket "any non-ASCII char"
    // bucket: the workspace is ASCII-only, but a Unicode identifier (or a
    // stray multibyte char) must still lex as *something* ident-like rather
    // than desynchronize the scanner.
    c == '_' || c.is_ascii_alphabetic() || !c.is_ascii()
}

fn is_ident_continue(c: char) -> bool {
    is_ident_start(c) || c.is_ascii_digit()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn peek(&self, offset: usize) -> Option<u8> {
        self.bytes.get(self.pos + offset).copied()
    }

    /// The char starting at `pos + offset` (offset must sit on a boundary).
    fn peek_char(&self, offset: usize) -> Option<char> {
        self.src[self.pos + offset..].chars().next()
    }

    fn bump_to(&mut self, end: usize, kind: TokenKind) {
        debug_assert!(end > self.pos, "lexer must always make progress");
        let start = self.pos;
        let line = self.line;
        self.line += self.src[start..end].matches('\n').count() as u32;
        self.pos = end;
        self.tokens.push(Token {
            kind,
            start,
            end,
            line,
        });
    }

    fn lex_whitespace(&mut self) {
        let mut end = self.pos;
        while end < self.bytes.len() && self.bytes[end].is_ascii_whitespace() {
            end += 1;
        }
        self.bump_to(end, TokenKind::Whitespace);
    }

    fn lex_line_comment(&mut self) {
        let end = self.src[self.pos..]
            .find('\n')
            .map_or(self.src.len(), |n| self.pos + n);
        self.bump_to(end, TokenKind::LineComment);
    }

    fn lex_block_comment(&mut self) {
        let mut depth = 0usize;
        let mut i = self.pos;
        while i < self.bytes.len() {
            if self.bytes[i] == b'/' && self.bytes.get(i + 1) == Some(&b'*') {
                depth += 1;
                i += 2;
            } else if self.bytes[i] == b'*' && self.bytes.get(i + 1) == Some(&b'/') {
                depth -= 1;
                i += 2;
                if depth == 0 {
                    break;
                }
            } else {
                i += 1;
            }
        }
        // An unterminated comment swallows the rest of the file — the same
        // recovery rustc uses before reporting the error.
        self.bump_to(
            i.max(self.pos + 2).min(self.bytes.len()),
            TokenKind::BlockComment,
        );
    }

    /// Quoted string with `\` escapes, starting at the opening quote offset.
    fn lex_escaped_string(&mut self, open_offset: usize, kind: TokenKind) {
        let mut i = self.pos + open_offset + 1;
        while i < self.bytes.len() {
            match self.bytes[i] {
                b'\\' => i += 2,
                b'"' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        self.bump_to(i.min(self.bytes.len()), kind);
    }

    /// `r`/`br`/`cr` raw string: `open_offset` points at the first `#` or
    /// the opening quote. Returns false if the text is not actually a raw
    /// string (e.g. `r#ident`), leaving the lexer untouched.
    fn try_lex_raw_string(&mut self, open_offset: usize) -> bool {
        let mut hashes = 0usize;
        while self.peek(open_offset + hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek(open_offset + hashes) != Some(b'"') {
            return false;
        }
        let mut i = self.pos + open_offset + hashes + 1;
        let closer: Vec<u8> = std::iter::once(b'"')
            .chain(std::iter::repeat_n(b'#', hashes))
            .collect();
        while i < self.bytes.len() {
            if self.bytes[i] == b'"' && self.bytes[i..].starts_with(&closer) {
                i += closer.len();
                break;
            }
            i += 1;
        }
        self.bump_to(i.min(self.bytes.len()), TokenKind::RawStr);
        true
    }

    /// `'` — lifetime, label, or char literal.
    fn lex_quote(&mut self) {
        match self.peek_char(1) {
            // `'\n'`, `'\u{1F600}'` — escaped char literal. The scan starts
            // at the backslash so the loop's own escape-skip consumes the
            // escaped character (`'\\'` must not eat its closing quote).
            Some('\\') => {
                let mut i = self.pos + 1;
                while i < self.bytes.len() {
                    match self.bytes[i] {
                        b'\\' => i += 2,
                        b'\'' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                self.bump_to(i.min(self.bytes.len()), TokenKind::Char);
            }
            Some(c) if is_ident_start(c) => {
                // `'a'` is a char literal; `'a` (no closing quote after one
                // char) is a lifetime — the exact disambiguation rustc uses.
                let after = self.pos + 1 + c.len_utf8();
                if self.bytes.get(after) == Some(&b'\'') {
                    self.bump_to(after + 1, TokenKind::Char);
                } else {
                    let mut end = after;
                    while end < self.bytes.len()
                        && self.src[end..]
                            .chars()
                            .next()
                            .is_some_and(is_ident_continue)
                    {
                        end += self.src[end..].chars().next().map_or(1, char::len_utf8);
                    }
                    self.bump_to(end, TokenKind::Lifetime);
                }
            }
            // `' '`, `'€'`, `'0'` — unescaped char literal.
            Some(c) => {
                let after = self.pos + 1 + c.len_utf8();
                if self.bytes.get(after) == Some(&b'\'') {
                    self.bump_to(after + 1, TokenKind::Char);
                } else {
                    // Stray quote (malformed source): single punct, keep going.
                    self.bump_to(self.pos + 1, TokenKind::Punct);
                }
            }
            None => self.bump_to(self.pos + 1, TokenKind::Punct),
        }
    }

    fn lex_number(&mut self) {
        let mut end = self.pos;
        // Integer part: digits, underscores, and radix/hex letters. Walking
        // alphanumerics also swallows integer suffixes (`10usize`).
        while end < self.bytes.len()
            && (self.bytes[end].is_ascii_alphanumeric() || self.bytes[end] == b'_')
        {
            end += 1;
        }
        // Fractional part only when the dot is followed by a digit, so
        // `1..n` ranges and `1.to_string()` leave the dot to the next token.
        if self.bytes.get(end) == Some(&b'.')
            && self.bytes.get(end + 1).is_some_and(u8::is_ascii_digit)
        {
            end += 1;
            while end < self.bytes.len()
                && (self.bytes[end].is_ascii_alphanumeric() || self.bytes[end] == b'_')
            {
                end += 1;
            }
        }
        // Exponent sign: `2e-3` stops the alphanumeric walk at `-`.
        if (self.bytes.get(end) == Some(&b'-') || self.bytes.get(end) == Some(&b'+'))
            && self.bytes[end - 1].eq_ignore_ascii_case(&b'e')
            && !self.src[self.pos..end].starts_with("0x")
            && self.bytes.get(end + 1).is_some_and(u8::is_ascii_digit)
        {
            end += 1;
            while end < self.bytes.len()
                && (self.bytes[end].is_ascii_alphanumeric() || self.bytes[end] == b'_')
            {
                end += 1;
            }
        }
        self.bump_to(end, TokenKind::Number);
    }

    fn lex_ident(&mut self) {
        let mut end = self.pos;
        while end < self.bytes.len()
            && self.src[end..]
                .chars()
                .next()
                .is_some_and(is_ident_continue)
        {
            end += self.src[end..].chars().next().map_or(1, char::len_utf8);
        }
        self.bump_to(end, TokenKind::Ident);
    }

    fn next_token(&mut self) {
        let b = self.bytes[self.pos];
        match b {
            _ if b.is_ascii_whitespace() => self.lex_whitespace(),
            b'/' if self.peek(1) == Some(b'/') => self.lex_line_comment(),
            b'/' if self.peek(1) == Some(b'*') => self.lex_block_comment(),
            b'"' => self.lex_escaped_string(0, TokenKind::Str),
            b'\'' => self.lex_quote(),
            b'r' | b'c' if self.peek(1) == Some(b'"') || self.peek(1) == Some(b'#') => {
                // `r"…"`/`r#"…"#` raw string vs `r#ident` raw identifier.
                if !self.try_lex_raw_string(1) {
                    if self.peek(1) == Some(b'#') {
                        self.bump_to(self.pos + 2, TokenKind::Punct);
                        self.lex_ident();
                        // Merge `r#` + ident into one Ident token.
                        let ident = self.tokens.pop().expect("ident just pushed");
                        let prefix = self.tokens.pop().expect("prefix just pushed");
                        self.tokens.push(Token {
                            kind: TokenKind::Ident,
                            start: prefix.start,
                            end: ident.end,
                            line: prefix.line,
                        });
                    } else {
                        self.lex_ident();
                    }
                }
            }
            b'b' if self.peek(1) == Some(b'"') => self.lex_escaped_string(1, TokenKind::Str),
            b'b' if self.peek(1) == Some(b'\'') => {
                // Byte literal `b'x'` — reuse the quote scanner one byte in.
                self.pos += 1;
                self.lex_quote();
                let lit = self.tokens.pop().expect("literal just pushed");
                self.tokens.push(Token {
                    start: lit.start - 1,
                    ..lit
                });
            }
            b'b' if self.peek(1) == Some(b'r') && self.peek(2) != Some(b'\'') => {
                if !self.try_lex_raw_string(2) {
                    self.lex_ident();
                }
            }
            _ if b.is_ascii_digit() => self.lex_number(),
            _ if self.peek_char(0).is_some_and(is_ident_start) => self.lex_ident(),
            _ => self.bump_to(self.pos + 1, TokenKind::Punct),
        }
    }
}

/// Lexes `src` into a lossless token stream: the concatenation of every
/// token's text is exactly `src`, and no token is empty.
pub fn lex(src: &str) -> Vec<Token> {
    let mut lexer = Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    };
    while lexer.pos < lexer.bytes.len() {
        lexer.next_token();
    }
    lexer.tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    #[test]
    fn strings_comments_and_code_separate() {
        let src = "let x = \"HashMap // not a comment\"; // HashMap\nuse HashMap;";
        let toks = kinds(src);
        assert!(toks.contains(&(TokenKind::Str, "\"HashMap // not a comment\"")));
        assert!(toks.contains(&(TokenKind::LineComment, "// HashMap")));
        assert_eq!(
            toks.iter()
                .filter(|(k, t)| *k == TokenKind::Ident && *t == "HashMap")
                .count(),
            1
        );
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let src = r####"let s = r#"quote " inside"#; let t = r##"deeper "# inside"##;"####;
        let toks = kinds(src);
        assert!(toks.contains(&(TokenKind::RawStr, r###"r#"quote " inside"#"###)));
        assert!(toks.contains(&(TokenKind::RawStr, r####"r##"deeper "# inside"##"####)));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ code";
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[1], (TokenKind::Ident, "code"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert!(toks.contains(&(TokenKind::Char, "'a'")));
        assert!(toks.contains(&(TokenKind::Char, "'\\n'")));
    }

    #[test]
    fn numbers_and_method_calls_on_literals() {
        let toks = kinds("let x = 1.5f64; let y = 1.to_string(); let r = 0..n; 2e-3;");
        assert!(toks.contains(&(TokenKind::Number, "1.5f64")));
        assert!(toks.contains(&(TokenKind::Number, "2e-3")));
        assert!(toks.contains(&(TokenKind::Ident, "to_string")));
        assert!(number_is_float("1.5f64"));
        assert!(number_is_float("2e-3"));
        assert!(!number_is_float("1"));
        assert!(!number_is_float("0xE0"));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.contains(&(TokenKind::Ident, "r#type")));
    }

    #[test]
    fn lossless_roundtrip() {
        let src = "fn main() { /* c */ let s = \"x\\\"y\"; } // tail";
        let rebuilt: String = lex(src).iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn line_numbers_are_one_based() {
        let src = "a\nb\n  c";
        let toks: Vec<(u32, &str)> = lex(src)
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| (t.line, t.text(src)))
            .collect();
        assert_eq!(toks, vec![(1, "a"), (2, "b"), (3, "c")]);
    }
}
