//! The gate the whole PR exists for: the shipped workspace is clean under
//! the D001-D006 catalog — honestly, not grandfathered. Every historical
//! violation was either fixed or carries a reasoned
//! `// mls-lint: allow(…)` that this run re-validates (a stale allow is a
//! finding too).

use std::path::Path;

#[test]
fn the_shipped_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report = mls_lint::lint_workspace(root).expect("workspace scan");
    assert!(
        report.files_scanned >= 100,
        "scan surface shrank suspiciously: {} files",
        report.files_scanned
    );
    assert!(
        report.clean(),
        "determinism lint findings in the shipped tree:\n{}",
        report.render_human()
    );
    // The audited suppressions: the fabric dispatcher's four wall-clock
    // reads (heartbeats/failover), each justified inline. Growing this
    // number is a deliberate act — it means a new allow was written.
    assert!(
        report.suppressed.len() <= 6,
        "suppression budget exceeded — review the new allows:\n{:#?}",
        report.suppressed
    );
    for s in &report.suppressed {
        assert!(
            s.reason.len() >= 20,
            "allow reasons must actually justify: {s:?}"
        );
    }
}
