//! D004 positive: `RandomState` seeds itself from OS entropy — hidden
//! nondeterminism even when the map is never iterated.

pub fn hasher() {
    let state = std::collections::hash_map::RandomState::new();
    let _ = state;
}
