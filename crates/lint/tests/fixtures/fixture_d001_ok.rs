//! D001 negative: ordered containers are the sanctioned source of
//! serialization order. (The ident in this doc comment — HashMap — must
//! not trip the lexer-backed rule either.)

pub fn encode() {
    let map = std::collections::BTreeMap::<String, u64>::new();
    let _ = map;
}
