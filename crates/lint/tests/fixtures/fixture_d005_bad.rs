//! D005 positive: debug-formatting in a wire path — `{:?}` float rendering
//! is not a stable encoding across compiler versions.

pub fn frame(value: f64) -> String {
    format!("{:?}", value)
}
