//! D007 positive: a bare `File::create` in an artifact path — a crash
//! between create and the final write leaves a torn file under the name
//! readers trust.

pub fn persist(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    let mut file = std::fs::File::create(path)?;
    file.write_all(bytes)
}
