//! Allow grammar: a violation suppressed with a reasoned allow is clean,
//! and the suppression is recorded in the report for audit.

pub fn distinct(xs: &[u64]) -> bool {
    // mls-lint: allow(D001): membership-only duplicate check, never iterated
    let mut seen = std::collections::HashSet::new();
    xs.iter().all(|x| seen.insert(*x))
}
