//! D006 negative: protocol failures surface as error codes the dispatcher
//! can turn into deterministic lease reassignment.

pub fn read_frame(input: &str) -> Result<u64, i32> {
    input.parse().map_err(|_| 3)
}
