//! D006 positive: an `unwrap` in a worker protocol path — a malformed
//! frame would abort the worker mid-stream instead of exiting with a
//! protocol error code.

pub fn read_frame(input: &str) -> u64 {
    input.parse().unwrap()
}
