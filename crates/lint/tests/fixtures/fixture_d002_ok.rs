//! D002 negative: the clock read sits behind an obs-enabled `.then(…)`
//! gate, so a deterministic run never reaches it.

pub fn stamp(observing: bool) -> Option<std::time::Instant> {
    observing.then(std::time::Instant::now)
}
