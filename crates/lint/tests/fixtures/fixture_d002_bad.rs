//! D002 positive: an ungated wall-clock read outside mls-obs.

pub fn stamp() -> u64 {
    let started = std::time::Instant::now();
    started.elapsed().as_nanos() as u64
}
