//! D005 negative: floats cross the wire as `to_bits()` — an exact u64,
//! re-hydrated with `from_bits` on the far side.

pub fn frame(value: f64) -> String {
    format!("{}", value.to_bits())
}
