//! D007 negative: durable artifacts go through the shared atomic writer
//! (tmp + fsync + rename), so readers only ever see complete files.
//! (The idents in this doc comment — File::create, fs::write — must not
//! trip the lexer-backed rule either.)

pub fn persist(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    mls_obs::atomic_write(path, bytes)
}
