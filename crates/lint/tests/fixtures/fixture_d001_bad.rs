//! D001 positive: a hash container in a serialization path — iteration
//! order would become artifact bytes.

pub fn encode() {
    let map = std::collections::HashMap::<String, u64>::new();
    let _ = map;
}
