//! D003 positive: an ad-hoc thread outside the sanctioned spawn sites.

pub fn fan_out() {
    std::thread::spawn(|| ());
}
