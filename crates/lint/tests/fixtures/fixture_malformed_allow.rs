//! Malformed allow: the reason is mandatory — an allow without one is its
//! own finding (A000), and the violation it failed to justify still fires.

pub fn sloppy() {
    // mls-lint: allow(D001)
    let map = std::collections::HashMap::<String, u64>::new();
    let _ = map;
}
