//! Stale allow: the code below was fixed (BTreeSet) but the allow
//! lingered — the justification must go with the violation (A001).

pub fn tidy(xs: &[u64]) -> bool {
    // mls-lint: allow(D001): membership-only duplicate check, never iterated
    let mut seen = std::collections::BTreeSet::new();
    xs.iter().all(|x| seen.insert(*x))
}
