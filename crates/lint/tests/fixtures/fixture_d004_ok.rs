//! D004 negative: the vendored seeded RNG is the only sanctioned
//! stochastic source.

pub fn rng(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}
