//! D003 negative: test code may spawn freely — the determinism contract
//! covers shipped paths, and the equivalence suites are themselves tests.

pub fn shipped() {}

#[cfg(test)]
mod tests {
    #[test]
    fn helper_threads_are_test_scoped() {
        let handle = std::thread::spawn(|| 1 + 1);
        assert_eq!(handle.join().unwrap(), 2);
    }
}
