//! The self-check corpus: every rule's positive and negative case pinned
//! against the fixture files, plus the exact JSON diagnostics for the whole
//! corpus as a golden artifact.
//!
//! Regenerate the golden after an intentional diagnostic change with
//! `MLS_LINT_BLESS=1 cargo test -p mls-lint --test fixtures`.

use std::fs;
use std::path::{Path, PathBuf};

use mls_lint::lint_files;

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_files() -> Vec<String> {
    let mut files: Vec<String> = fs::read_dir(fixtures_root())
        .expect("fixtures dir")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".rs"))
        .collect();
    files.sort();
    files
}

#[test]
fn every_rule_has_a_pinned_positive_and_negative_case() {
    for rule in ["D001", "D002", "D003", "D004", "D005", "D006", "D007"] {
        let lower = rule.to_lowercase();
        let bad = lint_files(&fixtures_root(), &[format!("fixture_{lower}_bad.rs")])
            .expect("lint bad fixture");
        assert_eq!(
            bad.findings.len(),
            1,
            "{rule} positive case must yield exactly one finding: {:?}",
            bad.findings
        );
        assert_eq!(bad.findings[0].rule, rule);
        assert!(!bad.clean(), "{rule} positive case must fail the run");

        let ok = lint_files(&fixtures_root(), &[format!("fixture_{lower}_ok.rs")])
            .expect("lint ok fixture");
        assert!(
            ok.clean(),
            "{rule} negative case must be clean: {:?}",
            ok.findings
        );
    }
}

#[test]
fn allow_grammar_suppresses_stales_and_rejects_malformed() {
    let root = fixtures_root();

    let allowed = lint_files(&root, &["fixture_allow_ok.rs".into()]).expect("lint allow fixture");
    assert!(allowed.clean(), "{:?}", allowed.findings);
    assert_eq!(allowed.suppressed.len(), 1);
    assert_eq!(allowed.suppressed[0].rule, "D001");
    assert_eq!(
        allowed.suppressed[0].reason,
        "membership-only duplicate check, never iterated"
    );

    let stale = lint_files(&root, &["fixture_stale_allow.rs".into()]).expect("lint stale fixture");
    assert_eq!(stale.findings.len(), 1, "{:?}", stale.findings);
    assert_eq!(stale.findings[0].rule, "A001");

    let malformed =
        lint_files(&root, &["fixture_malformed_allow.rs".into()]).expect("lint malformed fixture");
    let rules: Vec<&str> = malformed.findings.iter().map(|f| f.rule.as_str()).collect();
    assert!(
        rules.contains(&"A000") && rules.contains(&"D001"),
        "a reason-less allow is a finding and suppresses nothing: {rules:?}"
    );
}

#[test]
fn golden_json_diagnostics_for_the_whole_corpus() {
    let report = lint_files(&fixtures_root(), &fixture_files()).expect("lint corpus");
    let rendered = report.to_json();
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/fixtures_lint.json");
    if std::env::var_os("MLS_LINT_BLESS").is_some() {
        fs::create_dir_all(golden_path.parent().expect("golden dir")).expect("mkdir");
        fs::write(&golden_path, &rendered).expect("bless golden");
    }
    let golden = fs::read_to_string(&golden_path)
        .expect("golden missing — run MLS_LINT_BLESS=1 cargo test -p mls-lint --test fixtures");
    assert_eq!(
        rendered, golden,
        "diagnostics drifted from tests/golden/fixtures_lint.json; re-bless if intentional"
    );
}

#[test]
fn report_json_is_parseable() {
    let report = lint_files(&fixtures_root(), &fixture_files()).expect("lint corpus");
    let value: serde_json::Value =
        serde_json::parse(&report.to_json()).expect("report must be valid JSON");
    assert_eq!(
        value.get("schema").and_then(|v| v.as_str()),
        Some("mls-lint-v1")
    );
}
