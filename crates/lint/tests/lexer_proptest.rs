//! Property suite for the lexer: comment/string/raw-string stripping must
//! never misclassify tokens.
//!
//! Two attack angles:
//!
//! 1. **Generated interleavings** — random sequences of labeled fragments
//!    (code, strings with escapes, raw strings at varying hash depth,
//!    nested block comments, line comments) are concatenated into a source;
//!    the lexer must reproduce the exact label sequence and round-trip the
//!    bytes losslessly. Because the generator knows the ground truth, any
//!    leakage across a boundary (a string swallowing a comment, a comment
//!    swallowing code) fails loudly.
//! 2. **The real corpus** — every shipped and vendored source file in the
//!    workspace must lex losslessly, with sane invariants (no empty tokens,
//!    no identifier containing a quote).

use proptest::prelude::*;

use mls_lint::lexer::{lex, Token, TokenKind};

/// A fragment with the classification the lexer must assign to it.
#[derive(Debug, Clone, Copy)]
struct Fragment {
    text: &'static str,
    kind: TokenKind,
}

/// The fragment pool. Every entry is self-delimiting so any concatenation
/// (joined by a space) is unambiguous; the tricky members deliberately
/// embed the other kinds' openers.
const FRAGMENTS: [Fragment; 14] = [
    Fragment {
        text: "ident_a",
        kind: TokenKind::Ident,
    },
    Fragment {
        text: "HashMap",
        kind: TokenKind::Ident,
    },
    Fragment {
        text: "r#type",
        kind: TokenKind::Ident,
    },
    Fragment {
        text: "1.5e-3f64",
        kind: TokenKind::Number,
    },
    Fragment {
        text: "0xE0",
        kind: TokenKind::Number,
    },
    Fragment {
        text: "\"plain string\"",
        kind: TokenKind::Str,
    },
    Fragment {
        text: "\"esc \\\" // not a comment\"",
        kind: TokenKind::Str,
    },
    Fragment {
        text: "\"/* not a comment */\"",
        kind: TokenKind::Str,
    },
    Fragment {
        text: "r#\"raw \" quote\"#",
        kind: TokenKind::RawStr,
    },
    Fragment {
        text: "r##\"deeper \"# still\"##",
        kind: TokenKind::RawStr,
    },
    Fragment {
        text: "// line comment \"not a string\"",
        kind: TokenKind::LineComment,
    },
    Fragment {
        text: "/* block /* nested */ \"not a string\" */",
        kind: TokenKind::BlockComment,
    },
    Fragment {
        text: "'x'",
        kind: TokenKind::Char,
    },
    Fragment {
        text: "'static",
        kind: TokenKind::Lifetime,
    },
];

/// Joins fragments into one source. A line comment must be the last thing
/// on its line, so each fragment sits on its own line — which also keeps
/// line numbering checkable.
fn compose(indices: &[usize]) -> (String, Vec<Fragment>) {
    let fragments: Vec<Fragment> = indices.iter().map(|&i| FRAGMENTS[i]).collect();
    let source = fragments
        .iter()
        .map(|f| f.text)
        .collect::<Vec<_>>()
        .join("\n");
    (source, fragments)
}

fn meaningful(tokens: &[Token]) -> Vec<Token> {
    tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Whitespace)
        .copied()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512 })]

    #[test]
    fn generated_interleavings_classify_exactly(
        indices in prop::collection::vec(0usize..FRAGMENTS.len(), 0..40),
    ) {
        let (source, fragments) = compose(&indices);
        let tokens = lex(&source);

        // Lossless: token texts concatenate back to the source.
        let rebuilt: String = tokens.iter().map(|t| t.text(&source)).collect();
        prop_assert_eq!(&rebuilt, &source);

        // Exact classification: one token per fragment, right kind, right
        // text, right 1-based line.
        let code = meaningful(&tokens);
        prop_assert_eq!(code.len(), fragments.len());
        for (i, (token, fragment)) in code.iter().zip(&fragments).enumerate() {
            prop_assert_eq!(token.kind, fragment.kind, "fragment {} of {:?}", i, indices);
            prop_assert_eq!(token.text(&source), fragment.text);
            prop_assert_eq!(token.line as usize, i + 1);
        }
    }
}

/// Lexes one real file and checks the invariants the rule engine relies on.
fn check_file(path: &std::path::Path) {
    let src = std::fs::read_to_string(path).expect("readable source");
    let tokens = lex(&src);
    let rebuilt: String = tokens.iter().map(|t| t.text(&src)).collect();
    assert_eq!(rebuilt, src, "lossless round-trip failed for {path:?}");
    for t in &tokens {
        assert!(t.end > t.start, "empty token in {path:?}");
        let text = t.text(&src);
        match t.kind {
            TokenKind::Ident => assert!(
                !text.contains(['"', '\'', '/']),
                "ident {text:?} leaked a delimiter in {path:?}"
            ),
            TokenKind::Str => assert!(text.starts_with(['"', 'b', 'c'])),
            TokenKind::RawStr => assert!(text.starts_with(['r', 'b', 'c'])),
            TokenKind::LineComment => assert!(text.starts_with("//")),
            TokenKind::BlockComment => assert!(text.starts_with("/*")),
            _ => {}
        }
    }
}

#[test]
fn the_vendored_and_workspace_corpus_lexes_losslessly() {
    // The workspace root, two levels above this crate.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root");
    let mut count = 0usize;
    let mut stack = vec![root.join("vendor"), root.join("crates"), root.join("src")];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("readable dir") {
            let path = entry.expect("entry").path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if name != "target" && name != ".git" {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                check_file(&path);
                count += 1;
            }
        }
    }
    assert!(
        count > 100,
        "corpus shrank suspiciously: only {count} files lexed"
    );
}
