//! Compute-platform model: turns per-module workloads into latencies and
//! resource-utilisation traces.
//!
//! The paper runs the same software on three platforms: a desktop for
//! Software-in-the-Loop, an NVIDIA Jetson Nano (4 GB, MAXN power mode,
//! TensorRT-optimised detector) for Hardware-in-the-Loop, and the same Jetson
//! on the real vehicle where the live camera pipeline adds further load. The
//! observed consequences are latency — "trajectories failed to create in time
//! when the drone was heading towards a newly discovered obstacle" — and
//! near-saturated CPU/memory (≈2.2 GB of 2.9 GB usable, all four cores busy,
//! Fig. 7).
//!
//! [`ComputeModel`] reproduces those consequences without real hardware: each
//! landing-system module submits its work in *reference CPU-seconds* (the
//! cost on the SIL desktop), the model scales it by the platform's speed,
//! inflates it under CPU contention and memory pressure, and records a
//! utilisation trace that the Fig. 7 harness replays.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Errors produced by the compute model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ComputeError {
    /// A profile parameter was out of range.
    InvalidProfile {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for ComputeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComputeError::InvalidProfile { reason } => {
                write!(f, "invalid compute profile: {reason}")
            }
        }
    }
}

impl Error for ComputeError {}

/// The software modules that consume compute (Fig. 1's software architecture).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Marker detection inference (OpenCV or TPH-YOLO surrogate).
    MarkerDetection,
    /// Point-cloud insertion / occupancy-map maintenance.
    Mapping,
    /// Path planning (A* or RRT*).
    PathPlanning,
    /// Decision-making state machine.
    DecisionMaking,
    /// State estimation (EKF) and sensor drivers.
    StateEstimation,
    /// Camera acquisition/encoding pipeline (significant only on the real
    /// vehicle, where frames are captured and shipped live).
    CameraPipeline,
}

impl TaskKind {
    /// All task kinds, in a stable reporting order.
    pub const ALL: [TaskKind; 6] = [
        TaskKind::MarkerDetection,
        TaskKind::Mapping,
        TaskKind::PathPlanning,
        TaskKind::DecisionMaking,
        TaskKind::StateEstimation,
        TaskKind::CameraPipeline,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            TaskKind::MarkerDetection => "detection",
            TaskKind::Mapping => "mapping",
            TaskKind::PathPlanning => "planning",
            TaskKind::DecisionMaking => "decision",
            TaskKind::StateEstimation => "estimation",
            TaskKind::CameraPipeline => "camera",
        }
    }

    /// `true` for workloads that can be offloaded to the GPU / TensorRT.
    pub fn gpu_accelerated(self) -> bool {
        matches!(self, TaskKind::MarkerDetection)
    }
}

/// A compute platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputeProfile {
    /// Human-readable name.
    pub name: String,
    /// Number of CPU cores.
    pub cpu_cores: f64,
    /// Per-core speed relative to the SIL desktop (1.0 = desktop).
    pub core_speed: f64,
    /// Memory available to the landing system, MiB.
    pub available_memory_mb: f64,
    /// Speed-up factor applied to GPU-accelerated tasks (TensorRT on the
    /// Jetson; 1.0 when inference runs on the CPU).
    pub gpu_speedup: f64,
    /// Fraction of CPU permanently consumed by platform overhead (OS, camera
    /// drivers, telemetry).
    pub background_cpu: f64,
    /// Memory permanently consumed by platform overhead, MiB.
    pub background_memory_mb: f64,
}

impl ComputeProfile {
    /// The SIL desktop: everything is effectively free.
    pub fn desktop_sil() -> Self {
        Self {
            name: "desktop-sil".to_string(),
            cpu_cores: 16.0,
            core_speed: 1.0,
            available_memory_mb: 32_768.0,
            gpu_speedup: 4.0,
            background_cpu: 0.02,
            background_memory_mb: 1_500.0,
        }
    }

    /// Jetson Nano (4 GB, MAXN) as used in the HIL campaign: four slow cores,
    /// ~2.9 GiB usable after the OS, TensorRT acceleration for the detector.
    pub fn jetson_nano_maxn() -> Self {
        Self {
            name: "jetson-nano-maxn".to_string(),
            cpu_cores: 4.0,
            core_speed: 0.28,
            available_memory_mb: 2_900.0,
            gpu_speedup: 6.0,
            background_cpu: 0.08,
            background_memory_mb: 550.0,
        }
    }

    /// The same Jetson Nano on the real vehicle, where the live camera
    /// pipeline and telemetry consume extra CPU and memory (§V-C, Fig. 7).
    pub fn jetson_nano_realworld() -> Self {
        Self {
            name: "jetson-nano-realworld".to_string(),
            background_cpu: 0.22,
            background_memory_mb: 900.0,
            ..Self::jetson_nano_maxn()
        }
    }

    /// Validates the profile.
    ///
    /// # Errors
    ///
    /// Returns [`ComputeError::InvalidProfile`] for non-positive cores,
    /// speed, or memory.
    pub fn validate(&self) -> Result<(), ComputeError> {
        if self.cpu_cores <= 0.0 || self.core_speed <= 0.0 {
            return Err(ComputeError::InvalidProfile {
                reason: "cores and core speed must be positive".to_string(),
            });
        }
        if self.available_memory_mb <= 0.0 {
            return Err(ComputeError::InvalidProfile {
                reason: "available memory must be positive".to_string(),
            });
        }
        if !(0.0..1.0).contains(&self.background_cpu) {
            return Err(ComputeError::InvalidProfile {
                reason: "background CPU must be in [0, 1)".to_string(),
            });
        }
        Ok(())
    }

    /// Total reference CPU-seconds the platform can execute per wall-clock
    /// second (excluding background load).
    pub fn capacity(&self) -> f64 {
        self.cpu_cores * self.core_speed * (1.0 - self.background_cpu)
    }
}

/// One point of the resource-utilisation trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceSample {
    /// Simulation time, seconds.
    pub time: f64,
    /// CPU utilisation in `[0, 1]` (1 = all cores busy).
    pub cpu: f64,
    /// Resident memory, MiB.
    pub memory_mb: f64,
    /// Worst task latency observed this tick, seconds.
    pub worst_latency: f64,
}

/// Result of submitting one task to the model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskOutcome {
    /// Wall-clock latency until the task's result is available, seconds.
    pub latency: f64,
    /// Reference CPU-seconds charged for the task.
    pub charged_cost: f64,
}

/// The compute model: submit work each tick, read latencies and the trace.
#[derive(Debug, Clone)]
pub struct ComputeModel {
    profile: ComputeProfile,
    resident: HashMap<TaskKind, f64>,
    tick_submitted: f64,
    tick_worst_latency: f64,
    tick_dt: f64,
    trace: Vec<ResourceSample>,
    time: f64,
    throttle: f64,
}

impl ComputeModel {
    /// Creates a model for the given platform.
    ///
    /// # Errors
    ///
    /// Returns [`ComputeError::InvalidProfile`] when the profile is invalid.
    pub fn new(profile: ComputeProfile) -> Result<Self, ComputeError> {
        profile.validate()?;
        Ok(Self {
            profile,
            resident: HashMap::new(),
            tick_submitted: 0.0,
            tick_worst_latency: 0.0,
            tick_dt: 0.02,
            trace: Vec::new(),
            time: 0.0,
            throttle: 1.0,
        })
    }

    /// Sets the platform throttle factor (thermal / power capping): `1.0` is
    /// full speed, lower values scale down both per-core speed and total
    /// capacity. Clamped to `[0.05, 1.0]`.
    pub fn set_throttle(&mut self, throttle: f64) {
        self.throttle = throttle.clamp(0.05, 1.0);
    }

    /// The current throttle factor.
    pub fn throttle(&self) -> f64 {
        self.throttle
    }

    /// The platform profile.
    pub fn profile(&self) -> &ComputeProfile {
        &self.profile
    }

    /// Declares the resident memory of a module (model weights, map storage,
    /// image buffers), MiB.
    pub fn set_resident_memory(&mut self, task: TaskKind, megabytes: f64) {
        self.resident.insert(task, megabytes.max(0.0));
    }

    /// Total resident memory including platform overhead, MiB.
    pub fn memory_in_use(&self) -> f64 {
        self.profile.background_memory_mb + self.resident.values().sum::<f64>()
    }

    /// Fraction of available memory currently used.
    pub fn memory_pressure(&self) -> f64 {
        self.memory_in_use() / self.profile.available_memory_mb
    }

    /// Starts a new scheduling tick of length `dt` seconds.
    pub fn begin_tick(&mut self, dt: f64) {
        self.tick_dt = dt.max(1e-4);
        self.tick_submitted = 0.0;
        self.tick_worst_latency = 0.0;
    }

    /// Submits a task costing `reference_cost` CPU-seconds on the SIL desktop
    /// and returns its latency on this platform under the load submitted so
    /// far this tick.
    pub fn submit(&mut self, task: TaskKind, reference_cost: f64) -> TaskOutcome {
        let reference_cost = reference_cost.max(0.0);
        let gpu = if task.gpu_accelerated() {
            self.profile.gpu_speedup.max(1.0)
        } else {
            1.0
        };
        let effective_cost = reference_cost / gpu;
        self.tick_submitted += effective_cost;

        // Contention: when the work submitted this tick exceeds what the
        // platform can execute within the tick, every task slows down
        // proportionally.
        let capacity_per_tick = self.profile.capacity() * self.throttle * self.tick_dt;
        let contention = (self.tick_submitted / capacity_per_tick.max(1e-9)).max(1.0);

        // Memory pressure beyond 90 % causes additional thrashing latency.
        let pressure = self.memory_pressure();
        let memory_penalty = if pressure > 0.9 {
            1.0 + (pressure - 0.9) * 6.0
        } else {
            1.0
        };

        // A task runs on one core: base latency is its cost divided by the
        // (possibly throttled) per-core speed, inflated by contention and
        // memory pressure.
        let latency = (effective_cost / (self.profile.core_speed * self.throttle))
            * contention
            * memory_penalty;

        self.tick_worst_latency = self.tick_worst_latency.max(latency);
        TaskOutcome {
            latency,
            charged_cost: effective_cost,
        }
    }

    /// Ends the tick, recording a trace sample at `time` seconds.
    pub fn end_tick(&mut self, time: f64) -> ResourceSample {
        self.time = time;
        let capacity_per_tick = self.profile.capacity() * self.throttle * self.tick_dt;
        let busy = (self.tick_submitted / capacity_per_tick.max(1e-9)).min(1.0);
        let cpu =
            (self.profile.background_cpu + busy * (1.0 - self.profile.background_cpu)).min(1.0);
        let sample = ResourceSample {
            time,
            cpu,
            memory_mb: self.memory_in_use().min(self.profile.available_memory_mb),
            worst_latency: self.tick_worst_latency,
        };
        self.trace.push(sample.clone());
        sample
    }

    /// The recorded utilisation trace.
    pub fn trace(&self) -> &[ResourceSample] {
        &self.trace
    }

    /// Mean CPU utilisation over the recorded trace.
    pub fn average_cpu(&self) -> f64 {
        if self.trace.is_empty() {
            return 0.0;
        }
        self.trace.iter().map(|s| s.cpu).sum::<f64>() / self.trace.len() as f64
    }

    /// Peak memory over the recorded trace, MiB.
    pub fn peak_memory(&self) -> f64 {
        self.trace.iter().map(|s| s.memory_mb).fold(0.0, f64::max)
    }

    /// Clears the recorded trace (memory declarations are kept).
    pub fn reset_trace(&mut self) {
        self.trace.clear();
        self.time = 0.0;
    }
}

/// Reference CPU costs (seconds on the SIL desktop) of one invocation of each
/// module, parameterised by its workload. These constants were measured from
/// the Criterion micro-benchmarks of the corresponding crates and define the
/// exchange rate between "work done" and "platform time".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadModel {
    /// Cost of one classical-detector inference on a 160x120 frame.
    pub detection_base: f64,
    /// Cost of inserting one depth point into the occupancy map.
    pub mapping_per_point: f64,
    /// Cost of one A*/RRT* planning iteration (node expansion / sample).
    pub planning_per_iteration: f64,
    /// Cost of one decision-state-machine tick.
    pub decision_tick: f64,
    /// Cost of one EKF predict+update cycle.
    pub estimation_tick: f64,
    /// Cost per camera frame of the live acquisition pipeline.
    pub camera_per_frame: f64,
}

impl Default for WorkloadModel {
    fn default() -> Self {
        Self {
            detection_base: 0.004,
            mapping_per_point: 2.5e-6,
            planning_per_iteration: 6.0e-6,
            decision_tick: 2.0e-5,
            estimation_tick: 1.5e-5,
            camera_per_frame: 0.003,
        }
    }
}

impl WorkloadModel {
    /// Cost of one detector inference given the detector's relative cost
    /// (1.0 = classical OpenCV pipeline, ~35 = TPH-YOLO surrogate).
    pub fn detection_cost(&self, relative_cost: f64) -> f64 {
        self.detection_base * relative_cost.max(0.1)
    }

    /// Cost of inserting a point cloud of `points` points.
    pub fn mapping_cost(&self, points: usize) -> f64 {
        self.mapping_per_point * points as f64
    }

    /// Cost of a planning invocation that used `iterations` node expansions
    /// or samples.
    pub fn planning_cost(&self, iterations: usize) -> f64 {
        self.planning_per_iteration * iterations as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_validate_and_rank_by_capacity() {
        for p in [
            ComputeProfile::desktop_sil(),
            ComputeProfile::jetson_nano_maxn(),
            ComputeProfile::jetson_nano_realworld(),
        ] {
            p.validate().unwrap();
        }
        assert!(
            ComputeProfile::desktop_sil().capacity()
                > ComputeProfile::jetson_nano_maxn().capacity()
        );
        assert!(
            ComputeProfile::jetson_nano_maxn().capacity()
                > ComputeProfile::jetson_nano_realworld().capacity()
        );
    }

    #[test]
    fn invalid_profiles_are_rejected() {
        let mut p = ComputeProfile::desktop_sil();
        p.cpu_cores = 0.0;
        assert!(p.validate().is_err());
        let mut p = ComputeProfile::desktop_sil();
        p.available_memory_mb = -1.0;
        assert!(p.validate().is_err());
        let mut p = ComputeProfile::desktop_sil();
        p.background_cpu = 1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn same_work_is_slower_on_the_jetson() {
        let mut desktop = ComputeModel::new(ComputeProfile::desktop_sil()).unwrap();
        let mut jetson = ComputeModel::new(ComputeProfile::jetson_nano_maxn()).unwrap();
        desktop.begin_tick(0.02);
        jetson.begin_tick(0.02);
        let d = desktop.submit(TaskKind::PathPlanning, 0.01);
        let j = jetson.submit(TaskKind::PathPlanning, 0.01);
        assert!(
            j.latency > d.latency * 2.0,
            "jetson {} vs desktop {}",
            j.latency,
            d.latency
        );
    }

    #[test]
    fn gpu_acceleration_helps_detection_only() {
        let mut jetson = ComputeModel::new(ComputeProfile::jetson_nano_maxn()).unwrap();
        jetson.begin_tick(0.1);
        let detection = jetson.submit(TaskKind::MarkerDetection, 0.1);
        jetson.begin_tick(0.1);
        let planning = jetson.submit(TaskKind::PathPlanning, 0.1);
        assert!(detection.latency < planning.latency);
        assert!(detection.charged_cost < planning.charged_cost);
    }

    #[test]
    fn contention_inflates_latency() {
        let mut jetson = ComputeModel::new(ComputeProfile::jetson_nano_maxn()).unwrap();
        jetson.begin_tick(0.02);
        let alone = jetson.submit(TaskKind::PathPlanning, 0.01);
        // New tick with heavy prior load.
        jetson.begin_tick(0.02);
        jetson.submit(TaskKind::MarkerDetection, 0.2);
        jetson.submit(TaskKind::Mapping, 0.05);
        let contended = jetson.submit(TaskKind::PathPlanning, 0.01);
        assert!(
            contended.latency > alone.latency * 2.0,
            "contended {} vs alone {}",
            contended.latency,
            alone.latency
        );
    }

    #[test]
    fn memory_pressure_penalises_latency() {
        let mut jetson = ComputeModel::new(ComputeProfile::jetson_nano_maxn()).unwrap();
        jetson.begin_tick(0.02);
        let before = jetson.submit(TaskKind::Mapping, 0.01);
        jetson.set_resident_memory(TaskKind::MarkerDetection, 1_500.0);
        jetson.set_resident_memory(TaskKind::Mapping, 900.0);
        assert!(jetson.memory_pressure() > 0.9);
        jetson.begin_tick(0.02);
        let after = jetson.submit(TaskKind::Mapping, 0.01);
        assert!(after.latency > before.latency);
    }

    #[test]
    fn trace_records_cpu_and_memory() {
        let mut jetson = ComputeModel::new(ComputeProfile::jetson_nano_maxn()).unwrap();
        jetson.set_resident_memory(TaskKind::MarkerDetection, 800.0);
        jetson.set_resident_memory(TaskKind::Mapping, 400.0);
        for i in 0..50 {
            jetson.begin_tick(0.02);
            jetson.submit(TaskKind::StateEstimation, 1.5e-5);
            if i % 10 == 0 {
                jetson.submit(TaskKind::MarkerDetection, 0.1);
            }
            jetson.end_tick(i as f64 * 0.02);
        }
        assert_eq!(jetson.trace().len(), 50);
        assert!(jetson.average_cpu() > 0.05);
        let expected_memory = 550.0 + 800.0 + 400.0;
        assert!((jetson.peak_memory() - expected_memory).abs() < 1e-6);
        jetson.reset_trace();
        assert!(jetson.trace().is_empty());
    }

    #[test]
    fn realworld_profile_has_higher_baseline_cpu_than_hil() {
        let mut hil = ComputeModel::new(ComputeProfile::jetson_nano_maxn()).unwrap();
        let mut real = ComputeModel::new(ComputeProfile::jetson_nano_realworld()).unwrap();
        for model in [&mut hil, &mut real] {
            for i in 0..20 {
                model.begin_tick(0.02);
                model.submit(TaskKind::StateEstimation, 1.5e-5);
                model.end_tick(i as f64 * 0.02);
            }
        }
        assert!(real.average_cpu() > hil.average_cpu());
    }

    #[test]
    fn workload_model_scales_with_work() {
        let w = WorkloadModel::default();
        assert!(w.detection_cost(35.0) > w.detection_cost(1.0) * 10.0);
        assert!(w.mapping_cost(10_000) > w.mapping_cost(100) * 50.0);
        assert!(w.planning_cost(20_000) > w.planning_cost(200));
    }

    #[test]
    fn errors_are_send_sync_and_display() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ComputeError>();
        let e = ComputeError::InvalidProfile {
            reason: "x".to_string(),
        };
        assert!(e.to_string().contains('x'));
    }
}
