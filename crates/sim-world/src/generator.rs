//! Procedural map generation.
//!
//! The paper built ten custom AirSim / Unreal maps spanning rural, suburban
//! and urban areas. This generator reproduces the *statistical structure* of
//! those maps — obstacle class mix, footprint sizes, heights and densities —
//! from a seed, so the whole benchmark is regenerable and every run sees the
//! same worlds.

use mls_geom::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::map::{MapStyle, WorldMap};
use crate::obstacle::Obstacle;

/// Parameters controlling procedural map generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapGeneratorConfig {
    /// Half-extent of the square map, metres.
    pub half_extent: f64,
    /// Radius around the origin kept free of obstacles (take-off area).
    pub clear_start_radius: f64,
    /// Number of buildings for (rural, suburban, urban) styles.
    pub buildings: (usize, usize, usize),
    /// Number of trees for (rural, suburban, urban) styles.
    pub trees: (usize, usize, usize),
    /// Number of poles for (rural, suburban, urban) styles.
    pub poles: (usize, usize, usize),
    /// Building footprint side range, metres.
    pub building_size: (f64, f64),
    /// Building height range for (low, high) construction, metres.
    pub building_height: (f64, f64),
    /// Extra height multiplier applied to urban buildings.
    pub urban_height_factor: f64,
    /// Tree trunk height range, metres.
    pub trunk_height: (f64, f64),
    /// Tree canopy radius range, metres.
    pub canopy_radius: (f64, f64),
}

impl Default for MapGeneratorConfig {
    fn default() -> Self {
        Self {
            half_extent: 80.0,
            clear_start_radius: 6.0,
            buildings: (1, 6, 14),
            trees: (18, 10, 4),
            poles: (1, 6, 8),
            building_size: (6.0, 18.0),
            building_height: (4.0, 14.0),
            urban_height_factor: 2.2,
            trunk_height: (3.0, 6.0),
            canopy_radius: (1.5, 3.5),
        }
    }
}

/// Deterministic procedural map generator.
#[derive(Debug, Clone)]
pub struct MapGenerator {
    config: MapGeneratorConfig,
}

impl Default for MapGenerator {
    fn default() -> Self {
        Self::new(MapGeneratorConfig::default())
    }
}

impl MapGenerator {
    /// Creates a generator with an explicit configuration.
    pub fn new(config: MapGeneratorConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &MapGeneratorConfig {
        &self.config
    }

    /// Generates a map of the given style from a seed. Markers are *not*
    /// placed here; scenario generation adds them once the landing target is
    /// chosen.
    pub fn generate(&self, name: impl Into<String>, style: MapStyle, seed: u64) -> WorldMap {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut map = WorldMap::empty(name, style, cfg.half_extent);

        let (n_buildings, n_trees, n_poles) = match style {
            MapStyle::Rural => (cfg.buildings.0, cfg.trees.0, cfg.poles.0),
            MapStyle::Suburban => (cfg.buildings.1, cfg.trees.1, cfg.poles.1),
            MapStyle::Urban => (cfg.buildings.2, cfg.trees.2, cfg.poles.2),
        };

        for _ in 0..n_buildings {
            let center = self.sample_clear_position(&mut rng, cfg);
            let width = rng.random_range(cfg.building_size.0..=cfg.building_size.1);
            let depth = rng.random_range(cfg.building_size.0..=cfg.building_size.1);
            let mut height = rng.random_range(cfg.building_height.0..=cfg.building_height.1);
            if style == MapStyle::Urban {
                height *= rng.random_range(1.0..=cfg.urban_height_factor);
            }
            map.obstacles
                .push(Obstacle::building(center, width, depth, height));
        }
        for _ in 0..n_trees {
            let base = self.sample_clear_position(&mut rng, cfg);
            let trunk = rng.random_range(cfg.trunk_height.0..=cfg.trunk_height.1);
            let canopy = rng.random_range(cfg.canopy_radius.0..=cfg.canopy_radius.1);
            map.obstacles.push(Obstacle::tree(base, trunk, canopy));
        }
        for _ in 0..n_poles {
            let base = self.sample_clear_position(&mut rng, cfg);
            let height = rng.random_range(4.0..=9.0);
            map.obstacles.push(Obstacle::pole(base, height));
        }
        map
    }

    /// Samples a ground position outside the protected take-off area.
    fn sample_clear_position(&self, rng: &mut StdRng, cfg: &MapGeneratorConfig) -> Vec3 {
        loop {
            let margin = 4.0;
            let x = rng.random_range(-(cfg.half_extent - margin)..=(cfg.half_extent - margin));
            let y = rng.random_range(-(cfg.half_extent - margin)..=(cfg.half_extent - margin));
            let p = Vec3::new(x, y, 0.0);
            if p.horizontal_distance(Vec3::ZERO) > cfg.clear_start_radius + margin {
                return p;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let generator = MapGenerator::default();
        let a = generator.generate("m", MapStyle::Urban, 9);
        let b = generator.generate("m", MapStyle::Urban, 9);
        let c = generator.generate("m", MapStyle::Urban, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn urban_maps_are_denser_and_taller_than_rural() {
        let generator = MapGenerator::default();
        let urban = generator.generate("u", MapStyle::Urban, 3);
        let rural = generator.generate("r", MapStyle::Rural, 3);
        assert!(urban.obstacle_density() > rural.obstacle_density());
        assert!(urban.max_obstacle_height() >= rural.max_obstacle_height());
    }

    #[test]
    fn rural_maps_have_more_trees_than_buildings() {
        let map = MapGenerator::default().generate("r", MapStyle::Rural, 5);
        let trees = map
            .obstacles
            .iter()
            .filter(|o| o.has_porous_volume())
            .count();
        let solids = map.obstacles.len() - trees;
        assert!(trees > solids);
    }

    #[test]
    fn takeoff_area_is_kept_clear() {
        let generator = MapGenerator::default();
        for seed in 0..5 {
            let map = generator.generate("m", MapStyle::Urban, seed);
            for z in [1.0, 3.0, 6.0] {
                assert!(
                    !map.occupied(Vec3::new(0.0, 0.0, z)),
                    "origin column must stay free (seed {seed}, z {z})"
                );
            }
        }
    }

    #[test]
    fn obstacles_stay_inside_bounds() {
        let map = MapGenerator::default().generate("m", MapStyle::Suburban, 12);
        for o in &map.obstacles {
            let bb = o.bounding_box();
            assert!(bb.center().x.abs() <= map.bounds.max().x);
            assert!(bb.center().y.abs() <= map.bounds.max().y);
        }
    }
}
