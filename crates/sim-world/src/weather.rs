//! Environmental conditions: weather, lighting and their effect on sensing.
//!
//! The paper's benchmark splits its 100 scenarios "equally ... between normal
//! and adverse weather conditions" and the real-world campaign attributes GPS
//! drift and degraded landings to "poor weather" and wind during the final
//! descent. [`Weather`] captures those effects as continuous intensities that
//! the sensor models (camera degradation, GPS drift, wind force) consume.

use mls_geom::Vec3;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Continuous description of the environmental conditions of a scenario.
///
/// All intensity fields are in `[0, 1]`; wind is in metres per second.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Weather {
    /// Short human-readable label ("clear", "fog", ...).
    pub label: String,
    /// Fog density.
    pub fog: f64,
    /// Rain intensity.
    pub rain: f64,
    /// Sun-glare intensity on the ground.
    pub glare: f64,
    /// Low-light level (0 = bright day, 1 = deep dusk).
    pub low_light: f64,
    /// Mean wind vector, m/s (ENU).
    pub wind_mean: Vec3,
    /// Peak gust speed added on top of the mean wind, m/s.
    pub wind_gust: f64,
    /// Degradation of the GNSS constellation/geometry in `[0, 1]`; drives the
    /// GPS random-walk drift the real-world campaign observed.
    pub gps_degradation: f64,
}

impl Default for Weather {
    fn default() -> Self {
        Self::clear()
    }
}

impl Weather {
    /// Clear, calm conditions.
    pub fn clear() -> Self {
        Self {
            label: "clear".to_string(),
            fog: 0.0,
            rain: 0.0,
            glare: 0.05,
            low_light: 0.0,
            wind_mean: Vec3::new(0.5, 0.2, 0.0),
            wind_gust: 0.3,
            gps_degradation: 0.05,
        }
    }

    /// Overcast but otherwise benign conditions.
    pub fn overcast() -> Self {
        Self {
            label: "overcast".to_string(),
            fog: 0.1,
            rain: 0.0,
            glare: 0.0,
            low_light: 0.15,
            wind_mean: Vec3::new(1.0, 0.5, 0.0),
            wind_gust: 0.8,
            gps_degradation: 0.1,
        }
    }

    /// Thick fog.
    pub fn fog() -> Self {
        Self {
            label: "fog".to_string(),
            fog: 0.8,
            rain: 0.1,
            glare: 0.0,
            low_light: 0.3,
            wind_mean: Vec3::new(0.5, 0.0, 0.0),
            wind_gust: 0.4,
            gps_degradation: 0.35,
        }
    }

    /// Steady rain with gusty wind.
    pub fn rain() -> Self {
        Self {
            label: "rain".to_string(),
            fog: 0.2,
            rain: 0.8,
            glare: 0.0,
            low_light: 0.35,
            wind_mean: Vec3::new(2.5, 1.5, 0.0),
            wind_gust: 2.5,
            gps_degradation: 0.55,
        }
    }

    /// Harsh low sun producing glare and long shadows.
    pub fn sun_glare() -> Self {
        Self {
            label: "sun-glare".to_string(),
            fog: 0.0,
            rain: 0.0,
            glare: 0.85,
            low_light: 0.0,
            wind_mean: Vec3::new(1.0, -0.5, 0.0),
            wind_gust: 0.6,
            gps_degradation: 0.1,
        }
    }

    /// Strong gusty wind under an otherwise clear sky.
    pub fn windy() -> Self {
        Self {
            label: "windy".to_string(),
            fog: 0.0,
            rain: 0.0,
            glare: 0.1,
            low_light: 0.0,
            wind_mean: Vec3::new(5.0, 2.0, 0.0),
            wind_gust: 3.5,
            gps_degradation: 0.2,
        }
    }

    /// Dusk: low light and slightly degraded GNSS geometry.
    pub fn dusk() -> Self {
        Self {
            label: "dusk".to_string(),
            fog: 0.1,
            rain: 0.0,
            glare: 0.0,
            low_light: 0.7,
            wind_mean: Vec3::new(0.8, 0.3, 0.0),
            wind_gust: 0.5,
            gps_degradation: 0.25,
        }
    }

    /// The set of conditions the benchmark classes as "normal weather".
    pub fn normal_presets() -> Vec<Weather> {
        vec![Self::clear(), Self::overcast()]
    }

    /// The set of conditions the benchmark classes as "adverse weather".
    pub fn adverse_presets() -> Vec<Weather> {
        vec![
            Self::fog(),
            Self::rain(),
            Self::sun_glare(),
            Self::windy(),
            Self::dusk(),
        ]
    }

    /// Samples a normal-weather condition with small per-scenario variation.
    pub fn sample_normal(rng: &mut StdRng) -> Weather {
        let presets = Self::normal_presets();
        let mut w = presets[rng.random_range(0..presets.len())].clone();
        w.jitter(rng, 0.05);
        w
    }

    /// Samples an adverse-weather condition with small per-scenario variation.
    pub fn sample_adverse(rng: &mut StdRng) -> Weather {
        let presets = Self::adverse_presets();
        let mut w = presets[rng.random_range(0..presets.len())].clone();
        w.jitter(rng, 0.1);
        w
    }

    /// Adds bounded random variation to every intensity.
    fn jitter(&mut self, rng: &mut StdRng, amount: f64) {
        let mut j = |v: f64| (v + rng.random_range(-amount..amount)).clamp(0.0, 1.0);
        self.fog = j(self.fog);
        self.rain = j(self.rain);
        self.glare = j(self.glare);
        self.low_light = j(self.low_light);
        self.gps_degradation = j(self.gps_degradation);
        self.wind_gust = (self.wind_gust + rng.random_range(-amount..amount) * 2.0).max(0.0);
        self.wind_mean += Vec3::new(
            rng.random_range(-amount..amount) * 3.0,
            rng.random_range(-amount..amount) * 3.0,
            0.0,
        );
    }

    /// `true` when the condition counts as adverse weather in the benchmark
    /// split (the fog/rain/glare/wind/dusk presets and anything comparably
    /// degraded).
    pub fn is_adverse(&self) -> bool {
        self.fog > 0.3
            || self.rain > 0.3
            || self.glare > 0.4
            || self.low_light > 0.45
            || self.wind_mean.norm() + self.wind_gust > 5.0
            || self.gps_degradation > 0.4
    }

    /// A scalar difficulty score in `[0, 1]` combining every degradation.
    pub fn severity(&self) -> f64 {
        let wind = ((self.wind_mean.norm() + self.wind_gust) / 10.0).clamp(0.0, 1.0);
        (0.25 * self.fog
            + 0.2 * self.rain
            + 0.15 * self.glare
            + 0.15 * self.low_light
            + 0.15 * wind
            + 0.1 * self.gps_degradation)
            .clamp(0.0, 1.0)
    }

    /// Expected horizontal GPS random-walk drift rate, metres per second, in
    /// these conditions. Clear skies give centimetre-level drift; the "poor
    /// weather" the paper flew in gives decimetre-per-second excursions that
    /// corrupt the EKF and the map (Fig. 5c/5d).
    pub fn gps_drift_rate(&self) -> f64 {
        0.01 + 0.28 * self.gps_degradation * self.gps_degradation
    }

    /// Nominal wind speed (mean + half gust), m/s.
    pub fn nominal_wind_speed(&self) -> f64 {
        self.wind_mean.norm() + 0.5 * self.wind_gust
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn presets_classify_as_expected() {
        for w in Weather::normal_presets() {
            assert!(!w.is_adverse(), "{} should be normal", w.label);
        }
        for w in Weather::adverse_presets() {
            assert!(w.is_adverse(), "{} should be adverse", w.label);
        }
    }

    #[test]
    fn severity_ranks_clear_below_rain() {
        assert!(Weather::clear().severity() < Weather::rain().severity());
        assert!(Weather::overcast().severity() < Weather::fog().severity());
    }

    #[test]
    fn gps_drift_grows_with_degradation() {
        assert!(Weather::clear().gps_drift_rate() < Weather::rain().gps_drift_rate());
        assert!(Weather::rain().gps_drift_rate() < 0.5);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        assert_eq!(
            Weather::sample_adverse(&mut a),
            Weather::sample_adverse(&mut b)
        );
    }

    #[test]
    fn sampled_weather_keeps_classification_mostly() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut adverse_count = 0;
        for _ in 0..50 {
            if Weather::sample_adverse(&mut rng).is_adverse() {
                adverse_count += 1;
            }
        }
        assert!(
            adverse_count >= 45,
            "adverse sampling should stay adverse: {adverse_count}/50"
        );
    }

    #[test]
    fn wind_speed_combines_mean_and_gust() {
        let w = Weather::windy();
        assert!(w.nominal_wind_speed() > 5.0);
        assert!(Weather::clear().nominal_wind_speed() < 1.5);
    }
}
