//! Static obstacles populating the simulation worlds.
//!
//! The paper's failure analysis revolves around two obstacle classes:
//! *buildings* — large solid boxes that exhaust the V2 A* search pool — and
//! *trees*, whose foliage is porous to the depth sensor so the planner only
//! discovers the occupied space late ("the planner would create an optimal
//! path that went through at-the-time unseen obstacles and could then become
//! trapped within the foliage of a tree").

use mls_geom::{Aabb, Ray, Vec3};
use serde::{Deserialize, Serialize};

/// Geometry and class of one obstacle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Obstacle {
    /// A solid box: building, shed, wall, parked vehicle.
    Building {
        /// Solid extent of the structure.
        aabb: Aabb,
    },
    /// A tree: a thin solid trunk plus a porous spherical canopy.
    Tree {
        /// Solid trunk extent.
        trunk: Aabb,
        /// Centre of the canopy sphere.
        canopy_center: Vec3,
        /// Radius of the canopy sphere.
        canopy_radius: f64,
    },
    /// A thin vertical pole (lamp post, power pole); hard to see, solid.
    Pole {
        /// Solid extent of the pole.
        aabb: Aabb,
    },
}

/// Result of casting a ray against an obstacle or a whole map.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RayHit {
    /// Distance along the ray to the hit point.
    pub distance: f64,
    /// World-frame hit point.
    pub point: Vec3,
    /// `true` when the surface belongs to porous canopy rather than a solid
    /// structure; the depth sensor only registers such returns
    /// probabilistically.
    pub porous: bool,
}

impl Obstacle {
    /// Convenience constructor for a building footprint.
    pub fn building(center_xy: Vec3, width: f64, depth: f64, height: f64) -> Self {
        let center = Vec3::new(center_xy.x, center_xy.y, height / 2.0);
        Obstacle::Building {
            aabb: Aabb::from_center_half_extents(
                center,
                Vec3::new(width / 2.0, depth / 2.0, height / 2.0),
            ),
        }
    }

    /// Convenience constructor for a tree at a ground position.
    pub fn tree(base: Vec3, trunk_height: f64, canopy_radius: f64) -> Self {
        let trunk = Aabb::from_center_half_extents(
            Vec3::new(base.x, base.y, trunk_height / 2.0),
            Vec3::new(0.25, 0.25, trunk_height / 2.0),
        );
        Obstacle::Tree {
            trunk,
            canopy_center: Vec3::new(base.x, base.y, trunk_height + canopy_radius * 0.6),
            canopy_radius,
        }
    }

    /// Convenience constructor for a thin pole.
    pub fn pole(base: Vec3, height: f64) -> Self {
        Obstacle::Pole {
            aabb: Aabb::from_center_half_extents(
                Vec3::new(base.x, base.y, height / 2.0),
                Vec3::new(0.15, 0.15, height / 2.0),
            ),
        }
    }

    /// Axis-aligned bounding box enclosing the whole obstacle.
    pub fn bounding_box(&self) -> Aabb {
        match self {
            Obstacle::Building { aabb } | Obstacle::Pole { aabb } => *aabb,
            Obstacle::Tree {
                trunk,
                canopy_center,
                canopy_radius,
            } => trunk.union(&Aabb::from_center_half_extents(
                *canopy_center,
                Vec3::splat(*canopy_radius),
            )),
        }
    }

    /// `true` when `point` is inside occupied space (canopy counts as
    /// occupied: flying into foliage is the failure the paper describes).
    pub fn contains(&self, point: Vec3) -> bool {
        match self {
            Obstacle::Building { aabb } | Obstacle::Pole { aabb } => aabb.contains(point),
            Obstacle::Tree {
                trunk,
                canopy_center,
                canopy_radius,
            } => trunk.contains(point) || point.distance(*canopy_center) <= *canopy_radius,
        }
    }

    /// Shortest distance from `point` to the obstacle surface (0 inside).
    pub fn distance_to(&self, point: Vec3) -> f64 {
        match self {
            Obstacle::Building { aabb } | Obstacle::Pole { aabb } => aabb.distance_to_point(point),
            Obstacle::Tree {
                trunk,
                canopy_center,
                canopy_radius,
            } => {
                let trunk_d = trunk.distance_to_point(point);
                let canopy_d = (point.distance(*canopy_center) - canopy_radius).max(0.0);
                trunk_d.min(canopy_d)
            }
        }
    }

    /// First intersection of `ray` with the obstacle within `max_range`.
    pub fn raycast(&self, ray: &Ray, max_range: f64) -> Option<RayHit> {
        match self {
            Obstacle::Building { aabb } | Obstacle::Pole { aabb } => {
                let t = aabb.ray_intersection(ray)?;
                (t <= max_range).then(|| RayHit {
                    distance: t,
                    point: ray.point_at(t),
                    porous: false,
                })
            }
            Obstacle::Tree {
                trunk,
                canopy_center,
                canopy_radius,
            } => {
                let trunk_hit = trunk
                    .ray_intersection(ray)
                    .filter(|t| *t <= max_range)
                    .map(|t| RayHit {
                        distance: t,
                        point: ray.point_at(t),
                        porous: false,
                    });
                let canopy_hit = ray_sphere_intersection(ray, *canopy_center, *canopy_radius)
                    .filter(|t| *t <= max_range)
                    .map(|t| RayHit {
                        distance: t,
                        point: ray.point_at(t),
                        porous: true,
                    });
                match (trunk_hit, canopy_hit) {
                    (Some(a), Some(b)) => Some(if a.distance <= b.distance { a } else { b }),
                    (Some(a), None) => Some(a),
                    (None, Some(b)) => Some(b),
                    (None, None) => None,
                }
            }
        }
    }

    /// `true` when the obstacle is (or includes) porous canopy.
    pub fn has_porous_volume(&self) -> bool {
        matches!(self, Obstacle::Tree { .. })
    }

    /// Height of the obstacle's top above the ground.
    pub fn top_height(&self) -> f64 {
        self.bounding_box().max().z
    }
}

/// First positive intersection parameter of a ray and a sphere.
pub(crate) fn ray_sphere_intersection(ray: &Ray, center: Vec3, radius: f64) -> Option<f64> {
    let oc = ray.origin - center;
    let b = oc.dot(ray.direction);
    let c = oc.norm_squared() - radius * radius;
    let disc = b * b - c;
    if disc < 0.0 {
        return None;
    }
    let sqrt_disc = disc.sqrt();
    let t0 = -b - sqrt_disc;
    let t1 = -b + sqrt_disc;
    if t0 > 1e-9 {
        Some(t0)
    } else if t1 > 1e-9 {
        Some(t1)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn building_contains_and_distance() {
        let b = Obstacle::building(Vec3::new(10.0, 0.0, 0.0), 8.0, 6.0, 12.0);
        assert!(b.contains(Vec3::new(10.0, 0.0, 5.0)));
        assert!(!b.contains(Vec3::new(10.0, 0.0, 13.0)));
        assert!((b.distance_to(Vec3::new(10.0, 0.0, 14.0)) - 2.0).abs() < 1e-9);
        assert!((b.top_height() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn tree_contains_trunk_and_canopy() {
        let t = Obstacle::tree(Vec3::new(0.0, 0.0, 0.0), 4.0, 2.5);
        assert!(t.contains(Vec3::new(0.0, 0.0, 2.0)), "trunk point");
        assert!(t.contains(Vec3::new(0.0, 0.0, 5.5)), "canopy point");
        assert!(!t.contains(Vec3::new(5.0, 5.0, 5.0)));
        assert!(t.has_porous_volume());
        assert!(!Obstacle::building(Vec3::ZERO, 1.0, 1.0, 1.0).has_porous_volume());
    }

    #[test]
    fn raycast_hits_building_face() {
        let b = Obstacle::building(Vec3::new(10.0, 0.0, 0.0), 4.0, 4.0, 10.0);
        let ray = Ray::new(Vec3::new(0.0, 0.0, 5.0), Vec3::new(1.0, 0.0, 0.0));
        let hit = b.raycast(&ray, 50.0).expect("must hit");
        assert!((hit.distance - 8.0).abs() < 1e-9);
        assert!(!hit.porous);
        assert!(b.raycast(&ray, 5.0).is_none(), "range-limited");
    }

    #[test]
    fn raycast_canopy_is_marked_porous() {
        let t = Obstacle::tree(Vec3::new(10.0, 0.0, 0.0), 4.0, 2.0);
        // Aim at the canopy centre (z = 4 + 1.2 = 5.2).
        let ray = Ray::new(Vec3::new(0.0, 0.0, 5.2), Vec3::new(1.0, 0.0, 0.0));
        let hit = t.raycast(&ray, 50.0).expect("must hit canopy");
        assert!(hit.porous);
        assert!((hit.distance - 8.0).abs() < 1e-6);
        // Aim at the trunk.
        let ray = Ray::new(Vec3::new(0.0, 0.0, 2.0), Vec3::new(1.0, 0.0, 0.0));
        let hit = t.raycast(&ray, 50.0).expect("must hit trunk");
        assert!(!hit.porous);
    }

    #[test]
    fn ray_sphere_misses_and_hits() {
        let ray = Ray::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0));
        assert!(ray_sphere_intersection(&ray, Vec3::new(5.0, 3.0, 0.0), 1.0).is_none());
        let t = ray_sphere_intersection(&ray, Vec3::new(5.0, 0.0, 0.0), 1.0).unwrap();
        assert!((t - 4.0).abs() < 1e-9);
        // Ray starting inside the sphere returns the exit point.
        let t = ray_sphere_intersection(&ray, Vec3::new(0.2, 0.0, 0.0), 1.0).unwrap();
        assert!(t > 0.0 && t < 1.5);
    }

    #[test]
    fn bounding_box_covers_canopy() {
        let t = Obstacle::tree(Vec3::new(0.0, 0.0, 0.0), 4.0, 2.0);
        let bb = t.bounding_box();
        assert!(bb.max().z >= 6.0);
        assert!(bb.min().z <= 0.0 + 1e-9);
        assert!(bb.max().x >= 2.0);
    }

    #[test]
    fn pole_is_thin_and_solid() {
        let p = Obstacle::pole(Vec3::new(1.0, 1.0, 0.0), 6.0);
        assert!(p.contains(Vec3::new(1.0, 1.0, 3.0)));
        assert!(!p.contains(Vec3::new(1.5, 1.0, 3.0)));
        assert!((p.top_height() - 6.0).abs() < 1e-9);
    }
}
