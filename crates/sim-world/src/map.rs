//! Simulation maps: bounded worlds with obstacles and landing markers.
//!
//! A [`WorldMap`] is the substitute for one of the paper's ten AirSim /
//! Unreal Engine maps: flat terrain populated with buildings, trees and
//! poles, plus one target landing marker and a handful of false-positive
//! markers scattered around the nominal GPS target.

use mls_geom::{Aabb, Ray, Vec3};
use serde::{Deserialize, Serialize};

use crate::obstacle::{Obstacle, RayHit};

/// Style of the environment a map represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MapStyle {
    /// Open fields, scattered trees, at most a barn or two.
    Rural,
    /// Houses, gardens, street trees and utility poles.
    Suburban,
    /// Dense, tall buildings with narrow corridors between them.
    Urban,
}

impl MapStyle {
    /// The three styles in benchmark order.
    pub const ALL: [MapStyle; 3] = [MapStyle::Rural, MapStyle::Suburban, MapStyle::Urban];

    /// Short lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            MapStyle::Rural => "rural",
            MapStyle::Suburban => "suburban",
            MapStyle::Urban => "urban",
        }
    }
}

/// A landing marker painted on the ground.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarkerSite {
    /// Dictionary id rendered at this site. False-positive sites may reuse a
    /// *different* valid id or an out-of-dictionary id (a blank white square).
    pub id: u32,
    /// Centre of the marker on the ground plane.
    pub position: Vec3,
    /// Physical side length, metres.
    pub size: f64,
    /// In-plane rotation of the marker, radians.
    pub yaw: f64,
    /// `true` for the genuine landing target of the scenario.
    pub is_target: bool,
}

impl MarkerSite {
    /// Creates the genuine landing target of a scenario.
    pub fn target(id: u32, position: Vec3, size: f64, yaw: f64) -> Self {
        Self {
            id,
            position,
            size,
            yaw,
            is_target: true,
        }
    }

    /// Creates a false-positive / decoy site.
    pub fn decoy(id: u32, position: Vec3, size: f64, yaw: f64) -> Self {
        Self {
            id,
            position,
            size,
            yaw,
            is_target: false,
        }
    }
}

/// A complete static simulation world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldMap {
    /// Human-readable name ("urban-03").
    pub name: String,
    /// Environment style.
    pub style: MapStyle,
    /// Horizontal/vertical extent of the world.
    pub bounds: Aabb,
    /// Ground elevation (flat terrain).
    pub ground_z: f64,
    /// Static obstacles.
    pub obstacles: Vec<Obstacle>,
    /// Landing markers (the target plus decoys).
    pub markers: Vec<MarkerSite>,
}

impl WorldMap {
    /// Creates an empty flat map with the given name, style and half-extent.
    pub fn empty(name: impl Into<String>, style: MapStyle, half_extent: f64) -> Self {
        Self {
            name: name.into(),
            style,
            bounds: Aabb::from_center_half_extents(
                Vec3::new(0.0, 0.0, 60.0),
                Vec3::new(half_extent, half_extent, 60.0),
            ),
            ground_z: 0.0,
            obstacles: Vec::new(),
            markers: Vec::new(),
        }
    }

    /// Adds an obstacle (builder style).
    pub fn with_obstacle(mut self, obstacle: Obstacle) -> Self {
        self.obstacles.push(obstacle);
        self
    }

    /// Adds a marker site (builder style).
    pub fn with_marker(mut self, marker: MarkerSite) -> Self {
        self.markers.push(marker);
        self
    }

    /// The genuine landing target of the map, if one has been placed.
    pub fn target_marker(&self) -> Option<&MarkerSite> {
        self.markers.iter().find(|m| m.is_target)
    }

    /// Every decoy (non-target) marker.
    pub fn decoy_markers(&self) -> impl Iterator<Item = &MarkerSite> {
        self.markers.iter().filter(|m| !m.is_target)
    }

    /// `true` when `point` lies inside any obstacle, below the ground, or
    /// outside the world bounds.
    pub fn occupied(&self, point: Vec3) -> bool {
        if point.z <= self.ground_z {
            return true;
        }
        if !self.bounds.contains(point) {
            return true;
        }
        self.obstacles.iter().any(|o| o.contains(point))
    }

    /// `true` when `point` keeps at least `margin` metres of clearance from
    /// every obstacle and the ground.
    pub fn has_clearance(&self, point: Vec3, margin: f64) -> bool {
        if point.z - self.ground_z < margin {
            return false;
        }
        self.obstacles
            .iter()
            .all(|o| o.distance_to(point) >= margin)
    }

    /// Distance from `point` to the closest obstacle surface or the ground.
    pub fn clearance(&self, point: Vec3) -> f64 {
        let ground = (point.z - self.ground_z).max(0.0);
        self.obstacles
            .iter()
            .map(|o| o.distance_to(point))
            .fold(ground, f64::min)
    }

    /// `true` when the straight segment between `a` and `b` passes through
    /// occupied space (sampled every `step` metres).
    pub fn segment_occupied(&self, a: Vec3, b: Vec3, step: f64) -> bool {
        let length = a.distance(b);
        if length < 1e-9 {
            return self.occupied(a);
        }
        let steps = (length / step.max(0.05)).ceil() as usize;
        for i in 0..=steps {
            let t = i as f64 / steps as f64;
            if self.occupied(a.lerp(b, t)) {
                return true;
            }
        }
        false
    }

    /// Casts a ray against every obstacle and the ground plane, returning the
    /// nearest hit within `max_range`.
    pub fn raycast(&self, ray: &Ray, max_range: f64) -> Option<RayHit> {
        let mut best: Option<RayHit> = None;
        // Ground plane.
        if let Some(t) = ray.intersect_horizontal_plane(self.ground_z) {
            if t <= max_range {
                best = Some(RayHit {
                    distance: t,
                    point: ray.point_at(t),
                    porous: false,
                });
            }
        }
        for obstacle in &self.obstacles {
            // Cheap reject: skip obstacles whose bounding box is farther than
            // the current best hit.
            if let Some(current) = &best {
                if obstacle.bounding_box().distance_to_point(ray.origin) > current.distance {
                    continue;
                }
            }
            if let Some(hit) = obstacle.raycast(ray, max_range) {
                if best
                    .as_ref()
                    .map(|b| hit.distance < b.distance)
                    .unwrap_or(true)
                {
                    best = Some(hit);
                }
            }
        }
        best
    }

    /// Number of obstacles whose bounding box intersects `region`.
    pub fn obstacles_in_region(&self, region: &Aabb) -> usize {
        self.obstacles
            .iter()
            .filter(|o| o.bounding_box().intersects(region))
            .count()
    }

    /// The tallest obstacle height in the map (0 for an empty map).
    pub fn max_obstacle_height(&self) -> f64 {
        self.obstacles
            .iter()
            .map(|o| o.top_height())
            .fold(0.0, f64::max)
    }

    /// Simple density metric: obstacle footprint area divided by map area.
    pub fn obstacle_density(&self) -> f64 {
        let map_area = self.bounds.size().x * self.bounds.size().y;
        if map_area <= 0.0 {
            return 0.0;
        }
        let footprint: f64 = self
            .obstacles
            .iter()
            .map(|o| {
                let bb = o.bounding_box();
                bb.size().x * bb.size().y
            })
            .sum();
        (footprint / map_area).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_map() -> WorldMap {
        WorldMap::empty("test", MapStyle::Suburban, 50.0)
            .with_obstacle(Obstacle::building(
                Vec3::new(20.0, 0.0, 0.0),
                10.0,
                10.0,
                15.0,
            ))
            .with_obstacle(Obstacle::tree(Vec3::new(-15.0, 5.0, 0.0), 5.0, 3.0))
            .with_marker(MarkerSite::target(3, Vec3::new(30.0, 10.0, 0.0), 1.5, 0.2))
            .with_marker(MarkerSite::decoy(7, Vec3::new(25.0, -8.0, 0.0), 1.5, 0.0))
    }

    #[test]
    fn target_and_decoys_are_distinguished() {
        let map = simple_map();
        assert_eq!(map.target_marker().unwrap().id, 3);
        assert_eq!(map.decoy_markers().count(), 1);
    }

    #[test]
    fn occupancy_includes_ground_and_bounds() {
        let map = simple_map();
        assert!(map.occupied(Vec3::new(0.0, 0.0, -1.0)), "below ground");
        assert!(map.occupied(Vec3::new(500.0, 0.0, 10.0)), "out of bounds");
        assert!(map.occupied(Vec3::new(20.0, 0.0, 5.0)), "inside building");
        assert!(!map.occupied(Vec3::new(0.0, 0.0, 10.0)), "free air");
    }

    #[test]
    fn clearance_reflects_nearest_surface() {
        let map = simple_map();
        let p = Vec3::new(0.0, 0.0, 3.0);
        // Ground is 3 m below; building face is 15 m away horizontally.
        assert!((map.clearance(p) - 3.0).abs() < 1e-9);
        assert!(map.has_clearance(p, 2.0));
        assert!(!map.has_clearance(p, 4.0));
    }

    #[test]
    fn segment_occupancy_detects_building_crossing() {
        let map = simple_map();
        let a = Vec3::new(0.0, 0.0, 5.0);
        let b = Vec3::new(40.0, 0.0, 5.0);
        assert!(map.segment_occupied(a, b, 0.25), "crosses the building");
        let c = Vec3::new(0.0, 0.0, 20.0);
        let d = Vec3::new(40.0, 0.0, 20.0);
        assert!(
            !map.segment_occupied(c, d, 0.25),
            "passes above the building"
        );
    }

    #[test]
    fn raycast_prefers_nearest_hit() {
        let map = simple_map();
        // Looking down from above the building: the roof is hit before the
        // ground.
        let ray = Ray::new(Vec3::new(20.0, 0.0, 40.0), Vec3::new(0.0, 0.0, -1.0));
        let hit = map.raycast(&ray, 100.0).unwrap();
        assert!((hit.distance - 25.0).abs() < 1e-6, "roof at z=15");
        // Looking down over open ground: hit the ground plane.
        let ray = Ray::new(Vec3::new(0.0, -20.0, 40.0), Vec3::new(0.0, 0.0, -1.0));
        let hit = map.raycast(&ray, 100.0).unwrap();
        assert!((hit.distance - 40.0).abs() < 1e-6);
        assert!(!hit.porous);
    }

    #[test]
    fn raycast_range_limit_is_respected() {
        let map = simple_map();
        let ray = Ray::new(Vec3::new(0.0, -20.0, 40.0), Vec3::new(0.0, 0.0, -1.0));
        assert!(map.raycast(&ray, 10.0).is_none());
    }

    #[test]
    fn density_and_height_metrics() {
        let map = simple_map();
        assert!(map.obstacle_density() > 0.0);
        assert!(map.obstacle_density() < 0.2);
        assert!((map.max_obstacle_height() - 15.0).abs() < 1e-9);
        let empty = WorldMap::empty("empty", MapStyle::Rural, 10.0);
        assert_eq!(empty.obstacle_density(), 0.0);
        assert_eq!(empty.max_obstacle_height(), 0.0);
    }

    #[test]
    fn obstacles_in_region_counts_intersections() {
        let map = simple_map();
        let near_building =
            Aabb::from_center_half_extents(Vec3::new(20.0, 0.0, 5.0), Vec3::splat(8.0));
        assert_eq!(map.obstacles_in_region(&near_building), 1);
        let everything = map.bounds;
        assert_eq!(map.obstacles_in_region(&everything), 2);
    }

    #[test]
    fn style_labels_are_stable() {
        assert_eq!(MapStyle::Rural.label(), "rural");
        assert_eq!(MapStyle::Urban.label(), "urban");
        assert_eq!(MapStyle::ALL.len(), 3);
    }
}
