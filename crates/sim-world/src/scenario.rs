//! Benchmark scenarios: a map, a weather condition, a start position, a
//! nominal GPS landing target and the true marker placement.
//!
//! The paper's benchmark is "10 simulation maps ... for each map, we
//! generated 10 distinct test scenarios, equally divided between normal and
//! adverse weather conditions", with "the target marker, along with false
//! positive markers ... placed within a defined radius of the target" and the
//! drone starting from the map origin.
//!
//! On top of the open benchmark, [`ScenarioFamily`] names *constrained-pad*
//! variants of the suite: the paper's Fig. 6 failure mode (inflated bounding
//! boxes "swallowing" the free space next to buildings) only shows up in
//! mission outcomes when the pad actually sits next to structure, so the
//! constrained families deterministically build that hard geometry around
//! every pad — a wall-adjacent pad, a street-canyon corridor, a rooftop-style
//! well — instead of hoping the procedural map produces it.

use mls_geom::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::generator::{MapGenerator, MapGeneratorConfig};
use crate::map::{MapStyle, MarkerSite, WorldMap};
use crate::obstacle::Obstacle;
use crate::weather::Weather;
use crate::SimWorldError;

/// Number of marker ids available in the shared detection dictionary
/// (`mls_vision::MarkerDictionary::standard()` generates this many codes).
/// Scenario generation only needs the id *range*, not the dictionary itself.
pub const DICTIONARY_SIZE: u32 = 50;

/// Where a benchmark suite places its landing pads relative to structure.
///
/// The open family is the paper's original benchmark: pads on a clear disc,
/// well away from buildings. The constrained families rebuild the pad's
/// immediate surroundings deterministically (from the scenario seed) so the
/// geometry-sensitive failure modes — descent corridors swallowed by
/// obstacle inflation, approach paths squeezed between walls — are present
/// in *every* scenario instead of by procedural accident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioFamily {
    /// The paper's benchmark: a clear disc of `target_clear_radius` around
    /// the pad (no obstacle nearby).
    Open,
    /// A wall-adjacent pad: one building face 1.5–2.5 m from the pad centre
    /// plus a flanking pole, the Fig. 6 "swallowed free space" geometry.
    ConstrainedPad,
    /// A street canyon: the pad sits between two parallel building walls
    /// ~5–7 m apart, so the only approaches are along the corridor or from
    /// directly above.
    UrbanCanyon,
    /// A rooftop-style well: tall structure on three sides of the pad (one
    /// side open), approximating a rooftop pad between parapets — descent
    /// must thread the well from above.
    Rooftop,
}

impl ScenarioFamily {
    /// Every family, in a stable reporting order.
    pub const ALL: [ScenarioFamily; 4] = [
        ScenarioFamily::Open,
        ScenarioFamily::ConstrainedPad,
        ScenarioFamily::UrbanCanyon,
        ScenarioFamily::Rooftop,
    ];

    /// Pad clearance kept obstacle-free for the constrained families,
    /// metres: tight enough that structure crowds the descent, wide enough
    /// that the airframe physically fits.
    pub const CONSTRAINED_PAD_CLEARANCE: f64 = 1.2;

    /// Short label used in reports, trace headers and scenario names.
    pub fn label(self) -> &'static str {
        match self {
            ScenarioFamily::Open => "open",
            ScenarioFamily::ConstrainedPad => "constrained-pad",
            ScenarioFamily::UrbanCanyon => "urban-canyon",
            ScenarioFamily::Rooftop => "rooftop",
        }
    }

    /// Parses a report label back into a family.
    pub fn from_label(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|f| f.label() == label)
    }

    /// Radius around the pad guaranteed free of obstacles, metres.
    pub fn pad_clear_radius(self, config: &ScenarioConfig) -> f64 {
        match self {
            ScenarioFamily::Open => config.target_clear_radius,
            _ => Self::CONSTRAINED_PAD_CLEARANCE,
        }
    }

    /// Upper bound on the distance from the pad to the nearest obstacle,
    /// metres — the invariant that makes a family "constrained". `None` for
    /// the open family (no obstacle is required near the pad).
    pub fn max_obstacle_distance(self) -> Option<f64> {
        match self {
            ScenarioFamily::Open => None,
            ScenarioFamily::ConstrainedPad => Some(3.0),
            ScenarioFamily::UrbanCanyon | ScenarioFamily::Rooftop => Some(4.5),
        }
    }
}

/// Parameters of benchmark scenario generation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScenarioConfig {
    /// Pad-placement family of the suite (see [`ScenarioFamily`]).
    pub family: ScenarioFamily,
    /// Number of maps in the benchmark.
    pub maps: usize,
    /// Scenarios generated per map (half normal weather, half adverse).
    pub scenarios_per_map: usize,
    /// Physical marker side length, metres.
    pub marker_size: f64,
    /// Horizontal distance range from the origin to the landing target.
    pub target_distance: (f64, f64),
    /// Radius of the clear disc enforced around the target marker.
    pub target_clear_radius: f64,
    /// Horizontal error range of the nominal GPS target versus the true
    /// marker position.
    pub gps_target_error: (f64, f64),
    /// Number of false-positive markers scattered near the target.
    pub decoys: (usize, usize),
    /// Radius around the target within which decoys are placed.
    pub decoy_radius: f64,
    /// Cruise altitude the mission searches at, metres.
    pub cruise_altitude: f64,
    /// Map-generation parameters.
    pub map_config: MapGeneratorConfig,
}

impl serde::Deserialize for ScenarioConfig {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self {
            // Configs persisted before scenario families existed have no
            // family key and described the open benchmark.
            family: match value.get("family") {
                Some(inner) => serde::Deserialize::from_value(inner)?,
                None => ScenarioFamily::Open,
            },
            maps: serde::de_field(value, "maps")?,
            scenarios_per_map: serde::de_field(value, "scenarios_per_map")?,
            marker_size: serde::de_field(value, "marker_size")?,
            target_distance: serde::de_field(value, "target_distance")?,
            target_clear_radius: serde::de_field(value, "target_clear_radius")?,
            gps_target_error: serde::de_field(value, "gps_target_error")?,
            decoys: serde::de_field(value, "decoys")?,
            decoy_radius: serde::de_field(value, "decoy_radius")?,
            cruise_altitude: serde::de_field(value, "cruise_altitude")?,
            map_config: serde::de_field(value, "map_config")?,
        })
    }
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            family: ScenarioFamily::Open,
            maps: 10,
            scenarios_per_map: 10,
            marker_size: 1.5,
            target_distance: (30.0, 60.0),
            target_clear_radius: 3.0,
            gps_target_error: (1.0, 5.0),
            decoys: (1, 3),
            decoy_radius: 18.0,
            cruise_altitude: 12.0,
            map_config: MapGeneratorConfig::default(),
        }
    }
}

/// One benchmark scenario.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Scenario {
    /// Sequential scenario identifier within its benchmark.
    pub id: usize,
    /// The pad-placement family the scenario was generated under.
    pub family: ScenarioFamily,
    /// Human-readable name ("urban-02/s07-rain").
    pub name: String,
    /// The world the mission flies in (markers already placed).
    pub map: WorldMap,
    /// Environmental conditions.
    pub weather: Weather,
    /// Take-off position (on the ground at the map origin).
    pub start: Vec3,
    /// Altitude the mission climbs to before transiting, metres.
    pub cruise_altitude: f64,
    /// The nominal GPS landing target handed to the mission (offset from the
    /// true marker by a few metres of survey/GNSS error).
    pub gps_target: Vec3,
    /// Dictionary id of the genuine landing marker.
    pub target_marker_id: u32,
    /// Physical marker side length, metres.
    pub marker_size: f64,
    /// Seed from which every stochastic element of the scenario derives.
    pub seed: u64,
}

impl serde::Deserialize for Scenario {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self {
            id: serde::de_field(value, "id")?,
            // Scenarios persisted before families existed were all open.
            family: match value.get("family") {
                Some(inner) => serde::Deserialize::from_value(inner)?,
                None => ScenarioFamily::Open,
            },
            name: serde::de_field(value, "name")?,
            map: serde::de_field(value, "map")?,
            weather: serde::de_field(value, "weather")?,
            start: serde::de_field(value, "start")?,
            cruise_altitude: serde::de_field(value, "cruise_altitude")?,
            gps_target: serde::de_field(value, "gps_target")?,
            target_marker_id: serde::de_field(value, "target_marker_id")?,
            marker_size: serde::de_field(value, "marker_size")?,
            seed: serde::de_field(value, "seed")?,
        })
    }
}

impl Scenario {
    /// True position of the genuine landing marker.
    ///
    /// # Errors
    ///
    /// Returns [`SimWorldError::MissingTarget`] when no target marker has
    /// been placed. Scenarios produced by [`ScenarioGenerator`] always carry
    /// one; hand-built scenarios (tests, custom harnesses) may not.
    pub fn true_target(&self) -> Result<Vec3, SimWorldError> {
        self.map
            .target_marker()
            .map(|m| m.position)
            .ok_or_else(|| SimWorldError::MissingTarget {
                scenario: self.name.clone(),
            })
    }

    /// `true` when the scenario's weather is classified adverse.
    pub fn is_adverse(&self) -> bool {
        self.weather.is_adverse()
    }

    /// Distance from the pad (probed slightly above the marker) to the
    /// nearest obstacle surface, or `None` when the map has no obstacles or
    /// no target marker.
    pub fn pad_obstacle_distance(&self) -> Option<f64> {
        let probe = self.true_target().ok()? + Vec3::new(0.0, 0.0, 0.5);
        self.map
            .obstacles
            .iter()
            .map(|o| o.distance_to(probe))
            .min_by(f64::total_cmp)
    }
}

/// Generates reproducible benchmark scenario suites.
#[derive(Debug, Clone)]
pub struct ScenarioGenerator {
    config: ScenarioConfig,
}

impl Default for ScenarioGenerator {
    fn default() -> Self {
        Self::new(ScenarioConfig::default())
    }
}

impl ScenarioGenerator {
    /// Creates a generator with an explicit configuration.
    pub fn new(config: ScenarioConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// Generates the full paper benchmark: `maps × scenarios_per_map`
    /// scenarios, half under normal weather and half under adverse weather.
    ///
    /// # Errors
    ///
    /// Returns [`SimWorldError::InvalidConfig`] when the configuration asks
    /// for zero maps or zero scenarios per map.
    pub fn generate_benchmark(&self, seed: u64) -> Result<Vec<Scenario>, SimWorldError> {
        if self.config.maps == 0 || self.config.scenarios_per_map == 0 {
            return Err(SimWorldError::InvalidConfig {
                reason: "benchmark needs at least one map and one scenario per map".to_string(),
            });
        }
        let mut scenarios = Vec::with_capacity(self.config.maps * self.config.scenarios_per_map);
        let mut id = 0usize;
        for map_index in 0..self.config.maps {
            // Cycle styles so the benchmark covers rural, suburban and urban.
            let style = MapStyle::ALL[map_index % MapStyle::ALL.len()];
            // The map layout depends only on the benchmark seed and the map
            // index: all scenarios of a map share obstacles, matching the
            // paper's fixed ten maps.
            let map_seed = seed ^ ((map_index as u64 + 1) << 17);
            for slot in 0..self.config.scenarios_per_map {
                let adverse = slot >= self.config.scenarios_per_map / 2;
                let scenario_seed = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(((map_index as u64) << 32) | slot as u64);
                scenarios.push(self.generate_scenario(
                    id,
                    map_index,
                    style,
                    adverse,
                    scenario_seed,
                    map_seed,
                )?);
                id += 1;
            }
        }
        Ok(scenarios)
    }

    /// Generates a single scenario with explicit style and weather class.
    ///
    /// `map_seed` fixes the obstacle layout (scenarios sharing a `map_seed`
    /// fly over identical worlds); `seed` drives everything that varies per
    /// scenario (weather jitter, marker placement, GPS error).
    pub fn generate_scenario(
        &self,
        id: usize,
        map_index: usize,
        style: MapStyle,
        adverse: bool,
        seed: u64,
        map_seed: u64,
    ) -> Result<Scenario, SimWorldError> {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(seed);
        let map_name = format!("{}-{:02}", style.label(), map_index);
        let generator = MapGenerator::new(cfg.map_config.clone());
        let mut map = generator.generate(&map_name, style, map_seed);

        let weather = if adverse {
            Weather::sample_adverse(&mut rng)
        } else {
            Weather::sample_normal(&mut rng)
        };

        // Choose the true landing target. The open family keeps the paper's
        // clear disc; the constrained families carve a tight pad site and
        // deterministically build hard geometry around it.
        let target = match cfg.family {
            ScenarioFamily::Open => self.sample_target_position(&mut rng, &map)?,
            family => self.place_constrained_pad(&mut rng, &mut map, family)?,
        };
        let target_marker_id = rng.random_range(0..DICTIONARY_SIZE);
        let marker_yaw = rng.random_range(-std::f64::consts::PI..std::f64::consts::PI);
        map.markers.push(MarkerSite::target(
            target_marker_id,
            target,
            cfg.marker_size,
            marker_yaw,
        ));

        // Scatter decoys: some use other valid ids, some are blank squares
        // (ids outside the dictionary).
        let n_decoys = rng.random_range(cfg.decoys.0..=cfg.decoys.1);
        for _ in 0..n_decoys {
            let mut attempts = 0;
            let position = loop {
                attempts += 1;
                let angle = rng.random_range(0.0..std::f64::consts::TAU);
                let radius = rng.random_range(6.0..cfg.decoy_radius);
                let p = target + Vec3::new(angle.cos() * radius, angle.sin() * radius, 0.0);
                // Probe above the pad: `has_clearance` also enforces ground
                // distance, so a probe at marker height would always fail.
                if (map.has_clearance(p + Vec3::new(0.0, 0.0, 2.0), 1.5)
                    && map.bounds.contains(p + Vec3::new(0.0, 0.0, 1.0)))
                    || attempts > 40
                {
                    break p;
                }
            };
            let decoy_id = if rng.random::<f64>() < 0.5 {
                // A different valid marker id.
                (target_marker_id + rng.random_range(1..DICTIONARY_SIZE)) % DICTIONARY_SIZE
            } else {
                // A blank white square (out-of-dictionary id).
                DICTIONARY_SIZE + rng.random_range(0..50)
            };
            map.markers.push(MarkerSite::decoy(
                decoy_id,
                position,
                cfg.marker_size,
                rng.random_range(-std::f64::consts::PI..std::f64::consts::PI),
            ));
        }

        // The GPS target the mission is given: true target plus survey
        // error. Near walls the nominal target must still name reachable
        // air, so constrained families resample the error vector (shrinking
        // it as attempts run out) until it clears the structure.
        let mut error = rng.random_range(cfg.gps_target_error.0..=cfg.gps_target_error.1);
        let mut gps_target = target;
        for attempt in 0..24 {
            let angle = rng.random_range(0.0..std::f64::consts::TAU);
            let magnitude = error * (1.0 - attempt as f64 / 32.0);
            let candidate =
                target + Vec3::new(angle.cos() * magnitude, angle.sin() * magnitude, 0.0);
            let clear = cfg.family == ScenarioFamily::Open
                || map
                    .obstacles
                    .iter()
                    .all(|o| o.distance_to(candidate + Vec3::new(0.0, 0.0, 0.5)) >= 1.0);
            if clear {
                gps_target = candidate;
                break;
            }
            error = magnitude;
        }

        let weather_label = weather.label.clone();
        let family_suffix = match cfg.family {
            ScenarioFamily::Open => String::new(),
            family => format!("-{}", family.label()),
        };
        Ok(Scenario {
            id,
            family: cfg.family,
            name: format!(
                "{map_name}/s{:02}-{}{}",
                id % cfg.scenarios_per_map.max(1),
                weather_label,
                family_suffix
            ),
            map,
            weather,
            start: Vec3::ZERO,
            cruise_altitude: cfg.cruise_altitude,
            gps_target,
            target_marker_id,
            marker_size: cfg.marker_size,
            seed,
        })
    }

    /// Samples a target marker position with the required clearance,
    /// clearing a small disc of obstacles if no clear spot exists.
    fn sample_target_position(
        &self,
        rng: &mut StdRng,
        map: &WorldMap,
    ) -> Result<Vec3, SimWorldError> {
        let cfg = &self.config;
        for _ in 0..200 {
            let angle = rng.random_range(0.0..std::f64::consts::TAU);
            let distance = rng.random_range(cfg.target_distance.0..=cfg.target_distance.1);
            let p = Vec3::new(angle.cos() * distance, angle.sin() * distance, 0.0);
            if !map.bounds.contains(p + Vec3::new(0.0, 0.0, 1.0)) {
                continue;
            }
            let probe = p + Vec3::new(0.0, 0.0, 0.5);
            if map
                .obstacles
                .iter()
                .all(|o| o.distance_to(probe) >= cfg.target_clear_radius)
            {
                return Ok(p);
            }
        }
        Err(SimWorldError::TargetPlacement {
            map: map.name.clone(),
        })
    }

    /// Places a constrained pad: samples a site, carves the pad clearance
    /// disc out of the procedural obstacles, then builds the family's hard
    /// geometry around it — all from the scenario RNG stream, so the same
    /// (seed, family) reproduces the same micro-site byte for byte.
    ///
    /// The constructed geometry guarantees the family invariants: no
    /// obstacle within [`ScenarioFamily::CONSTRAINED_PAD_CLEARANCE`] of the
    /// pad, at least one obstacle within
    /// [`ScenarioFamily::max_obstacle_distance`].
    fn place_constrained_pad(
        &self,
        rng: &mut StdRng,
        map: &mut WorldMap,
        family: ScenarioFamily,
    ) -> Result<Vec3, SimWorldError> {
        let cfg = &self.config;
        let clear = ScenarioFamily::CONSTRAINED_PAD_CLEARANCE;
        // Keep the whole micro-site (walls included) inside the map bounds.
        let margin = 16.0;
        let limit = map.bounds.max().x - margin;
        let mut site = None;
        for _ in 0..200 {
            let angle = rng.random_range(0.0..std::f64::consts::TAU);
            let distance = rng.random_range(cfg.target_distance.0..=cfg.target_distance.1);
            let p = Vec3::new(angle.cos() * distance, angle.sin() * distance, 0.0);
            if p.x.abs() <= limit && p.y.abs() <= limit {
                site = Some(p);
                break;
            }
        }
        let Some(pad) = site else {
            return Err(SimWorldError::TargetPlacement {
                map: map.name.clone(),
            });
        };

        // Carve the pad clearance disc: procedural obstacles intruding into
        // it are removed (the constrained micro-site replaces them), so the
        // pad itself is always physically landable.
        let probe = pad + Vec3::new(0.0, 0.0, 0.5);
        map.obstacles.retain(|o| o.distance_to(probe) >= clear);

        // Axis-aligned wall directions (obstacles are AABBs).
        const SIDES: [(f64, f64); 4] = [(1.0, 0.0), (-1.0, 0.0), (0.0, 1.0), (0.0, -1.0)];
        let wall = |pad: Vec3, dir: (f64, f64), face: f64, length: f64, height: f64| {
            let depth = 1.0;
            let center = pad + Vec3::new(dir.0, dir.1, 0.0) * (face + depth / 2.0);
            let (width, depth) = if dir.0 != 0.0 {
                (depth, length)
            } else {
                (length, depth)
            };
            Obstacle::building(center, width, depth, height)
        };

        match family {
            ScenarioFamily::Open => unreachable!("open pads use the clear-disc sampler"),
            ScenarioFamily::ConstrainedPad => {
                // One wall face 1.5–2.5 m from the pad, plus a pole flanking
                // an adjacent side: tight clear radius, wall-adjacent pad.
                let side = rng.random_range(0..4usize);
                let face = rng.random_range(1.5..2.5);
                let height = rng.random_range(6.0..9.0);
                map.obstacles
                    .push(wall(pad, SIDES[side], face, 12.0, height));
                let pole_side = SIDES[(side + 1) % 4];
                let pole_distance = rng.random_range(2.0..3.0);
                map.obstacles.push(Obstacle::pole(
                    pad + Vec3::new(pole_side.0, pole_side.1, 0.0) * pole_distance,
                    rng.random_range(4.0..7.0),
                ));
            }
            ScenarioFamily::UrbanCanyon => {
                // Two parallel walls flanking the pad: the approach corridor
                // runs along the canyon axis (or straight down).
                let along_x = rng.random::<bool>();
                let half_gap = rng.random_range(2.5..3.5);
                let height = rng.random_range(8.0..11.0);
                let (a, b) = if along_x {
                    ((0.0, 1.0), (0.0, -1.0))
                } else {
                    ((1.0, 0.0), (-1.0, 0.0))
                };
                map.obstacles.push(wall(pad, a, half_gap, 24.0, height));
                map.obstacles.push(wall(pad, b, half_gap, 24.0, height));
            }
            ScenarioFamily::Rooftop => {
                // Three tall walls forming a well around the pad, one side
                // open: a rooftop pad between parapets, approached from
                // above.
                let open_side = rng.random_range(0..4usize);
                let height = rng.random_range(10.0..13.0);
                for (index, side) in SIDES.iter().enumerate() {
                    if index == open_side {
                        continue;
                    }
                    let face = rng.random_range(2.0..3.0);
                    map.obstacles.push(wall(pad, *side, face, 9.0, height));
                }
            }
        }
        Ok(pad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ScenarioConfig {
        ScenarioConfig {
            maps: 3,
            scenarios_per_map: 4,
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn benchmark_has_expected_size_and_weather_split() {
        let generator = ScenarioGenerator::new(small_config());
        let scenarios = generator.generate_benchmark(7).unwrap();
        assert_eq!(scenarios.len(), 12);
        let adverse = scenarios.iter().filter(|s| s.is_adverse()).count();
        // Half of every map's scenarios are drawn from the adverse presets;
        // jitter can occasionally flip a borderline case, so allow slack.
        assert!((4..=8).contains(&adverse), "adverse count {adverse}");
    }

    #[test]
    fn full_paper_benchmark_is_100_scenarios() {
        let scenarios = ScenarioGenerator::default()
            .generate_benchmark(2025)
            .unwrap();
        assert_eq!(scenarios.len(), 100);
        // Every scenario has a target marker and at least one decoy or none,
        // and the GPS target is within the configured error of the truth.
        for s in &scenarios {
            let truth = s.true_target().unwrap();
            let err = s.gps_target.horizontal_distance(truth);
            assert!(err <= 5.0 + 1e-9, "gps error {err}");
            assert!(s.map.target_marker().is_some());
            assert!(truth.horizontal_distance(s.start) >= 29.0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let generator = ScenarioGenerator::new(small_config());
        let a = generator.generate_benchmark(11).unwrap();
        let b = generator.generate_benchmark(11).unwrap();
        assert_eq!(a, b);
        let c = generator.generate_benchmark(12).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn scenarios_of_a_map_share_obstacles() {
        let generator = ScenarioGenerator::new(small_config());
        let scenarios = generator.generate_benchmark(5).unwrap();
        // Scenarios 0..4 belong to map 0: identical obstacle lists.
        let first = &scenarios[0].map.obstacles;
        for s in &scenarios[1..4] {
            assert_eq!(&s.map.obstacles, first);
        }
        // A different map has a different layout.
        assert_ne!(&scenarios[4].map.obstacles, first);
    }

    #[test]
    fn target_area_is_clear_of_obstacles() {
        let scenarios = ScenarioGenerator::new(small_config())
            .generate_benchmark(3)
            .unwrap();
        for s in &scenarios {
            let t = s.true_target().unwrap() + Vec3::new(0.0, 0.0, 0.5);
            for o in &s.map.obstacles {
                assert!(
                    o.distance_to(t) >= 2.9,
                    "obstacle too close to target in {}",
                    s.name
                );
            }
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = small_config();
        cfg.maps = 0;
        assert!(matches!(
            ScenarioGenerator::new(cfg).generate_benchmark(1),
            Err(SimWorldError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn missing_target_is_a_checked_error() {
        let generator = ScenarioGenerator::new(small_config());
        let mut scenario = generator.generate_benchmark(4).unwrap().remove(0);
        assert!(scenario.true_target().is_ok());
        scenario.map.markers.retain(|m| !m.is_target);
        assert!(matches!(
            scenario.true_target(),
            Err(SimWorldError::MissingTarget { .. })
        ));
        assert_eq!(scenario.pad_obstacle_distance(), None);
    }

    #[test]
    fn family_labels_round_trip() {
        for family in ScenarioFamily::ALL {
            assert_eq!(ScenarioFamily::from_label(family.label()), Some(family));
        }
        assert_eq!(ScenarioFamily::from_label("nonsense"), None);
    }

    fn family_config(family: ScenarioFamily) -> ScenarioConfig {
        ScenarioConfig {
            family,
            maps: 3,
            scenarios_per_map: 4,
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn constrained_families_satisfy_their_clearance_invariants() {
        for family in ScenarioFamily::ALL {
            let config = family_config(family);
            for seed in [1u64, 7, 42] {
                let scenarios = ScenarioGenerator::new(config.clone())
                    .generate_benchmark(seed)
                    .unwrap();
                for s in &scenarios {
                    assert_eq!(s.family, family);
                    let nearest = s
                        .pad_obstacle_distance()
                        .expect("every benchmark map has obstacles");
                    let min_clear = family.pad_clear_radius(&config);
                    assert!(
                        nearest >= min_clear - 1e-9,
                        "{} pad crowded to {nearest:.2} m in {} (min {min_clear})",
                        family.label(),
                        s.name
                    );
                    if let Some(max) = family.max_obstacle_distance() {
                        assert!(
                            nearest <= max + 1e-9,
                            "{} pad unconstrained at {nearest:.2} m in {} (max {max})",
                            family.label(),
                            s.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn family_generation_is_deterministic_per_seed_and_family() {
        for family in ScenarioFamily::ALL {
            let generator = ScenarioGenerator::new(family_config(family));
            let a = generator.generate_benchmark(11).unwrap();
            let b = generator.generate_benchmark(11).unwrap();
            assert_eq!(a, b, "{} must be seed-pure", family.label());
            // Byte-identical, not just structurally equal.
            assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b).unwrap()
            );
        }
        // Families diverge from the same seed.
        let open = ScenarioGenerator::new(family_config(ScenarioFamily::Open))
            .generate_benchmark(11)
            .unwrap();
        let constrained = ScenarioGenerator::new(family_config(ScenarioFamily::ConstrainedPad))
            .generate_benchmark(11)
            .unwrap();
        assert_ne!(open, constrained);
    }

    #[test]
    fn constrained_names_carry_the_family_and_gps_targets_stay_clear() {
        let scenarios = ScenarioGenerator::new(family_config(ScenarioFamily::UrbanCanyon))
            .generate_benchmark(9)
            .unwrap();
        for s in &scenarios {
            assert!(s.name.contains("urban-canyon"), "{}", s.name);
            let probe = s.gps_target + Vec3::new(0.0, 0.0, 0.5);
            let nearest = s
                .map
                .obstacles
                .iter()
                .map(|o| o.distance_to(probe))
                .fold(f64::INFINITY, f64::min);
            assert!(
                nearest >= 0.99,
                "nominal GPS target {nearest:.2} m from structure in {}",
                s.name
            );
        }
    }

    #[test]
    fn legacy_scenario_json_without_family_parses_as_open() {
        let scenario = ScenarioGenerator::new(small_config())
            .generate_benchmark(2)
            .unwrap()
            .remove(0);
        let json = serde_json::to_string(&scenario).unwrap();
        let serde::Value::Object(mut fields) = serde_json::parse(&json).unwrap() else {
            panic!("scenario serialises to an object");
        };
        fields.retain(|(key, _)| key != "family");
        let legacy = serde_json::to_string(&serde::Value::Object(fields)).unwrap();
        let parsed: Scenario = serde_json::from_str(&legacy).unwrap();
        assert_eq!(parsed.family, ScenarioFamily::Open);
        assert_eq!(parsed.id, scenario.id);

        // The config falls back the same way.
        let config_json = serde_json::to_string(&small_config()).unwrap();
        let serde::Value::Object(mut fields) = serde_json::parse(&config_json).unwrap() else {
            panic!("config serialises to an object");
        };
        fields.retain(|(key, _)| key != "family");
        let legacy = serde_json::to_string(&serde::Value::Object(fields)).unwrap();
        let parsed: ScenarioConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(parsed.family, ScenarioFamily::Open);
    }

    #[test]
    fn decoy_ids_differ_from_target_or_are_blank() {
        let scenarios = ScenarioGenerator::new(small_config())
            .generate_benchmark(9)
            .unwrap();
        for s in &scenarios {
            for decoy in s.map.decoy_markers() {
                assert!(
                    decoy.id != s.target_marker_id,
                    "decoy id equals target id in {}",
                    s.name
                );
            }
        }
    }
}
