//! Benchmark scenarios: a map, a weather condition, a start position, a
//! nominal GPS landing target and the true marker placement.
//!
//! The paper's benchmark is "10 simulation maps ... for each map, we
//! generated 10 distinct test scenarios, equally divided between normal and
//! adverse weather conditions", with "the target marker, along with false
//! positive markers ... placed within a defined radius of the target" and the
//! drone starting from the map origin.

use mls_geom::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::generator::{MapGenerator, MapGeneratorConfig};
use crate::map::{MapStyle, MarkerSite, WorldMap};
use crate::weather::Weather;
use crate::SimWorldError;

/// Number of marker ids available in the shared detection dictionary
/// (`mls_vision::MarkerDictionary::standard()` generates this many codes).
/// Scenario generation only needs the id *range*, not the dictionary itself.
pub const DICTIONARY_SIZE: u32 = 50;

/// Parameters of benchmark scenario generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Number of maps in the benchmark.
    pub maps: usize,
    /// Scenarios generated per map (half normal weather, half adverse).
    pub scenarios_per_map: usize,
    /// Physical marker side length, metres.
    pub marker_size: f64,
    /// Horizontal distance range from the origin to the landing target.
    pub target_distance: (f64, f64),
    /// Radius of the clear disc enforced around the target marker.
    pub target_clear_radius: f64,
    /// Horizontal error range of the nominal GPS target versus the true
    /// marker position.
    pub gps_target_error: (f64, f64),
    /// Number of false-positive markers scattered near the target.
    pub decoys: (usize, usize),
    /// Radius around the target within which decoys are placed.
    pub decoy_radius: f64,
    /// Cruise altitude the mission searches at, metres.
    pub cruise_altitude: f64,
    /// Map-generation parameters.
    pub map_config: MapGeneratorConfig,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            maps: 10,
            scenarios_per_map: 10,
            marker_size: 1.5,
            target_distance: (30.0, 60.0),
            target_clear_radius: 3.0,
            gps_target_error: (1.0, 5.0),
            decoys: (1, 3),
            decoy_radius: 18.0,
            cruise_altitude: 12.0,
            map_config: MapGeneratorConfig::default(),
        }
    }
}

/// One benchmark scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Sequential scenario identifier within its benchmark.
    pub id: usize,
    /// Human-readable name ("urban-02/s07-rain").
    pub name: String,
    /// The world the mission flies in (markers already placed).
    pub map: WorldMap,
    /// Environmental conditions.
    pub weather: Weather,
    /// Take-off position (on the ground at the map origin).
    pub start: Vec3,
    /// Altitude the mission climbs to before transiting, metres.
    pub cruise_altitude: f64,
    /// The nominal GPS landing target handed to the mission (offset from the
    /// true marker by a few metres of survey/GNSS error).
    pub gps_target: Vec3,
    /// Dictionary id of the genuine landing marker.
    pub target_marker_id: u32,
    /// Physical marker side length, metres.
    pub marker_size: f64,
    /// Seed from which every stochastic element of the scenario derives.
    pub seed: u64,
}

impl Scenario {
    /// True position of the genuine landing marker.
    ///
    /// # Panics
    ///
    /// Never panics for scenarios produced by [`ScenarioGenerator`]; the
    /// target marker is always placed.
    pub fn true_target(&self) -> Vec3 {
        self.map
            .target_marker()
            .map(|m| m.position)
            .expect("scenario always carries a target marker")
    }

    /// `true` when the scenario's weather is classified adverse.
    pub fn is_adverse(&self) -> bool {
        self.weather.is_adverse()
    }
}

/// Generates reproducible benchmark scenario suites.
#[derive(Debug, Clone)]
pub struct ScenarioGenerator {
    config: ScenarioConfig,
}

impl Default for ScenarioGenerator {
    fn default() -> Self {
        Self::new(ScenarioConfig::default())
    }
}

impl ScenarioGenerator {
    /// Creates a generator with an explicit configuration.
    pub fn new(config: ScenarioConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// Generates the full paper benchmark: `maps × scenarios_per_map`
    /// scenarios, half under normal weather and half under adverse weather.
    ///
    /// # Errors
    ///
    /// Returns [`SimWorldError::InvalidConfig`] when the configuration asks
    /// for zero maps or zero scenarios per map.
    pub fn generate_benchmark(&self, seed: u64) -> Result<Vec<Scenario>, SimWorldError> {
        if self.config.maps == 0 || self.config.scenarios_per_map == 0 {
            return Err(SimWorldError::InvalidConfig {
                reason: "benchmark needs at least one map and one scenario per map".to_string(),
            });
        }
        let mut scenarios = Vec::with_capacity(self.config.maps * self.config.scenarios_per_map);
        let mut id = 0usize;
        for map_index in 0..self.config.maps {
            // Cycle styles so the benchmark covers rural, suburban and urban.
            let style = MapStyle::ALL[map_index % MapStyle::ALL.len()];
            // The map layout depends only on the benchmark seed and the map
            // index: all scenarios of a map share obstacles, matching the
            // paper's fixed ten maps.
            let map_seed = seed ^ ((map_index as u64 + 1) << 17);
            for slot in 0..self.config.scenarios_per_map {
                let adverse = slot >= self.config.scenarios_per_map / 2;
                let scenario_seed = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(((map_index as u64) << 32) | slot as u64);
                scenarios.push(self.generate_scenario(
                    id,
                    map_index,
                    style,
                    adverse,
                    scenario_seed,
                    map_seed,
                )?);
                id += 1;
            }
        }
        Ok(scenarios)
    }

    /// Generates a single scenario with explicit style and weather class.
    ///
    /// `map_seed` fixes the obstacle layout (scenarios sharing a `map_seed`
    /// fly over identical worlds); `seed` drives everything that varies per
    /// scenario (weather jitter, marker placement, GPS error).
    pub fn generate_scenario(
        &self,
        id: usize,
        map_index: usize,
        style: MapStyle,
        adverse: bool,
        seed: u64,
        map_seed: u64,
    ) -> Result<Scenario, SimWorldError> {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(seed);
        let map_name = format!("{}-{:02}", style.label(), map_index);
        let generator = MapGenerator::new(cfg.map_config.clone());
        let mut map = generator.generate(&map_name, style, map_seed);

        let weather = if adverse {
            Weather::sample_adverse(&mut rng)
        } else {
            Weather::sample_normal(&mut rng)
        };

        // Choose the true landing target: a clear disc at the configured
        // distance from the origin.
        let target = self.sample_target_position(&mut rng, &map)?;
        let target_marker_id = rng.random_range(0..DICTIONARY_SIZE);
        let marker_yaw = rng.random_range(-std::f64::consts::PI..std::f64::consts::PI);
        map.markers.push(MarkerSite::target(
            target_marker_id,
            target,
            cfg.marker_size,
            marker_yaw,
        ));

        // Scatter decoys: some use other valid ids, some are blank squares
        // (ids outside the dictionary).
        let n_decoys = rng.random_range(cfg.decoys.0..=cfg.decoys.1);
        for _ in 0..n_decoys {
            let mut attempts = 0;
            let position = loop {
                attempts += 1;
                let angle = rng.random_range(0.0..std::f64::consts::TAU);
                let radius = rng.random_range(6.0..cfg.decoy_radius);
                let p = target + Vec3::new(angle.cos() * radius, angle.sin() * radius, 0.0);
                // Probe above the pad: `has_clearance` also enforces ground
                // distance, so a probe at marker height would always fail.
                if (map.has_clearance(p + Vec3::new(0.0, 0.0, 2.0), 1.5)
                    && map.bounds.contains(p + Vec3::new(0.0, 0.0, 1.0)))
                    || attempts > 40
                {
                    break p;
                }
            };
            let decoy_id = if rng.random::<f64>() < 0.5 {
                // A different valid marker id.
                (target_marker_id + rng.random_range(1..DICTIONARY_SIZE)) % DICTIONARY_SIZE
            } else {
                // A blank white square (out-of-dictionary id).
                DICTIONARY_SIZE + rng.random_range(0..50)
            };
            map.markers.push(MarkerSite::decoy(
                decoy_id,
                position,
                cfg.marker_size,
                rng.random_range(-std::f64::consts::PI..std::f64::consts::PI),
            ));
        }

        // The GPS target the mission is given: true target plus survey error.
        let error = rng.random_range(cfg.gps_target_error.0..=cfg.gps_target_error.1);
        let angle = rng.random_range(0.0..std::f64::consts::TAU);
        let gps_target = target + Vec3::new(angle.cos() * error, angle.sin() * error, 0.0);

        let weather_label = weather.label.clone();
        Ok(Scenario {
            id,
            name: format!(
                "{map_name}/s{:02}-{}",
                id % cfg.scenarios_per_map.max(1),
                weather_label
            ),
            map,
            weather,
            start: Vec3::ZERO,
            cruise_altitude: cfg.cruise_altitude,
            gps_target,
            target_marker_id,
            marker_size: cfg.marker_size,
            seed,
        })
    }

    /// Samples a target marker position with the required clearance,
    /// clearing a small disc of obstacles if no clear spot exists.
    fn sample_target_position(
        &self,
        rng: &mut StdRng,
        map: &WorldMap,
    ) -> Result<Vec3, SimWorldError> {
        let cfg = &self.config;
        for _ in 0..200 {
            let angle = rng.random_range(0.0..std::f64::consts::TAU);
            let distance = rng.random_range(cfg.target_distance.0..=cfg.target_distance.1);
            let p = Vec3::new(angle.cos() * distance, angle.sin() * distance, 0.0);
            if !map.bounds.contains(p + Vec3::new(0.0, 0.0, 1.0)) {
                continue;
            }
            let probe = p + Vec3::new(0.0, 0.0, 0.5);
            if map
                .obstacles
                .iter()
                .all(|o| o.distance_to(probe) >= cfg.target_clear_radius)
            {
                return Ok(p);
            }
        }
        Err(SimWorldError::TargetPlacement {
            map: map.name.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ScenarioConfig {
        ScenarioConfig {
            maps: 3,
            scenarios_per_map: 4,
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn benchmark_has_expected_size_and_weather_split() {
        let generator = ScenarioGenerator::new(small_config());
        let scenarios = generator.generate_benchmark(7).unwrap();
        assert_eq!(scenarios.len(), 12);
        let adverse = scenarios.iter().filter(|s| s.is_adverse()).count();
        // Half of every map's scenarios are drawn from the adverse presets;
        // jitter can occasionally flip a borderline case, so allow slack.
        assert!((4..=8).contains(&adverse), "adverse count {adverse}");
    }

    #[test]
    fn full_paper_benchmark_is_100_scenarios() {
        let scenarios = ScenarioGenerator::default()
            .generate_benchmark(2025)
            .unwrap();
        assert_eq!(scenarios.len(), 100);
        // Every scenario has a target marker and at least one decoy or none,
        // and the GPS target is within the configured error of the truth.
        for s in &scenarios {
            let truth = s.true_target();
            let err = s.gps_target.horizontal_distance(truth);
            assert!(err <= 5.0 + 1e-9, "gps error {err}");
            assert!(s.map.target_marker().is_some());
            assert!(truth.horizontal_distance(s.start) >= 29.0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let generator = ScenarioGenerator::new(small_config());
        let a = generator.generate_benchmark(11).unwrap();
        let b = generator.generate_benchmark(11).unwrap();
        assert_eq!(a, b);
        let c = generator.generate_benchmark(12).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn scenarios_of_a_map_share_obstacles() {
        let generator = ScenarioGenerator::new(small_config());
        let scenarios = generator.generate_benchmark(5).unwrap();
        // Scenarios 0..4 belong to map 0: identical obstacle lists.
        let first = &scenarios[0].map.obstacles;
        for s in &scenarios[1..4] {
            assert_eq!(&s.map.obstacles, first);
        }
        // A different map has a different layout.
        assert_ne!(&scenarios[4].map.obstacles, first);
    }

    #[test]
    fn target_area_is_clear_of_obstacles() {
        let scenarios = ScenarioGenerator::new(small_config())
            .generate_benchmark(3)
            .unwrap();
        for s in &scenarios {
            let t = s.true_target() + Vec3::new(0.0, 0.0, 0.5);
            for o in &s.map.obstacles {
                assert!(
                    o.distance_to(t) >= 2.9,
                    "obstacle too close to target in {}",
                    s.name
                );
            }
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = small_config();
        cfg.maps = 0;
        assert!(matches!(
            ScenarioGenerator::new(cfg).generate_benchmark(1),
            Err(SimWorldError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn decoy_ids_differ_from_target_or_are_blank() {
        let scenarios = ScenarioGenerator::new(small_config())
            .generate_benchmark(9)
            .unwrap();
        for s in &scenarios {
            for decoy in s.map.decoy_markers() {
                assert!(
                    decoy.id != s.target_marker_id,
                    "decoy id equals target id in {}",
                    s.name
                );
            }
        }
    }
}
