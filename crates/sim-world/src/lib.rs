//! Procedural simulation worlds for the autonomous-landing reproduction.
//!
//! The paper evaluates its landing systems in AirSim/Unreal Engine maps that
//! we cannot run here. This crate supplies the substitute: procedurally
//! generated rural/suburban/urban worlds ([`WorldMap`]) populated with
//! buildings, trees and poles ([`Obstacle`]), landing markers
//! ([`MarkerSite`]), continuous weather conditions ([`Weather`]) and a
//! benchmark [`ScenarioGenerator`] reproducing the paper's 10-maps ×
//! 10-scenarios evaluation grid (half normal, half adverse weather).
//!
//! # Examples
//!
//! ```
//! use mls_sim_world::{MapStyle, ScenarioConfig, ScenarioGenerator};
//!
//! # fn main() -> Result<(), mls_sim_world::SimWorldError> {
//! let config = ScenarioConfig { maps: 2, scenarios_per_map: 2, ..ScenarioConfig::default() };
//! let scenarios = ScenarioGenerator::new(config).generate_benchmark(42)?;
//! assert_eq!(scenarios.len(), 4);
//! assert!(scenarios.iter().any(|s| s.map.style == MapStyle::Suburban));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

mod generator;
mod map;
mod obstacle;
mod scenario;
mod weather;

pub use generator::{MapGenerator, MapGeneratorConfig};
pub use map::{MapStyle, MarkerSite, WorldMap};
pub use obstacle::{Obstacle, RayHit};
pub use scenario::{Scenario, ScenarioConfig, ScenarioFamily, ScenarioGenerator, DICTIONARY_SIZE};
pub use weather::Weather;

/// Errors produced while generating worlds and scenarios.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimWorldError {
    /// A generation parameter was out of range.
    InvalidConfig {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// No clear spot could be found for the landing target in a map.
    TargetPlacement {
        /// Name of the offending map.
        map: String,
    },
    /// A scenario carries no target marker (hand-built scenarios only;
    /// generated scenarios always place one).
    MissingTarget {
        /// Name of the offending scenario.
        scenario: String,
    },
}

impl fmt::Display for SimWorldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimWorldError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            SimWorldError::TargetPlacement { map } => {
                write!(f, "could not place a clear landing target in map {map}")
            }
            SimWorldError::MissingTarget { scenario } => {
                write!(f, "scenario {scenario} carries no target marker")
            }
        }
    }
}

impl Error for SimWorldError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimWorldError>();
        let e = SimWorldError::TargetPlacement {
            map: "urban-03".to_string(),
        };
        assert!(e.to_string().contains("urban-03"));
    }
}
