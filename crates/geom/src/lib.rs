//! Geometry primitives shared by every crate of the autonomous-landing
//! reproduction.
//!
//! The simulation, mapping, planning and vision crates all operate on a small
//! set of geometric types: 3-D vectors ([`Vec3`]), 2-D vectors ([`Vec2`]),
//! vehicle poses ([`Pose`], [`Attitude`]), axis-aligned boxes ([`Aabb`]),
//! rays ([`Ray`]) and integer voxel indices ([`VoxelIndex`]). This crate keeps
//! them dependency-free and heavily tested so the higher layers can focus on
//! the paper's algorithms.
//!
//! All distances are metres, all angles radians, and the world frame is ENU
//! (x east, y north, z up) — the same convention the paper's PX4-based stack
//! uses for its local frame.
//!
//! # Examples
//!
//! ```
//! use mls_geom::{Vec3, Aabb, Ray};
//!
//! let building = Aabb::from_center_half_extents(Vec3::new(10.0, 0.0, 5.0), Vec3::new(5.0, 5.0, 5.0));
//! let ray = Ray::new(Vec3::new(0.0, 0.0, 5.0), Vec3::new(1.0, 0.0, 0.0));
//! let hit = building.ray_intersection(&ray).expect("ray points at the building");
//! assert!((hit - 5.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aabb;
mod angle;
mod attitude;
mod pose;
mod ray;
mod vec2;
mod vec3;
mod voxel;

pub use aabb::Aabb;
pub use angle::{clamp, deg_to_rad, rad_to_deg, wrap_angle};
pub use attitude::Attitude;
pub use pose::Pose;
pub use ray::{segment_point_distance, Ray};
pub use vec2::Vec2;
pub use vec3::Vec3;
pub use voxel::VoxelIndex;
