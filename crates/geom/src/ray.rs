//! Rays and segment utilities used by sensor simulation and collision checks.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Vec3;

/// A half-infinite ray with an origin and a unit direction.
///
/// # Examples
///
/// ```
/// use mls_geom::{Ray, Vec3};
///
/// let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, -2.0));
/// assert!((ray.direction.norm() - 1.0).abs() < 1e-12);
/// assert_eq!(ray.point_at(3.0), Vec3::new(0.0, 0.0, -3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ray {
    /// Ray origin in world coordinates.
    pub origin: Vec3,
    /// Unit direction of the ray.
    pub direction: Vec3,
}

impl Ray {
    /// Creates a ray, normalising `direction`.
    ///
    /// # Panics
    ///
    /// Panics if `direction` is the zero vector.
    pub fn new(origin: Vec3, direction: Vec3) -> Self {
        let direction = direction
            .normalized()
            .expect("ray direction must be non-zero");
        Self { origin, direction }
    }

    /// Creates the ray from `from` towards `to`, returning `None` when the
    /// points coincide.
    pub fn between(from: Vec3, to: Vec3) -> Option<Self> {
        (to - from).normalized().map(|direction| Self {
            origin: from,
            direction,
        })
    }

    /// The point at parameter `t` (metres along the ray).
    #[inline]
    pub fn point_at(&self, t: f64) -> Vec3 {
        self.origin + self.direction * t
    }

    /// Parameter of the closest point on the ray to `point` (clamped to be
    /// non-negative: the ray does not extend behind its origin).
    pub fn closest_t(&self, point: Vec3) -> f64 {
        (point - self.origin).dot(self.direction).max(0.0)
    }

    /// Distance from `point` to the ray.
    pub fn distance_to_point(&self, point: Vec3) -> f64 {
        self.point_at(self.closest_t(point)).distance(point)
    }

    /// Intersection parameter with the horizontal plane `z = plane_z`, or
    /// `None` when the ray is parallel to the plane or points away from it.
    pub fn intersect_horizontal_plane(&self, plane_z: f64) -> Option<f64> {
        if self.direction.z.abs() < 1e-12 {
            return None;
        }
        let t = (plane_z - self.origin.z) / self.direction.z;
        (t >= 0.0).then_some(t)
    }
}

impl fmt::Display for Ray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ray {} -> {}", self.origin, self.direction)
    }
}

/// Distance from `point` to the segment `[a, b]`.
///
/// Used by the trajectory-tracking safety checks (cross-track error) and the
/// RRT* collision margin tests.
///
/// # Examples
///
/// ```
/// use mls_geom::Vec3;
/// let d = mls_geom::segment_point_distance(
///     Vec3::new(0.0, 1.0, 0.0),
///     Vec3::new(-1.0, 0.0, 0.0),
///     Vec3::new(1.0, 0.0, 0.0),
/// );
/// assert!((d - 1.0).abs() < 1e-12);
/// ```
pub fn segment_point_distance(point: Vec3, a: Vec3, b: Vec3) -> f64 {
    let ab = b - a;
    let len_sq = ab.norm_squared();
    if len_sq <= f64::EPSILON {
        return point.distance(a);
    }
    let t = ((point - a).dot(ab) / len_sq).clamp(0.0, 1.0);
    point.distance(a + ab * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_is_normalised() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(0.0, 3.0, 4.0));
        assert!((r.direction.norm() - 1.0).abs() < 1e-12);
        assert!((r.point_at(5.0) - Vec3::new(0.0, 3.0, 4.0)).norm() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_direction_panics() {
        let _ = Ray::new(Vec3::ZERO, Vec3::ZERO);
    }

    #[test]
    fn between_handles_identical_points() {
        assert!(Ray::between(Vec3::ZERO, Vec3::ZERO).is_none());
        let r = Ray::between(Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0)).unwrap();
        assert_eq!(r.direction, Vec3::UNIT_X);
    }

    #[test]
    fn closest_point_clamps_behind_origin() {
        let r = Ray::new(Vec3::ZERO, Vec3::UNIT_X);
        assert_eq!(r.closest_t(Vec3::new(-5.0, 0.0, 0.0)), 0.0);
        assert_eq!(r.closest_t(Vec3::new(5.0, 3.0, 0.0)), 5.0);
        assert!((r.distance_to_point(Vec3::new(5.0, 3.0, 0.0)) - 3.0).abs() < 1e-12);
        assert!((r.distance_to_point(Vec3::new(-4.0, 0.0, 3.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn plane_intersection() {
        let down = Ray::new(Vec3::new(0.0, 0.0, 10.0), -Vec3::UNIT_Z);
        assert!((down.intersect_horizontal_plane(0.0).unwrap() - 10.0).abs() < 1e-12);
        // Ray pointing away from the plane.
        let up = Ray::new(Vec3::new(0.0, 0.0, 10.0), Vec3::UNIT_Z);
        assert!(up.intersect_horizontal_plane(0.0).is_none());
        // Ray parallel to the plane.
        let level = Ray::new(Vec3::new(0.0, 0.0, 10.0), Vec3::UNIT_X);
        assert!(level.intersect_horizontal_plane(0.0).is_none());
    }

    #[test]
    fn segment_distance_degenerate_and_interior() {
        let a = Vec3::new(-1.0, 0.0, 0.0);
        let b = Vec3::new(1.0, 0.0, 0.0);
        // Point beyond the end of the segment measures to the endpoint.
        assert!((segment_point_distance(Vec3::new(3.0, 0.0, 0.0), a, b) - 2.0).abs() < 1e-12);
        // Degenerate segment is a point.
        assert!(
            (segment_point_distance(Vec3::new(0.0, 2.0, 0.0), a, a) - (5.0f64).sqrt()).abs()
                < 1e-12
        );
    }

    #[test]
    fn display_nonempty() {
        let r = Ray::new(Vec3::ZERO, Vec3::UNIT_Z);
        assert!(!format!("{r}").is_empty());
    }
}
