//! Angle helpers shared by the attitude, autopilot and planner code.

use std::f64::consts::PI;

/// Wraps an angle in radians into `(-π, π]`.
///
/// # Examples
///
/// ```
/// use mls_geom::wrap_angle;
/// use std::f64::consts::PI;
///
/// assert!((wrap_angle(3.0 * PI) - PI).abs() < 1e-12);
/// assert!((wrap_angle(-3.0 * PI) - PI).abs() < 1e-12);
/// assert_eq!(wrap_angle(0.25), 0.25);
/// ```
#[inline]
pub fn wrap_angle(angle: f64) -> f64 {
    let two_pi = 2.0 * PI;
    let mut a = angle % two_pi;
    if a <= -PI {
        a += two_pi;
    } else if a > PI {
        a -= two_pi;
    }
    a
}

/// Converts degrees to radians.
///
/// # Examples
///
/// ```
/// use mls_geom::deg_to_rad;
/// assert!((deg_to_rad(180.0) - std::f64::consts::PI).abs() < 1e-12);
/// ```
#[inline]
pub fn deg_to_rad(deg: f64) -> f64 {
    deg * PI / 180.0
}

/// Converts radians to degrees.
///
/// # Examples
///
/// ```
/// use mls_geom::rad_to_deg;
/// assert!((rad_to_deg(std::f64::consts::PI) - 180.0).abs() < 1e-12);
/// ```
#[inline]
pub fn rad_to_deg(rad: f64) -> f64 {
    rad * 180.0 / PI
}

/// Clamps `value` into `[min, max]`.
///
/// Provided for symmetry with the vector clamps; identical to
/// [`f64::clamp`] but usable in `const`-friendly call sites and without the
/// panic on `min > max` (the bounds are swapped instead).
///
/// # Examples
///
/// ```
/// use mls_geom::clamp;
/// assert_eq!(clamp(5.0, 0.0, 1.0), 1.0);
/// assert_eq!(clamp(-5.0, 0.0, 1.0), 0.0);
/// assert_eq!(clamp(0.5, 1.0, 0.0), 0.5); // swapped bounds tolerated
/// ```
#[inline]
pub fn clamp(value: f64, min: f64, max: f64) -> f64 {
    let (lo, hi) = if min <= max { (min, max) } else { (max, min) };
    value.max(lo).min(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_is_idempotent_and_in_range() {
        for i in -100..100 {
            let a = i as f64 * 0.37;
            let w = wrap_angle(a);
            assert!(
                w > -PI - 1e-12 && w <= PI + 1e-12,
                "angle {a} wrapped to {w}"
            );
            assert!((wrap_angle(w) - w).abs() < 1e-12);
        }
    }

    #[test]
    fn wrap_preserves_direction() {
        for i in -50..50 {
            let a = i as f64 * 0.73;
            let w = wrap_angle(a);
            // The wrapped and original angle point the same way.
            assert!((a.sin() - w.sin()).abs() < 1e-9);
            assert!((a.cos() - w.cos()).abs() < 1e-9);
        }
    }

    #[test]
    fn degree_radian_roundtrip() {
        for d in [-720.0, -90.0, 0.0, 45.0, 360.0, 1234.5] {
            assert!((rad_to_deg(deg_to_rad(d)) - d).abs() < 1e-9);
        }
    }

    #[test]
    fn clamp_handles_inverted_bounds() {
        assert_eq!(clamp(10.0, -1.0, 1.0), 1.0);
        assert_eq!(clamp(-10.0, 1.0, -1.0), -1.0);
        assert_eq!(clamp(0.3, 1.0, -1.0), 0.3);
    }
}
