//! Two-dimensional vector type, used for image-plane and ground-plane maths.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A 2-D vector of `f64` components.
///
/// Used both for ground-plane positions (metres) and image-plane coordinates
/// (pixels); the semantics are given by the surrounding API.
///
/// # Examples
///
/// ```
/// use mls_geom::Vec2;
///
/// let p = Vec2::new(3.0, 4.0);
/// assert!((p.norm() - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// First component.
    pub x: f64,
    /// Second component.
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a new vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Creates a vector with both components set to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Self { x: v, y: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// The scalar ("z component of the") cross product.
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Returns the unit vector in the same direction, or `None` for the zero
    /// vector.
    #[inline]
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n <= f64::EPSILON {
            None
        } else {
            Some(self / n)
        }
    }

    /// Rotates the vector counter-clockwise by `angle` radians.
    #[inline]
    pub fn rotated(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }

    /// The polar angle of the vector in radians (`atan2(y, x)`).
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Lifts this vector to 3-D with the given z component.
    #[inline]
    pub fn with_z(self, z: f64) -> super::Vec3 {
        super::Vec3::new(self.x, self.y, z)
    }

    /// `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl From<[f64; 2]> for Vec2 {
    fn from(a: [f64; 2]) -> Self {
        Vec2::new(a[0], a[1])
    }
}

impl From<Vec2> for [f64; 2] {
    fn from(v: Vec2) -> Self {
        [v.x, v.y]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(-3.0, 0.5);
        assert_eq!(a + b - b, a);
        assert_eq!((a * 4.0) / 4.0, a);
        assert_eq!(-(-a), a);
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn rotation_quarter_turn() {
        let v = Vec2::new(1.0, 0.0).rotated(FRAC_PI_2);
        assert!((v.x).abs() < 1e-12);
        assert!((v.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rotation_preserves_norm() {
        let v = Vec2::new(3.0, -4.0);
        for k in 0..16 {
            let a = k as f64 * 0.5;
            assert!((v.rotated(a).norm() - v.norm()).abs() < 1e-9);
        }
    }

    #[test]
    fn angle_and_cross() {
        assert!((Vec2::new(0.0, 1.0).angle() - FRAC_PI_2).abs() < 1e-12);
        assert!(Vec2::new(1.0, 0.0).cross(Vec2::new(0.0, 1.0)) > 0.0);
        assert!(Vec2::new(0.0, 1.0).cross(Vec2::new(1.0, 0.0)) < 0.0);
    }

    #[test]
    fn lift_to_3d() {
        let v = Vec2::new(2.0, 3.0).with_z(5.0);
        assert_eq!(v, crate::Vec3::new(2.0, 3.0, 5.0));
    }

    #[test]
    fn normalized_zero_is_none() {
        assert!(Vec2::ZERO.normalized().is_none());
        let n = Vec2::new(0.0, -7.0).normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lerp_and_distance() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(4.0, 0.0);
        assert_eq!(a.lerp(b, 0.25), Vec2::new(1.0, 0.0));
        assert!((a.distance(b) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn conversions_and_display() {
        let v = Vec2::new(1.5, -2.5);
        let arr: [f64; 2] = v.into();
        assert_eq!(Vec2::from(arr), v);
        assert!(!format!("{v}").is_empty());
        assert!(v.is_finite());
        assert!(!Vec2::new(f64::NAN, 0.0).is_finite());
    }
}
