//! Integer voxel indices used by the occupancy maps.

use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

use crate::Vec3;

/// A discrete voxel index into a regular 3-D grid.
///
/// Conversion between metric coordinates and voxel indices is always relative
/// to a resolution (voxel edge length in metres); both occupancy-map
/// implementations use the same convention, so a point and a resolution map to
/// the same voxel everywhere in the workspace.
///
/// # Examples
///
/// ```
/// use mls_geom::{Vec3, VoxelIndex};
///
/// let idx = VoxelIndex::from_point(Vec3::new(1.2, -0.3, 5.9), 0.5);
/// assert_eq!(idx, VoxelIndex::new(2, -1, 11));
/// let center = idx.center(0.5);
/// assert!((center - Vec3::new(1.25, -0.25, 5.75)).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VoxelIndex {
    /// Index along x.
    pub x: i32,
    /// Index along y.
    pub y: i32,
    /// Index along z.
    pub z: i32,
}

impl VoxelIndex {
    /// Creates a voxel index from its components.
    #[inline]
    pub const fn new(x: i32, y: i32, z: i32) -> Self {
        Self { x, y, z }
    }

    /// The voxel containing `point` at the given resolution.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `resolution` is not strictly positive.
    #[inline]
    pub fn from_point(point: Vec3, resolution: f64) -> Self {
        debug_assert!(resolution > 0.0, "voxel resolution must be positive");
        Self {
            x: (point.x / resolution).floor() as i32,
            y: (point.y / resolution).floor() as i32,
            z: (point.z / resolution).floor() as i32,
        }
    }

    /// The metric center of this voxel at the given resolution.
    #[inline]
    pub fn center(&self, resolution: f64) -> Vec3 {
        Vec3::new(
            (self.x as f64 + 0.5) * resolution,
            (self.y as f64 + 0.5) * resolution,
            (self.z as f64 + 0.5) * resolution,
        )
    }

    /// The minimum corner of this voxel at the given resolution.
    #[inline]
    pub fn min_corner(&self, resolution: f64) -> Vec3 {
        Vec3::new(
            self.x as f64 * resolution,
            self.y as f64 * resolution,
            self.z as f64 * resolution,
        )
    }

    /// Manhattan (L1) distance between two voxel indices.
    #[inline]
    pub fn manhattan_distance(&self, other: VoxelIndex) -> i64 {
        (self.x as i64 - other.x as i64).abs()
            + (self.y as i64 - other.y as i64).abs()
            + (self.z as i64 - other.z as i64).abs()
    }

    /// Euclidean distance between the centers of two voxels, in voxel units.
    #[inline]
    pub fn euclidean_distance(&self, other: VoxelIndex) -> f64 {
        let dx = (self.x - other.x) as f64;
        let dy = (self.y - other.y) as f64;
        let dz = (self.z - other.z) as f64;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// The 6 face-adjacent neighbours of this voxel.
    pub fn face_neighbors(&self) -> [VoxelIndex; 6] {
        [
            VoxelIndex::new(self.x + 1, self.y, self.z),
            VoxelIndex::new(self.x - 1, self.y, self.z),
            VoxelIndex::new(self.x, self.y + 1, self.z),
            VoxelIndex::new(self.x, self.y - 1, self.z),
            VoxelIndex::new(self.x, self.y, self.z + 1),
            VoxelIndex::new(self.x, self.y, self.z - 1),
        ]
    }

    /// All 26 neighbours of this voxel (face, edge and corner adjacency).
    pub fn all_neighbors(&self) -> Vec<VoxelIndex> {
        let mut out = Vec::with_capacity(26);
        for dx in -1..=1 {
            for dy in -1..=1 {
                for dz in -1..=1 {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    out.push(VoxelIndex::new(self.x + dx, self.y + dy, self.z + dz));
                }
            }
        }
        out
    }
}

impl Add for VoxelIndex {
    type Output = VoxelIndex;
    #[inline]
    fn add(self, rhs: VoxelIndex) -> VoxelIndex {
        VoxelIndex::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl Sub for VoxelIndex {
    type Output = VoxelIndex;
    #[inline]
    fn sub(self, rhs: VoxelIndex) -> VoxelIndex {
        VoxelIndex::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl fmt::Display for VoxelIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}, {}]", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_voxel_floor_semantics() {
        assert_eq!(
            VoxelIndex::from_point(Vec3::new(0.0, 0.0, 0.0), 1.0),
            VoxelIndex::new(0, 0, 0)
        );
        assert_eq!(
            VoxelIndex::from_point(Vec3::new(0.99, 0.0, 0.0), 1.0),
            VoxelIndex::new(0, 0, 0)
        );
        assert_eq!(
            VoxelIndex::from_point(Vec3::new(1.0, 0.0, 0.0), 1.0),
            VoxelIndex::new(1, 0, 0)
        );
        assert_eq!(
            VoxelIndex::from_point(Vec3::new(-0.01, 0.0, 0.0), 1.0),
            VoxelIndex::new(-1, 0, 0)
        );
    }

    #[test]
    fn center_lies_inside_voxel() {
        let idx = VoxelIndex::new(3, -2, 7);
        let res = 0.25;
        let c = idx.center(res);
        assert_eq!(VoxelIndex::from_point(c, res), idx);
        let corner = idx.min_corner(res);
        assert_eq!(VoxelIndex::from_point(corner + Vec3::splat(1e-9), res), idx);
    }

    #[test]
    fn distances() {
        let a = VoxelIndex::new(0, 0, 0);
        let b = VoxelIndex::new(3, 4, 0);
        assert_eq!(a.manhattan_distance(b), 7);
        assert!((a.euclidean_distance(b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn neighbor_counts_and_uniqueness() {
        let v = VoxelIndex::new(5, 5, 5);
        let face = v.face_neighbors();
        assert_eq!(face.len(), 6);
        let all = v.all_neighbors();
        assert_eq!(all.len(), 26);
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 26);
        assert!(!all.contains(&v));
        for n in &face {
            assert!(all.contains(n));
            assert_eq!(v.manhattan_distance(*n), 1);
        }
    }

    #[test]
    fn arithmetic_and_display() {
        let a = VoxelIndex::new(1, 2, 3);
        let b = VoxelIndex::new(-1, 1, 1);
        assert_eq!(a + b, VoxelIndex::new(0, 3, 4));
        assert_eq!(a - b, VoxelIndex::new(2, 1, 2));
        assert!(!format!("{a}").is_empty());
    }
}
