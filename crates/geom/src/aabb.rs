//! Axis-aligned bounding boxes, used for obstacles and map regions.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Ray, Vec3};

/// An axis-aligned box defined by its minimum and maximum corners.
///
/// Invariant: `min` is component-wise less than or equal to `max`. The
/// constructors enforce this by swapping components if necessary.
///
/// # Examples
///
/// ```
/// use mls_geom::{Aabb, Vec3};
///
/// let b = Aabb::new(Vec3::ZERO, Vec3::new(2.0, 2.0, 2.0));
/// assert!(b.contains(Vec3::new(1.0, 1.0, 1.0)));
/// assert!(!b.contains(Vec3::new(3.0, 1.0, 1.0)));
/// assert_eq!(b.center(), Vec3::new(1.0, 1.0, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    min: Vec3,
    max: Vec3,
}

impl Aabb {
    /// Creates a box from two opposite corners (in any order).
    pub fn new(a: Vec3, b: Vec3) -> Self {
        Self {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// Creates a box from its center and half-extents.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if any half-extent is negative.
    pub fn from_center_half_extents(center: Vec3, half_extents: Vec3) -> Self {
        debug_assert!(
            half_extents.x >= 0.0 && half_extents.y >= 0.0 && half_extents.z >= 0.0,
            "half extents must be non-negative"
        );
        Self {
            min: center - half_extents,
            max: center + half_extents,
        }
    }

    /// The minimum corner.
    #[inline]
    pub fn min(&self) -> Vec3 {
        self.min
    }

    /// The maximum corner.
    #[inline]
    pub fn max(&self) -> Vec3 {
        self.max
    }

    /// The geometric center of the box.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// The size (full extents) of the box along each axis.
    #[inline]
    pub fn size(&self) -> Vec3 {
        self.max - self.min
    }

    /// The half-extents of the box.
    #[inline]
    pub fn half_extents(&self) -> Vec3 {
        self.size() * 0.5
    }

    /// Volume of the box in cubic metres.
    #[inline]
    pub fn volume(&self) -> f64 {
        let s = self.size();
        s.x * s.y * s.z
    }

    /// `true` if `point` lies inside or on the boundary of the box.
    #[inline]
    pub fn contains(&self, point: Vec3) -> bool {
        point.x >= self.min.x
            && point.x <= self.max.x
            && point.y >= self.min.y
            && point.y <= self.max.y
            && point.z >= self.min.z
            && point.z <= self.max.z
    }

    /// `true` if the two boxes overlap (boundary contact counts).
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// Returns the box grown by `margin` metres in every direction.
    ///
    /// This is the "inflation" operation used for obstacle clearance
    /// (see the paper's Fig. 6 discussion of inflated bounding boxes).
    pub fn inflated(&self, margin: f64) -> Aabb {
        debug_assert!(margin >= 0.0, "inflation margin must be non-negative");
        Aabb {
            min: self.min - Vec3::splat(margin),
            max: self.max + Vec3::splat(margin),
        }
    }

    /// The smallest box containing both `self` and `other`.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Closest point inside the box to `point` (the point itself if inside).
    pub fn closest_point(&self, point: Vec3) -> Vec3 {
        point.clamp(self.min, self.max)
    }

    /// Euclidean distance from `point` to the box (zero if inside).
    pub fn distance_to_point(&self, point: Vec3) -> f64 {
        self.closest_point(point).distance(point)
    }

    /// Ray/box intersection using the slab method.
    ///
    /// Returns the entry distance `t >= 0` along the ray, or `None` when the
    /// ray misses the box. A ray starting inside the box returns `Some(0.0)`.
    pub fn ray_intersection(&self, ray: &Ray) -> Option<f64> {
        let mut t_min = 0.0_f64;
        let mut t_max = f64::INFINITY;
        for axis in 0..3 {
            let origin = ray.origin[axis];
            let dir = ray.direction[axis];
            let lo = self.min[axis];
            let hi = self.max[axis];
            if dir.abs() < 1e-15 {
                if origin < lo || origin > hi {
                    return None;
                }
            } else {
                let inv = 1.0 / dir;
                let mut t0 = (lo - origin) * inv;
                let mut t1 = (hi - origin) * inv;
                if t0 > t1 {
                    std::mem::swap(&mut t0, &mut t1);
                }
                t_min = t_min.max(t0);
                t_max = t_max.min(t1);
                if t_min > t_max {
                    return None;
                }
            }
        }
        Some(t_min)
    }

    /// `true` if the segment from `a` to `b` intersects the box.
    pub fn intersects_segment(&self, a: Vec3, b: Vec3) -> bool {
        if self.contains(a) || self.contains(b) {
            return true;
        }
        let length = a.distance(b);
        if length <= f64::EPSILON {
            return false;
        }
        match Ray::between(a, b).and_then(|ray| self.ray_intersection(&ray)) {
            Some(t) => t <= length,
            None => false,
        }
    }
}

impl fmt::Display for Aabb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "aabb[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::splat(1.0))
    }

    #[test]
    fn constructor_orders_corners() {
        let b = Aabb::new(Vec3::new(2.0, -1.0, 5.0), Vec3::new(-2.0, 1.0, 0.0));
        assert_eq!(b.min(), Vec3::new(-2.0, -1.0, 0.0));
        assert_eq!(b.max(), Vec3::new(2.0, 1.0, 5.0));
        assert_eq!(b.center(), Vec3::new(0.0, 0.0, 2.5));
        assert_eq!(b.size(), Vec3::new(4.0, 2.0, 5.0));
        assert!((b.volume() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn containment_and_boundary() {
        let b = unit_box();
        assert!(b.contains(Vec3::splat(0.5)));
        assert!(b.contains(Vec3::ZERO));
        assert!(b.contains(Vec3::splat(1.0)));
        assert!(!b.contains(Vec3::new(1.0001, 0.5, 0.5)));
    }

    #[test]
    fn intersection_symmetric() {
        let a = unit_box();
        let b = Aabb::new(Vec3::splat(0.5), Vec3::splat(2.0));
        let c = Aabb::new(Vec3::splat(3.0), Vec3::splat(4.0));
        assert!(a.intersects(&b) && b.intersects(&a));
        assert!(!a.intersects(&c) && !c.intersects(&a));
        // Touching boxes count as intersecting.
        let d = Aabb::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(2.0, 1.0, 1.0));
        assert!(a.intersects(&d));
    }

    #[test]
    fn inflation_grows_every_side() {
        let b = unit_box().inflated(0.5);
        assert_eq!(b.min(), Vec3::splat(-0.5));
        assert_eq!(b.max(), Vec3::splat(1.5));
    }

    #[test]
    fn union_contains_both() {
        let a = unit_box();
        let b = Aabb::new(Vec3::splat(5.0), Vec3::splat(6.0));
        let u = a.union(&b);
        assert!(u.contains(Vec3::splat(0.5)));
        assert!(u.contains(Vec3::splat(5.5)));
    }

    #[test]
    fn closest_point_and_distance() {
        let b = unit_box();
        assert_eq!(b.closest_point(Vec3::splat(0.5)), Vec3::splat(0.5));
        assert_eq!(
            b.closest_point(Vec3::new(2.0, 0.5, 0.5)),
            Vec3::new(1.0, 0.5, 0.5)
        );
        assert!((b.distance_to_point(Vec3::new(2.0, 0.5, 0.5)) - 1.0).abs() < 1e-12);
        assert_eq!(b.distance_to_point(Vec3::splat(0.5)), 0.0);
    }

    #[test]
    fn ray_hits_and_misses() {
        let b = Aabb::from_center_half_extents(Vec3::new(10.0, 0.0, 0.0), Vec3::splat(1.0));
        let hit = Ray::new(Vec3::ZERO, Vec3::UNIT_X);
        assert!((b.ray_intersection(&hit).unwrap() - 9.0).abs() < 1e-12);
        let miss = Ray::new(Vec3::ZERO, Vec3::UNIT_Y);
        assert!(b.ray_intersection(&miss).is_none());
        let away = Ray::new(Vec3::ZERO, -Vec3::UNIT_X);
        assert!(b.ray_intersection(&away).is_none());
        // Starting inside the box.
        let inside = Ray::new(Vec3::new(10.0, 0.0, 0.0), Vec3::UNIT_Z);
        assert_eq!(b.ray_intersection(&inside), Some(0.0));
    }

    #[test]
    fn ray_parallel_to_slab() {
        let b = unit_box();
        // Parallel to x axis, inside the y/z slabs.
        let inside_slab = Ray::new(Vec3::new(-5.0, 0.5, 0.5), Vec3::UNIT_X);
        assert!(b.ray_intersection(&inside_slab).is_some());
        // Parallel to x axis, outside the y slab.
        let outside_slab = Ray::new(Vec3::new(-5.0, 2.0, 0.5), Vec3::UNIT_X);
        assert!(b.ray_intersection(&outside_slab).is_none());
    }

    #[test]
    fn segment_intersection() {
        let b = Aabb::from_center_half_extents(Vec3::new(5.0, 0.0, 0.0), Vec3::splat(1.0));
        assert!(b.intersects_segment(Vec3::ZERO, Vec3::new(10.0, 0.0, 0.0)));
        assert!(!b.intersects_segment(Vec3::ZERO, Vec3::new(3.0, 0.0, 0.0)));
        assert!(!b.intersects_segment(Vec3::ZERO, Vec3::new(0.0, 10.0, 0.0)));
        // Segment fully inside.
        assert!(b.intersects_segment(Vec3::new(4.5, 0.0, 0.0), Vec3::new(5.5, 0.0, 0.0)));
        // Degenerate segment outside.
        assert!(!b.intersects_segment(Vec3::ZERO, Vec3::ZERO));
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", unit_box()).is_empty());
    }
}
