//! Three-dimensional vector type used throughout the workspace.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A 3-D vector of `f64` components in metres (world frame: ENU).
///
/// # Examples
///
/// ```
/// use mls_geom::Vec3;
///
/// let a = Vec3::new(1.0, 2.0, 3.0);
/// let b = Vec3::new(4.0, 5.0, 6.0);
/// assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
/// assert!((a.dot(b) - 32.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// East component (metres).
    pub x: f64,
    /// North component (metres).
    pub y: f64,
    /// Up component (metres).
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along +x (east).
    pub const UNIT_X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along +y (north).
    pub const UNIT_Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along +z (up).
    pub const UNIT_Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a new vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Creates a vector with all components set to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Self { x: v, y: v, z: v }
    }

    /// Builds a vector from a horizontal [`super::Vec2`]-like pair and a height.
    #[inline]
    pub const fn from_xy_z(x: f64, y: f64, z: f64) -> Self {
        Self::new(x, y, z)
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (cheaper than [`Vec3::norm`]).
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Squared distance to another point.
    #[inline]
    pub fn distance_squared(self, other: Vec3) -> f64 {
        (self - other).norm_squared()
    }

    /// Horizontal (x, y) distance to another point, ignoring altitude.
    #[inline]
    pub fn horizontal_distance(self, other: Vec3) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Returns the unit vector in the same direction, or `None` if the vector
    /// is (numerically) zero.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n <= f64::EPSILON {
            None
        } else {
            Some(self / n)
        }
    }

    /// Returns the unit vector in the same direction, falling back to `+x`
    /// for a zero vector. Useful where a direction is required and the zero
    /// case is benign.
    #[inline]
    pub fn normalized_or_x(self) -> Vec3 {
        self.normalized().unwrap_or(Vec3::UNIT_X)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.x.min(other.x),
            self.y.min(other.y),
            self.z.min(other.z),
        )
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.x.max(other.x),
            self.y.max(other.y),
            self.z.max(other.z),
        )
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Clamps every component into `[min, max]`.
    #[inline]
    pub fn clamp(self, min: Vec3, max: Vec3) -> Vec3 {
        self.max(min).min(max)
    }

    /// Returns the vector with its horizontal components only (z zeroed).
    #[inline]
    pub fn horizontal(self) -> Vec3 {
        Vec3::new(self.x, self.y, 0.0)
    }

    /// Projects the vector onto the horizontal plane and returns `(x, y)`.
    #[inline]
    pub fn xy(self) -> super::Vec2 {
        super::Vec2::new(self.x, self.y)
    }

    /// `true` if all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Maximum of the component absolute values (Chebyshev / L-inf norm).
    #[inline]
    pub fn max_component_abs(self) -> f64 {
        self.x.abs().max(self.y.abs()).max(self.z.abs())
    }

    /// Caps the norm of the vector at `max_norm`, preserving direction.
    ///
    /// Vectors shorter than `max_norm` are returned unchanged.
    #[inline]
    pub fn clamp_norm(self, max_norm: f64) -> Vec3 {
        debug_assert!(max_norm >= 0.0, "max_norm must be non-negative");
        let n = self.norm();
        if n > max_norm && n > f64::EPSILON {
            self * (max_norm / n)
        } else {
            self
        }
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3}, {:.3})", self.x, self.y, self.z)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = *self * rhs;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        *self = *self / rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;

    /// Indexes the vector: 0 → x, 1 → y, 2 → z.
    ///
    /// # Panics
    ///
    /// Panics if `index > 2`.
    fn index(&self, index: usize) -> &f64 {
        match index {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {index}"),
        }
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |acc, v| acc + v)
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f64; 3] {
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

impl From<(f64, f64, f64)> for Vec3 {
    fn from(t: (f64, f64, f64)) -> Self {
        Vec3::new(t.0, t.1, t.2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = Vec3::new(1.0, -2.0, 3.5);
        let b = Vec3::new(0.5, 4.0, -1.5);
        assert_eq!(a + b - b, a);
        assert_eq!((a * 2.0) / 2.0, a);
        assert_eq!(-(-a), a);
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
        c *= 3.0;
        c /= 3.0;
        assert!((c - a).norm() < 1e-12);
    }

    #[test]
    fn dot_and_cross_orthogonality() {
        let x = Vec3::UNIT_X;
        let y = Vec3::UNIT_Y;
        assert_eq!(x.cross(y), Vec3::UNIT_Z);
        assert_eq!(x.dot(y), 0.0);
        let a = Vec3::new(2.0, -1.0, 0.5);
        let b = Vec3::new(-3.0, 0.2, 7.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn norm_and_normalized() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert!((v.norm() - 5.0).abs() < 1e-12);
        assert!((v.norm_squared() - 25.0).abs() < 1e-12);
        let n = v.normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-12);
        assert!(Vec3::ZERO.normalized().is_none());
        assert_eq!(Vec3::ZERO.normalized_or_x(), Vec3::UNIT_X);
    }

    #[test]
    fn distances() {
        let a = Vec3::new(0.0, 0.0, 10.0);
        let b = Vec3::new(3.0, 4.0, 10.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert!((a.distance_squared(b) - 25.0).abs() < 1e-12);
        assert!((a.horizontal_distance(b) - 5.0).abs() < 1e-12);
        let c = Vec3::new(3.0, 4.0, 100.0);
        assert!((a.horizontal_distance(c) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(10.0, -10.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(5.0, -5.0, 2.0));
    }

    #[test]
    fn clamp_and_minmax() {
        let v = Vec3::new(5.0, -5.0, 0.5);
        let lo = Vec3::splat(-1.0);
        let hi = Vec3::splat(1.0);
        assert_eq!(v.clamp(lo, hi), Vec3::new(1.0, -1.0, 0.5));
        assert_eq!(v.abs(), Vec3::new(5.0, 5.0, 0.5));
        assert_eq!(v.min(Vec3::ZERO), Vec3::new(0.0, -5.0, 0.0));
        assert_eq!(v.max(Vec3::ZERO), Vec3::new(5.0, 0.0, 0.5));
        assert_eq!(v.max_component_abs(), 5.0);
    }

    #[test]
    fn clamp_norm_preserves_direction() {
        let v = Vec3::new(6.0, 8.0, 0.0);
        let clamped = v.clamp_norm(5.0);
        assert!((clamped.norm() - 5.0).abs() < 1e-12);
        assert!((clamped.normalized().unwrap() - v.normalized().unwrap()).norm() < 1e-12);
        // Shorter vectors are unchanged.
        assert_eq!(
            Vec3::new(1.0, 0.0, 0.0).clamp_norm(5.0),
            Vec3::new(1.0, 0.0, 0.0)
        );
        assert_eq!(Vec3::ZERO.clamp_norm(5.0), Vec3::ZERO);
    }

    #[test]
    fn conversions_and_index() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        let arr: [f64; 3] = v.into();
        assert_eq!(arr, [1.0, 2.0, 3.0]);
        assert_eq!(Vec3::from([1.0, 2.0, 3.0]), v);
        assert_eq!(Vec3::from((1.0, 2.0, 3.0)), v);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 2.0);
        assert_eq!(v[2], 3.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn sum_of_iterator() {
        let total: Vec3 = (0..5).map(|i| Vec3::splat(i as f64)).sum();
        assert_eq!(total, Vec3::splat(10.0));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Vec3::ZERO).is_empty());
        assert!(!format!("{:?}", Vec3::ZERO).is_empty());
    }

    #[test]
    fn is_finite_detects_nan() {
        assert!(Vec3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Vec3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }
}
