//! Vehicle pose: position plus attitude.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Attitude, Vec3};

/// A rigid-body pose in the world frame: position (metres) and attitude.
///
/// # Examples
///
/// ```
/// use mls_geom::{Pose, Vec3, Attitude};
///
/// let pose = Pose::new(Vec3::new(5.0, 0.0, 10.0), Attitude::from_yaw(0.0));
/// // A point one metre ahead of the vehicle in the body frame:
/// let world = pose.transform_point(Vec3::UNIT_X);
/// assert!((world - Vec3::new(6.0, 0.0, 10.0)).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Pose {
    /// Position of the body origin in the world frame (metres).
    pub position: Vec3,
    /// Attitude of the body frame relative to the world frame.
    pub attitude: Attitude,
}

impl Pose {
    /// The identity pose: origin, level, zero yaw.
    pub const IDENTITY: Pose = Pose {
        position: Vec3::ZERO,
        attitude: Attitude::LEVEL,
    };

    /// Creates a pose from a position and attitude.
    #[inline]
    pub const fn new(position: Vec3, attitude: Attitude) -> Self {
        Self { position, attitude }
    }

    /// Creates a level pose at `position` with the given yaw.
    #[inline]
    pub const fn from_position_yaw(position: Vec3, yaw: f64) -> Self {
        Self {
            position,
            attitude: Attitude::from_yaw(yaw),
        }
    }

    /// Transforms a point from the body frame into the world frame.
    #[inline]
    pub fn transform_point(&self, body_point: Vec3) -> Vec3 {
        self.position + self.attitude.body_to_world(body_point)
    }

    /// Transforms a point from the world frame into the body frame.
    #[inline]
    pub fn inverse_transform_point(&self, world_point: Vec3) -> Vec3 {
        self.attitude.world_to_body(world_point - self.position)
    }

    /// Transforms a direction (no translation) from body to world frame.
    #[inline]
    pub fn transform_direction(&self, body_dir: Vec3) -> Vec3 {
        self.attitude.body_to_world(body_dir)
    }

    /// Altitude above the world origin plane (the `z` coordinate).
    #[inline]
    pub fn altitude(&self) -> f64 {
        self.position.z
    }

    /// Yaw of the pose, radians.
    #[inline]
    pub fn yaw(&self) -> f64 {
        self.attitude.yaw
    }

    /// Horizontal distance between this pose and a world point.
    #[inline]
    pub fn horizontal_distance_to(&self, point: Vec3) -> f64 {
        self.position.horizontal_distance(point)
    }

    /// `true` if position and attitude are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.position.is_finite() && self.attitude.is_finite()
    }
}

impl fmt::Display for Pose {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pos {} {}", self.position, self.attitude)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn identity_pose_is_a_no_op() {
        let p = Pose::IDENTITY;
        let point = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(p.transform_point(point), point);
        assert_eq!(p.inverse_transform_point(point), point);
    }

    #[test]
    fn translation_only() {
        let p = Pose::from_position_yaw(Vec3::new(10.0, -5.0, 2.0), 0.0);
        assert_eq!(p.transform_point(Vec3::ZERO), p.position);
        assert_eq!(p.inverse_transform_point(p.position), Vec3::ZERO);
    }

    #[test]
    fn yawed_pose_rotates_then_translates() {
        let p = Pose::from_position_yaw(Vec3::new(1.0, 1.0, 0.0), FRAC_PI_2);
        let world = p.transform_point(Vec3::UNIT_X);
        assert!((world - Vec3::new(1.0, 2.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn transform_roundtrip() {
        let p = Pose::new(Vec3::new(3.0, -2.0, 8.0), Attitude::new(0.05, -0.1, 1.0));
        for point in [
            Vec3::ZERO,
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(-4.0, 0.5, -2.0),
        ] {
            let rt = p.inverse_transform_point(p.transform_point(point));
            assert!((rt - point).norm() < 1e-9);
        }
    }

    #[test]
    fn accessors() {
        let p = Pose::from_position_yaw(Vec3::new(0.0, 0.0, 25.0), 0.7);
        assert_eq!(p.altitude(), 25.0);
        assert_eq!(p.yaw(), 0.7);
        assert!((p.horizontal_distance_to(Vec3::new(3.0, 4.0, 0.0)) - 5.0).abs() < 1e-12);
        assert!(p.is_finite());
        assert!(!format!("{p}").is_empty());
    }

    #[test]
    fn directions_ignore_translation() {
        let p = Pose::from_position_yaw(Vec3::new(100.0, 100.0, 100.0), FRAC_PI_2);
        let d = p.transform_direction(Vec3::UNIT_X);
        assert!((d - Vec3::UNIT_Y).norm() < 1e-12);
    }
}
